//! Bipartite-matching substrate.
//!
//! Both sequential fair-center baselines reduce center selection to a
//! bipartite matching question:
//!
//! * **ChenEtAl** (matroid center): given cluster heads pairwise `> 2r`,
//!   decide whether each head's ball `B(head, r)` can be assigned a
//!   *distinct color slot* — a matching between heads and colors where
//!   color `i` has capacity `k_i`;
//! * **Jones** (fair k-center via maximum matching): the same question for
//!   Gonzalez pivot prefixes and a distance threshold `τ`.
//!
//! This crate implements [`hopcroft_karp`] (maximum-cardinality matching
//! in `O(E√V)`) for one-to-one instances, and [`capacitated`] matching
//! (left nodes to colored slots with per-color capacities) which is the
//! form the solvers actually consume. A brute-force reference
//! implementation backs the property tests.

pub mod brute;
pub mod capacitated;
pub mod hopcroft_karp;

pub use capacitated::{max_capacitated_matching, CapacitatedMatching};
pub use hopcroft_karp::{max_bipartite_matching, BipartiteMatching};

//! Hopcroft–Karp maximum-cardinality bipartite matching in `O(E√V)`.

/// Result of a maximum bipartite matching computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BipartiteMatching {
    /// `pair_left[u] = Some(v)` iff left node `u` is matched to right
    /// node `v`.
    pub pair_left: Vec<Option<usize>>,
    /// `pair_right[v] = Some(u)` iff right node `v` is matched to left
    /// node `u`.
    pub pair_right: Vec<Option<usize>>,
    /// Number of matched pairs.
    pub size: usize,
}

const INF: u32 = u32::MAX;

/// Computes a maximum-cardinality matching of the bipartite graph with
/// `n_left` left nodes, `n_right` right nodes and adjacency `adj`
/// (`adj[u]` lists the right neighbours of left node `u`).
///
/// # Panics
/// Panics if `adj.len() != n_left` or any listed neighbour is
/// `>= n_right` — both indicate caller bugs, not recoverable conditions.
pub fn max_bipartite_matching(
    n_left: usize,
    n_right: usize,
    adj: &[Vec<usize>],
) -> BipartiteMatching {
    assert_eq!(adj.len(), n_left, "adjacency size mismatch");
    debug_assert!(
        adj.iter().all(|nb| nb.iter().all(|&v| v < n_right)),
        "right neighbour out of range"
    );

    let mut pair_left: Vec<Option<usize>> = vec![None; n_left];
    let mut pair_right: Vec<Option<usize>> = vec![None; n_right];
    let mut dist: Vec<u32> = vec![INF; n_left];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut size = 0usize;

    // BFS layering from all free left nodes; returns whether an
    // augmenting path exists.
    let bfs = |pair_left: &[Option<usize>],
               pair_right: &[Option<usize>],
               dist: &mut [u32],
               queue: &mut std::collections::VecDeque<usize>|
     -> bool {
        queue.clear();
        for u in 0..n_left {
            if pair_left[u].is_none() {
                dist[u] = 0;
                queue.push_back(u);
            } else {
                dist[u] = INF;
            }
        }
        let mut found = false;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                match pair_right[v] {
                    None => found = true,
                    Some(w) => {
                        if dist[w] == INF {
                            dist[w] = dist[u] + 1;
                            queue.push_back(w);
                        }
                    }
                }
            }
        }
        found
    };

    // DFS along the BFS layers, augmenting when a free right node is hit.
    fn dfs(
        u: usize,
        adj: &[Vec<usize>],
        pair_left: &mut [Option<usize>],
        pair_right: &mut [Option<usize>],
        dist: &mut [u32],
    ) -> bool {
        for i in 0..adj[u].len() {
            let v = adj[u][i];
            let next = pair_right[v];
            let ok = match next {
                None => true,
                Some(w) => dist[w] == dist[u] + 1 && dfs(w, adj, pair_left, pair_right, dist),
            };
            if ok {
                pair_left[u] = Some(v);
                pair_right[v] = Some(u);
                return true;
            }
        }
        dist[u] = INF;
        false
    }

    while bfs(&pair_left, &pair_right, &mut dist, &mut queue) {
        for u in 0..n_left {
            if pair_left[u].is_none() && dfs(u, adj, &mut pair_left, &mut pair_right, &mut dist) {
                size += 1;
            }
        }
    }

    BipartiteMatching {
        pair_left,
        pair_right,
        size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_matching_size;
    use proptest::prelude::*;

    fn check_valid(m: &BipartiteMatching, adj: &[Vec<usize>]) {
        let mut count = 0;
        for (u, p) in m.pair_left.iter().enumerate() {
            if let Some(v) = p {
                assert!(adj[u].contains(v), "matched edge ({u},{v}) not in graph");
                assert_eq!(m.pair_right[*v], Some(u), "pairing inconsistent");
                count += 1;
            }
        }
        assert_eq!(count, m.size);
    }

    #[test]
    fn empty_graph() {
        let m = max_bipartite_matching(0, 0, &[]);
        assert_eq!(m.size, 0);
    }

    #[test]
    fn perfect_matching_on_cycle() {
        // 3x3 cycle-ish graph with a perfect matching.
        let adj = vec![vec![0, 1], vec![1, 2], vec![2, 0]];
        let m = max_bipartite_matching(3, 3, &adj);
        assert_eq!(m.size, 3);
        check_valid(&m, &adj);
    }

    #[test]
    fn bottleneck_graph() {
        // All left nodes only see right node 0: max matching is 1.
        let adj = vec![vec![0], vec![0], vec![0]];
        let m = max_bipartite_matching(3, 2, &adj);
        assert_eq!(m.size, 1);
        check_valid(&m, &adj);
    }

    #[test]
    fn isolated_nodes() {
        let adj = vec![vec![], vec![1], vec![]];
        let m = max_bipartite_matching(3, 2, &adj);
        assert_eq!(m.size, 1);
        assert_eq!(m.pair_left[1], Some(1));
    }

    #[test]
    fn augmenting_path_needed() {
        // Greedy that matches 0->0 must be undone via augmenting path:
        // L0: {0}, L1: {0, 1}. Max matching = 2.
        let adj = vec![vec![0], vec![0, 1]];
        let m = max_bipartite_matching(2, 2, &adj);
        assert_eq!(m.size, 2);
        check_valid(&m, &adj);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn matches_brute_force(
            n_left in 0usize..7,
            n_right in 0usize..7,
            edges in proptest::collection::vec((0usize..7, 0usize..7), 0..20),
        ) {
            let mut adj = vec![Vec::new(); n_left];
            for (u, v) in edges {
                if u < n_left && v < n_right && !adj[u].contains(&v) {
                    adj[u].push(v);
                }
            }
            let m = max_bipartite_matching(n_left, n_right, &adj);
            check_valid(&m, &adj);
            let brute = brute_force_matching_size(n_left, n_right, &adj);
            prop_assert_eq!(m.size, brute);
        }
    }
}

//! Capacitated bipartite matching: left nodes to colors with budgets.
//!
//! This is the exact primitive inside both sequential fair-center
//! solvers: left nodes are cluster heads / pivots, right nodes are the
//! `ℓ` colors, and color `i` may absorb up to `k_i` heads. Conceptually
//! it is maximum matching in the graph where color `i` is exploded into
//! `k_i` copies; implementing the capacities directly avoids the blow-up
//! and keeps augmenting paths short (the right side has only `ℓ` nodes).

/// Result of a capacitated matching computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapacitatedMatching {
    /// `assigned[u] = Some(c)` iff left node `u` is assigned color `c`.
    pub assigned: Vec<Option<usize>>,
    /// Per-color occupancy (`load[c] <= caps[c]`).
    pub load: Vec<usize>,
    /// Number of assigned left nodes.
    pub size: usize,
}

impl CapacitatedMatching {
    /// Whether every left node got a color ("perfect" on the left side).
    pub fn is_left_perfect(&self) -> bool {
        self.size == self.assigned.len()
    }
}

/// Computes a maximum assignment of left nodes to colors where left node
/// `u` may use any color in `adj[u]` and color `c` has capacity `caps[c]`.
///
/// Kuhn's algorithm with capacity-aware augmenting paths: a path may
/// terminate at any color with spare capacity. With `L` left nodes,
/// `ℓ` colors and `E` edges, the cost is `O(L · E)` — tiny in our use
/// (`L ≤ k`, `ℓ ≤` number of colors).
pub fn max_capacitated_matching(caps: &[usize], adj: &[Vec<usize>]) -> CapacitatedMatching {
    let n_left = adj.len();
    let n_colors = caps.len();
    debug_assert!(
        adj.iter().all(|nb| nb.iter().all(|&c| c < n_colors)),
        "color out of range"
    );

    // occupants[c] = left nodes currently assigned to color c.
    let mut occupants: Vec<Vec<usize>> = vec![Vec::new(); n_colors];
    let mut assigned: Vec<Option<usize>> = vec![None; n_left];

    // Depth-first augmentation. `visited` marks colors explored in the
    // current attempt. Returns true if `u` got (re)assigned.
    fn try_assign(
        u: usize,
        adj: &[Vec<usize>],
        caps: &[usize],
        occupants: &mut [Vec<usize>],
        assigned: &mut [Option<usize>],
        visited: &mut [bool],
    ) -> bool {
        for &c in &adj[u] {
            if visited[c] {
                continue;
            }
            visited[c] = true;
            if occupants[c].len() < caps[c] {
                occupants[c].push(u);
                assigned[u] = Some(c);
                return true;
            }
            // Color full: try to relocate one of its occupants.
            for slot in 0..occupants[c].len() {
                let w = occupants[c][slot];
                if try_assign(w, adj, caps, occupants, assigned, visited) {
                    // w moved elsewhere (try_assign pushed w onto its new
                    // color); remove w's stale slot here and take it.
                    let pos = occupants[c]
                        .iter()
                        .position(|&x| x == w)
                        .expect("stale occupant present");
                    occupants[c].swap_remove(pos);
                    occupants[c].push(u);
                    assigned[u] = Some(c);
                    return true;
                }
            }
        }
        false
    }

    let mut size = 0usize;
    for u in 0..n_left {
        let mut visited = vec![false; n_colors];
        if try_assign(u, adj, caps, &mut occupants, &mut assigned, &mut visited) {
            size += 1;
        }
    }

    let load = occupants.iter().map(Vec::len).collect();
    CapacitatedMatching {
        assigned,
        load,
        size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_capacitated_size;
    use proptest::prelude::*;

    fn check_valid(m: &CapacitatedMatching, caps: &[usize], adj: &[Vec<usize>]) {
        let mut load = vec![0usize; caps.len()];
        let mut n = 0;
        for (u, a) in m.assigned.iter().enumerate() {
            if let Some(c) = a {
                assert!(adj[u].contains(c), "assigned color {c} not allowed for {u}");
                load[*c] += 1;
                n += 1;
            }
        }
        assert_eq!(n, m.size);
        assert_eq!(load, m.load);
        for (c, (&l, &cap)) in load.iter().zip(caps).enumerate() {
            assert!(l <= cap, "color {c} over capacity");
        }
    }

    #[test]
    fn trivial_cases() {
        let m = max_capacitated_matching(&[], &[]);
        assert_eq!(m.size, 0);
        let m = max_capacitated_matching(&[2], &[vec![0], vec![0], vec![0]]);
        assert_eq!(m.size, 2);
    }

    #[test]
    fn relocation_needed() {
        // Color caps [1,1]; u0 can use both, u1 only color 0.
        // Greedy might give u0 color 0; augmentation must relocate it.
        let caps = [1usize, 1];
        let adj = vec![vec![0, 1], vec![0]];
        let m = max_capacitated_matching(&caps, &adj);
        assert_eq!(m.size, 2);
        assert_eq!(m.assigned[1], Some(0));
        assert_eq!(m.assigned[0], Some(1));
        check_valid(&m, &caps, &adj);
    }

    #[test]
    fn chain_relocation() {
        // caps [1,1,1]; u0:{0}, u1:{0,1}, u2:{1,2}. Insert in order
        // u1,u2,u0 conceptually — but our insertion order is index order;
        // ensure a length-2 augmenting chain works: u0:{0,1}, u1:{1,2},
        // u2:{0} with caps[all]=1.
        let caps = [1usize, 1, 1];
        let adj = vec![vec![0, 1], vec![1, 2], vec![0]];
        let m = max_capacitated_matching(&caps, &adj);
        assert_eq!(m.size, 3);
        check_valid(&m, &caps, &adj);
    }

    #[test]
    fn infeasible_left_perfect() {
        let caps = [1usize];
        let adj = vec![vec![0], vec![0]];
        let m = max_capacitated_matching(&caps, &adj);
        assert_eq!(m.size, 1);
        assert!(!m.is_left_perfect());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn matches_brute_force(
            caps in proptest::collection::vec(0usize..3, 1..4),
            adj_raw in proptest::collection::vec(
                proptest::collection::vec(0usize..4, 0..4), 0..6),
        ) {
            let n_colors = caps.len();
            let adj: Vec<Vec<usize>> = adj_raw
                .into_iter()
                .map(|nb| {
                    let mut v: Vec<usize> =
                        nb.into_iter().filter(|&c| c < n_colors).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let m = max_capacitated_matching(&caps, &adj);
            check_valid(&m, &caps, &adj);
            let brute = brute_force_capacitated_size(&caps, &adj);
            prop_assert_eq!(m.size, brute);
        }
    }
}

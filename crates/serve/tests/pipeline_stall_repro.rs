//! Regression test for the pipeline-cap stall: a single burst of more
//! requests than `max_pipeline` lands every frame in the connection's
//! assembler in one readiness wake, so once the in-flight cap is hit
//! the remainder can only be routed by the reactor's backlog drain —
//! a level-triggered poll never re-reports a socket with no new bytes.
//! Every request past the cap must still be answered, in order.

use fairsw_serve::{Reply, Request, ServeConfig, Server, TenantConfig, WireVariant};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn raw_frame(req: &Request) -> Vec<u8> {
    let body = req.encode().unwrap();
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

fn read_reply(stream: &mut TcpStream) -> std::io::Result<Reply> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    let mut body = vec![0u8; u32::from_le_bytes(header) as usize];
    stream.read_exact(&mut body)?;
    Ok(Reply::decode(&body).unwrap())
}

#[test]
fn burst_beyond_pipeline_cap_gets_all_replies() {
    let cfg = ServeConfig {
        header_timeout: Duration::from_millis(500),
        idle_timeout: Duration::from_millis(2000),
        ..ServeConfig::default()
    };
    let handle = Server::start("127.0.0.1:0", cfg).unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    let tenant_cfg = TenantConfig::new(
        1000,
        vec![2, 2],
        WireVariant::Fixed {
            dmin: 0.1,
            dmax: 1000.0,
        },
    );
    let mut batch = raw_frame(&Request::Create {
        tenant: "burst".into(),
        config: tenant_cfg,
    });
    const N: usize = 300; // well past max_pipeline = 128
    for i in 0..N {
        batch.extend_from_slice(&raw_frame(&Request::Insert {
            tenant: "burst".into(),
            point: fairsw_metric::Colored::new(
                fairsw_metric::EuclidPoint::new(vec![i as f64, -(i as f64)]),
                (i % 2) as u32,
            ),
        }));
    }
    stream.write_all(&batch).unwrap();

    assert!(
        matches!(read_reply(&mut stream).unwrap(), Reply::Ok),
        "create"
    );
    for i in 0..N {
        match read_reply(&mut stream) {
            Ok(Reply::Ok) => {}
            other => panic!("insert {i}/{N}: {other:?}"),
        }
    }
    handle.shutdown();
}

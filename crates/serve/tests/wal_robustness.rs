//! Decoder-robustness proptests for the WAL: random truncation and
//! single-byte corruption must never panic and must always leave
//! exactly the valid record prefix — on a raw segment, on a
//! `TenantWal`-written log with a torn tail, and on a compacted log.
//!
//! Style follows the snapshot-format proptests in
//! `crates/core/src/snapshot.rs` (96 cases per property).

use fairsw_core::{ParallelismSpec, SlidingWindowClustering};
use fairsw_metric::{Colored, EuclidPoint};
use fairsw_serve::protocol::{TenantConfig, WireVariant};
use fairsw_serve::wal::segment::{
    encode_batch_body, encode_create_body, frame_record, read_segment, segment_name,
};
use fairsw_serve::wal::{build_tenant, read_log, LogCut, TenantWal, WalRecord, WalTuning};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn cp(i: u64) -> Colored<EuclidPoint> {
    Colored::new(
        EuclidPoint::new(vec![i as f64, -0.5 * i as f64]),
        (i % 2) as u32,
    )
}

fn config() -> TenantConfig {
    TenantConfig::new(
        16,
        vec![1, 1],
        WireVariant::Fixed {
            dmin: 1e-3,
            dmax: 1e4,
        },
    )
}

/// A representative log: `Create` followed by batches of varying size.
fn valid_records() -> Vec<WalRecord> {
    let mut records = vec![WalRecord::Create(config())];
    let mut t = 0u64;
    for b in 0..6u64 {
        let points: Vec<_> = (0..3 + b % 4).map(|j| cp(t + j)).collect();
        t += points.len() as u64;
        records.push(WalRecord::Batch {
            start: t - points.len() as u64,
            points,
        });
    }
    records
}

/// Frames `records` into one segment's bytes, returning the byte offset
/// where each frame ends.
fn segment_bytes(records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut ends = Vec::new();
    for r in records {
        let mut body = Vec::new();
        r.encode(&mut body).unwrap();
        bytes.extend_from_slice(&frame_record(&body));
        ends.push(bytes.len());
    }
    (bytes, ends)
}

/// A scratch directory unique to this test process + call.
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fairsw-walprop-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny() -> WalTuning {
    WalTuning {
        segment_bytes: 128,
        compact_bytes: 1 << 20,
    }
}

/// Points applied by replaying `records` (what a rebuilt engine's clock
/// must read).
fn batch_points(records: &[WalRecord]) -> u64 {
    records
        .iter()
        .map(|r| match r {
            WalRecord::Batch { points, .. } => points.len() as u64,
            _ => 0,
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn any_truncation_keeps_exactly_the_intact_frames(frac in 0.0..1.0f64) {
        let originals = valid_records();
        let (bytes, ends) = segment_bytes(&originals);
        let cut = ((bytes.len() as f64) * frac) as usize % bytes.len();
        let (records, valid) = read_segment(&bytes[..cut]);
        // Exactly the frames that fit whole in the prefix survive; the
        // valid prefix ends at the last intact frame boundary.
        let intact = ends.iter().filter(|e| **e <= cut).count();
        prop_assert_eq!(records.len(), intact);
        prop_assert_eq!(valid, if intact == 0 { 0 } else { ends[intact - 1] });
        prop_assert_eq!(&records[..], &originals[..intact]);
    }

    #[test]
    fn single_byte_corruption_never_panics_and_keeps_a_valid_prefix(
        frac in 0.0..1.0f64,
        xor in 1u8..255,
    ) {
        let originals = valid_records();
        let (mut bytes, ends) = segment_bytes(&originals);
        let pos = ((bytes.len() as f64) * frac) as usize % bytes.len();
        bytes[pos] ^= xor;
        // Must return (not panic), and whatever it returns is a prefix
        // of the uncorrupted records: frames before the damaged one all
        // decode, nothing past the damage is ever invented.
        let (records, valid) = read_segment(&bytes);
        let damaged_frame = ends.iter().filter(|e| **e <= pos).count();
        prop_assert!(records.len() >= damaged_frame,
            "frames before the corruption must survive");
        prop_assert!(records.len() <= originals.len());
        prop_assert_eq!(&records[..], &originals[..records.len()]);
        prop_assert!(valid <= bytes.len());
    }

    #[test]
    fn torn_tail_replay_keeps_exactly_the_valid_prefix_and_resumes(
        nbatches in 1usize..16,
        torn in 1usize..48,
    ) {
        let dir = scratch_dir("torn");
        let mut wal = TenantWal::create(&dir, tiny()).unwrap();
        wal.append(&encode_create_body(&config()).unwrap()).unwrap();
        let mut t = 0u64;
        for b in 0..nbatches as u64 {
            let points: Vec<_> = (0..1 + b % 5).map(|j| cp(t + j)).collect();
            wal.append(&encode_batch_body(t, &points).unwrap()).unwrap();
            t += points.len() as u64;
        }
        wal.sync().unwrap();
        drop(wal);
        let (full, _) = read_log(&dir).unwrap();

        // Tear the open segment: chop `torn` bytes off its end (clamped
        // to leave the file non-negative), like a crash mid-append.
        let (last_seq, last_path) = fairsw_serve::wal::segment::list_segments(&dir)
            .unwrap()
            .pop()
            .unwrap();
        let len = std::fs::metadata(&last_path).unwrap().len();
        let keep = len.saturating_sub(torn as u64);
        let f = std::fs::OpenOptions::new().write(true).open(&last_path).unwrap();
        f.set_len(keep).unwrap();
        drop(f);

        let (records, cut) = read_log(&dir).unwrap();
        prop_assert!(records.len() <= full.len());
        prop_assert_eq!(&records[..], &full[..records.len()]);
        prop_assert!(cut.seq <= last_seq);

        // A rebuilt tenant applies exactly the surviving batches — or,
        // if the tear ate the Create record itself, fails cleanly.
        match build_tenant(None, &records, ParallelismSpec::Sequential) {
            Ok(replayed) => {
                prop_assert_eq!(replayed.engine.time(), batch_points(&records));
                prop_assert!(records.iter().any(|r| matches!(r, WalRecord::Create(_))));
            }
            Err(_) => prop_assert!(
                !records.iter().any(|r| matches!(r, WalRecord::Create(_))),
                "replay may only fail when the Create record is gone"
            ),
        }

        // Reopen at the cut and append: the log must keep working, and
        // the new record lands right after the surviving prefix.
        let mut wal = TenantWal::reopen(&dir, tiny(), cut).unwrap();
        let extra: Vec<_> = (0..2).map(cp).collect();
        wal.append(&encode_batch_body(batch_points(&records), &extra).unwrap()).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (resumed, _) = read_log(&dir).unwrap();
        prop_assert_eq!(resumed.len(), records.len() + 1);
        prop_assert_eq!(&resumed[..records.len()], &records[..]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_history_and_the_compacted_log_stays_robust(
        nbefore in 1usize..10,
        nafter in 0usize..6,
        torn in 0usize..24,
    ) {
        let dir = scratch_dir("compact");
        let mut wal = TenantWal::create(&dir, tiny()).unwrap();
        wal.append(&encode_create_body(&config()).unwrap()).unwrap();
        let mut t = 0u64;
        for _ in 0..nbefore {
            let points: Vec<_> = (0..3).map(|j| cp(t + j)).collect();
            wal.append(&encode_batch_body(t, &points).unwrap()).unwrap();
            t += 3;
        }
        wal.compact().unwrap();
        prop_assert_eq!(wal.segments(), 1, "compaction must leave one segment");
        // The server reseeds a compacted log with its Create record so
        // it stays self-describing; mirror that here.
        wal.append(&encode_create_body(&config()).unwrap()).unwrap();
        let mut expected = vec![WalRecord::Create(config())];
        for _ in 0..nafter {
            let points: Vec<_> = (0..2).map(|j| cp(t + j)).collect();
            wal.append(&encode_batch_body(t, &points).unwrap()).unwrap();
            expected.push(WalRecord::Batch { start: t, points });
            t += 2;
        }
        wal.sync().unwrap();
        drop(wal);

        // Only post-compaction records remain...
        let (records, _) = read_log(&dir).unwrap();
        prop_assert_eq!(&records[..], &expected[..]);

        // ...and a compacted segment torn at the tail degrades exactly
        // like any other: intact frame prefix, no panic.
        let (_, last_path) = fairsw_serve::wal::segment::list_segments(&dir)
            .unwrap()
            .pop()
            .unwrap();
        let bytes = std::fs::read(&last_path).unwrap();
        let (whole, _) = read_segment(&bytes);
        let keep = bytes.len().saturating_sub(torn);
        let (torn_records, valid) = read_segment(&bytes[..keep]);
        prop_assert!(valid <= keep);
        prop_assert_eq!(&torn_records[..], &whole[..torn_records.len()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_records_roundtrip_through_frame_and_segment(
        start in 0u64..(1u64 << 48),
        pts in proptest::collection::vec((-32_768i32..32_768, 0u32..4), 0..20),
    ) {
        let points: Vec<_> = pts
            .iter()
            .map(|(x, c)| Colored::new(EuclidPoint::new(vec![*x as f64, 0.25 * *x as f64]), *c))
            .collect();
        let record = WalRecord::Batch { start, points };
        let mut body = Vec::new();
        record.encode(&mut body).unwrap();
        let mut input = &body[..];
        let decoded = WalRecord::decode(&mut input).unwrap();
        prop_assert!(input.is_empty(), "decode must consume the whole body");
        prop_assert_eq!(&decoded, &record);
        let framed = frame_record(&body);
        let (records, valid) = read_segment(&framed);
        prop_assert_eq!(valid, framed.len());
        prop_assert_eq!(records, vec![record]);
    }

    #[test]
    fn snapshot_and_delete_records_roundtrip(blob in proptest::collection::vec(0u8..255, 0..256)) {
        for record in [WalRecord::Snapshot(blob.clone()), WalRecord::Delete, WalRecord::Create(config())] {
            let mut body = Vec::new();
            record.encode(&mut body).unwrap();
            let mut input = &body[..];
            prop_assert_eq!(&WalRecord::decode(&mut input).unwrap(), &record);
            prop_assert!(input.is_empty());
        }
    }
}

/// Not a proptest, but it anchors the constants the properties rely on:
/// an absent directory is an empty log at the canonical first cut.
#[test]
fn absent_log_directory_is_an_empty_log() {
    let dir = scratch_dir("absent");
    let (records, cut) = read_log(&dir).unwrap();
    assert!(records.is_empty());
    assert_eq!(cut, LogCut { seq: 1, offset: 0 });
    // And the segment naming the cut refers to is the one `create`
    // would open first.
    assert_eq!(segment_name(cut.seq), "00000001.wal");
}

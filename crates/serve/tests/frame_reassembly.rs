//! Proptests for the event-driven front-end's frame reassembly: the
//! [`FrameAssembler`] must recover the exact frame sequence from any
//! chunking of the byte stream (1-byte drips included), pipelined
//! back-to-back frames over a real socket must answer in request order
//! with replies identical to a strict request/reply client, and
//! corrupted or truncated input must never panic.

use fairsw_metric::{Colored, EuclidPoint};
use fairsw_serve::loadgen::Client;
use fairsw_serve::protocol::{
    FrameAssembler, Reply, Request, TenantConfig, WireVariant, MAX_FRAME,
};
use fairsw_serve::server::{ServeConfig, Server};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;

fn tenant_cfg() -> TenantConfig {
    TenantConfig::new(
        64,
        vec![1, 1],
        WireVariant::Fixed {
            dmin: 0.01,
            dmax: 1e4,
        },
    )
}

/// A request against the fixed tenant `t` (plus an undecodable body, so
/// the mix also exercises the `BAD_REQUEST` path through the pipeline).
fn req_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        (-1000i32..1000, 0u32..2).prop_map(|(x, c)| Request::Insert {
            tenant: "t".into(),
            point: Colored::new(EuclidPoint::new(vec![x as f64]), c),
        }),
        Just(Request::Query { tenant: "t".into() }),
        Just(Request::Stats { tenant: "t".into() }),
    ]
}

/// One wire frame (length prefix + body).
fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Splits `stream` into chunks cycling through `sizes` and pushes each
/// into the assembler, draining complete frames as they form.
fn reassemble(stream: &[u8], sizes: &[usize]) -> Vec<Vec<u8>> {
    let mut asm = FrameAssembler::new();
    let mut frames = Vec::new();
    let mut at = 0;
    let mut i = 0;
    while at < stream.len() {
        let n = sizes[i % sizes.len()].min(stream.len() - at);
        i += 1;
        asm.push(&stream[at..at + n]);
        at += n;
        while let Some(body) = asm.next_frame().expect("valid stream never poisons") {
            frames.push(body);
        }
    }
    frames
}

/// Scrubs service-side nondeterminism (latency percentiles, connection
/// counters, throughput) so replies from different runs compare.
fn scrubbed(reply: Reply) -> Reply {
    match reply {
        Reply::Stats(s) => Reply::Stats(s.deterministic()),
        other => other,
    }
}

/// Reads one reply frame from a blocking socket.
fn read_reply(stream: &mut TcpStream) -> Reply {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header).unwrap();
    let mut body = vec![0u8; u32::from_le_bytes(header) as usize];
    stream.read_exact(&mut body).unwrap();
    Reply::decode(&body).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Any chunking of a frame stream — 1-byte drips, chunks spanning
    // frame boundaries, whole-stream pushes — reassembles the exact
    // frame sequence.
    #[test]
    fn arbitrary_chunking_reassembles_the_exact_frames(
        reqs in proptest::collection::vec(req_strategy(), 1..24),
        sizes in proptest::collection::vec(1usize..9, 1..32),
    ) {
        let bodies: Vec<Vec<u8>> = reqs.iter().map(|r| r.encode().unwrap()).collect();
        let stream: Vec<u8> = bodies.iter().flat_map(|b| frame(b)).collect();
        let got = reassemble(&stream, &sizes);
        prop_assert_eq!(&got, &bodies);
        // The reassembled bodies decode to the original requests.
        for (body, want) in got.iter().zip(&reqs) {
            prop_assert_eq!(&Request::decode(body).unwrap(), want);
        }
    }

    // Random garbage, chunked randomly, never panics the assembler:
    // every call returns `Ok(frame)`, `Ok(None)` or a framing error,
    // and after an error the assembler stays poisoned.
    #[test]
    fn corruption_and_truncation_never_panic(
        bytes in proptest::collection::vec(0u8..255, 0..512),
        sizes in proptest::collection::vec(1usize..17, 1..16),
    ) {
        let mut asm = FrameAssembler::new();
        let mut at = 0;
        let mut i = 0;
        let mut poisoned = false;
        while at < bytes.len() {
            let n = sizes[i % sizes.len()].min(bytes.len() - at);
            i += 1;
            asm.push(&bytes[at..at + n]);
            at += n;
            loop {
                match asm.next_frame() {
                    Ok(Some(body)) => prop_assert!(body.len() <= MAX_FRAME),
                    Ok(None) => break,
                    Err(_) => {
                        poisoned = true;
                        break;
                    }
                }
            }
            if poisoned {
                // Poison is permanent: every later call errors too.
                prop_assert!(asm.next_frame().is_err());
                break;
            }
        }
    }

    // An oversized length prefix poisons the assembler instead of
    // allocating: the frame before it still comes out, nothing after.
    #[test]
    fn oversized_prefix_poisons_after_the_last_good_frame(
        body in proptest::collection::vec(0u8..255, 0..64),
        oversize in (MAX_FRAME as u32 + 1)..u32::MAX,
    ) {
        let mut stream = frame(&body);
        stream.extend_from_slice(&oversize.to_le_bytes());
        let mut asm = FrameAssembler::new();
        asm.push(&stream);
        prop_assert_eq!(asm.next_frame().unwrap(), Some(body));
        prop_assert!(asm.next_frame().is_err());
        prop_assert!(asm.next_frame().is_err());
    }
}

proptest! {
    // End-to-end cases boot two servers each; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The same request sequence, (a) pipelined back-to-back in
    // arbitrary chunks over one raw socket and (b) strict
    // request/reply via the ordinary client against a fresh server,
    // produces identical replies in request order.
    #[test]
    fn pipelined_chunked_requests_match_the_strict_client(
        reqs in proptest::collection::vec(req_strategy(), 1..16),
        sizes in proptest::collection::vec(1usize..64, 1..8),
    ) {
        // (a) pipelined over one socket, dripped in chunks.
        let handle = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
        let mut sock = TcpStream::connect(handle.local_addr()).unwrap();
        let mut stream = frame(
            &Request::Create { tenant: "t".into(), config: tenant_cfg() }.encode().unwrap(),
        );
        for r in &reqs {
            stream.extend_from_slice(&frame(&r.encode().unwrap()));
        }
        let mut at = 0;
        let mut i = 0;
        while at < stream.len() {
            let n = sizes[i % sizes.len()].min(stream.len() - at);
            i += 1;
            sock.write_all(&stream[at..at + n]).unwrap();
            at += n;
        }
        prop_assert_eq!(read_reply(&mut sock), Reply::Ok, "create");
        let piped: Vec<Reply> = reqs.iter().map(|_| scrubbed(read_reply(&mut sock))).collect();
        handle.shutdown();

        // (b) strict request/reply against a fresh server.
        let handle = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        prop_assert_eq!(client.create("t", &tenant_cfg()).unwrap(), Reply::Ok);
        let strict: Vec<Reply> = reqs
            .iter()
            .map(|r| scrubbed(client.call(r).unwrap()))
            .collect();
        handle.shutdown();

        for (i, (got, want)) in piped.iter().zip(&strict).enumerate() {
            prop_assert_eq!(
                got.encode().unwrap(),
                want.encode().unwrap(),
                "request {}: pipelined reply diverged ({:?} vs {:?})",
                i, got, want
            );
        }
    }
}

//! Differential suite for the serving layer: every reply from the TCP
//! server must be **byte-identical** to the answer of an in-process
//! sequential oracle engine fed the same stream.
//!
//! Identity is enforced at the encoding level: two replies are compared
//! by their wire bytes, and the wire writes `f64`s as raw IEEE bits, so
//! byte equality *is* bit-identity of guesses, radii, centers and
//! extras. The suite covers all five variants, single and batched
//! ingest (with batch boundaries that do not align with the server's
//! flush threshold), several tenants concurrently across shard threads,
//! engine-side parallelism (the tenants honor `FAIRSW_THREADS`, so the
//! CI matrix drives 1- and 4-thread pools through this file), and the
//! crash-recovery path: kill after `CHECKPOINT`, restart from the
//! spool, resume bit-identically.

use fairsw_core::{ParallelismSpec, SlidingWindowClustering, WindowEngine};
use fairsw_metric::{Colored, EuclidPoint, Euclidean, Relaxed};
use fairsw_serve::loadgen::Client;
use fairsw_serve::protocol::{ErrorKind, Reply, TenantConfig, WireStats, WireVariant};
use fairsw_serve::server::{ServeConfig, Server};
use fairsw_serve::WalTuning;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

const WINDOW: usize = 40;
const DMIN: f64 = 1e-3;
const DMAX: f64 = 1e4;

/// A scratch directory unique to this test process + call.
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fairsw-serve-test-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        shards: 2,
        // Small flush threshold so size-triggered flushes interleave
        // with tick-triggered ones mid-test.
        flush_batch: 16,
        queue_depth: 64,
        tick: Duration::from_millis(5),
        spool_dir: None,
        parallelism: ParallelismSpec::Auto, // honors FAIRSW_THREADS
        ..ServeConfig::default()
    }
}

fn cp(x: f64, c: u32) -> Colored<EuclidPoint> {
    Colored::new(EuclidPoint::new(vec![x, -0.5 * x]), c)
}

/// Three windows of two-cluster data with occasional far spikes (the
/// robust variant gets genuine outliers) and a drift phase.
fn stream() -> Vec<Colored<EuclidPoint>> {
    let n = WINDOW as u64;
    (0..3 * n)
        .map(|i| {
            if i % 37 == 0 {
                cp(6e3 + i as f64, (i % 3 == 0) as u32)
            } else {
                let base = if i % 2 == 0 { 0.0 } else { 300.0 };
                cp(
                    base + (i as f64 * 0.618_033_988_7).fract() * 4.0,
                    (i % 3 == 0) as u32,
                )
            }
        })
        .chain((0..n).map(|i| {
            cp(
                150.0 + (i as f64 * 0.324_717_957_2).fract() * 2.0,
                (i % 3 == 0) as u32,
            )
        }))
        .collect()
}

/// A high-dimensional embedding stream (unit-norm, drifting clusters,
/// two colors) for the projecting-tenant lanes. Same length as
/// [`stream`] so the two can be driven through shared chunk loops.
fn embedding_stream(dim: usize) -> Vec<Colored<EuclidPoint>> {
    let params = fairsw_datasets::EmbeddingDriftParams {
        num_colors: 2,
        sigma: 0.05,
        drift: std::f64::consts::TAU / 500.0,
    };
    fairsw_datasets::embedding_drift(4 * WINDOW, dim, params, 0xfa15).points
}

/// A fixed-variant config with a JL ingest projection (unit-norm
/// embeddings keep pairwise distances in (0, 2]; the guess range covers
/// the projected stream's distortion envelope comfortably).
fn projecting_config(out_dim: usize, sparse: bool) -> TenantConfig {
    TenantConfig::new(
        WINDOW,
        vec![2, 1],
        WireVariant::Fixed {
            dmin: 1e-4,
            dmax: 16.0,
        },
    )
    .with_projection(out_dim, 0x9e37_79b9, sparse)
}

fn variants() -> Vec<(&'static str, TenantConfig)> {
    let base = |variant| TenantConfig::new(WINDOW, vec![2, 1], variant);
    vec![
        (
            "fixed",
            base(WireVariant::Fixed {
                dmin: DMIN,
                dmax: DMAX,
            }),
        ),
        ("oblivious", base(WireVariant::Oblivious)),
        (
            "compact",
            base(WireVariant::Compact {
                dmin: DMIN,
                dmax: DMAX,
            }),
        ),
        (
            "robust",
            base(WireVariant::Robust {
                z: 2,
                dmin: DMIN,
                dmax: DMAX,
            }),
        ),
        (
            "matroid",
            base(WireVariant::Matroid {
                dmin: DMIN,
                dmax: DMAX,
            }),
        ),
    ]
}

/// Builds the sequential oracle for a tenant config. A projecting
/// config gets an *engine-level* projection: the server projects on the
/// shard before the WAL while the oracle projects inside the engine,
/// and the two must still agree bit-for-bit (same seed, same matrix,
/// same kernel).
fn oracle_for(config: &TenantConfig) -> WindowEngine<Relaxed<Euclidean>> {
    let engine = config
        .build_engine()
        .expect("valid oracle config")
        .with_parallelism(ParallelismSpec::Sequential);
    match config.projection {
        Some(p) => engine.with_projection(p.out_dim, p.seed, p.sparse),
        None => engine,
    }
}

/// Byte-level reply comparison (wire bytes carry raw f64 bits, so this
/// is the bit-identity the acceptance criterion demands).
fn assert_reply_bytes(ctx: &str, got: &Reply, want: &Reply) {
    assert_eq!(
        got.encode().unwrap(),
        want.encode().unwrap(),
        "{ctx}: reply diverged from oracle\n got: {got:?}\nwant: {want:?}"
    );
}

/// The deterministic part of the stats the oracle predicts.
fn expected_stats(
    oracle: &WindowEngine<Relaxed<Euclidean>>,
    variant_code: u8,
    points_total: u64,
) -> WireStats {
    let mem = oracle.memory_stats();
    WireStats {
        time: oracle.time(),
        window: oracle.window_size() as u64,
        stored_points: mem.stored_points() as u64,
        unique_points: mem.unique_points as u64,
        payload_bytes: mem.payload_bytes as u64,
        resident_bytes: mem.resident_bytes() as u64,
        num_guesses: mem.num_guesses() as u64,
        variant: variant_code,
        points_total,
        buffered: 0,
        points_per_sec: 0.0,
        query_p50_us: 0.0,
        query_p90_us: 0.0,
        query_p99_us: 0.0,
        // Durability bookkeeping is service-side: blanked by
        // `deterministic()` on the server reply, zero in the oracle.
        wal_bytes: 0,
        wal_segments: 0,
        wal_unsynced_bytes: 0,
        wal_fsync_lag_us: 0.0,
        followers: 0,
        repl_lag: 0,
        query_cache_hits: 0,
        query_cache_misses: 0,
        conns_open: 0,
        conns_accepted: 0,
        conns_reaped: 0,
        // Filled from the oracle's engine-level projection when the
        // tenant projects (the timing field is always blanked).
        proj_in_dim: oracle
            .projection()
            .map_or(0, |p| p.in_dim().unwrap_or(0) as u64),
        proj_out_dim: oracle.projection().map_or(0, |p| p.out_dim() as u64),
        proj_ns_per_point: 0.0,
    }
}

fn check_stats(ctx: &str, client: &mut Client, tenant: &str, want: WireStats) {
    match client.stats(tenant).expect("stats reply") {
        Reply::Stats(got) => {
            assert_reply_bytes(
                &format!("{ctx}/stats"),
                &Reply::Stats(got.deterministic()),
                &Reply::Stats(want),
            );
        }
        other => panic!("{ctx}: unexpected stats reply {other:?}"),
    }
}

/// Drives one tenant against its oracle, comparing QUERY and STATS at
/// three mid-stream checkpoints plus the end. `batched = None` streams
/// per-point `INSERT`s; `Some(b)` uses `INSERT_BATCH` chunks of `b`
/// (chosen to misalign with the server's flush threshold).
fn drive_tenant(
    addr: std::net::SocketAddr,
    tenant: &str,
    config: &TenantConfig,
    points: &[Colored<EuclidPoint>],
    batched: Option<usize>,
) {
    let variant_code = config.variant.code();
    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(
        client.create(tenant, config).expect("create reply"),
        Reply::Ok,
        "{tenant}: create"
    );
    let mut oracle = oracle_for(config);
    let checkpoints = [points.len() / 3, 2 * points.len() / 3, points.len()];
    let mut sent = 0usize;
    let chunks: Vec<&[Colored<EuclidPoint>]> = match batched {
        Some(b) => points.chunks(b).collect(),
        None => points.chunks(1).collect(),
    };
    for chunk in chunks {
        let reply = match (batched, chunk) {
            (None, [p]) => client.insert(tenant, p).expect("insert reply"),
            _ => client.insert_batch(tenant, chunk).expect("batch reply"),
        };
        assert_eq!(reply, Reply::Ok, "{tenant}: ingest ack at {sent}");
        for p in chunk {
            oracle.insert(p.clone());
        }
        sent += chunk.len();
        if checkpoints.contains(&sent) {
            let ctx = format!("{tenant} at t={sent}");
            let got = client.query(tenant).expect("query reply");
            assert_reply_bytes(&ctx, &got, &Reply::from_query(&oracle.query()));
            check_stats(
                &ctx,
                &mut client,
                tenant,
                expected_stats(&oracle, variant_code, sent as u64),
            );
        }
    }
}

#[test]
fn every_variant_single_and_batched_matches_the_oracle_bit_for_bit() {
    let handle = Server::start("127.0.0.1:0", serve_config()).expect("server starts");
    let addr = handle.local_addr();
    let points = stream();

    // 10 tenants (5 variants × {single, batched}) driven concurrently
    // from 10 connections across 2 shard threads. Batch size 17
    // deliberately misaligns with the server's flush threshold of 16.
    std::thread::scope(|scope| {
        for (name, config) in variants() {
            let points = &points;
            let single = format!("{name}-single");
            let batch = format!("{name}-batched");
            let cfg2 = config.clone();
            scope.spawn(move || drive_tenant(addr, &single, &config, points, None));
            scope.spawn(move || drive_tenant(addr, &batch, &cfg2, points, Some(17)));
        }
    });
    handle.shutdown();
}

#[test]
fn projecting_tenants_match_an_engine_level_oracle_bit_for_bit() {
    let handle = Server::start("127.0.0.1:0", serve_config()).expect("server starts");
    let addr = handle.local_addr();
    let points = embedding_stream(48);

    // Dense and sparse projections, single and batched ingest: the
    // shard projects before the WAL, the oracle projects inside the
    // engine, and every QUERY/STATS reply must still be byte-identical.
    std::thread::scope(|scope| {
        for (name, sparse) in [("dense", false), ("sparse", true)] {
            let points = &points;
            let config = projecting_config(6, sparse);
            let cfg2 = config.clone();
            let single = format!("proj-{name}-single");
            let batch = format!("proj-{name}-batched");
            scope.spawn(move || drive_tenant(addr, &single, &config, points, None));
            scope.spawn(move || drive_tenant(addr, &batch, &cfg2, points, Some(17)));
        }
    });

    // The raw STATS surface the projection dims and a live per-point
    // timing (the deterministic() comparison above blanks the latter).
    let mut client = Client::connect(addr).expect("connect");
    match client.stats("proj-dense-single").expect("stats reply") {
        Reply::Stats(s) => {
            assert_eq!(s.proj_in_dim, 48);
            assert_eq!(s.proj_out_dim, 6);
            assert!(s.proj_ns_per_point > 0.0, "projection timing must be live");
        }
        other => panic!("unexpected stats reply {other:?}"),
    }

    // A dimension change mid-stream is refused without touching state.
    let config = projecting_config(6, false);
    assert_eq!(client.create("proj-dim", &config).unwrap(), Reply::Ok);
    assert_eq!(
        client.insert_batch("proj-dim", &points[..3]).unwrap(),
        Reply::Ok
    );
    assert!(matches!(
        client.insert("proj-dim", &cp(1.0, 0)).unwrap(),
        Reply::Error(ErrorKind::BadRequest, _)
    ));
    handle.shutdown();
}

#[test]
fn checkpoint_kill_restart_resumes_bit_identically() {
    let spool = scratch_dir("spool");
    let mk_cfg = || ServeConfig {
        spool_dir: Some(spool.clone()),
        ..serve_config()
    };
    let points = stream();
    let half = points.len() / 2;
    // A projecting tenant rides along: its spool snapshot must carry
    // the projection spec so the restart keeps projecting new ingest.
    let emb = embedding_stream(32);
    let proj_config = projecting_config(5, true);

    // Three fixed tenants (snapshot-capable) with distinct configs plus
    // one oblivious tenant (not snapshot-capable, reported as skipped).
    let fixed_tenants: Vec<(String, TenantConfig)> = (0..3)
        .map(|i| {
            let caps = if i == 0 { vec![2, 1] } else { vec![1, 1] };
            let window = WINDOW + 10 * i;
            (
                format!("ckpt-{i}"),
                TenantConfig::new(
                    window,
                    caps,
                    WireVariant::Fixed {
                        dmin: DMIN,
                        dmax: DMAX,
                    },
                ),
            )
        })
        .collect();

    {
        let handle = Server::start("127.0.0.1:0", mk_cfg()).expect("server starts");
        let mut client = Client::connect(handle.local_addr()).expect("connect");
        for (name, config) in &fixed_tenants {
            assert_eq!(client.create(name, config).unwrap(), Reply::Ok);
            assert_eq!(
                client.insert_batch(name, &points[..half]).unwrap(),
                Reply::Ok
            );
        }
        assert_eq!(
            client
                .create(
                    "ephemeral",
                    &TenantConfig::new(WINDOW, vec![2, 1], WireVariant::Oblivious)
                )
                .unwrap(),
            Reply::Ok
        );
        assert_eq!(
            client.insert_batch("ephemeral", &points[..half]).unwrap(),
            Reply::Ok
        );
        assert_eq!(client.create("ckpt-proj", &proj_config).unwrap(), Reply::Ok);
        assert_eq!(
            client.insert_batch("ckpt-proj", &emb[..half]).unwrap(),
            Reply::Ok
        );
        // Checkpoint-all: 4 snapshots written, the oblivious tenant
        // skipped (no snapshot support).
        match client.checkpoint("").unwrap() {
            Reply::Checkpointed { written, skipped } => {
                assert_eq!((written, skipped), (4, 1));
            }
            other => panic!("unexpected checkpoint reply {other:?}"),
        }
        // Per-tenant checkpoint of an unsupported variant is an error.
        assert!(matches!(
            client.checkpoint("ephemeral").unwrap(),
            Reply::Error(ErrorKind::Unsupported, _)
        ));
        // Kill: no graceful per-tenant teardown, exactly like a crash
        // after the spool write.
        handle.shutdown();
    }

    // Restart from the spool; continue the second half and compare
    // against oracles that saw the whole stream uninterrupted.
    let handle = Server::start("127.0.0.1:0", mk_cfg()).expect("server restarts");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    // The non-checkpointed tenant did not survive, as a crash demands.
    assert!(matches!(
        client.query("ephemeral").unwrap(),
        Reply::Error(ErrorKind::NoSuchTenant, _)
    ));
    for (name, config) in &fixed_tenants {
        let mut oracle = oracle_for(config);
        for p in &points {
            oracle.insert(p.clone());
        }
        assert_eq!(
            client.insert_batch(name, &points[half..]).unwrap(),
            Reply::Ok,
            "{name}: resume ingest"
        );
        let got = client.query(name).expect("query reply");
        assert_reply_bytes(
            &format!("{name} after restart"),
            &got,
            &Reply::from_query(&oracle.query()),
        );
        check_stats(
            &format!("{name} after restart"),
            &mut client,
            name,
            // points_total restarts from the snapshot's arrival clock.
            expected_stats(&oracle, 0, points.len() as u64),
        );
        // The restarted server's cache answers the repeat — still
        // byte-identical to the recompute above.
        let again = client.query(name).expect("repeat query reply");
        assert_reply_bytes(&format!("{name} cached repeat after restart"), &again, &got);
    }
    // The projecting tenant resumes from its spool snapshot (restored
    // without its config — the spec rode the spool header) and keeps
    // projecting the second half bit-identically.
    {
        let mut oracle = oracle_for(&proj_config);
        for p in &emb {
            oracle.insert(p.clone());
        }
        assert_eq!(
            client.insert_batch("ckpt-proj", &emb[half..]).unwrap(),
            Reply::Ok,
            "ckpt-proj: resume ingest"
        );
        let got = client.query("ckpt-proj").expect("query reply");
        assert_reply_bytes(
            "ckpt-proj after restart",
            &got,
            &Reply::from_query(&oracle.query()),
        );
        match client.stats("ckpt-proj").expect("stats reply") {
            Reply::Stats(s) => {
                assert_eq!(s.proj_in_dim, 32, "restored spec must keep projecting");
                assert_eq!(s.proj_out_dim, 5);
            }
            other => panic!("unexpected stats reply {other:?}"),
        }
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn read_heavy_mix_hits_the_cache_and_stays_bit_identical() {
    // The result-cache lane: a 95/5 query/ingest mix over every variant.
    // Each insert chunk is followed by 19 repeat queries — the first
    // recomputes (cache miss), the rest are answered from the cache on
    // the connection threads — and every single one must be
    // byte-identical to a cold sequential oracle fed the same prefix.
    let handle = Server::start("127.0.0.1:0", serve_config()).expect("server starts");
    let addr = handle.local_addr();
    let points = stream();

    std::thread::scope(|scope| {
        for (name, config) in variants() {
            let points = &points;
            let tenant = format!("{name}-readheavy");
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                assert_eq!(
                    client.create(&tenant, &config).unwrap(),
                    Reply::Ok,
                    "{tenant}: create"
                );
                let mut oracle = oracle_for(&config);
                // Chunk size 8 stays under the flush threshold of 16, so
                // tick-driven flushes interleave with the queries.
                for (ci, chunk) in points.chunks(8).enumerate() {
                    assert_eq!(
                        client.insert_batch(&tenant, chunk).unwrap(),
                        Reply::Ok,
                        "{tenant}: ingest chunk {ci}"
                    );
                    for p in chunk {
                        oracle.insert(p.clone());
                    }
                    let want = Reply::from_query(&oracle.query());
                    for rep in 0..19 {
                        let got = client.query(&tenant).expect("query reply");
                        assert_reply_bytes(
                            &format!("{tenant} chunk {ci} repeat {rep}"),
                            &got,
                            &want,
                        );
                    }
                }
            });
        }
    });

    // The raw (non-deterministic()) STATS carry the cache counters: a
    // repeat-dominated mix must be served mostly from the cache.
    let mut client = Client::connect(addr).expect("connect");
    match client.stats("fixed-readheavy").expect("stats reply") {
        Reply::Stats(s) => {
            assert!(s.query_cache_misses > 0, "first queries must miss");
            assert!(
                s.query_cache_hits > s.query_cache_misses,
                "a 95/5 mix must be hit-dominated: {} hits, {} misses",
                s.query_cache_hits,
                s.query_cache_misses
            );
        }
        other => panic!("unexpected stats reply {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn delete_then_recreate_reuses_a_reset_engine_exactly() {
    let handle = Server::start("127.0.0.1:0", serve_config()).expect("server starts");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let points = stream();
    let (name, config) = &variants()[0]; // fixed
    let tenant = format!("reuse-{name}");

    // First life: stream everything, then delete (parks a reset engine).
    assert_eq!(client.create(&tenant, config).unwrap(), Reply::Ok);
    assert_eq!(client.insert_batch(&tenant, &points).unwrap(), Reply::Ok);
    assert_eq!(client.delete(&tenant).unwrap(), Reply::Ok);

    // Second life under the same config: must answer exactly like a
    // fresh engine fed only the new (shorter, different) stream.
    let second: Vec<_> = points.iter().take(70).cloned().collect();
    assert_eq!(client.create(&tenant, config).unwrap(), Reply::Ok);
    assert_eq!(client.insert_batch(&tenant, &second).unwrap(), Reply::Ok);
    let mut oracle = oracle_for(config);
    for p in &second {
        oracle.insert(p.clone());
    }
    let got = client.query(&tenant).expect("query reply");
    assert_reply_bytes(
        "reuse second life",
        &got,
        &Reply::from_query(&oracle.query()),
    );
    check_stats(
        "reuse second life",
        &mut client,
        &tenant,
        expected_stats(&oracle, config.variant.code(), second.len() as u64),
    );
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Durability lanes: kill -9 mid-ingest, restart from the WAL; kill the
// leader, promote a hot standby. Both enforce the durable-prefix
// contract — the survivor answers byte-identically to an oracle fed
// exactly the recovered prefix, and loses at most one unsynced batch.
// ---------------------------------------------------------------------------

/// Tiny WAL thresholds so a 160-point stream exercises segment
/// rotation *and* snapshot compaction mid-test.
const SEGMENT_BYTES: u64 = 512;
const COMPACT_BYTES: u64 = 2048;

/// Spawns a real `fairsw-served` subprocess (the thing we can
/// `SIGKILL`) on an ephemeral port and waits for its bound address.
fn spawn_served(dir: &Path, extra: &[String]) -> (std::process::Child, std::net::SocketAddr) {
    std::fs::create_dir_all(dir).expect("create served dir");
    let port_file = dir.join("addr.port");
    let _ = std::fs::remove_file(&port_file);
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_fairsw-served"))
        .args(["--addr", "127.0.0.1:0", "--shards", "2"])
        .args(["--flush-batch", "16", "--tick-ms", "5"])
        .arg("--port-file")
        .arg(&port_file)
        .args(extra)
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn fairsw-served");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            if let Ok(addr) = s.trim().parse() {
                return (child, addr);
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("fairsw-served exited before binding: {status}");
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for fairsw-served to bind"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Durability flags for one server rooted at `dir`.
fn wal_args(dir: &Path) -> Vec<String> {
    vec![
        "--spool".into(),
        dir.join("spool").display().to_string(),
        "--wal".into(),
        dir.join("wal").display().to_string(),
        "--wal-segment-bytes".into(),
        SEGMENT_BYTES.to_string(),
        "--wal-compact-bytes".into(),
        COMPACT_BYTES.to_string(),
    ]
}

/// One snapshot-capable tenant (compaction folds its WAL into the
/// spool), one oblivious tenant (the WAL is its only durability), and
/// one projecting tenant (its WAL and snapshots hold projected points;
/// recovery must keep projecting). Every tenant carries its own stream
/// of identical length, so the ingest loops chunk by index.
fn wal_tenants() -> Vec<(&'static str, TenantConfig, Vec<Colored<EuclidPoint>>)> {
    vec![
        (
            "wal-fixed",
            TenantConfig::new(
                WINDOW,
                vec![2, 1],
                WireVariant::Fixed {
                    dmin: DMIN,
                    dmax: DMAX,
                },
            ),
            stream(),
        ),
        (
            "wal-obliv",
            TenantConfig::new(WINDOW, vec![2, 1], WireVariant::Oblivious),
            stream(),
        ),
        (
            "wal-proj",
            projecting_config(4, false),
            embedding_stream(24),
        ),
    ]
}

/// Recovered point count for `tenant`, with the replay invariant that
/// nothing is left buffered.
fn durable_points(client: &mut Client, tenant: &str) -> usize {
    match client.stats(tenant).expect("stats reply") {
        Reply::Stats(s) => {
            assert_eq!(s.buffered, 0, "{tenant}: replay must leave no buffer");
            assert_eq!(s.time, s.points_total, "{tenant}: replay must be applied");
            s.points_total as usize
        }
        other => panic!("{tenant}: unexpected stats reply {other:?}"),
    }
}

/// Verifies the durable-prefix contract for one tenant on a recovered
/// server, then streams the rest of `points` and verifies full-stream
/// identity: the survivor keeps serving, bit-for-bit.
fn verify_recovered_tenant(
    client: &mut Client,
    tenant: &str,
    config: &TenantConfig,
    points: &[Colored<EuclidPoint>],
    acked: usize,
    batch: usize,
) {
    let durable = durable_points(client, tenant);
    assert!(
        durable >= acked,
        "{tenant}: lost acked points ({acked} acked, {durable} recovered)"
    );
    assert!(
        durable - acked <= batch,
        "{tenant}: recovered more than the one in-flight batch past the acks \
         ({acked} acked, {durable} recovered, batch {batch})"
    );
    assert!(durable <= points.len());
    let mut oracle = oracle_for(config);
    for p in &points[..durable] {
        oracle.insert(p.clone());
    }
    let got = client.query(tenant).expect("query reply");
    assert_reply_bytes(
        &format!("{tenant} durable prefix t={durable}"),
        &got,
        &Reply::from_query(&oracle.query()),
    );
    // A recovered server holds only already-projected WAL records, so it
    // rediscovers the projection input dimension from the next raw
    // insert; until then STATS report it as 0.
    let mut want = expected_stats(&oracle, config.variant.code(), durable as u64);
    want.proj_in_dim = 0;
    check_stats(&format!("{tenant} durable prefix"), client, tenant, want);
    // Resume the stream where the durable prefix ends.
    assert_eq!(
        client.insert_batch(tenant, &points[durable..]).unwrap(),
        Reply::Ok,
        "{tenant}: resume ingest"
    );
    for p in &points[durable..] {
        oracle.insert(p.clone());
    }
    let got = client.query(tenant).expect("query reply");
    assert_reply_bytes(
        &format!("{tenant} resumed to t={}", points.len()),
        &got,
        &Reply::from_query(&oracle.query()),
    );
    // The resumed raw inserts re-materialize the projector, so the
    // input dimension is live again (unless nothing was left to send).
    let mut want = expected_stats(&oracle, config.variant.code(), points.len() as u64);
    if durable == points.len() {
        want.proj_in_dim = 0;
    }
    check_stats(&format!("{tenant} resumed"), client, tenant, want);
    // No write intervened, so the repeat is served from the survivor's
    // result cache — and must still be byte-identical to the recompute.
    let again = client.query(tenant).expect("repeat query reply");
    assert_reply_bytes(&format!("{tenant} cached repeat"), &again, &got);
}

#[test]
fn wal_kill_nine_mid_ingest_loses_at_most_one_unsynced_batch() {
    const BATCH: usize = 7; // misaligned with the flush threshold of 16
    let dir = scratch_dir("wal-kill");
    let (child, addr) = spawn_served(&dir, &wal_args(&dir));
    let tenants = wal_tenants();
    let len = tenants[0].2.len();

    let mut client = Client::connect(addr).expect("connect");
    for (name, config, _) in &tenants {
        assert_eq!(client.create(name, config).unwrap(), Reply::Ok);
    }
    // Warm up a few guaranteed batches, then check the STATS durability
    // fields are live on a WAL-backed leader.
    let mut acked = vec![0usize; tenants.len()];
    let warmup = 3;
    for start in (0..len).step_by(BATCH).take(warmup) {
        let end = (start + BATCH).min(len);
        for (i, (name, _, pts)) in tenants.iter().enumerate() {
            assert_eq!(
                client.insert_batch(name, &pts[start..end]).unwrap(),
                Reply::Ok
            );
            acked[i] += end - start;
        }
    }
    match client.stats("wal-obliv").unwrap() {
        Reply::Stats(s) => {
            assert!(s.wal_bytes > 0, "WAL bytes must be reported");
            assert!(s.wal_segments >= 1, "WAL segments must be reported");
        }
        other => panic!("unexpected stats reply {other:?}"),
    }

    // SIGKILL at a random moment while the rest of the stream is in
    // flight (seed printed so a failure can be replayed by pinning it).
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock")
        .subsec_nanos() as u64;
    let delay = Duration::from_millis(2 + seed % 60);
    println!("kill -9 scheduled {delay:?} into the tail ingest (seed {seed})");
    let killer = std::thread::spawn(move || {
        let mut child = child;
        std::thread::sleep(delay);
        child.kill().expect("SIGKILL fairsw-served");
        child.wait().expect("reap fairsw-served");
    });
    'ingest: for start in (0..len).step_by(BATCH).skip(warmup) {
        let end = (start + BATCH).min(len);
        for (i, (name, _, pts)) in tenants.iter().enumerate() {
            match client.insert_batch(name, &pts[start..end]) {
                Ok(Reply::Ok) => acked[i] += end - start,
                Ok(other) => panic!("unexpected ingest reply {other:?}"),
                // The kill landed: whatever was acked is the contract.
                Err(_) => break 'ingest,
            }
        }
        // Pace the stream so the random kill usually lands mid-ingest.
        std::thread::sleep(Duration::from_millis(1));
    }
    killer.join().expect("killer thread");

    // Restart in-process on the same spool + WAL and hold every reply
    // against an oracle fed exactly the recovered prefix.
    let cfg = ServeConfig {
        spool_dir: Some(dir.join("spool")),
        wal_dir: Some(dir.join("wal")),
        wal_tuning: WalTuning {
            segment_bytes: SEGMENT_BYTES,
            compact_bytes: COMPACT_BYTES,
        },
        ..serve_config()
    };
    let handle = Server::start("127.0.0.1:0", cfg).expect("server restarts from WAL");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    for (i, (name, config, pts)) in tenants.iter().enumerate() {
        verify_recovered_tenant(&mut client, name, config, pts, acked[i], BATCH);
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn leader_kill_follower_promote_resumes_bit_identically() {
    const BATCH: usize = 7;
    let dir = scratch_dir("failover");
    let (mut leader, leader_addr) =
        spawn_served(&dir.join("leader"), &wal_args(&dir.join("leader")));
    let tenants = wal_tenants();
    let len = tenants[0].2.len();
    let two_thirds = 2 * len / 3;

    // Phase 1: the leader takes the first two thirds alone — the
    // standby's bootstrap must carry all of it (snapshot for the fixed
    // and projecting tenants, full log replay for the oblivious one).
    let mut client = Client::connect(leader_addr).expect("connect leader");
    for (name, config, _) in &tenants {
        assert_eq!(client.create(name, config).unwrap(), Reply::Ok);
    }
    let mut sent = 0usize;
    for start in (0..two_thirds).step_by(BATCH) {
        let end = (start + BATCH).min(two_thirds);
        for (name, _, pts) in &tenants {
            assert_eq!(
                client.insert_batch(name, &pts[start..end]).unwrap(),
                Reply::Ok
            );
        }
        sent += end - start;
    }

    // Phase 2: hot standby comes up, bootstraps, and follows.
    let follower_cfg = ServeConfig {
        spool_dir: Some(dir.join("f-spool")),
        wal_dir: Some(dir.join("f-wal")),
        wal_tuning: WalTuning {
            segment_bytes: SEGMENT_BYTES,
            compact_bytes: COMPACT_BYTES,
        },
        follow: Some(leader_addr.to_string()),
        ..serve_config()
    };
    let follower = Server::start("127.0.0.1:0", follower_cfg).expect("follower starts");
    assert!(follower.is_follower());
    let mut fclient = Client::connect(follower.local_addr()).expect("connect follower");
    let caught_up = |fclient: &mut Client, target: usize| {
        let deadline = Instant::now() + Duration::from_secs(30);
        for (name, _, _) in &tenants {
            loop {
                match fclient.stats(name) {
                    Ok(Reply::Stats(s)) if s.points_total >= target as u64 => break,
                    // Not bootstrapped yet (or mid-catch-up): retry.
                    Ok(_) => {}
                    Err(e) => panic!("{name}: follower stats failed: {e}"),
                }
                assert!(
                    Instant::now() < deadline,
                    "{name}: follower never caught up to t={target}"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    };
    caught_up(&mut fclient, sent);
    // A follower refuses writes until promoted.
    assert!(matches!(
        fclient
            .insert_batch("wal-fixed", &tenants[0].2[..1])
            .unwrap(),
        Reply::Error(ErrorKind::ReadOnly, _)
    ));

    // Phase 3: live tail — more leader ingest streams through the
    // subscription, not the bootstrap.
    for start in (two_thirds..len).step_by(BATCH).take(3) {
        let end = (start + BATCH).min(len);
        for (name, _, pts) in &tenants {
            assert_eq!(
                client.insert_batch(name, &pts[start..end]).unwrap(),
                Reply::Ok
            );
        }
        sent += end - start;
    }
    caught_up(&mut fclient, sent);

    // Phase 4: kill the leader, promote the standby, verify the durable
    // prefix (the catch-up barrier makes it exactly `sent`) and resume
    // the stream on the new leader.
    leader.kill().expect("SIGKILL leader");
    leader.wait().expect("reap leader");
    assert_eq!(fclient.promote().unwrap(), Reply::Ok);
    assert!(!follower.is_follower());
    assert!(matches!(
        fclient.promote().unwrap(),
        Reply::Error(ErrorKind::Unsupported, _)
    ));
    for (name, config, pts) in &tenants {
        verify_recovered_tenant(&mut fclient, name, config, pts, sent, BATCH);
    }
    follower.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

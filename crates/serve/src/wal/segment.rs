//! WAL record codec and segment framing.
//!
//! A segment file is a flat sequence of CRC-framed records:
//!
//! ```text
//! segment := frame*
//! frame   := len:u32 crc:u32 body[len]     (crc = CRC-32/IEEE of body)
//! body    := tag:u8 payload
//! ```
//!
//! Framing is designed around the one failure a log must survive: a
//! torn tail. [`read_segment`] walks frames front to back and stops at
//! the first one that does not check out — header short, length past
//! the end of the file, CRC mismatch, or an undecodable body — and
//! reports how many bytes of *valid prefix* precede it. Recovery
//! truncates to that prefix and appends from there; a partial final
//! write (or any corruption) costs exactly the records at and after the
//! damage, never a panic and never a misparse.
//!
//! Record bodies reuse the wire protocol's little-endian primitives, so
//! the same [`WalRecord`] codec serves the on-disk log and the
//! `WAL_APPEND` replication frames.

use crate::protocol::{
    check_len, put_u32, put_u64, take_bytes, take_count32, take_point, take_u64, take_u8,
    ProtocolError, TenantConfig, WireError, MAX_FRAME,
};
use fairsw_metric::{Colored, EuclidPoint};
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File extension of WAL segment files.
pub const SEGMENT_EXT: &str = "wal";

/// Frame header: `len:u32 crc:u32`.
pub const FRAME_HEADER: usize = 8;

// ---- CRC-32 (IEEE 802.3, reflected) ------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32/IEEE of `bytes` (the checksum in every record frame).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for b in bytes {
        c = CRC_TABLE[((c ^ *b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---- records ------------------------------------------------------------

const REC_CREATE: u8 = 1;
const REC_BATCH: u8 = 2;
const REC_SNAPSHOT: u8 = 3;
const REC_DELETE: u8 = 4;

/// One durable log record. `Create` and `Batch` are what shard threads
/// append to disk; `Snapshot` and `Delete` additionally travel on the
/// replication stream (a follower bootstraps snapshot-capable tenants
/// from a fresh snapshot instead of replaying their whole history, and
/// hears deletions live).
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// The tenant was created with this configuration. Always the first
    /// record of a tenant's log.
    Create(TenantConfig),
    /// One accepted ingest request (an `INSERT` logs a batch of one).
    Batch {
        /// The tenant's accepted-point count before this batch — the
        /// stream position of `points[0]`. Replay and replication use
        /// it to skip records already covered by a snapshot.
        start: u64,
        /// The accepted points, in stream order.
        points: Vec<Colored<EuclidPoint>>,
    },
    /// A full FSW2 engine snapshot (replication bootstrap only; on disk
    /// snapshots live in the spool, not the log).
    Snapshot(Vec<u8>),
    /// The tenant was deleted (replication only; on disk a deletion
    /// removes the tenant's log directory).
    Delete,
}

impl WalRecord {
    /// Appends the record body (tag + payload) to `out`. Fails with
    /// [`ProtocolError::TooLarge`] when a value does not fit its wire
    /// field — unreachable for records built from wire-decoded requests
    /// (the wire bounds every length structurally), checked anyway so an
    /// in-process caller can never log a misparsing record.
    pub fn encode(&self, out: &mut Vec<u8>) -> Result<(), ProtocolError> {
        match self {
            WalRecord::Create(config) => {
                out.push(REC_CREATE);
                config.encode(out)?;
            }
            WalRecord::Batch { start, points } => {
                out.extend_from_slice(&encode_batch_body(*start, points)?);
            }
            WalRecord::Snapshot(bytes) => {
                check_len("snapshot bytes", bytes.len(), u32::MAX as usize)?;
                out.push(REC_SNAPSHOT);
                put_u32(out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
            WalRecord::Delete => out.push(REC_DELETE),
        }
        Ok(())
    }

    /// Decodes one record body from the front of `input`, advancing it.
    pub fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match take_u8(input)? {
            REC_CREATE => WalRecord::Create(TenantConfig::decode(input)?),
            REC_BATCH => {
                let start = take_u64(input)?;
                // A point is at least color + dim = 6 bytes.
                let n = take_count32(input, 6)?;
                let mut points = Vec::with_capacity(n);
                for _ in 0..n {
                    points.push(take_point(input)?);
                }
                WalRecord::Batch { start, points }
            }
            REC_SNAPSHOT => {
                let n = take_count32(input, 1)?;
                WalRecord::Snapshot(take_bytes(input, n)?.to_vec())
            }
            REC_DELETE => WalRecord::Delete,
            other => return Err(WireError::Invalid(format!("unknown record tag {other}"))),
        })
    }
}

/// Encodes a `Batch` record body straight from a borrowed point slice —
/// the ingest hot path logs accepted batches without cloning them into
/// an owned [`WalRecord`] first.
pub fn encode_batch_body(
    start: u64,
    points: &[Colored<EuclidPoint>],
) -> Result<Vec<u8>, ProtocolError> {
    check_len("batch size", points.len(), u32::MAX as usize)?;
    let mut out = Vec::with_capacity(16 + points.len() * 24);
    out.push(REC_BATCH);
    put_u64(&mut out, start);
    put_u32(&mut out, points.len() as u32);
    for p in points {
        crate::protocol::put_point(&mut out, p)?;
    }
    Ok(out)
}

/// Encodes a `Create` record body.
pub fn encode_create_body(config: &TenantConfig) -> Result<Vec<u8>, ProtocolError> {
    let mut out = Vec::with_capacity(64);
    WalRecord::Create(config.clone()).encode(&mut out)?;
    Ok(out)
}

// ---- framing ------------------------------------------------------------

/// Wraps an encoded record body in its `len + crc` frame.
pub fn frame_record(body: &[u8]) -> Vec<u8> {
    debug_assert!(body.len() <= MAX_FRAME);
    let mut out = Vec::with_capacity(FRAME_HEADER + body.len());
    put_u32(&mut out, body.len() as u32);
    put_u32(&mut out, crc32(body));
    out.extend_from_slice(body);
    out
}

/// Walks one segment's bytes front to back, decoding every frame that
/// checks out. Returns the decoded records and the length of the valid
/// prefix — the byte offset of the first frame that is short, oversized,
/// CRC-damaged or undecodable (== `bytes.len()` for a clean segment).
/// Never panics: a corrupt length prefix is bounded by the bytes that
/// actually remain before anything is allocated.
pub fn read_segment(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_FRAME || len > bytes.len() - pos - FRAME_HEADER {
            break; // torn or corrupt tail: frame longer than the file
        }
        let body = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(body) != crc {
            break; // damaged record: the valid prefix ends here
        }
        let mut input = body;
        match WalRecord::decode(&mut input) {
            Ok(rec) if input.is_empty() => records.push(rec),
            // A CRC-clean but undecodable body (or trailing garbage)
            // still ends the valid prefix — never apply half a record.
            _ => break,
        }
        pos += FRAME_HEADER + len;
    }
    (records, pos)
}

// ---- durable filesystem helpers ----------------------------------------

/// fsyncs a directory so a just-created, renamed or removed entry is
/// durable (on Linux, file durability needs the *parent* synced too).
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Durable atomic file write: `tmp` + contents fsync + rename + parent
/// directory fsync. Shared by the snapshot spool (`CHECKPOINT`,
/// compaction) and anything else that must never leave a half-written
/// file behind a crash.
pub fn atomic_write(dir: &Path, file_name: &str, bytes: &[u8]) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!("{file_name}.tmp"));
    let dst = dir.join(file_name);
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, &dst)?;
    fsync_dir(dir)
}

/// The file name of segment `seq` (`00000042.wal`).
pub fn segment_name(seq: u64) -> String {
    format!("{seq:08}.{SEGMENT_EXT}")
}

/// Parses a segment file name back to its sequence number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(&format!(".{SEGMENT_EXT}"))?;
    if stem.len() != 8 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

/// Lists a tenant log directory's segment files, sorted by sequence.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if let Some(seq) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(parse_segment_name)
        {
            out.push((seq, path));
        }
    }
    out.sort_by_key(|(seq, _)| *seq);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WireVariant;

    fn pt(x: f64, c: u32) -> Colored<EuclidPoint> {
        Colored::new(EuclidPoint::new(vec![x, 2.0 * x]), c)
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip() {
        let records = vec![
            WalRecord::Create(TenantConfig::new(50, vec![2, 1], WireVariant::Oblivious)),
            WalRecord::Batch {
                start: 7,
                points: vec![pt(1.5, 0), pt(-3.25, 1)],
            },
            WalRecord::Batch {
                start: u64::MAX,
                points: vec![],
            },
            WalRecord::Snapshot(vec![1, 2, 3, 254]),
            WalRecord::Delete,
        ];
        for rec in records {
            let mut body = Vec::new();
            rec.encode(&mut body).unwrap();
            let mut input = body.as_slice();
            assert_eq!(WalRecord::decode(&mut input).unwrap(), rec);
            assert!(input.is_empty(), "{rec:?} left trailing bytes");
        }
    }

    #[test]
    fn segment_roundtrip_and_torn_tail() {
        let recs: Vec<WalRecord> = (0..5)
            .map(|i| WalRecord::Batch {
                start: i,
                points: vec![pt(i as f64, (i % 2) as u32)],
            })
            .collect();
        let mut seg = Vec::new();
        for r in &recs {
            let mut body = Vec::new();
            r.encode(&mut body).unwrap();
            seg.extend_from_slice(&frame_record(&body));
        }
        let (got, valid) = read_segment(&seg);
        assert_eq!(got, recs);
        assert_eq!(valid, seg.len());
        // Tear the tail: the last record is discarded, the prefix kept.
        let torn = &seg[..seg.len() - 3];
        let (got, valid) = read_segment(torn);
        assert_eq!(got, recs[..4]);
        assert!(valid <= torn.len());
        // Flip a byte in the middle: everything from that record on is
        // discarded, everything before survives.
        let mut corrupt = seg.clone();
        let hit = seg.len() / 2;
        corrupt[hit] ^= 0x40;
        let (got, _) = read_segment(&corrupt);
        assert!(got.len() < recs.len());
        assert_eq!(got[..], recs[..got.len()]);
    }

    #[test]
    fn segment_names_roundtrip_and_sort() {
        assert_eq!(segment_name(42), "00000042.wal");
        assert_eq!(parse_segment_name("00000042.wal"), Some(42));
        assert_eq!(parse_segment_name("42.wal"), None);
        assert_eq!(parse_segment_name("0000004x.wal"), None);
        assert_eq!(parse_segment_name("00000042.fsw2"), None);
    }

    #[test]
    fn atomic_write_replaces_and_survives() {
        let dir = std::env::temp_dir().join(format!("fairsw-aw-{}", std::process::id()));
        atomic_write(&dir, "x.fsw2", b"one").unwrap();
        atomic_write(&dir, "x.fsw2", b"two").unwrap();
        assert_eq!(std::fs::read(dir.join("x.fsw2")).unwrap(), b"two");
        assert!(!dir.join("x.fsw2.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

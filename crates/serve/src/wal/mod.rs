//! Durability for `fairsw-serve`: a per-tenant write-ahead log, its
//! recovery path, and hot-standby replication built on the same
//! records.
//!
//! ## Design
//!
//! Every accepted write (`CREATE`, `INSERT`, `INSERT_BATCH`) is encoded
//! as a [`WalRecord`] and appended — CRC-framed — to the tenant's log
//! *before* the acknowledgement leaves the shard. Appends hit the page
//! cache only; the shard's existing flush tick fsyncs each tenant's
//! open segment once per tick (**group commit**), so durability costs
//! one `fdatasync` per tenant per tick instead of one per request.
//! The loss window is therefore:
//!
//! * `kill -9` — nothing: the page cache survives the process.
//! * power loss — at most the unsynced tail of the current tick,
//!   reported live as `wal_unsynced_bytes` in `STATS`.
//!
//! A torn append (crash mid-write) is caught on replay by the
//! per-record CRC + length framing and truncated away — at most one
//! partially-written batch is lost, never a panic, never a misparse.
//!
//! ## Module map
//!
//! * [`segment`] — the record codec, CRC framing, torn-tail segment
//!   reader, and the shared fsync'd `tmp + rename` helper
//!   ([`atomic_write`]) that the snapshot spool uses too.
//! * [`writer`] — [`TenantWal`]: the append path, group-commit
//!   [`sync`](TenantWal::sync), segment rotation, and
//!   [`compact`](TenantWal::compact)ion, which folds the log into a
//!   spool snapshot so disk and recovery time stay bounded.
//! * [`replay`] — startup recovery: [`read_log`] + [`build_tenant`]
//!   rebuild each tenant from spool snapshot + WAL suffix, using each
//!   batch record's stream position to skip what the snapshot covers.
//! * [`replicate`] — the `WAL_SUBSCRIBE` fan-out on the leader and the
//!   apply/reconnect loop a `--follow` process runs; the same records
//!   stream over the wire as `WAL_APPEND` reply frames.

pub mod replay;
pub mod replicate;
pub mod segment;
pub mod writer;

pub use replay::{build_tenant, read_log, ReplayedTenant};
pub use segment::{atomic_write, crc32, read_segment, WalRecord};
pub use writer::{LogCut, TenantWal, WalTuning};

//! Hot-standby replication: subscriber fan-out on the leader, the
//! streaming apply loop on the follower.
//!
//! A connection that sends `WAL_SUBSCRIBE` becomes a one-way stream of
//! `WAL_APPEND` reply frames. On the leader side each shard keeps a
//! list of `Subscriber`s; at accept time — right after the record is
//! appended to the local WAL — the shard pushes the already-encoded
//! frame to every subscriber with a non-blocking `try_send`. A
//! subscriber whose bounded queue is full (or whose connection died) is
//! dropped from the list: a slow follower must never be able to stall
//! the ingest hot path, and it can always resubscribe — bootstrap
//! brings it back to current state.
//!
//! The follower side is `follower_loop`: connect, subscribe, apply
//! each incoming record through the server's shard channels, and
//! reconnect with backoff on any failure, until the process stops or
//! the follower is promoted out of follower-hood.

use super::segment::WalRecord;
use crate::protocol::{write_frame, Reply, Request, MAX_FRAME};
use crate::server::{read_exact_polled, PolledRead};
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// Encoded frames a subscriber's connection may buffer before the
/// leader declares it too slow and drops it.
pub const SUBSCRIBER_QUEUE: usize = 1024;

/// Reconnect backoff of a follower that lost (or cannot reach) its
/// leader.
const RECONNECT_BACKOFF: Duration = Duration::from_millis(300);

/// Creates a subscription: the [`Subscriber`] half lives in the shards
/// (one clone per shard), the [`SubscriptionRx`] half in the connection
/// thread that drains frames onto the socket.
pub(crate) fn subscription() -> (Subscriber, SubscriptionRx) {
    let (tx, rx) = sync_channel(SUBSCRIBER_QUEUE);
    let queued = Arc::new(AtomicU64::new(0));
    (
        Subscriber {
            tx,
            queued: Arc::clone(&queued),
        },
        SubscriptionRx { rx, queued },
    )
}

/// The shard-side half of one replication stream.
#[derive(Clone)]
pub(crate) struct Subscriber {
    tx: SyncSender<Vec<u8>>,
    queued: Arc<AtomicU64>,
}

impl Subscriber {
    /// Queues one encoded `WAL_APPEND` frame without blocking. Returns
    /// `false` when the subscriber is dead or too slow — the caller
    /// drops it from the fan-out list.
    pub fn push(&self, frame: Vec<u8>) -> bool {
        match self.tx.try_send(frame) {
            Ok(()) => {
                self.queued.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => false,
        }
    }

    /// Queues one frame, waiting for space if the queue is full — used
    /// only for the bootstrap burst right after `WAL_SUBSCRIBE`, whose
    /// record count may exceed [`SUBSCRIBER_QUEUE`] (the subscriber is
    /// actively draining; live-tail pushes stay non-blocking). Returns
    /// `false` when the subscriber hung up.
    pub fn push_blocking(&self, frame: Vec<u8>) -> bool {
        match self.tx.send(frame) {
            Ok(()) => {
                self.queued.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }

    /// Frames queued but not yet written to the socket — this
    /// subscriber's replication lag in records.
    pub fn lag(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }
}

/// The connection-side half: frames queued by the shards, drained onto
/// the subscriber's socket.
pub(crate) struct SubscriptionRx {
    rx: Receiver<Vec<u8>>,
    queued: Arc<AtomicU64>,
}

impl SubscriptionRx {
    /// Waits up to `timeout` for the next queued frame.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, RecvTimeoutError> {
        let frame = self.rx.recv_timeout(timeout)?;
        self.queued.fetch_sub(1, Ordering::Relaxed);
        Ok(frame)
    }
}

/// Reads one length-prefixed frame with stop polling. `Ok(None)` means
/// the stream ended (EOF or stop) — the caller reconnects or exits.
fn read_frame_polled(
    r: &mut impl io::Read,
    should_stop: &impl Fn() -> bool,
) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    match read_exact_polled(r, &mut header, should_stop, true)? {
        PolledRead::Done => {}
        PolledRead::Eof | PolledRead::Stopped => return Ok(None),
    }
    let n = u32::from_le_bytes(header) as usize;
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized replication frame",
        ));
    }
    let mut body = vec![0u8; n];
    match read_exact_polled(r, &mut body, should_stop, false)? {
        PolledRead::Done => Ok(Some(body)),
        PolledRead::Eof | PolledRead::Stopped => Ok(None),
    }
}

/// The follower's replication thread: subscribe to `leader`, apply
/// every streamed record via `apply`, reconnect with backoff on any
/// failure. Runs until the server stops or the follower is promoted
/// (`is_follower` cleared). Each (re)connection replays a full
/// bootstrap — [`build_tenant`](super::replay::build_tenant)'s
/// position-based skip makes re-delivery idempotent.
pub(crate) fn follower_loop(
    leader: &str,
    stop: &Arc<AtomicBool>,
    is_follower: &Arc<AtomicBool>,
    apply: impl Fn(String, WalRecord) -> Result<(), String>,
) {
    let done = || stop.load(Ordering::SeqCst) || !is_follower.load(Ordering::SeqCst);
    let mut warned = false;
    while !done() {
        let mut stream = match TcpStream::connect(leader) {
            Ok(s) => s,
            Err(e) => {
                if !warned {
                    eprintln!("fairsw-served: leader {leader} unreachable ({e}), retrying");
                    warned = true;
                }
                backoff(&done);
                continue;
            }
        };
        warned = false;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        // A payload-free static request always fits the wire format.
        let subscribe = Request::WalSubscribe
            .encode()
            .expect("static request encodes");
        if write_frame(&mut stream, &subscribe).is_err() {
            backoff(&done);
            continue;
        }
        // First frame is the subscription ack.
        match read_frame_polled(&mut stream, &done) {
            Ok(Some(body)) if Reply::decode(&body) == Ok(Reply::Ok) => {}
            Ok(None) => continue, // stopped or leader closed
            _ => {
                eprintln!("fairsw-served: leader {leader} refused WAL_SUBSCRIBE, retrying");
                backoff(&done);
                continue;
            }
        }
        // Stream frames until the connection or the process ends
        // (`Ok(None)` and `Err` both fall out to reconnect below).
        while let Ok(Some(body)) = read_frame_polled(&mut stream, &done) {
            match Reply::decode(&body) {
                Ok(Reply::Wal { tenant, record }) => {
                    if let Err(e) = apply(tenant, record) {
                        eprintln!("fairsw-served: replication apply failed: {e}; resyncing");
                        break; // reconnect → fresh bootstrap
                    }
                }
                Ok(other) => {
                    eprintln!("fairsw-served: unexpected replication frame {other:?}");
                    break;
                }
                Err(e) => {
                    eprintln!("fairsw-served: bad replication frame: {e}; resyncing");
                    break;
                }
            }
        }
        if !done() {
            backoff(&done);
        }
    }
}

/// Sleeps the reconnect backoff in small slices so stop/promote are
/// honored promptly.
fn backoff(done: &impl Fn() -> bool) {
    let slice = Duration::from_millis(25);
    let mut waited = Duration::ZERO;
    while waited < RECONNECT_BACKOFF && !done() {
        std::thread::sleep(slice);
        waited += slice;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscription_tracks_lag_and_drops_slow_subscribers() {
        let (sub, rx) = subscription();
        assert!(sub.push(vec![1]));
        assert!(sub.push(vec![2]));
        assert_eq!(sub.lag(), 2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), vec![1]);
        assert_eq!(sub.lag(), 1);
        drop(rx);
        assert!(!sub.push(vec![3]), "dead subscriber must be rejected");
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let (sub, _rx) = subscription();
        for i in 0..SUBSCRIBER_QUEUE {
            assert!(sub.push(vec![i as u8]));
        }
        assert!(!sub.push(vec![0]), "overflow must not block the shard");
        assert_eq!(sub.lag(), SUBSCRIBER_QUEUE as u64);
    }

    #[test]
    fn follower_loop_exits_on_promote_without_a_leader() {
        let stop = Arc::new(AtomicBool::new(false));
        let follower = Arc::new(AtomicBool::new(true));
        let f2 = Arc::clone(&follower);
        let t = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || follower_loop("127.0.0.1:1", &stop, &f2, |_, _| Ok(()))
        });
        std::thread::sleep(Duration::from_millis(60));
        follower.store(false, Ordering::SeqCst);
        t.join().unwrap();
    }
}

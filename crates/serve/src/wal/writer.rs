//! The per-tenant append path: segment files, group commit, rotation
//! and compaction.
//!
//! Each tenant owns one [`TenantWal`] — a directory of numbered segment
//! files (`00000001.wal`, `00000002.wal`, …) of which only the highest
//! is open for append. Shard threads append the framed record for every
//! accepted write *before* acking it, but do **not** fsync per record:
//! the shard's existing flush tick calls [`TenantWal::sync`] for all of
//! its tenants at once (group commit), so the sync cost is amortized
//! across every batch accepted in the tick window. A `kill -9` loses
//! nothing that reached the page cache; only power loss can take the
//! unsynced window, which `STATS` reports as `wal_unsynced_bytes`.
//!
//! When the open segment exceeds [`WalTuning::segment_bytes`] it is
//! rotated; when the tenant's total log exceeds
//! [`WalTuning::compact_bytes`] the shard snapshots the engine into the
//! spool and calls [`TenantWal::compact`], which starts a fresh segment
//! and deletes the old ones — recovery time and disk stay bounded by
//! the compaction threshold, not the tenant's lifetime.

use super::segment::{frame_record, fsync_dir, list_segments, segment_name};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Size thresholds steering rotation and compaction.
#[derive(Clone, Copy, Debug)]
pub struct WalTuning {
    /// Rotate the open segment once it reaches this many bytes.
    pub segment_bytes: u64,
    /// Fold the log into a spool snapshot once its total live bytes
    /// reach this threshold (snapshot-capable tenants only).
    pub compact_bytes: u64,
}

impl Default for WalTuning {
    fn default() -> Self {
        WalTuning {
            segment_bytes: 1 << 20,
            compact_bytes: 4 << 20,
        }
    }
}

/// Where a replayed log's valid bytes end: the open segment's sequence
/// number and the length of its valid prefix. [`TenantWal::reopen`]
/// truncates the torn tail to exactly this point so disk and replayed
/// state agree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogCut {
    /// Sequence number of the last valid segment (1 for an empty log).
    pub seq: u64,
    /// Valid bytes in that segment.
    pub offset: u64,
}

/// One tenant's append-only log: a directory of CRC-framed segment
/// files with the highest open for append.
#[derive(Debug)]
pub struct TenantWal {
    dir: PathBuf,
    file: File,
    seq: u64,
    /// Bytes in the open segment.
    seg_bytes: u64,
    /// Bytes across all closed (earlier) segments.
    base_bytes: u64,
    segments: u64,
    unsynced: u64,
    last_sync: Instant,
    tuning: WalTuning,
}

impl TenantWal {
    /// Starts a fresh log at `dir`, wiping whatever was there (used by
    /// `CREATE`, which begins a new tenant history).
    pub fn create(dir: &Path, tuning: WalTuning) -> io::Result<Self> {
        let _ = std::fs::remove_dir_all(dir);
        std::fs::create_dir_all(dir)?;
        if let Some(parent) = dir.parent() {
            fsync_dir(parent)?;
        }
        let file = open_segment(dir, 1)?;
        fsync_dir(dir)?;
        Ok(TenantWal {
            dir: dir.to_path_buf(),
            file,
            seq: 1,
            seg_bytes: 0,
            base_bytes: 0,
            segments: 1,
            unsynced: 0,
            last_sync: Instant::now(),
            tuning,
        })
    }

    /// Reopens an existing log after replay: truncates the last valid
    /// segment to `cut.offset` (discarding a torn tail for good, so a
    /// later replay cannot diverge from this one) and deletes any
    /// segments past it, then resumes appending.
    pub fn reopen(dir: &Path, tuning: WalTuning, cut: LogCut) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut base_bytes = 0u64;
        let mut segments = 0u64;
        for (seq, path) in list_segments(dir)? {
            if seq > cut.seq {
                std::fs::remove_file(&path)?;
            } else if seq < cut.seq {
                base_bytes += std::fs::metadata(&path)?.len();
                segments += 1;
            }
        }
        let file = open_segment(dir, cut.seq)?;
        file.set_len(cut.offset)?;
        file.sync_data()?;
        fsync_dir(dir)?;
        Ok(TenantWal {
            dir: dir.to_path_buf(),
            file,
            seq: cut.seq,
            seg_bytes: cut.offset,
            base_bytes,
            segments: segments + 1,
            unsynced: 0,
            last_sync: Instant::now(),
            tuning,
        })
    }

    /// Appends one framed record body to the open segment (rotating
    /// first if it is full). The bytes reach the page cache before this
    /// returns — and so before the write is acked — but are not fsynced
    /// until the next group-commit [`sync`](Self::sync).
    pub fn append(&mut self, body: &[u8]) -> io::Result<()> {
        if self.seg_bytes >= self.tuning.segment_bytes && self.seg_bytes > 0 {
            self.rotate()?;
        }
        let frame = frame_record(body);
        self.file.write_all(&frame)?;
        self.seg_bytes += frame.len() as u64;
        self.unsynced += frame.len() as u64;
        Ok(())
    }

    /// Group commit: fsyncs the open segment if anything was appended
    /// since the last sync. Called by the shard tick for all of its
    /// tenants at once.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Closes the open segment (fsynced) and opens the next one.
    pub fn rotate(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.unsynced = 0;
        self.last_sync = Instant::now();
        self.seq += 1;
        self.file = open_segment(&self.dir, self.seq)?;
        fsync_dir(&self.dir)?;
        self.base_bytes += self.seg_bytes;
        self.seg_bytes = 0;
        self.segments += 1;
        Ok(())
    }

    /// Folds the log into the snapshot the caller just spooled: starts
    /// a fresh segment and deletes every earlier one. Everything the
    /// deleted records described is covered by the snapshot, so the
    /// replayable history stays complete while disk and recovery time
    /// reset to near zero.
    pub fn compact(&mut self) -> io::Result<()> {
        self.rotate()?;
        for (seq, path) in list_segments(&self.dir)? {
            if seq < self.seq {
                std::fs::remove_file(&path)?;
            }
        }
        fsync_dir(&self.dir)?;
        self.base_bytes = 0;
        self.segments = 1;
        Ok(())
    }

    /// Whether the log has grown past the compaction threshold.
    pub fn wants_compaction(&self) -> bool {
        self.total_bytes() > self.tuning.compact_bytes
    }

    /// Live bytes across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.base_bytes + self.seg_bytes
    }

    /// Live segment files.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    /// Bytes appended since the last fsync — the power-loss window.
    pub fn unsynced_bytes(&self) -> u64 {
        self.unsynced
    }

    /// Microseconds since the last fsync while data is pending (0 when
    /// everything durable).
    pub fn fsync_lag_us(&self) -> f64 {
        if self.unsynced == 0 {
            0.0
        } else {
            self.last_sync.elapsed().as_micros() as f64
        }
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Removes a tenant's log directory entirely (tenant deletion).
    pub fn remove(dir: &Path) -> io::Result<()> {
        if dir.exists() {
            std::fs::remove_dir_all(dir)?;
            if let Some(parent) = dir.parent() {
                fsync_dir(parent)?;
            }
        }
        Ok(())
    }
}

fn open_segment(dir: &Path, seq: u64) -> io::Result<File> {
    OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(segment_name(seq)))
}

#[cfg(test)]
mod tests {
    use super::super::segment::read_segment;
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fairsw-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny() -> WalTuning {
        WalTuning {
            segment_bytes: 64,
            compact_bytes: 256,
        }
    }

    #[test]
    fn append_rotate_compact_lifecycle() {
        let dir = scratch("life");
        let mut wal = TenantWal::create(&dir, tiny()).unwrap();
        let body = vec![7u8; 40];
        for _ in 0..6 {
            wal.append(&body).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segments() > 1, "64-byte segments must have rotated");
        assert_eq!(wal.total_bytes(), 6 * (8 + 40));
        assert_eq!(wal.unsynced_bytes(), 0);
        let on_disk = list_segments(&dir).unwrap();
        assert_eq!(on_disk.len() as u64, wal.segments());
        wal.compact().unwrap();
        assert_eq!(wal.segments(), 1);
        assert_eq!(wal.total_bytes(), 0);
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        // The log keeps accepting appends after compaction.
        wal.append(&body).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.total_bytes(), 8 + 40);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_truncates_torn_tail_and_later_segments() {
        let dir = scratch("reopen");
        let mut wal = TenantWal::create(&dir, tiny()).unwrap();
        for _ in 0..6 {
            wal.append(&[1u8; 40]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 3);
        // Pretend replay found segment 2 torn 8 bytes in: reopen must
        // truncate it and delete segment 3+.
        let cut = LogCut { seq: 2, offset: 8 };
        let wal = TenantWal::reopen(&dir, tiny(), cut).unwrap();
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.last().unwrap().0, 2);
        assert_eq!(std::fs::metadata(&segs.last().unwrap().1).unwrap().len(), 8);
        // Segment 1 kept whole (two 48-byte frames) + the 8-byte stub.
        assert_eq!(wal.total_bytes(), 96 + 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_hold_readable_frames() {
        let dir = scratch("frames");
        let mut wal = TenantWal::create(&dir, WalTuning::default()).unwrap();
        let body = super::super::segment::encode_batch_body(0, &[]).unwrap();
        wal.append(&body).unwrap();
        wal.append(&body).unwrap();
        wal.sync().unwrap();
        let bytes = std::fs::read(dir.join(segment_name(1))).unwrap();
        let (records, valid) = read_segment(&bytes);
        assert_eq!(valid, bytes.len());
        assert_eq!(records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

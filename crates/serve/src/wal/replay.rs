//! Startup recovery: turn a spool snapshot plus a WAL suffix back into
//! a live engine.
//!
//! [`read_log`] concatenates a tenant's segment files in sequence order
//! and stops at the first damaged frame *anywhere* — a torn segment
//! also invalidates every later segment (they were appended after the
//! tear, so nothing past it can be trusted). It reports a
//! [`LogCut`] that [`TenantWal::reopen`](super::TenantWal::reopen)
//! truncates to, so the disk converges on exactly the state this replay
//! produced and a second replay cannot diverge.
//!
//! [`build_tenant`] then replays the records on top of the spool
//! snapshot (if any). Batch records carry their stream position, so
//! records the snapshot already covers are skipped point-precisely —
//! the same logic lets a follower apply a live stream on top of a
//! bootstrap snapshot.

use super::segment::{list_segments, read_segment, WalRecord};
use super::writer::LogCut;
use crate::protocol::TenantConfig;
use fairsw_core::{ParallelismSpec, SlidingWindowClustering, WindowEngine};
use fairsw_metric::{Euclidean, Relaxed};
use std::io;
use std::path::Path;

/// Reads a tenant's whole log: every record up to the first damaged
/// frame, plus the cut where the valid bytes end. An absent or empty
/// directory yields no records and a cut at the start of segment 1.
pub fn read_log(dir: &Path) -> io::Result<(Vec<WalRecord>, LogCut)> {
    let mut records = Vec::new();
    let mut cut = LogCut { seq: 1, offset: 0 };
    if !dir.is_dir() {
        return Ok((records, cut));
    }
    for (seq, path) in list_segments(dir)? {
        let bytes = std::fs::read(&path)?;
        let (mut recs, valid) = read_segment(&bytes);
        records.append(&mut recs);
        cut = LogCut {
            seq,
            offset: valid as u64,
        };
        if valid < bytes.len() {
            break; // torn tail: later segments postdate the damage
        }
    }
    Ok((records, cut))
}

/// A tenant reconstructed from durable state.
pub struct ReplayedTenant {
    /// The engine, caught up to the end of the valid log.
    pub engine: WindowEngine<Relaxed<Euclidean>>,
    /// The creating configuration, when a `Create` record survives
    /// (compaction keeps snapshots instead, so it may be gone).
    pub config: Option<TenantConfig>,
}

/// Replays `records` on top of `snapshot` (if any) into a live engine.
///
/// The snapshot, when present, is authoritative for everything up to
/// its stream time; batch records are applied only from that point on,
/// using each record's `start` position to skip the covered prefix.
/// Returns an error (never panics) when the log is unusable — no
/// snapshot and no `Create` record, a batch before either, or a
/// snapshot that does not decode.
pub fn build_tenant(
    snapshot: Option<&[u8]>,
    records: &[WalRecord],
    parallelism: ParallelismSpec,
) -> Result<ReplayedTenant, String> {
    let restore = |bytes: &[u8]| -> Result<WindowEngine<Relaxed<Euclidean>>, String> {
        WindowEngine::restore(Relaxed::exact(Euclidean), bytes)
            .map(|e| e.with_parallelism(parallelism))
            .map_err(|e| e.to_string())
    };
    let mut engine = snapshot.map(restore).transpose()?;
    let mut config = None;
    for rec in records {
        match rec {
            WalRecord::Create(c) => {
                if engine.is_none() {
                    engine = Some(
                        c.build_engine()
                            .map(|e| e.with_parallelism(parallelism))
                            .map_err(|e| e.to_string())?,
                    );
                }
                config = Some(c.clone());
            }
            WalRecord::Batch { start, points } => {
                let eng = engine
                    .as_mut()
                    .ok_or("batch record before any Create or snapshot")?;
                let skip = (eng.time().saturating_sub(*start)) as usize;
                if skip < points.len() {
                    eng.insert_batch(points[skip..].iter().cloned());
                }
            }
            WalRecord::Snapshot(bytes) => engine = Some(restore(bytes)?),
            WalRecord::Delete => {
                engine = None;
                config = None;
            }
        }
    }
    let engine = engine.ok_or("log holds no Create record or snapshot")?;
    Ok(ReplayedTenant { engine, config })
}

#[cfg(test)]
mod tests {
    use super::super::segment::encode_batch_body;
    use super::super::writer::{TenantWal, WalTuning};
    use super::*;
    use crate::protocol::WireVariant;
    use fairsw_metric::{Colored, EuclidPoint};
    use std::path::PathBuf;

    fn pt(i: u64) -> Colored<EuclidPoint> {
        Colored::new(
            EuclidPoint::new(vec![i as f64, 0.5 * i as f64]),
            (i % 2) as u32,
        )
    }

    fn config() -> TenantConfig {
        TenantConfig::new(
            24,
            vec![2, 1],
            WireVariant::Fixed {
                dmin: 1e-3,
                dmax: 1e4,
            },
        )
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fairsw-replay-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Writes `Create` + `batches` through a real [`TenantWal`].
    fn write_log(dir: &Path, batches: &[(u64, Vec<Colored<EuclidPoint>>)]) {
        let mut wal = TenantWal::create(
            dir,
            WalTuning {
                segment_bytes: 256, // force rotation mid-log
                compact_bytes: u64::MAX,
            },
        )
        .unwrap();
        let mut body = Vec::new();
        WalRecord::Create(config()).encode(&mut body).unwrap();
        wal.append(&body).unwrap();
        for (start, points) in batches {
            wal.append(&encode_batch_body(*start, points).unwrap())
                .unwrap();
        }
        wal.sync().unwrap();
    }

    fn batches(n: u64, per: u64) -> Vec<(u64, Vec<Colored<EuclidPoint>>)> {
        (0..n)
            .map(|b| (b * per, (b * per..(b + 1) * per).map(pt).collect()))
            .collect()
    }

    #[test]
    fn replay_matches_direct_ingest_across_rotated_segments() {
        let dir = scratch("direct");
        let all = batches(12, 5);
        write_log(&dir, &all);
        let (records, cut) = read_log(&dir).unwrap();
        assert_eq!(records.len(), 13); // Create + 12 batches
        assert!(cut.seq > 1, "256-byte segments must have rotated");
        let replayed = build_tenant(None, &records, ParallelismSpec::Sequential).unwrap();
        let mut oracle = config().build_engine().unwrap();
        oracle.insert_batch(all.iter().flat_map(|(_, ps)| ps.iter().cloned()));
        let engine = replayed.engine;
        assert_eq!(engine.time(), 60);
        assert_eq!(replayed.config, Some(config()));
        assert_eq!(
            engine.query().unwrap().centers,
            oracle.query().unwrap().centers
        );
    }

    #[test]
    fn snapshot_plus_suffix_skips_the_covered_prefix() {
        // Snapshot after 35 points (mid-batch boundary 7 of 12), then
        // replay the *whole* log on top: the first 7 batches must be
        // skipped, the rest applied once.
        let all = batches(12, 5);
        let mut first = config().build_engine().unwrap();
        first.insert_batch(all[..7].iter().flat_map(|(_, ps)| ps.iter().cloned()));
        let snap = first.snapshot().expect("fixed variant snapshots");
        let records: Vec<WalRecord> = all
            .iter()
            .map(|(start, points)| WalRecord::Batch {
                start: *start,
                points: points.clone(),
            })
            .collect();
        let replayed = build_tenant(Some(&snap), &records, ParallelismSpec::Sequential).unwrap();
        let mut oracle = config().build_engine().unwrap();
        oracle.insert_batch(all.iter().flat_map(|(_, ps)| ps.iter().cloned()));
        let engine = replayed.engine;
        assert_eq!(engine.time(), 60);
        assert_eq!(
            engine.query().unwrap().centers,
            oracle.query().unwrap().centers
        );
    }

    #[test]
    fn torn_tail_keeps_the_valid_prefix_and_reopen_converges() {
        let dir = scratch("torn");
        write_log(&dir, &batches(12, 5));
        // Tear the *middle* segment: everything from it on is discarded.
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 3);
        let victim = &segs[1];
        let bytes = std::fs::read(&victim.1).unwrap();
        std::fs::write(&victim.1, &bytes[..bytes.len() - 3]).unwrap();
        let (records, cut) = read_log(&dir).unwrap();
        assert_eq!(cut.seq, victim.0);
        let replayed = build_tenant(None, &records, ParallelismSpec::Sequential).unwrap();
        let n = replayed.engine.time();
        assert!(n > 0 && n < 60, "prefix only, got {n}");
        // Reopen truncates the tear; a second replay sees the same log.
        drop(TenantWal::reopen(&dir, WalTuning::default(), cut).unwrap());
        let (again, cut2) = read_log(&dir).unwrap();
        assert_eq!(again, records);
        assert_eq!(cut2, cut);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unusable_logs_error_cleanly() {
        assert!(build_tenant(None, &[], ParallelismSpec::Sequential).is_err());
        let orphan = [WalRecord::Batch {
            start: 0,
            points: vec![pt(0)],
        }];
        assert!(build_tenant(None, &orphan, ParallelismSpec::Sequential).is_err());
        assert!(build_tenant(Some(b"garbage"), &[], ParallelismSpec::Sequential).is_err());
    }
}

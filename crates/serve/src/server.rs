//! The multi-tenant TCP server: shard threads own the engines, the hot
//! path is lock-free, admission control is a bounded queue, and one
//! event-driven reactor thread fronts every connection.
//!
//! ## Architecture
//!
//! ```text
//! client ──▶ ┌───────────────┐  bounded try_send  ┌────────────────────┐
//! client ──▶ │ reactor       │ ──────────────────▶│ shard 0: {tenants} │
//!   ⋮        │ (one thread,  │     (OVERLOADED    │ shard 1: {tenants} │
//! client ──▶ │  nonblocking) │      when full)    └────────────────────┘
//!            └───────────────┘ ◀─── reply channel + waker ──┘
//! ```
//!
//! Tenants are hash-sharded by name across `shards` worker threads; each
//! shard **owns** its tenants' [`WindowEngine`]s outright — no mutex is
//! ever taken on the insert/query path; cross-thread communication is
//! exactly one bounded [`sync_channel`] per shard. When a shard's queue
//! is full, the reactor replies [`ErrorKind::Overloaded`] immediately
//! instead of buffering without bound — clients treat it as
//! back-pressure and retry.
//!
//! The connection front-end lives in [`crate::net`]: a single reactor
//! thread multiplexes every socket (nonblocking I/O over a hand-rolled
//! `poll(2)` binding), reassembles frames from arbitrary byte chunks,
//! pipelines any number of in-flight requests per connection with
//! replies kept in request order, and reaps stalled or idle
//! connections. Requests that need a shard are dispatched exactly as
//! before — the same bounded channels, the same `OVERLOADED` contract —
//! with the per-request reply channel wrapped in a `ReplyTx` that
//! pokes the reactor's waker on completion.
//!
//! Arriving points land in a per-tenant ingest buffer that flushes into
//! the engine's batched [`insert_batch`] path when it reaches
//! [`ServeConfig::flush_batch`] points or on the shard's idle tick, so
//! per-frame wire overhead amortizes into one pool dispatch per batch.
//! `QUERY`/`STATS`/`CHECKPOINT` flush first, so replies always reflect
//! every acknowledged insert. Because the batched path is bit-identical
//! to per-point insertion (the PR 2 guarantee), the flush schedule never
//! shows up in answers.
//!
//! `CHECKPOINT` writes each tenant's FSW2 snapshot atomically
//! (tmp + rename) to [`ServeConfig::spool_dir`]; [`Server::start`]
//! replays the spool, so a kill-and-restart resumes every checkpointed
//! tenant. `DELETE` resets the tenant's engine ([`WindowEngine::reset`])
//! and parks it for reuse by the next `CREATE` with an identical
//! configuration — delete-and-recreate churn costs no reconstruction.
//!
//! [`insert_batch`]: fairsw_core::SlidingWindowClustering::insert_batch

use crate::net::conn::NetConfig;
use crate::net::reactor::{ConnStats, Reactor};
use crate::net::wake::{wake_pair, Waker};
use crate::protocol::{
    valid_tenant_name, write_frame, ErrorKind, Reply, Request, TenantConfig, WireProjection,
    WireStats,
};
use crate::wal::replicate::{follower_loop, subscription, Subscriber};
use crate::wal::segment::{encode_batch_body, encode_create_body};
use crate::wal::{atomic_write, build_tenant, read_log, TenantWal, WalRecord, WalTuning};
use fairsw_core::{ParallelismSpec, SlidingWindowClustering, WindowEngine};
use fairsw_metric::{Colored, EuclidPoint, Euclidean, Projectable, Projector, Relaxed};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Extension of spool files (one FSW2 snapshot per tenant).
const SPOOL_EXT: &str = "fsw2";
/// Recent query latencies retained per tenant for the percentiles.
const LATENCY_WINDOW: usize = 512;
/// Reset engines parked per shard for delete-and-recreate reuse.
const PARK_CAP: usize = 8;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Shard threads (tenants are hash-partitioned across them).
    pub shards: usize,
    /// Ingest-buffer flush threshold in points.
    pub flush_batch: usize,
    /// Bounded per-shard queue depth (admission control).
    pub queue_depth: usize,
    /// Idle tick: buffered points older than one tick are flushed even
    /// if the buffer is short.
    pub tick: Duration,
    /// Snapshot spool directory (`CHECKPOINT` target, replayed on
    /// startup). `None` disables checkpointing.
    pub spool_dir: Option<PathBuf>,
    /// Write-ahead-log root (one subdirectory per tenant). `None`
    /// disables the WAL: only `CHECKPOINT`ed state survives a kill.
    /// With a WAL, every *acknowledged* write is replayed on restart
    /// (group-commit fsync on the tick; see [`crate::wal`]).
    pub wal_dir: Option<PathBuf>,
    /// WAL segment-rotation and compaction thresholds.
    pub wal_tuning: WalTuning,
    /// Start as a hot standby replicating from this leader address.
    /// The server is read-only (writes answer [`ErrorKind::ReadOnly`])
    /// until a `PROMOTE` request detaches it.
    pub follow: Option<String>,
    /// Per-engine parallelism applied to every tenant (the default
    /// honors `FAIRSW_THREADS`).
    pub parallelism: ParallelismSpec,
    /// Reap a fully idle connection after this long without a byte
    /// from the peer (see [`crate::net`]).
    pub idle_timeout: Duration,
    /// Reap a connection stalled mid-frame after this long — the
    /// slowloris guard (see [`crate::net`]).
    pub header_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            flush_batch: 512,
            queue_depth: 128,
            tick: Duration::from_millis(20),
            spool_dir: None,
            wal_dir: None,
            wal_tuning: WalTuning::default(),
            follow: None,
            parallelism: ParallelismSpec::Auto,
            idle_timeout: NetConfig::default().idle_timeout,
            header_timeout: NetConfig::default().header_timeout,
        }
    }
}

impl ServeConfig {
    /// The WAL directory of one tenant (tenant names are validated to
    /// be path-safe).
    fn tenant_wal_dir(&self, tenant: &str) -> Option<PathBuf> {
        self.wal_dir.as_ref().map(|d| d.join(tenant))
    }

    /// The connection-level knobs, in the net layer's shape.
    fn net_config(&self) -> NetConfig {
        NetConfig {
            idle_timeout: self.idle_timeout,
            header_timeout: self.header_timeout,
            ..NetConfig::default()
        }
    }
}

/// One tenant's slot in the [`QueryCache`]: a version counter bumped by
/// every accepted state change, plus the `QUERY` reply recorded at that
/// version (when one was).
#[derive(Default)]
struct CacheEntry {
    version: u64,
    reply: Option<Reply>,
}

/// The serve-side `QUERY` result cache, shared by every connection
/// thread and every shard.
///
/// Each tenant carries a *version*: a counter its shard bumps for every
/// accepted state change — ingest (after the WAL accept), create,
/// delete, and every replicated record a follower applies. Bumping
/// clears the tenant's cached reply. A repeat `QUERY` at an unchanged
/// version is answered straight from the cache on the connection
/// thread, never touching the shard's engine; the first query after a
/// change recomputes and re-records. Because a cached reply is the
/// exact encoded reply a shard produced at a version no write has moved
/// since, cache answers are byte-identical to a from-scratch recompute
/// — the read-heavy differential lane enforces this on every thread
/// leg.
#[derive(Default)]
struct QueryCache {
    entries: Mutex<HashMap<String, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QueryCache {
    fn entries(&self) -> std::sync::MutexGuard<'_, HashMap<String, CacheEntry>> {
        // Every write under this lock replaces whole slots, so a holder
        // that panicked cannot leave a torn entry — a poisoned lock is
        // still safe to read through.
        self.entries.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Invalidates `tenant`: a state change was accepted for it.
    fn bump(&self, tenant: &str) {
        let mut entries = self.entries();
        let e = entries.entry(tenant.to_string()).or_default();
        e.version = e.version.wrapping_add(1);
        e.reply = None;
    }

    /// Cache lookup. A hit returns the recorded reply; a miss returns
    /// `None` plus the tenant's version at lookup time, which keys the
    /// subsequent [`store`](Self::store).
    fn begin_query(&self, tenant: &str) -> (Option<Reply>, u64) {
        let entries = self.entries();
        match entries.get(tenant) {
            Some(e) if e.reply.is_some() => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                (e.reply.clone(), e.version)
            }
            Some(e) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                (None, e.version)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                (None, 0)
            }
        }
    }

    /// Records a computed reply under the version observed before the
    /// query was dispatched. When a write raced the computation the
    /// version has moved and the store is refused — the reply may or
    /// may not reflect that write, so it must never be served again.
    /// Only deterministic outcomes (a solution, or the engine's own
    /// query error) are cacheable; admission-control and routing errors
    /// are transient.
    fn store(&self, tenant: &str, version: u64, reply: &Reply) {
        if !matches!(
            reply,
            Reply::Solution(_) | Reply::Error(ErrorKind::QueryFailed, _)
        ) {
            return;
        }
        let mut entries = self.entries();
        let e = entries.entry(tenant.to_string()).or_default();
        if e.version == version {
            e.reply = Some(reply.clone());
        }
    }

    fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// FNV-1a; stable tenant → shard assignment.
fn shard_of(tenant: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// The shard-side half of a tenant's JL ingest projection: the wire
/// spec plus the matrix, rematerialized from the seed once the first
/// point reveals the input dimensionality.
///
/// The shard projects accepted points *before* they reach
/// [`log_accept`], so the WAL, the replication stream, the ingest
/// buffer, the engine, and every snapshot hold only `out_dim`-sized
/// payloads. Followers and WAL replay therefore apply already-projected
/// records verbatim — projection happens exactly once, on the accepting
/// leader, and recovery is bit-identical by construction.
struct TenantProjection {
    spec: WireProjection,
    projector: Option<Projector>,
    /// Accumulated projection wall time (ns) and points, for `STATS`.
    spent_ns: u64,
    points: u64,
}

impl TenantProjection {
    fn new(spec: WireProjection) -> Self {
        TenantProjection {
            spec,
            projector: None,
            spent_ns: 0,
            points: 0,
        }
    }

    /// Projects a batch in place. The tenant's first-ever point fixes
    /// the input dimensionality; every later point must match it. The
    /// whole batch is validated *before* anything is projected (or the
    /// matrix materialized), preserving the ingest path's all-or-nothing
    /// contract: a refused batch changes no state.
    #[allow(clippy::result_large_err)] // Err is the wire `Reply`; cold path
    fn apply(&mut self, points: &mut [Colored<EuclidPoint>]) -> Result<(), Reply> {
        if points.is_empty() {
            return Ok(());
        }
        let in_dim = match &self.projector {
            Some(pr) => pr.in_dim(),
            None => points[0].point.dim(),
        };
        if in_dim == 0 {
            return Err(Reply::Error(
                ErrorKind::BadRequest,
                "cannot project a zero-dimensional point".into(),
            ));
        }
        if let Some(bad) = points.iter().find(|p| p.point.dim() != in_dim) {
            return Err(Reply::Error(
                ErrorKind::BadRequest,
                format!(
                    "point dimension {} does not match the projection input dimension {in_dim}",
                    bad.point.dim()
                ),
            ));
        }
        let projector = self.projector.get_or_insert_with(|| {
            if self.spec.sparse {
                Projector::sparse(in_dim, self.spec.out_dim, self.spec.seed)
            } else {
                Projector::dense(in_dim, self.spec.out_dim, self.spec.seed)
            }
        });
        let t0 = Instant::now();
        for p in points.iter_mut() {
            *p = Colored::new(p.point.project_with(projector), p.color);
        }
        self.spent_ns += t0.elapsed().as_nanos() as u64;
        self.points += points.len() as u64;
        Ok(())
    }

    fn in_dim(&self) -> u64 {
        self.projector.as_ref().map_or(0, |p| p.in_dim() as u64)
    }

    fn ns_per_point(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.spent_ns as f64 / self.points as f64
        }
    }
}

/// One tenant: its engine plus ingest buffer and service counters.
struct Tenant {
    engine: WindowEngine<Relaxed<Euclidean>>,
    /// The creating config (None for spool-restored tenants) — the key
    /// for delete-and-recreate engine reuse.
    config: Option<TenantConfig>,
    variant_code: u8,
    /// Colors the engine accepts (`0..ncolors`). The per-guess tables
    /// are indexed by color, so an out-of-range wire color must be
    /// rejected at ingest — it would panic the shard deep inside the
    /// engine otherwise.
    ncolors: usize,
    buffer: Vec<Colored<EuclidPoint>>,
    points_total: u64,
    created: Instant,
    latencies: Vec<Duration>,
    /// The tenant's write-ahead log (servers started with a WAL dir).
    wal: Option<TenantWal>,
    /// JL ingest projection (from the config, or a spool header).
    proj: Option<TenantProjection>,
}

impl Tenant {
    fn new(engine: WindowEngine<Relaxed<Euclidean>>, config: Option<TenantConfig>) -> Self {
        let variant_code = match engine.variant_name() {
            "fixed" => 0,
            "oblivious" => 1,
            "compact" => 2,
            "robust" => 3,
            _ => 4,
        };
        let ncolors = match &config {
            Some(c) => c.caps.len(),
            // Spool-restored tenants are always the fixed variant; its
            // configuration rode in the snapshot.
            None => engine.num_colors().unwrap_or(0),
        };
        let proj = config
            .as_ref()
            .and_then(|c| c.projection)
            .map(TenantProjection::new);
        Tenant {
            engine,
            config,
            variant_code,
            ncolors,
            buffer: Vec::new(),
            points_total: 0,
            created: Instant::now(),
            latencies: Vec::new(),
            wal: None,
            proj,
        }
    }

    fn with_wal(mut self, wal: Option<TenantWal>) -> Self {
        self.wal = wal;
        self
    }

    /// Attaches a projection spec recovered from a spool header (the
    /// config-less restore path).
    fn with_projection(mut self, spec: Option<WireProjection>) -> Self {
        if let Some(spec) = spec {
            self.proj = Some(TenantProjection::new(spec));
        }
        self
    }

    /// Rejects colors the engine's capacity-indexed tables cannot hold.
    #[allow(clippy::result_large_err)] // Err is the wire `Reply`; cold path
    fn check_colors<'a>(
        &self,
        points: impl IntoIterator<Item = &'a Colored<EuclidPoint>>,
    ) -> Result<(), Reply> {
        match points
            .into_iter()
            .find(|p| p.color as usize >= self.ncolors)
        {
            None => Ok(()),
            Some(p) => Err(Reply::Error(
                ErrorKind::BadRequest,
                format!(
                    "color {} out of range (tenant has {} colors)",
                    p.color, self.ncolors
                ),
            )),
        }
    }

    /// Applies the buffered points through the batched fast path.
    fn flush(&mut self) {
        if !self.buffer.is_empty() {
            self.engine.insert_batch(self.buffer.drain(..));
        }
    }

    fn record_latency(&mut self, d: Duration) {
        if self.latencies.len() == LATENCY_WINDOW {
            self.latencies.remove(0);
        }
        self.latencies.push(d);
    }

    fn stats(&self) -> WireStats {
        let mem = self.engine.memory_stats();
        let elapsed = self.created.elapsed().as_secs_f64().max(1e-9);
        let mut sorted: Vec<f64> = self
            .latencies
            .iter()
            .map(|d| d.as_secs_f64() * 1e6)
            .collect();
        sorted.sort_by(f64::total_cmp);
        let pct = |q: f64| crate::percentile::percentile_sorted(&sorted, q);
        WireStats {
            time: self.engine.time(),
            window: self.engine.window_size() as u64,
            stored_points: mem.stored_points() as u64,
            unique_points: mem.unique_points as u64,
            payload_bytes: mem.payload_bytes as u64,
            resident_bytes: mem.resident_bytes() as u64,
            num_guesses: mem.num_guesses() as u64,
            variant: self.variant_code,
            points_total: self.points_total,
            buffered: self.buffer.len() as u64,
            points_per_sec: self.points_total as f64 / elapsed,
            query_p50_us: pct(0.50),
            query_p90_us: pct(0.90),
            query_p99_us: pct(0.99),
            wal_bytes: self.wal.as_ref().map_or(0, TenantWal::total_bytes),
            wal_segments: self.wal.as_ref().map_or(0, TenantWal::segments),
            wal_unsynced_bytes: self.wal.as_ref().map_or(0, TenantWal::unsynced_bytes),
            wal_fsync_lag_us: self.wal.as_ref().map_or(0.0, TenantWal::fsync_lag_us),
            // Shard- and server-level: filled in by the shard serving
            // the request.
            followers: 0,
            repl_lag: 0,
            query_cache_hits: 0,
            query_cache_misses: 0,
            conns_open: 0,
            conns_accepted: 0,
            conns_reaped: 0,
            proj_in_dim: self.proj.as_ref().map_or(0, TenantProjection::in_dim),
            proj_out_dim: self.proj.as_ref().map_or(0, |p| p.spec.out_dim as u64),
            proj_ns_per_point: self
                .proj
                .as_ref()
                .map_or(0.0, TenantProjection::ns_per_point),
        }
    }

    /// The tenant's spool representation: the engine snapshot, prefixed
    /// with the projection spec when the tenant projects (see
    /// [`spool_encode`]).
    fn spool_bytes(&self) -> Option<Vec<u8>> {
        let bytes = self.engine.snapshot()?;
        Some(spool_encode(self.proj.as_ref().map(|p| p.spec), &bytes))
    }
}

/// The reply half handed to a shard: a per-request channel sender plus
/// the reactor's waker, poked after a successful send so a parked
/// `poll` learns about the completed reply immediately instead of on
/// its next tick.
pub(crate) struct ReplyTx {
    tx: Sender<Reply>,
    waker: Waker,
}

impl ReplyTx {
    fn send(&self, reply: Reply) {
        if self.tx.send(reply).is_ok() {
            self.waker.wake();
        }
    }
}

/// A request routed to a shard. Replies go back on a per-request
/// channel so connections can interleave freely.
enum ShardMsg {
    Req {
        tenant: String,
        op: Op,
        reply: ReplyTx,
    },
    /// Checkpoint every tenant of this shard.
    CheckpointAll {
        reply: ReplyTx,
    },
    /// Attach a replication subscriber: bootstrap every tenant of this
    /// shard onto it, then add it to the live fan-out list.
    Subscribe {
        sub: Subscriber,
        reply: Sender<Reply>,
    },
    /// Follower side: apply one replicated record to this shard.
    Apply {
        tenant: String,
        record: WalRecord,
        reply: Sender<Result<(), String>>,
    },
    /// Test hook: occupy the shard thread so the bounded queue fills.
    #[allow(dead_code)]
    Stall(Duration),
    Shutdown,
}

/// Tenant-scoped operations (the shard-side view of a [`Request`]).
enum Op {
    Create(TenantConfig),
    Insert(Colored<EuclidPoint>),
    InsertBatch(Vec<Colored<EuclidPoint>>),
    Query,
    Stats,
    Checkpoint,
    Delete,
}

/// One shard: owns a disjoint subset of tenants.
struct Shard {
    tenants: HashMap<String, Tenant>,
    /// Reset engines awaiting reuse, keyed by their creating config.
    parked: Vec<(TenantConfig, WindowEngine<Relaxed<Euclidean>>)>,
    /// Live replication subscribers (fan-out targets for every
    /// accepted write on this shard).
    subs: Vec<Subscriber>,
    /// The server-wide query-result cache: the shard bumps tenant
    /// versions on every accepted state change.
    cache: Arc<QueryCache>,
    /// Reactor-side connection counters, surfaced through `STATS`.
    conn_stats: Arc<ConnStats>,
    cfg: ServeConfig,
}

impl Shard {
    fn run(mut self, rx: Receiver<ShardMsg>) {
        let mut last_tick = Instant::now();
        loop {
            // Wake at the next tick boundary even while messages keep
            // arriving — the group-commit fsync must fire under
            // sustained load, not only when the shard goes idle.
            let timeout = self.cfg.tick.saturating_sub(last_tick.elapsed());
            match rx.recv_timeout(timeout) {
                Ok(ShardMsg::Req { tenant, op, reply }) => {
                    let r = self.handle(&tenant, op);
                    reply.send(r);
                }
                Ok(ShardMsg::CheckpointAll { reply }) => {
                    let r = self.checkpoint_all();
                    reply.send(r);
                }
                Ok(ShardMsg::Subscribe { sub, reply }) => {
                    let r = self.subscribe(sub);
                    let _ = reply.send(r);
                }
                Ok(ShardMsg::Apply {
                    tenant,
                    record,
                    reply,
                }) => {
                    let r = self.apply(&tenant, record);
                    let _ = reply.send(r);
                }
                Ok(ShardMsg::Stall(d)) => std::thread::sleep(d),
                Ok(ShardMsg::Shutdown) | Err(RecvTimeoutError::Disconnected) => {
                    // Clean shutdown: everything acknowledged is synced.
                    for t in self.tenants.values_mut() {
                        if let Some(wal) = &mut t.wal {
                            let _ = wal.sync();
                        }
                    }
                    return;
                }
                Err(RecvTimeoutError::Timeout) => {}
            }
            if last_tick.elapsed() >= self.cfg.tick {
                self.tick();
                last_tick = Instant::now();
            }
        }
    }

    /// The periodic tick: age out ingest buffers, group-commit the
    /// WALs, and compact any log past its threshold.
    fn tick(&mut self) {
        for (name, t) in self.tenants.iter_mut() {
            t.flush();
            if let Some(wal) = &mut t.wal {
                if let Err(e) = wal.sync() {
                    eprintln!("fairsw-served: wal sync failed for {name:?}: {e}");
                }
            }
        }
        self.compact_due();
    }

    /// Folds oversized WALs into spool snapshots (snapshot-capable
    /// tenants with a spool only — for the rest the log *is* the
    /// durable history and must be kept whole).
    fn compact_due(&mut self) {
        let Some(dir) = self.cfg.spool_dir.clone() else {
            return;
        };
        for (name, t) in self.tenants.iter_mut() {
            let due = t.wal.as_ref().is_some_and(TenantWal::wants_compaction);
            if !due {
                continue;
            }
            t.flush();
            let Some(bytes) = t.spool_bytes() else {
                continue;
            };
            match spool_write(&dir, name, &bytes) {
                Ok(()) => {
                    if let Err(e) = compact_log(t) {
                        eprintln!("fairsw-served: wal compaction failed for {name:?}: {e}");
                    }
                }
                Err(e) => eprintln!("fairsw-served: compaction spool write for {name:?}: {e}"),
            }
        }
    }

    fn handle(&mut self, tenant: &str, op: Op) -> Reply {
        match op {
            Op::Create(config) => self.create(tenant, config),
            Op::Insert(p) => match self.tenants.get_mut(tenant) {
                Some(t) => {
                    if let Err(reply) = t.check_colors([&p]) {
                        return reply;
                    }
                    // Project before the durability step: the WAL and
                    // every subscriber see the low-dimensional point.
                    let mut p = [p];
                    if let Some(proj) = &mut t.proj {
                        if let Err(reply) = proj.apply(&mut p) {
                            return reply;
                        }
                    }
                    let [p] = p;
                    // Log before ack: the reply leaves only after the
                    // point is in the WAL (page cache) and on its way
                    // to every subscriber.
                    if let Err(reply) =
                        log_accept(&mut self.subs, tenant, t, std::slice::from_ref(&p))
                    {
                        return reply;
                    }
                    t.buffer.push(p);
                    t.points_total += 1;
                    self.cache.bump(tenant);
                    if t.buffer.len() >= self.cfg.flush_batch {
                        t.flush();
                    }
                    Reply::Ok
                }
                None => no_such_tenant(tenant),
            },
            Op::InsertBatch(points) => match self.tenants.get_mut(tenant) {
                Some(t) => {
                    // All-or-nothing: a batch with any bad color is
                    // refused whole, so an error reply never leaves a
                    // partially applied batch behind.
                    if let Err(reply) = t.check_colors(&points) {
                        return reply;
                    }
                    let mut points = points;
                    if let Some(proj) = &mut t.proj {
                        if let Err(reply) = proj.apply(&mut points) {
                            return reply;
                        }
                    }
                    if let Err(reply) = log_accept(&mut self.subs, tenant, t, &points) {
                        return reply;
                    }
                    t.points_total += points.len() as u64;
                    t.buffer.extend(points);
                    self.cache.bump(tenant);
                    if t.buffer.len() >= self.cfg.flush_batch {
                        t.flush();
                    }
                    Reply::Ok
                }
                None => no_such_tenant(tenant),
            },
            Op::Query => match self.tenants.get_mut(tenant) {
                Some(t) => {
                    t.flush();
                    let t0 = Instant::now();
                    let result = t.engine.query();
                    t.record_latency(t0.elapsed());
                    Reply::from_query(&result)
                }
                None => no_such_tenant(tenant),
            },
            Op::Stats => match self.tenants.get_mut(tenant) {
                Some(t) => {
                    t.flush();
                    let mut stats = t.stats();
                    stats.followers = self.subs.len() as u64;
                    stats.repl_lag = self.subs.iter().map(Subscriber::lag).max().unwrap_or(0);
                    stats.query_cache_hits = self.cache.hit_count();
                    stats.query_cache_misses = self.cache.miss_count();
                    stats.conns_open = self.conn_stats.open.load(Ordering::Relaxed);
                    stats.conns_accepted = self.conn_stats.accepted.load(Ordering::Relaxed);
                    stats.conns_reaped = self.conn_stats.reaped.load(Ordering::Relaxed);
                    Reply::Stats(stats)
                }
                None => no_such_tenant(tenant),
            },
            Op::Checkpoint => {
                let Some(dir) = self.cfg.spool_dir.clone() else {
                    return Reply::Error(
                        ErrorKind::Unsupported,
                        "server started without a spool directory".into(),
                    );
                };
                match self.tenants.get_mut(tenant) {
                    Some(t) => {
                        t.flush();
                        match t.spool_bytes() {
                            Some(bytes) => match spool_write(&dir, tenant, &bytes) {
                                Ok(()) => {
                                    // The snapshot covers the whole log:
                                    // fold it away.
                                    if let Err(e) = compact_log(t) {
                                        eprintln!(
                                            "fairsw-served: wal compaction failed for {tenant:?}: {e}"
                                        );
                                    }
                                    Reply::Checkpointed {
                                        written: 1,
                                        skipped: 0,
                                    }
                                }
                                Err(e) => Reply::Error(
                                    ErrorKind::Unsupported,
                                    format!("spool write failed: {e}"),
                                ),
                            },
                            None => Reply::Error(
                                ErrorKind::Unsupported,
                                format!(
                                    "variant {:?} does not support snapshots",
                                    t.engine.variant_name()
                                ),
                            ),
                        }
                    }
                    None => no_such_tenant(tenant),
                }
            }
            Op::Delete => match self.tenants.remove(tenant) {
                Some(mut t) => {
                    // A deleted tenant must stay deleted across a
                    // restart: drop its spool snapshot and WAL too.
                    self.spool_remove(tenant);
                    if let Some(wal) = t.wal.take() {
                        let dir = wal.dir().to_path_buf();
                        drop(wal); // close the open segment first
                        if let Err(e) = TenantWal::remove(&dir) {
                            eprintln!("fairsw-served: wal removal failed for {tenant:?}: {e}");
                        }
                    }
                    push_record(&mut self.subs, tenant, &encode_record(&WalRecord::Delete));
                    // A cached reply from the deleted life must never
                    // answer for a future tenant under the same name.
                    self.cache.bump(tenant);
                    // Park the reset engine for delete-and-recreate
                    // reuse: the next CREATE with the same config takes
                    // it instead of reconstructing.
                    if let Some(config) = t.config.take() {
                        if self.parked.len() < PARK_CAP {
                            t.engine.reset();
                            self.parked.push((config, t.engine));
                        }
                    }
                    Reply::Ok
                }
                None => no_such_tenant(tenant),
            },
        }
    }

    fn create(&mut self, tenant: &str, config: TenantConfig) -> Reply {
        if self.tenants.contains_key(tenant) {
            return Reply::Error(
                ErrorKind::TenantExists,
                format!("tenant {tenant:?} already exists"),
            );
        }
        let engine = match self.parked.iter().position(|(c, _)| *c == config) {
            Some(i) => self.parked.swap_remove(i).1,
            None => match config.build_engine() {
                Ok(e) => e.with_parallelism(self.cfg.parallelism),
                Err(e) => return Reply::Error(ErrorKind::BadRequest, e.to_string()),
            },
        };
        // A stale snapshot under this name (from a deleted or
        // pre-restart life) must not resurrect over the fresh tenant
        // if the server crashes before its first CHECKPOINT.
        self.spool_remove(tenant);
        // Start the tenant's log with its Create record — a fresh WAL
        // wipes any stale directory for the same reason.
        let wal = match self.cfg.tenant_wal_dir(tenant) {
            Some(dir) => match TenantWal::create(&dir, self.cfg.wal_tuning) {
                Ok(mut wal) => {
                    let body = match encode_create_body(&config) {
                        Ok(b) => b,
                        Err(e) => {
                            return Reply::Error(
                                ErrorKind::BadRequest,
                                format!("config too large for the log: {e}"),
                            )
                        }
                    };
                    if let Err(e) = wal.append(&body).and_then(|()| wal.sync()) {
                        return Reply::Error(
                            ErrorKind::Unsupported,
                            format!("wal create failed: {e}"),
                        );
                    }
                    push_record(&mut self.subs, tenant, &body);
                    Some(wal)
                }
                Err(e) => {
                    return Reply::Error(ErrorKind::Unsupported, format!("wal create failed: {e}"))
                }
            },
            None => None,
        };
        self.tenants.insert(
            tenant.to_string(),
            Tenant::new(engine, Some(config)).with_wal(wal),
        );
        // A fresh tenant must not serve replies cached under a prior
        // life of the same name.
        self.cache.bump(tenant);
        Reply::Ok
    }

    /// Bootstraps `sub` with every tenant's durable history, then adds
    /// it to the live fan-out list. Snapshot-capable tenants ship one
    /// `Create` + one fresh `Snapshot` record; the rest replay their
    /// on-disk log (whose records double as the wire bootstrap).
    fn subscribe(&mut self, sub: Subscriber) -> Reply {
        for (name, t) in self.tenants.iter_mut() {
            t.flush();
            let mut frames: Vec<Vec<u8>> = Vec::new();
            if let Some(config) = &t.config {
                match encode_create_body(config) {
                    Ok(body) => frames.push(body),
                    Err(e) => {
                        return Reply::Error(
                            ErrorKind::Unsupported,
                            format!("bootstrap encode of {name:?} failed: {e}"),
                        )
                    }
                }
            }
            if let Some(bytes) = t.engine.snapshot() {
                let mut body = Vec::with_capacity(bytes.len() + 8);
                if let Err(e) = WalRecord::Snapshot(bytes).encode(&mut body) {
                    return Reply::Error(
                        ErrorKind::Unsupported,
                        format!("bootstrap encode of {name:?} failed: {e}"),
                    );
                }
                frames.push(body);
            } else if let Some(wal) = &mut t.wal {
                // Sync first so the on-disk log holds every
                // acknowledged record, then stream it.
                let _ = wal.sync();
                match read_log(wal.dir()) {
                    Ok((records, _)) => {
                        // The log starts with its own Create.
                        frames.clear();
                        frames.extend(records.iter().map(encode_record));
                    }
                    Err(e) => {
                        return Reply::Error(
                            ErrorKind::Unsupported,
                            format!("bootstrap read of {name:?} failed: {e}"),
                        )
                    }
                }
            }
            for body in frames {
                // Blocking push: a bootstrap may exceed the queue
                // depth; the subscriber is actively draining.
                if !sub.push_blocking(Reply::wal_frame_bytes(name, &body)) {
                    return Reply::Error(ErrorKind::Unsupported, "subscriber hung up".into());
                }
            }
        }
        self.subs.push(sub);
        Reply::Ok
    }

    /// Applies one replicated record (the follower side). Errors make
    /// the follower drop the connection and resubscribe — the bootstrap
    /// is idempotent, so resync is always safe.
    fn apply(&mut self, tenant: &str, record: WalRecord) -> Result<(), String> {
        match record {
            WalRecord::Create(config) => {
                // A (re)connect bootstrap or a live re-create: either
                // way the leader's history restarts here, so any local
                // state under that name is stale.
                if self.tenants.contains_key(tenant) {
                    self.handle(tenant, Op::Delete);
                }
                match self.create(tenant, config) {
                    Reply::Ok => Ok(()),
                    Reply::Error(_, msg) => Err(msg),
                    other => Err(format!("unexpected create reply {other:?}")),
                }
            }
            WalRecord::Batch { start, points } => {
                let Some(t) = self.tenants.get_mut(tenant) else {
                    return Err(format!("batch for unknown tenant {tenant:?}"));
                };
                t.check_colors(&points)
                    .map_err(|r| format!("replicated batch refused: {r:?}"))?;
                // The leader's `start` is a position in its stream;
                // ours matches except across a reconnect, where the
                // bootstrap re-delivers what we already hold.
                let skip = (t.points_total.saturating_sub(start)) as usize;
                if skip >= points.len() {
                    return Ok(());
                }
                let suffix = &points[skip..];
                if let Err(Reply::Error(_, msg)) = log_accept(&mut self.subs, tenant, t, suffix) {
                    return Err(msg);
                }
                t.points_total += suffix.len() as u64;
                t.buffer.extend_from_slice(suffix);
                // Replicated state moved: cached replies are stale.
                self.cache.bump(tenant);
                if t.buffer.len() >= self.cfg.flush_batch {
                    t.flush();
                }
                Ok(())
            }
            WalRecord::Snapshot(bytes) => {
                let engine = WindowEngine::restore(Relaxed::exact(Euclidean), &bytes)
                    .map_err(|e| format!("bootstrap snapshot: {e}"))?
                    .with_parallelism(self.cfg.parallelism);
                let config = self.tenants.get(tenant).and_then(|t| t.config.clone());
                let mut fresh = Tenant::new(engine, config);
                fresh.points_total = fresh.engine.time();
                // Persist our own recovery point: snapshot to the
                // spool, WAL restarted just past it.
                if let Some(dir) = &self.cfg.spool_dir {
                    let spool = spool_encode(fresh.proj.as_ref().map(|p| p.spec), &bytes);
                    if let Err(e) = spool_write(dir, tenant, &spool) {
                        return Err(format!("bootstrap spool write: {e}"));
                    }
                }
                if let Some(dir) = self.cfg.tenant_wal_dir(tenant) {
                    let mut wal = TenantWal::create(&dir, self.cfg.wal_tuning)
                        .map_err(|e| format!("bootstrap wal: {e}"))?;
                    // Seed the fresh log so our own restart replays the
                    // same state: the config, and — when no spool holds
                    // the snapshot — the snapshot record itself.
                    let mut seed: Vec<Vec<u8>> = Vec::new();
                    if let Some(config) = &fresh.config {
                        seed.push(
                            encode_create_body(config)
                                .map_err(|e| format!("bootstrap wal: {e}"))?,
                        );
                    }
                    if self.cfg.spool_dir.is_none() {
                        seed.push(encode_record(&WalRecord::Snapshot(bytes)));
                    }
                    for body in &seed {
                        wal.append(body)
                            .map_err(|e| format!("bootstrap wal: {e}"))?;
                    }
                    wal.sync().map_err(|e| format!("bootstrap wal: {e}"))?;
                    fresh.wal = Some(wal);
                }
                self.tenants.insert(tenant.to_string(), fresh);
                self.cache.bump(tenant);
                Ok(())
            }
            WalRecord::Delete => {
                if self.tenants.contains_key(tenant) {
                    self.handle(tenant, Op::Delete);
                }
                Ok(())
            }
        }
    }

    /// Best-effort removal of a tenant's spool snapshot (the shard owns
    /// its tenants' spool files; nothing else writes them).
    fn spool_remove(&self, tenant: &str) {
        if let Some(dir) = &self.cfg.spool_dir {
            let _ = std::fs::remove_file(dir.join(format!("{tenant}.{SPOOL_EXT}")));
        }
    }

    fn checkpoint_all(&mut self) -> Reply {
        let Some(dir) = self.cfg.spool_dir.clone() else {
            return Reply::Error(
                ErrorKind::Unsupported,
                "server started without a spool directory".into(),
            );
        };
        let (mut written, mut skipped) = (0u32, 0u32);
        for (name, t) in self.tenants.iter_mut() {
            t.flush();
            match t.spool_bytes() {
                Some(bytes) => match spool_write(&dir, name, &bytes) {
                    Ok(()) => {
                        written += 1;
                        if let Err(e) = compact_log(t) {
                            eprintln!("fairsw-served: wal compaction failed for {name:?}: {e}");
                        }
                    }
                    Err(e) => {
                        return Reply::Error(
                            ErrorKind::Unsupported,
                            format!("spool write failed for {name:?}: {e}"),
                        )
                    }
                },
                None => skipped += 1,
            }
        }
        Reply::Checkpointed { written, skipped }
    }
}

/// Encodes one record body. Every record reaching here was decoded from
/// a wire or disk frame — i.e. it already round-tripped the format — so
/// re-encoding cannot exceed the size caps.
fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut body = Vec::new();
    record
        .encode(&mut body)
        .expect("previously framed record re-encodes");
    body
}

/// The accept-path durability step, shared by leader ingest and
/// follower apply: encode the batch at the tenant's current stream
/// position, append it to the WAL (ack only after), and fan it out to
/// every live subscriber. Subscribers that are gone or too slow are
/// dropped — replication must never block or fail the hot path.
#[allow(clippy::result_large_err)] // Err is the wire `Reply`; cold path
fn log_accept(
    subs: &mut Vec<Subscriber>,
    name: &str,
    t: &mut Tenant,
    points: &[Colored<EuclidPoint>],
) -> Result<(), Reply> {
    if t.wal.is_none() && subs.is_empty() {
        return Ok(());
    }
    let body = encode_batch_body(t.points_total, points).map_err(|e| {
        Reply::Error(
            ErrorKind::BadRequest,
            format!("batch too large for the log: {e}"),
        )
    })?;
    if let Some(wal) = &mut t.wal {
        wal.append(&body)
            .map_err(|e| Reply::Error(ErrorKind::Unsupported, format!("wal append failed: {e}")))?;
    }
    push_record(subs, name, &body);
    Ok(())
}

/// Folds a tenant's log away after its snapshot reached the spool:
/// compacts to a fresh segment and reseeds it with the tenant's
/// `Create` record, so a compacted log stays self-describing (config
/// included) across restarts. Purely local — subscribers see nothing.
fn compact_log(t: &mut Tenant) -> io::Result<()> {
    let config = t.config.clone();
    let Some(wal) = &mut t.wal else {
        return Ok(());
    };
    wal.compact()?;
    if let Some(config) = &config {
        wal.append(&encode_create_body(config)?)?;
        wal.sync()?;
    }
    Ok(())
}

/// Non-blocking fan-out of one encoded record to every subscriber.
fn push_record(subs: &mut Vec<Subscriber>, name: &str, body: &[u8]) {
    if subs.is_empty() {
        return;
    }
    let frame = Reply::wal_frame_bytes(name, body);
    subs.retain(|s| s.push(frame.clone()));
}

fn no_such_tenant(tenant: &str) -> Reply {
    Reply::Error(ErrorKind::NoSuchTenant, format!("no tenant {tenant:?}"))
}

/// Atomic snapshot write — the WAL's fsync'd `tmp + rename` helper, so
/// the spool gets the same durability (including the parent-directory
/// fsync the pre-WAL spool skipped).
fn spool_write(dir: &std::path::Path, tenant: &str, bytes: &[u8]) -> io::Result<()> {
    atomic_write(dir, &format!("{tenant}.{SPOOL_EXT}"), bytes)
}

/// Magic prefixing the spool snapshot of a *projecting* tenant. The
/// engine holds already-projected points, so its FSW2 payload carries no
/// trace of the projection — without the header a spool-only restart
/// (`--spool` without `--wal`) would come back accepting raw
/// high-dimensional points unprojected. Non-projecting tenants keep the
/// bare FSW2 format.
const SPOOL_PROJ_MAGIC: &[u8; 4] = b"FSWQ";

/// Wraps an engine snapshot in the spool format: a 21-byte projection
/// header (magic, sparse tag, `out_dim`, seed) when the tenant
/// projects, the bare snapshot otherwise.
fn spool_encode(proj: Option<WireProjection>, snapshot: &[u8]) -> Vec<u8> {
    let Some(spec) = proj else {
        return snapshot.to_vec();
    };
    let mut out = Vec::with_capacity(21 + snapshot.len());
    out.extend_from_slice(SPOOL_PROJ_MAGIC);
    out.push(if spec.sparse { 2 } else { 1 });
    out.extend_from_slice(&(spec.out_dim as u64).to_le_bytes());
    out.extend_from_slice(&spec.seed.to_le_bytes());
    out.extend_from_slice(snapshot);
    out
}

/// Splits a spool file into its optional projection spec and the FSW2
/// payload. Headerless files (non-projecting tenants, or spools written
/// before projections existed) pass through untouched.
fn spool_decode(bytes: &[u8]) -> Result<(Option<WireProjection>, &[u8]), String> {
    if !bytes.starts_with(SPOOL_PROJ_MAGIC) {
        return Ok((None, bytes));
    }
    if bytes.len() < 21 {
        return Err("truncated projection header".into());
    }
    let sparse = match bytes[4] {
        1 => false,
        2 => true,
        other => return Err(format!("unknown projection tag {other}")),
    };
    let out_dim = u64::from_le_bytes(bytes[5..13].try_into().unwrap()) as usize;
    if out_dim == 0 {
        return Err("projection dimension 0".into());
    }
    let seed = u64::from_le_bytes(bytes[13..21].try_into().unwrap());
    Ok((
        Some(WireProjection {
            out_dim,
            seed,
            sparse,
        }),
        &bytes[21..],
    ))
}

/// Restores every spooled tenant (`<name>.fsw2`), skipping unreadable
/// or corrupt files with a note on stderr — a damaged snapshot must not
/// keep the service down.
fn spool_replay(cfg: &ServeConfig) -> Vec<(String, Tenant)> {
    let Some(dir) = &cfg.spool_dir else {
        return Vec::new();
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some(SPOOL_EXT) {
            continue;
        }
        let Some(name) = path.file_stem().and_then(|s| s.to_str()).map(String::from) else {
            continue;
        };
        if !valid_tenant_name(&name) {
            continue;
        }
        let restored = std::fs::read(&path)
            .map_err(|e| e.to_string())
            .and_then(|bytes| {
                let (proj, payload) = spool_decode(&bytes)?;
                WindowEngine::restore(Relaxed::exact(Euclidean), payload)
                    .map(|e| (proj, e))
                    .map_err(|e| e.to_string())
            });
        match restored {
            Ok((proj, engine)) => {
                let engine = engine.with_parallelism(cfg.parallelism);
                let mut tenant = Tenant::new(engine, None).with_projection(proj);
                tenant.points_total = tenant.engine.time();
                out.push((name, tenant));
            }
            Err(e) => eprintln!("fairsw-served: skipping spool file {path:?}: {e}"),
        }
    }
    out
}

/// Recovers every tenant from durable state. Without a WAL this is the
/// spool replay; with one, each tenant is rebuilt from its spool
/// snapshot plus the valid WAL suffix, and its log is reopened at the
/// replayed cut (truncating any torn tail for good). Damaged tenants
/// are skipped with a note — recovery of one tenant must not keep the
/// service down.
fn replay_all(cfg: &ServeConfig) -> Vec<(String, Tenant)> {
    let Some(wal_root) = &cfg.wal_dir else {
        return spool_replay(cfg);
    };
    let mut names = std::collections::BTreeSet::new();
    if let Some(dir) = &cfg.spool_dir {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) == Some(SPOOL_EXT) {
                    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                        names.insert(stem.to_string());
                    }
                }
            }
        }
    }
    if let Ok(entries) = std::fs::read_dir(wal_root) {
        for entry in entries.flatten() {
            if entry.path().is_dir() {
                if let Some(name) = entry.file_name().to_str() {
                    names.insert(name.to_string());
                }
            }
        }
    }
    let mut out = Vec::new();
    for name in names {
        if !valid_tenant_name(&name) {
            continue;
        }
        let raw_snapshot = cfg
            .spool_dir
            .as_ref()
            .and_then(|d| std::fs::read(d.join(format!("{name}.{SPOOL_EXT}"))).ok());
        // Peel the spool's projection header: the FSW2 payload goes to
        // the replay; the spec backstops a log without a Create record.
        let (spool_proj, snapshot) = match raw_snapshot.as_deref().map(spool_decode).transpose() {
            Ok(v) => match v {
                Some((proj, payload)) => (proj, Some(payload)),
                None => (None, None),
            },
            Err(e) => {
                eprintln!("fairsw-served: skipping tenant {name:?}: spool: {e}");
                continue;
            }
        };
        let tenant_dir = wal_root.join(&name);
        let (records, cut) = match read_log(&tenant_dir) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("fairsw-served: skipping tenant {name:?}: wal read failed: {e}");
                continue;
            }
        };
        let replayed = match build_tenant(snapshot, &records, cfg.parallelism) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fairsw-served: skipping tenant {name:?}: {e}");
                continue;
            }
        };
        match TenantWal::reopen(&tenant_dir, cfg.wal_tuning, cut) {
            Ok(wal) => {
                let has_config = replayed.config.is_some();
                let mut tenant = Tenant::new(replayed.engine, replayed.config).with_wal(Some(wal));
                if !has_config {
                    tenant = tenant.with_projection(spool_proj);
                }
                tenant.points_total = tenant.engine.time();
                out.push((name, tenant));
            }
            Err(e) => eprintln!("fairsw-served: skipping tenant {name:?}: wal reopen: {e}"),
        }
    }
    out
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`shutdown`](Self::shutdown) or [`wait`](Self::wait).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    is_follower: Arc<AtomicBool>,
    shard_txs: Vec<SyncSender<ShardMsg>>,
    listener: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<()>>,
    follower: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the server is (still) a read-only follower. Starts
    /// `true` for `--follow` servers, drops to `false` on `PROMOTE`.
    pub fn is_follower(&self) -> bool {
        self.is_follower.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains the shard queues and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.join_all();
    }

    /// Blocks until a client's `SHUTDOWN` request (or a local
    /// [`shutdown`](Self::shutdown) from another handle clone) stops the
    /// server, then joins every thread.
    pub fn wait(mut self) {
        while !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        // Connection threads observe the stop flag via their read
        // timeout; join them before the shards so no request can race a
        // closing queue.
        // A connection thread that panicked poisons this lock; shutdown
        // must still join the survivors.
        let conns = std::mem::take(&mut *self.conns.lock().unwrap_or_else(|p| p.into_inner()));
        for c in conns {
            let _ = c.join();
        }
        // The replication thread polls the stop flag too; join it
        // before the shards so no Apply can race a closing queue.
        if let Some(follower) = self.follower.take() {
            let _ = follower.join();
        }
        for tx in self.shard_txs.drain(..) {
            let _ = tx.send(ShardMsg::Shutdown);
        }
        for s in self.shards.drain(..) {
            let _ = s.join();
        }
    }

    /// Test hook: occupies one shard thread so its bounded queue can be
    /// filled deterministically.
    #[cfg(test)]
    fn stall_shard(&self, shard: usize, d: Duration) {
        self.shard_txs[shard]
            .send(ShardMsg::Stall(d))
            .expect("shard alive");
    }
}

/// The server entry point.
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), replays
    /// the durable state (snapshot spool + WAL suffix), spawns the
    /// shard, listener and — with [`ServeConfig::follow`] — replication
    /// threads, and returns a handle.
    pub fn start(addr: impl ToSocketAddrs, cfg: ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let is_follower = Arc::new(AtomicBool::new(cfg.follow.is_some()));
        let nshards = cfg.shards.max(1);

        let mut initial: Vec<HashMap<String, Tenant>> =
            (0..nshards).map(|_| HashMap::new()).collect();
        for (name, tenant) in replay_all(&cfg) {
            initial[shard_of(&name, nshards)].insert(name, tenant);
        }

        let cache = Arc::new(QueryCache::default());
        let conn_stats = Arc::new(ConnStats::default());
        let mut shard_txs = Vec::with_capacity(nshards);
        let mut shards = Vec::with_capacity(nshards);
        for tenants in initial {
            let (tx, rx) = sync_channel(cfg.queue_depth.max(1));
            let shard = Shard {
                tenants,
                parked: Vec::new(),
                subs: Vec::new(),
                cache: Arc::clone(&cache),
                conn_stats: Arc::clone(&conn_stats),
                cfg: cfg.clone(),
            };
            shard_txs.push(tx);
            shards.push(std::thread::spawn(move || shard.run(rx)));
        }

        let follower = cfg.follow.clone().map(|leader| {
            let stop = Arc::clone(&stop);
            let is_follower = Arc::clone(&is_follower);
            let txs = shard_txs.clone();
            std::thread::spawn(move || {
                follower_loop(&leader, &stop, &is_follower, |tenant, record| {
                    let tx = &txs[shard_of(&tenant, txs.len())];
                    let (rtx, rrx) = mpsc::channel();
                    tx.send(ShardMsg::Apply {
                        tenant,
                        record,
                        reply: rtx,
                    })
                    .map_err(|_| "shard stopped".to_string())?;
                    rrx.recv().map_err(|_| "shard stopped".to_string())?
                })
            })
        });

        let role = Role {
            wal_enabled: cfg.wal_dir.is_some(),
            is_follower: Arc::clone(&is_follower),
        };
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let (waker, wake_rx) = wake_pair()?;
        let router = Router {
            shard_txs: shard_txs.clone(),
            stop: Arc::clone(&stop),
            role,
            cache: Arc::clone(&cache),
            waker,
            conns: Arc::clone(&conns),
        };
        let reactor = Reactor::new(
            listener,
            wake_rx,
            router,
            Arc::clone(&stop),
            Arc::clone(&conn_stats),
            cfg.net_config(),
        );
        let listener_handle = std::thread::spawn(move || reactor.run());

        Ok(ServerHandle {
            addr,
            stop,
            is_follower,
            shard_txs,
            listener: Some(listener_handle),
            shards,
            follower,
            conns,
        })
    }
}

/// The durability/replication role a connection serves under.
#[derive(Clone)]
struct Role {
    /// The server was started with a WAL directory (`WAL_SUBSCRIBE`
    /// requires it — there is nothing to stream otherwise).
    wal_enabled: bool,
    /// Still replicating from a leader: writes answer `READ_ONLY`
    /// until `PROMOTE` clears this.
    is_follower: Arc<AtomicBool>,
}

/// Outcome of a polled exact read.
pub(crate) enum PolledRead {
    /// The buffer was filled.
    Done,
    /// Clean EOF at a frame boundary.
    Eof,
    /// The stop predicate fired while waiting.
    Stopped,
}

/// `read_exact` that survives the socket's read timeout: partial
/// progress is kept across `WouldBlock`/`TimedOut` (a stall in the
/// middle of a large frame must not desynchronize the framing), and the
/// timeout only serves to poll `should_stop` (the server's stop flag —
/// or, on a follower's replication socket, "stopped or promoted").
/// `eof_ok` marks a frame boundary, where a clean peer close is a
/// normal end of conversation.
pub(crate) fn read_exact_polled(
    r: &mut impl io::Read,
    buf: &mut [u8],
    should_stop: impl Fn() -> bool,
    eof_ok: bool,
) -> io::Result<PolledRead> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 && eof_ok => return Ok(PolledRead::Eof),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame",
                ))
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // The connection is closing anyway once stopped;
                // abandoning a partial frame then is fine.
                if should_stop() {
                    return Ok(PolledRead::Stopped);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(PolledRead::Done)
}

/// The outcome of routing one decoded frame, as seen by the reactor's
/// connection state machine.
pub(crate) enum Routed {
    /// The reply is known now (cache hit, validation error, admission
    /// rejection, control request): queue it in request order.
    Ready(Reply),
    /// The request went to a shard; poll [`PendingReply::try_poll`]
    /// until the reply lands.
    Pending(PendingReply),
    /// `WAL_SUBSCRIBE`: drain the connection, then hand its stream to a
    /// blocking subscription thread.
    Handoff,
}

/// A deferred cache store for an in-flight `QUERY`: the version
/// snapshot was taken *before* dispatch, so a write racing the
/// computation moves the version and the store is refused.
pub(crate) struct QueryStore {
    cache: Arc<QueryCache>,
    tenant: String,
    version: u64,
}

/// A reply still in flight on a shard channel. Polled (never waited
/// on) by the reactor, so one slow shard cannot stall unrelated
/// connections.
pub(crate) enum PendingReply {
    /// One tenant-scoped request on one shard.
    Shard {
        rx: Receiver<Reply>,
        store: Option<QueryStore>,
    },
    /// A broadcast checkpoint: one `CheckpointAll` per shard, counts
    /// summed in shard order, first error reply wins — exactly the
    /// sequential semantics of the blocking path.
    Broadcast {
        rxs: VecDeque<Receiver<Reply>>,
        written: u32,
        skipped: u32,
    },
}

impl PendingReply {
    /// Checks for the completed reply without blocking.
    pub(crate) fn try_poll(&mut self) -> Option<Reply> {
        match self {
            PendingReply::Shard { rx, store } => match rx.try_recv() {
                Ok(reply) => {
                    if let Some(store) = store.take() {
                        store.cache.store(&store.tenant, store.version, &reply);
                    }
                    Some(reply)
                }
                Err(mpsc::TryRecvError::Empty) => None,
                Err(mpsc::TryRecvError::Disconnected) => Some(Reply::Error(
                    ErrorKind::ShuttingDown,
                    "shard stopped".into(),
                )),
            },
            PendingReply::Broadcast {
                rxs,
                written,
                skipped,
            } => {
                while let Some(rx) = rxs.front() {
                    match rx.try_recv() {
                        Ok(Reply::Checkpointed {
                            written: w,
                            skipped: s,
                        }) => {
                            *written += w;
                            *skipped += s;
                            rxs.pop_front();
                        }
                        Ok(other) => return Some(other), // first error wins
                        Err(mpsc::TryRecvError::Empty) => return None,
                        Err(mpsc::TryRecvError::Disconnected) => {
                            return Some(Reply::Error(
                                ErrorKind::ShuttingDown,
                                "shard stopped".into(),
                            ))
                        }
                    }
                }
                Some(Reply::Checkpointed {
                    written: *written,
                    skipped: *skipped,
                })
            }
        }
    }
}

/// The request router the reactor carries: decodes frames, answers what
/// it can inline (control requests, cache hits, validation errors,
/// admission rejections) and dispatches the rest to the shards without
/// ever blocking.
pub(crate) struct Router {
    shard_txs: Vec<SyncSender<ShardMsg>>,
    stop: Arc<AtomicBool>,
    role: Role,
    cache: Arc<QueryCache>,
    /// Cloned into every [`ReplyTx`] so shards can nudge the reactor.
    waker: Waker,
    /// Live subscription threads, joined at shutdown.
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Router {
    /// Decodes one frame body and routes the request. Decode errors are
    /// ordinary `BAD_REQUEST` replies, exactly like the blocking path.
    pub(crate) fn route_frame(&self, body: &[u8]) -> Routed {
        match Request::decode(body) {
            Ok(req) => self.route(req),
            Err(e) => Routed::Ready(Reply::Error(ErrorKind::BadRequest, e.to_string())),
        }
    }

    fn route(&self, req: Request) -> Routed {
        if self.stop.load(Ordering::SeqCst) {
            return Routed::Ready(Reply::Error(
                ErrorKind::ShuttingDown,
                "server is shutting down".into(),
            ));
        }
        // A not-yet-promoted follower serves reads from replicated
        // state; writes must go to the leader (or wait for PROMOTE).
        if self.role.is_follower.load(Ordering::SeqCst)
            && matches!(
                req,
                Request::Create { .. }
                    | Request::Insert { .. }
                    | Request::InsertBatch { .. }
                    | Request::Delete { .. }
                    | Request::Checkpoint { .. }
            )
        {
            return Routed::Ready(Reply::Error(
                ErrorKind::ReadOnly,
                "follower is read-only until PROMOTE".into(),
            ));
        }
        let (op, tenant) = match req {
            Request::Promote => {
                return Routed::Ready(if self.role.is_follower.swap(false, Ordering::SeqCst) {
                    // The replication thread sees the flag and detaches.
                    Reply::Ok
                } else {
                    Reply::Error(ErrorKind::Unsupported, "server is not a follower".into())
                });
            }
            Request::WalSubscribe => return Routed::Handoff,
            Request::Shutdown => {
                self.stop.store(true, Ordering::SeqCst);
                // Ack; the reactor observes the flag, drains queued
                // replies (this ack included) and exits.
                return Routed::Ready(Reply::Ok);
            }
            Request::Checkpoint { tenant } if tenant.is_empty() => {
                // Broadcast: every shard checkpoints its tenants. All
                // dispatches go out up front; the replies aggregate in
                // shard order as they complete.
                let mut rxs = VecDeque::with_capacity(self.shard_txs.len());
                for tx in &self.shard_txs {
                    let (rtx, rrx) = mpsc::channel();
                    match tx.try_send(ShardMsg::CheckpointAll {
                        reply: self.reply_tx(rtx),
                    }) {
                        Ok(()) => rxs.push_back(rrx),
                        Err(TrySendError::Full(_)) => {
                            return Routed::Ready(Reply::Error(
                                ErrorKind::Overloaded,
                                "shard queue full, retry".into(),
                            ))
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            return Routed::Ready(Reply::Error(
                                ErrorKind::ShuttingDown,
                                "shard stopped".into(),
                            ))
                        }
                    }
                }
                return Routed::Pending(PendingReply::Broadcast {
                    rxs,
                    written: 0,
                    skipped: 0,
                });
            }
            Request::Create { tenant, config } => {
                if !valid_tenant_name(&tenant) {
                    return Routed::Ready(Reply::Error(
                        ErrorKind::BadRequest,
                        format!("invalid tenant name {tenant:?} (want [A-Za-z0-9._-]{{1,64}})"),
                    ));
                }
                (Op::Create(config), tenant)
            }
            Request::Insert { tenant, point } => (Op::Insert(point), tenant),
            Request::InsertBatch { tenant, points } => (Op::InsertBatch(points), tenant),
            Request::Query { tenant } => {
                // A repeat query at an unchanged tenant version is
                // answered straight from the cache — neither the shard
                // nor the pipeline sees it. On a miss, the deferred
                // store rides along with the pending reply.
                let (hit, version) = self.cache.begin_query(&tenant);
                if let Some(reply) = hit {
                    return Routed::Ready(reply);
                }
                let store = QueryStore {
                    cache: Arc::clone(&self.cache),
                    tenant: tenant.clone(),
                    version,
                };
                return self.dispatch(tenant, Op::Query, Some(store));
            }
            Request::Stats { tenant } => (Op::Stats, tenant),
            Request::Checkpoint { tenant } => (Op::Checkpoint, tenant),
            Request::Delete { tenant } => (Op::Delete, tenant),
        };
        self.dispatch(tenant, op, None)
    }

    /// Sends one tenant-scoped op to its shard (bounded, non-blocking).
    /// A full queue answers `OVERLOADED` immediately — the admission
    /// contract is unchanged.
    fn dispatch(&self, tenant: String, op: Op, store: Option<QueryStore>) -> Routed {
        let tx = &self.shard_txs[shard_of(&tenant, self.shard_txs.len())];
        let (rtx, rrx) = mpsc::channel();
        match tx.try_send(ShardMsg::Req {
            tenant,
            op,
            reply: self.reply_tx(rtx),
        }) {
            Ok(()) => Routed::Pending(PendingReply::Shard { rx: rrx, store }),
            Err(TrySendError::Full(_)) => Routed::Ready(Reply::Error(
                ErrorKind::Overloaded,
                "shard queue full, retry".into(),
            )),
            Err(TrySendError::Disconnected(_)) => Routed::Ready(Reply::Error(
                ErrorKind::ShuttingDown,
                "shard stopped".into(),
            )),
        }
    }

    fn reply_tx(&self, tx: Sender<Reply>) -> ReplyTx {
        ReplyTx {
            tx,
            waker: self.waker.clone(),
        }
    }

    /// Converts a drained `WAL_SUBSCRIBE` connection into a dedicated
    /// blocking subscription thread: replication is a long-lived
    /// one-way stream and has no business on the reactor. The handle
    /// joins with the other connection threads at shutdown.
    pub(crate) fn spawn_subscription(&self, stream: TcpStream) {
        let txs = self.shard_txs.clone();
        let stop = Arc::clone(&self.stop);
        let role = self.role.clone();
        let handle = std::thread::spawn(move || {
            if stream.set_nonblocking(false).is_err() {
                return;
            }
            let mut writer = io::BufWriter::new(stream);
            serve_subscription(&mut writer, &txs, &stop, &role);
        });
        let mut conns = self.conns.lock().unwrap_or_else(|p| p.into_inner());
        // Reap finished subscriptions so the handle list tracks live
        // streams, not the server's whole history.
        let mut i = 0;
        while i < conns.len() {
            if conns[i].is_finished() {
                let _ = conns.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        conns.push(handle);
    }
}

/// Handles a `WAL_SUBSCRIBE` connection: bootstrap every shard onto a
/// fresh subscription, ack, then drain queued `WAL_APPEND` frames onto
/// the socket until the subscriber hangs up or the server stops.
fn serve_subscription(
    writer: &mut impl io::Write,
    shard_txs: &[SyncSender<ShardMsg>],
    stop: &AtomicBool,
    role: &Role,
) {
    if !role.wal_enabled {
        let reply = Reply::Error(
            ErrorKind::Unsupported,
            "server started without --wal; nothing to replicate".into(),
        );
        let _ = write_frame(writer, &reply_bytes(&reply));
        return;
    }
    let (sub, rx) = subscription();
    for tx in shard_txs {
        let (rtx, rrx) = mpsc::channel();
        // Blocking send: a subscription is rare and may wait out a busy
        // queue rather than bounce like the hot path does.
        if tx
            .send(ShardMsg::Subscribe {
                sub: sub.clone(),
                reply: rtx,
            })
            .is_err()
        {
            let _ = write_frame(
                writer,
                &reply_bytes(&Reply::Error(
                    ErrorKind::ShuttingDown,
                    "shard stopped".into(),
                )),
            );
            return;
        }
        match rrx.recv() {
            Ok(Reply::Ok) => {}
            Ok(other) => {
                let _ = write_frame(writer, &reply_bytes(&other));
                return;
            }
            Err(_) => {
                let _ = write_frame(
                    writer,
                    &reply_bytes(&Reply::Error(
                        ErrorKind::ShuttingDown,
                        "shard stopped".into(),
                    )),
                );
                return;
            }
        }
    }
    if write_frame(writer, &reply_bytes(&Reply::Ok)).is_err() {
        return;
    }
    while !stop.load(Ordering::SeqCst) {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(frame) => {
                if write_frame(writer, &frame).is_err() {
                    return; // subscriber hung up; shards drop the sub on next push
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Encodes a reply for the wire, downgrading an unencodable reply into
/// an error reply (error replies truncate their message, so they always
/// encode).
pub(crate) fn reply_bytes(reply: &Reply) -> Vec<u8> {
    reply.encode().unwrap_or_else(|e| {
        Reply::Error(ErrorKind::BadRequest, format!("reply unencodable: {e}"))
            .encode()
            .expect("error replies always encode")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::Client;
    use crate::protocol::WireVariant;

    fn pt(x: f64, c: u32) -> Colored<EuclidPoint> {
        Colored::new(EuclidPoint::new(vec![x]), c)
    }

    fn cfg_fixed(window: usize) -> TenantConfig {
        TenantConfig::new(
            window,
            vec![1, 1],
            WireVariant::Fixed {
                dmin: 0.01,
                dmax: 1e4,
            },
        )
    }

    #[test]
    fn create_insert_query_delete_lifecycle() {
        let handle = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
        let mut c = Client::connect(handle.local_addr()).unwrap();
        assert_eq!(c.create("t1", &cfg_fixed(20)).unwrap(), Reply::Ok);
        assert!(matches!(
            c.create("t1", &cfg_fixed(20)).unwrap(),
            Reply::Error(ErrorKind::TenantExists, _)
        ));
        for i in 0..30 {
            assert_eq!(
                c.insert("t1", &pt(i as f64, (i % 2) as u32)).unwrap(),
                Reply::Ok
            );
        }
        match c.query("t1").unwrap() {
            Reply::Solution(sol) => assert!(!sol.centers.is_empty()),
            other => panic!("unexpected query reply {other:?}"),
        }
        match c.stats("t1").unwrap() {
            Reply::Stats(s) => {
                assert_eq!(s.time, 30);
                assert_eq!(s.points_total, 30);
                assert_eq!(s.buffered, 0, "stats flushes first");
                assert!(s.resident_bytes > 0);
                assert!(s.query_p50_us > 0.0);
            }
            other => panic!("unexpected stats reply {other:?}"),
        }
        assert_eq!(c.delete("t1").unwrap(), Reply::Ok);
        assert!(matches!(
            c.query("t1").unwrap(),
            Reply::Error(ErrorKind::NoSuchTenant, _)
        ));
        // Recreate with the identical config: served from the parked
        // (reset) engine, and behaves like a fresh tenant.
        assert_eq!(c.create("t1", &cfg_fixed(20)).unwrap(), Reply::Ok);
        match c.stats("t1").unwrap() {
            Reply::Stats(s) => assert_eq!((s.time, s.stored_points), (0, 0)),
            other => panic!("unexpected stats reply {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn out_of_range_colors_are_rejected_before_the_engine_sees_them() {
        let handle = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
        let mut c = Client::connect(handle.local_addr()).unwrap();
        assert_eq!(c.create("t", &cfg_fixed(20)).unwrap(), Reply::Ok); // 2 colors
        assert!(matches!(
            c.insert("t", &pt(1.0, 5)).unwrap(),
            Reply::Error(ErrorKind::BadRequest, _)
        ));
        // A batch with one bad color is refused whole — nothing applied,
        // nothing buffered, and the shard survives to serve the retry.
        let batch = vec![pt(1.0, 0), pt(2.0, 1), pt(3.0, 2)];
        assert!(matches!(
            c.insert_batch("t", &batch).unwrap(),
            Reply::Error(ErrorKind::BadRequest, _)
        ));
        match c.stats("t").unwrap() {
            Reply::Stats(s) => assert_eq!((s.time, s.points_total, s.buffered), (0, 0, 0)),
            other => panic!("unexpected stats reply {other:?}"),
        }
        assert_eq!(c.insert("t", &pt(1.0, 1)).unwrap(), Reply::Ok);
        handle.shutdown();
    }

    #[test]
    fn huge_multibyte_tenant_name_gets_an_error_reply_not_a_hangup() {
        // The error message is truncated to the str16 cap on a char
        // boundary; the reply must arrive instead of the connection
        // thread panicking mid-slice.
        let handle = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
        let mut c = Client::connect(handle.local_addr()).unwrap();
        // 65 529 bytes of 3-byte chars: encodable as str16, but the
        // `no tenant "..."` error message overflows the 64 KiB cap with
        // the cut landing mid-char.
        let name = "€".repeat(21_843);
        assert!(matches!(
            c.insert(&name, &pt(1.0, 0)).unwrap(),
            Reply::Error(ErrorKind::NoSuchTenant, _)
        ));
        // The connection is still healthy.
        assert_eq!(c.create("ok", &cfg_fixed(10)).unwrap(), Reply::Ok);
        handle.shutdown();
    }

    #[test]
    fn delete_removes_the_spool_snapshot() {
        let spool = std::env::temp_dir().join(format!("fairsw-del-spool-{}", std::process::id()));
        let cfg = ServeConfig {
            spool_dir: Some(spool.clone()),
            ..ServeConfig::default()
        };
        {
            let handle = Server::start("127.0.0.1:0", cfg.clone()).unwrap();
            let mut c = Client::connect(handle.local_addr()).unwrap();
            assert_eq!(c.create("gone", &cfg_fixed(20)).unwrap(), Reply::Ok);
            c.insert("gone", &pt(1.0, 0)).unwrap();
            assert!(matches!(
                c.checkpoint("gone").unwrap(),
                Reply::Checkpointed { written: 1, .. }
            ));
            assert!(spool.join("gone.fsw2").exists());
            assert_eq!(c.delete("gone").unwrap(), Reply::Ok);
            assert!(
                !spool.join("gone.fsw2").exists(),
                "spool file survived DELETE"
            );
            handle.shutdown();
        }
        // A restart must not resurrect the deleted tenant.
        let handle = Server::start("127.0.0.1:0", cfg).unwrap();
        let mut c = Client::connect(handle.local_addr()).unwrap();
        assert!(matches!(
            c.query("gone").unwrap(),
            Reply::Error(ErrorKind::NoSuchTenant, _)
        ));
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn unknown_tenant_and_bad_names_are_rejected() {
        let handle = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
        let mut c = Client::connect(handle.local_addr()).unwrap();
        assert!(matches!(
            c.insert("ghost", &pt(1.0, 0)).unwrap(),
            Reply::Error(ErrorKind::NoSuchTenant, _)
        ));
        assert!(matches!(
            c.create("../evil", &cfg_fixed(10)).unwrap(),
            Reply::Error(ErrorKind::BadRequest, _)
        ));
        assert!(matches!(
            c.create("ok", &TenantConfig::new(0, vec![1], WireVariant::Oblivious))
                .unwrap(),
            Reply::Error(ErrorKind::BadRequest, _)
        ));
        handle.shutdown();
    }

    #[test]
    fn full_shard_queue_returns_overloaded() {
        let cfg = ServeConfig {
            shards: 1,
            queue_depth: 1,
            ..ServeConfig::default()
        };
        let handle = Server::start("127.0.0.1:0", cfg).unwrap();
        let mut c1 = Client::connect(handle.local_addr()).unwrap();
        assert_eq!(c1.create("t", &cfg_fixed(10)).unwrap(), Reply::Ok);
        // Occupy the single shard thread, then fill its depth-1 queue
        // from one connection while a second connection gets bounced.
        handle.stall_shard(0, Duration::from_millis(400));
        std::thread::sleep(Duration::from_millis(50)); // stall picked up
        let t1 = std::thread::spawn(move || {
            // Occupies the one queue slot until the stall ends.
            c1.insert("t", &pt(1.0, 0)).unwrap()
        });
        std::thread::sleep(Duration::from_millis(50)); // slot occupied
        let mut c2 = Client::connect(handle.local_addr()).unwrap();
        let r2 = c2.insert("t", &pt(2.0, 0)).unwrap();
        assert!(
            matches!(r2, Reply::Error(ErrorKind::Overloaded, _)),
            "expected OVERLOADED, got {r2:?}"
        );
        assert_eq!(t1.join().unwrap(), Reply::Ok, "queued insert completes");
        handle.shutdown();
    }

    #[test]
    fn client_shutdown_request_stops_the_server() {
        let handle = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = handle.local_addr();
        let mut c = Client::connect(addr).unwrap();
        assert_eq!(c.shutdown().unwrap(), Reply::Ok);
        handle.wait(); // returns because the flag is set
        assert!(
            Client::connect(addr).is_err() || {
                // The OS may accept briefly; a request must not be served.
                let mut c2 = Client::connect(addr).unwrap();
                c2.stats("x").is_err()
            }
        );
    }

    #[test]
    fn shard_assignment_is_stable_and_spread() {
        let a = shard_of("tenant-a", 4);
        assert_eq!(a, shard_of("tenant-a", 4));
        let hit: std::collections::HashSet<usize> =
            (0..64).map(|i| shard_of(&format!("t{i}"), 4)).collect();
        assert!(hit.len() > 1, "all tenants on one shard");
    }

    /// Raw frame bytes of one request (length prefix + body).
    fn raw_frame(req: &Request) -> Vec<u8> {
        let body = req.encode().unwrap();
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        frame
    }

    /// Reads one reply frame from a raw (blocking) socket.
    fn read_reply(stream: &mut TcpStream) -> Reply {
        use std::io::Read;
        let mut header = [0u8; 4];
        stream.read_exact(&mut header).unwrap();
        let mut body = vec![0u8; u32::from_le_bytes(header) as usize];
        stream.read_exact(&mut body).unwrap();
        Reply::decode(&body).unwrap()
    }

    #[test]
    fn pipelined_requests_on_one_socket_get_ordered_replies() {
        use std::io::Write;
        let handle = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();

        // One write carrying the whole conversation back-to-back: the
        // replies must come back in request order.
        let mut batch = Vec::new();
        batch.extend_from_slice(&raw_frame(&Request::Create {
            tenant: "pipe".into(),
            config: cfg_fixed(50),
        }));
        for i in 0..20 {
            batch.extend_from_slice(&raw_frame(&Request::Insert {
                tenant: "pipe".into(),
                point: pt(i as f64, (i % 2) as u32),
            }));
        }
        batch.extend_from_slice(&raw_frame(&Request::Stats {
            tenant: "pipe".into(),
        }));
        batch.extend_from_slice(&raw_frame(&Request::Query {
            tenant: "pipe".into(),
        }));
        stream.write_all(&batch).unwrap();

        assert_eq!(read_reply(&mut stream), Reply::Ok, "create");
        for i in 0..20 {
            assert_eq!(read_reply(&mut stream), Reply::Ok, "insert {i}");
        }
        match read_reply(&mut stream) {
            Reply::Stats(s) => assert_eq!(s.points_total, 20),
            other => panic!("unexpected stats reply {other:?}"),
        }
        assert!(matches!(read_reply(&mut stream), Reply::Solution(_)));
        handle.shutdown();
    }

    #[test]
    fn one_byte_chunked_frames_still_decode() {
        use std::io::Write;
        let handle = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        let frame = raw_frame(&Request::Create {
            tenant: "drip".into(),
            config: cfg_fixed(10),
        });
        for b in &frame {
            stream.write_all(std::slice::from_ref(b)).unwrap();
        }
        assert_eq!(read_reply(&mut stream), Reply::Ok);
        handle.shutdown();
    }

    #[test]
    fn idle_and_stalled_connections_are_reaped_and_counted() {
        use std::io::{Read, Write};
        let cfg = ServeConfig {
            idle_timeout: Duration::from_millis(150),
            header_timeout: Duration::from_millis(150),
            ..ServeConfig::default()
        };
        let handle = Server::start("127.0.0.1:0", cfg).unwrap();

        // One idle connection, one stalled mid-header (the slowloris).
        let mut idle = TcpStream::connect(handle.local_addr()).unwrap();
        let mut slow = TcpStream::connect(handle.local_addr()).unwrap();
        slow.write_all(&[0x03, 0x00]).unwrap(); // half a length prefix

        // Both must be closed by the reaper: the reads see EOF.
        let deadline = Instant::now() + Duration::from_secs(5);
        for (name, s) in [("idle", &mut idle), ("slow", &mut slow)] {
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut buf = [0u8; 1];
            match s.read(&mut buf) {
                Ok(0) => {}
                other => panic!("{name} connection not reaped: {other:?}"),
            }
            assert!(Instant::now() < deadline, "reaper too slow");
        }

        // A fresh (active) connection keeps working and sees the reap
        // counters.
        let mut c = Client::connect(handle.local_addr()).unwrap();
        assert_eq!(c.create("t", &cfg_fixed(10)).unwrap(), Reply::Ok);
        match c.stats("t").unwrap() {
            Reply::Stats(s) => {
                assert_eq!(s.conns_reaped, 2, "idle + slowloris");
                assert!(s.conns_accepted >= 3);
                assert!(s.conns_open >= 1);
            }
            other => panic!("unexpected stats reply {other:?}"),
        }
        handle.shutdown();
    }
}

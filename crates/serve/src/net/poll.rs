//! The readiness abstraction the reactor loops on: `epoll` on Linux,
//! `poll(2)` on other unix, a portable round-robin/backoff scan
//! elsewhere.
//!
//! Registrations are **persistent**: the reactor registers a socket
//! once, flips its interest flags in place as its state machine moves,
//! and deregisters it on close. The hot loop therefore does no
//! per-round allocation or interest-list rebuild, and on Linux the
//! kernel holds the interest set too, so a round costs O(ready) —
//! which is what keeps tail latency flat as the connection count grows
//! (`serve_concurrency` gates on exactly this).
//!
//! All three backends present the same `Poller` API: `register`
//! returns an index that stays stable until a `deregister` swap-moves
//! the last entry into a freed slot (the moved entry's token is
//! reported back so the caller can repair its token-to-index map).
//!
//! The fallback scan never asks the OS which sockets are ready — it
//! reports *everything* with active interest as ready and lets the
//! nonblocking reads/writes answer `WouldBlock`. That is correct
//! (level-triggered readiness may always be spurious) but busy, so the
//! scan sleeps between sweeps with an exponential backoff that resets
//! whenever a sweep makes progress.

/// Opaque socket identity handed to [`Poller::register`]: the raw fd
/// on unix, nothing elsewhere (the fallback scan polls by token alone).
#[cfg(unix)]
pub(crate) type SockId = std::os::unix::io::RawFd;
/// Opaque socket identity (non-unix: unused by the fallback scan).
#[cfg(not(unix))]
pub(crate) type SockId = usize;

/// Captures a socket's [`SockId`].
#[cfg(unix)]
pub(crate) fn sock_id<T: std::os::unix::io::AsRawFd>(s: &T) -> SockId {
    s.as_raw_fd()
}
/// Captures a socket's [`SockId`] (non-unix: a placeholder).
#[cfg(not(unix))]
pub(crate) fn sock_id<T>(_s: &T) -> SockId {
    0
}

/// One ready socket reported by [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct Readiness {
    /// The token given at [`Poller::register`] time.
    pub token: usize,
    /// Readable now (possibly spuriously, on the fallback).
    pub read: bool,
    /// Writable now (possibly spuriously, on the fallback).
    pub write: bool,
    /// The peer hung up or the socket errored; drain and close.
    pub hup: bool,
}

pub(crate) use imp::Poller;

/// epoll backend (Linux): the kernel owns the interest set and reports
/// only ready fds.
#[cfg(target_os = "linux")]
mod imp {
    use super::{Readiness, SockId};
    use crate::net::sys::{EpollSet, Events};
    use std::time::Duration;

    /// The readiness selector: a kernel epoll set plus the fd/token
    /// bookkeeping the index-based API needs for `epoll_ctl` calls.
    pub(crate) struct Poller {
        epoll: EpollSet,
        /// fd of each registered entry (`epoll_ctl` addresses by fd).
        fds: Vec<SockId>,
        /// Token of each registered entry, parallel to `fds`.
        tokens: Vec<usize>,
        /// Reused `(token, events)` buffer for [`wait`](Self::wait).
        scratch: Vec<(usize, Events)>,
    }

    impl Poller {
        /// A fresh poller. Failing to create the epoll instance is as
        /// fatal (and as unlikely) as failing to spawn the reactor.
        pub fn new() -> Self {
            Poller {
                epoll: EpollSet::new().expect("epoll_create1"),
                fds: Vec::new(),
                tokens: Vec::new(),
                scratch: Vec::new(),
            }
        }

        /// Registers a socket under `token` with initial interest flags
        /// and returns its index.
        pub fn register(&mut self, id: SockId, token: usize, read: bool, write: bool) -> usize {
            self.epoll
                .add(id, token, read, write)
                .expect("epoll_ctl(ADD)");
            self.fds.push(id);
            self.tokens.push(token);
            self.tokens.len() - 1
        }

        /// Rewrites the interest flags of the entry at `idx` in place.
        /// An entry with neither flag is still watched for
        /// hangup/error.
        pub fn set_interest(&mut self, idx: usize, read: bool, write: bool) {
            self.epoll
                .modify(self.fds[idx], self.tokens[idx], read, write)
                .expect("epoll_ctl(MOD)");
        }

        /// Removes the entry at `idx`. Returns the token of the entry
        /// that was swap-moved into `idx` (if any).
        pub fn deregister(&mut self, idx: usize) -> Option<usize> {
            // Closing an fd drops it from the epoll set on its own, so
            // a DEL that races a close is allowed to fail.
            let _ = self.epoll.remove(self.fds[idx]);
            self.fds.swap_remove(idx);
            self.tokens.swap_remove(idx);
            self.tokens.get(idx).copied()
        }

        /// Waits until some registered entry is ready or `timeout`
        /// passes, filling `out` with the ready set (empty on timeout).
        pub fn wait(&mut self, timeout: Duration, out: &mut Vec<Readiness>) -> std::io::Result<()> {
            out.clear();
            self.epoll.wait(timeout, &mut self.scratch)?;
            out.extend(self.scratch.iter().map(|&(token, ev)| Readiness {
                token,
                read: ev.read,
                write: ev.write,
                hup: ev.hup,
            }));
            Ok(())
        }

        /// Feedback from the caller's sweep — a no-op over epoll.
        pub fn note_progress(&mut self, _any: bool) {}
    }
}

/// `poll(2)` backend (portable unix): a persistent fd array the kernel
/// rescans each round.
#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{Readiness, SockId};
    use crate::net::sys::FdSet;
    use std::time::Duration;

    /// The readiness selector: a persistent `pollfd` array plus the
    /// tokens parallel to it.
    pub(crate) struct Poller {
        set: FdSet,
        /// Token of each registered entry, parallel to the fd set.
        tokens: Vec<usize>,
    }

    impl Poller {
        /// A fresh poller.
        pub fn new() -> Self {
            Poller {
                set: FdSet::new(),
                tokens: Vec::new(),
            }
        }

        /// Registers a socket under `token` with initial interest flags
        /// and returns its index.
        pub fn register(&mut self, id: SockId, token: usize, read: bool, write: bool) -> usize {
            self.set.push(id, read, write);
            self.tokens.push(token);
            self.tokens.len() - 1
        }

        /// Rewrites the interest flags of the entry at `idx` in place.
        /// An entry with neither flag is still watched for
        /// hangup/error.
        pub fn set_interest(&mut self, idx: usize, read: bool, write: bool) {
            self.set.set_events(idx, read, write);
        }

        /// Removes the entry at `idx`. Returns the token of the entry
        /// that was swap-moved into `idx` (if any).
        pub fn deregister(&mut self, idx: usize) -> Option<usize> {
            self.set.swap_remove(idx);
            self.tokens.swap_remove(idx);
            self.tokens.get(idx).copied()
        }

        /// Waits until some registered entry is ready or `timeout`
        /// passes, filling `out` with the ready set (empty on timeout).
        pub fn wait(&mut self, timeout: Duration, out: &mut Vec<Readiness>) -> std::io::Result<()> {
            out.clear();
            let n = self.set.poll(timeout)?;
            if n > 0 {
                let mut left = n;
                for idx in 0..self.tokens.len() {
                    let ev = self.set.revents(idx);
                    if ev.read || ev.write || ev.hup {
                        out.push(Readiness {
                            token: self.tokens[idx],
                            read: ev.read,
                            write: ev.write,
                            hup: ev.hup,
                        });
                        left -= 1;
                        if left == 0 {
                            break;
                        }
                    }
                }
            }
            Ok(())
        }

        /// Feedback from the caller's sweep — a no-op over `poll(2)`.
        pub fn note_progress(&mut self, _any: bool) {}
    }
}

/// Backoff-scan backend (non-unix): report everything with interest as
/// ready and let `WouldBlock` sort out reality.
#[cfg(not(unix))]
mod imp {
    use super::{Readiness, SockId};
    use std::time::Duration;

    /// Backoff floor of the scan.
    const SCAN_BACKOFF_MIN: Duration = Duration::from_millis(1);
    /// Backoff ceiling of the scan.
    const SCAN_BACKOFF_MAX: Duration = Duration::from_millis(16);

    /// The readiness selector: the registration table alone.
    pub(crate) struct Poller {
        /// Token of each registered entry.
        tokens: Vec<usize>,
        /// Interest flags of each entry — the scan's readiness source.
        flags: Vec<(bool, bool)>,
        backoff: Duration,
    }

    impl Poller {
        /// A fresh poller.
        pub fn new() -> Self {
            Poller {
                tokens: Vec::new(),
                flags: Vec::new(),
                backoff: SCAN_BACKOFF_MIN,
            }
        }

        /// Registers a socket under `token` with initial interest flags
        /// and returns its index.
        pub fn register(&mut self, _id: SockId, token: usize, read: bool, write: bool) -> usize {
            self.flags.push((read, write));
            self.tokens.push(token);
            self.tokens.len() - 1
        }

        /// Rewrites the interest flags of the entry at `idx` in place.
        pub fn set_interest(&mut self, idx: usize, read: bool, write: bool) {
            self.flags[idx] = (read, write);
        }

        /// Removes the entry at `idx`. Returns the token of the entry
        /// that was swap-moved into `idx` (if any).
        pub fn deregister(&mut self, idx: usize) -> Option<usize> {
            self.flags.swap_remove(idx);
            self.tokens.swap_remove(idx);
            self.tokens.get(idx).copied()
        }

        /// Waits (scan): sleep a beat, then report every entry with
        /// active interest as ready.
        pub fn wait(&mut self, timeout: Duration, out: &mut Vec<Readiness>) -> std::io::Result<()> {
            out.clear();
            std::thread::sleep(timeout.min(self.backoff));
            out.extend(
                self.tokens
                    .iter()
                    .zip(&self.flags)
                    .filter(|(_, (r, w))| *r || *w)
                    .map(|(&token, &(read, write))| Readiness {
                        token,
                        read,
                        write,
                        hup: false,
                    }),
            );
            Ok(())
        }

        /// Feedback from the caller's sweep: progress resets the
        /// backoff, an empty sweep doubles it up to the ceiling.
        pub fn note_progress(&mut self, any: bool) {
            self.backoff = if any {
                SCAN_BACKOFF_MIN
            } else {
                (self.backoff * 2).min(SCAN_BACKOFF_MAX)
            };
        }
    }
}

//! Cross-thread reactor wakeups over a loopback UDP socket pair.
//!
//! Shard threads finish requests on their own schedule and reply over
//! per-request channels; something must also interrupt the reactor's
//! readiness wait, or a finished reply would sit until the next timeout
//! tick. std offers no portable pipe, so the waker is a pair of
//! loopback UDP sockets: the receive side sits in the reactor's poll
//! set, the send side is cloned into every dispatched request's reply
//! handle. A wake is one 1-byte datagram — lossy by design (a dropped
//! datagram means the receive buffer is already full, i.e. the reactor
//! is already waking), connected in both directions so stray datagrams
//! from other processes are filtered by the kernel.

use super::poll::{sock_id, SockId};
use std::io;
use std::net::UdpSocket;
use std::sync::Arc;

/// The sending half: cheap to clone, pokes the reactor awake.
#[derive(Clone)]
pub(crate) struct Waker {
    sock: Arc<UdpSocket>,
}

impl Waker {
    /// Wakes the reactor. Best-effort and non-blocking: failure means
    /// either the buffer is full (a wake is already pending) or the
    /// reactor is gone (nothing left to wake).
    pub fn wake(&self) {
        let _ = self.sock.send(&[1]);
    }
}

/// The receiving half, owned by the reactor.
pub(crate) struct WakeRx {
    sock: UdpSocket,
}

impl WakeRx {
    /// The poll identity of the receive socket.
    pub fn id(&self) -> SockId {
        sock_id(&self.sock)
    }

    /// Swallows every queued wake datagram (nonblocking), so one poll
    /// round coalesces any number of wakes.
    pub fn drain(&self) {
        let mut buf = [0u8; 16];
        while self.sock.recv(&mut buf).is_ok() {}
    }
}

/// Builds a connected waker pair on the loopback interface.
pub(crate) fn wake_pair() -> io::Result<(Waker, WakeRx)> {
    let rx = UdpSocket::bind(("127.0.0.1", 0))?;
    rx.set_nonblocking(true)?;
    let tx = UdpSocket::bind(("127.0.0.1", 0))?;
    tx.set_nonblocking(true)?;
    tx.connect(rx.local_addr()?)?;
    rx.connect(tx.local_addr()?)?;
    Ok((Waker { sock: Arc::new(tx) }, WakeRx { sock: rx }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_is_observable_and_drain_coalesces() {
        let (waker, rx) = wake_pair().unwrap();
        waker.wake();
        waker.wake();
        // Datagram delivery over loopback is immediate, but give the
        // kernel a beat to move it.
        let mut buf = [0u8; 16];
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            if rx.sock.peek(&mut buf).is_ok() {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "wake never arrived");
            std::thread::yield_now();
        }
        rx.drain();
        assert!(rx.sock.recv(&mut buf).is_err(), "drain left datagrams");
    }
}

//! Minimal self-contained OS bindings for the reactor: `epoll(7)` on
//! Linux, `poll(2)` on other unix, and the open-file rlimit. The
//! offline registry rules out `libc`/`mio`, so the handful of syscalls
//! the event loop needs are declared here directly; everything is gated
//! on `cfg(unix)` with portable no-op fallbacks (the
//! [`poll`](super::poll) layer falls back to a backoff scan).
//!
//! Why two readiness bindings: `poll(2)` is everywhere but the kernel
//! rescans the whole fd array on every call — Θ(registered) per round,
//! which at thousands of mostly idle connections dominates tail
//! latency. `epoll` keeps the interest set in the kernel and reports
//! only ready fds, so a round costs O(ready). The `serve_concurrency`
//! bench gates on exactly this (p99 at ≥1k connections within 2x of
//! the 16-connection p99).

#[cfg(unix)]
use std::time::Duration;

#[cfg(unix)]
mod ffi {
    use std::os::raw::{c_int, c_ulong};

    /// One entry of the `poll(2)` fd set (`struct pollfd`).
    #[repr(C)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    // `nfds_t` is `unsigned long` on Linux and `unsigned int` on the
    // BSD family (incl. macOS).
    #[cfg(any(target_os = "macos", target_os = "ios", target_os = "freebsd"))]
    pub type NfdsT = u32;
    #[cfg(not(any(target_os = "macos", target_os = "ios", target_os = "freebsd")))]
    pub type NfdsT = c_ulong;

    /// `struct rlimit` (both fields are `rlim_t`, 64-bit on every
    /// supported 64-bit unix).
    #[repr(C)]
    pub struct RLimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    #[cfg(any(target_os = "macos", target_os = "ios", target_os = "freebsd"))]
    pub const RLIMIT_NOFILE: c_int = 8;
    #[cfg(not(any(target_os = "macos", target_os = "ios", target_os = "freebsd")))]
    pub const RLIMIT_NOFILE: c_int = 7;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }
}

#[cfg(target_os = "linux")]
mod epoll_ffi {
    use std::os::raw::c_int;

    pub const EPOLL_CLOEXEC: c_int = 0x8_0000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    /// `struct epoll_event`. The kernel ABI packs it on x86 so the
    /// 64-bit `data` field sits at offset 4.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Observed readiness bits of one fd.
#[cfg(unix)]
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Events {
    /// Readable (`POLLIN`).
    pub read: bool,
    /// Writable (`POLLOUT`).
    pub write: bool,
    /// Hangup/error (`POLLHUP | POLLERR | POLLNVAL`).
    pub hup: bool,
}

/// A persistent `poll(2)` fd set. Entries are registered once and
/// updated in place — the hot loop never rebuilds or reallocates the
/// `pollfd` array, so the userspace cost per round is zero (the kernel
/// still scans the whole array; Linux reactors use [`EpollSet`]
/// instead, and this is the portable-unix fallback).
#[cfg(unix)]
#[cfg_attr(target_os = "linux", allow(dead_code))]
pub(crate) struct FdSet {
    set: Vec<ffi::PollFd>,
}

#[cfg(unix)]
#[cfg_attr(target_os = "linux", allow(dead_code))]
impl FdSet {
    pub fn new() -> Self {
        FdSet { set: Vec::new() }
    }

    /// Appends an entry; its index is stable until a `swap_remove`
    /// moves the last entry into a freed slot.
    pub fn push(&mut self, fd: std::os::unix::io::RawFd, read: bool, write: bool) {
        self.set.push(ffi::PollFd {
            fd,
            events: Self::bits(read, write),
            revents: 0,
        });
    }

    /// Rewrites the requested events of one entry.
    pub fn set_events(&mut self, idx: usize, read: bool, write: bool) {
        self.set[idx].events = Self::bits(read, write);
    }

    /// Removes one entry by moving the last entry into its place.
    pub fn swap_remove(&mut self, idx: usize) {
        self.set.swap_remove(idx);
    }

    /// Blocks in `poll(2)` until an entry is ready or `timeout`
    /// expires; the kernel writes per-entry results read back via
    /// [`revents`](Self::revents). Returns the number of ready entries.
    /// `EINTR` is retried with the full timeout — the reactor re-times
    /// every loop anyway.
    pub fn poll(&mut self, timeout: Duration) -> std::io::Result<usize> {
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        loop {
            let r = unsafe { ffi::poll(self.set.as_mut_ptr(), self.set.len() as ffi::NfdsT, ms) };
            if r >= 0 {
                return Ok(r as usize);
            }
            let e = std::io::Error::last_os_error();
            if e.kind() != std::io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }

    /// What the last [`poll`](Self::poll) reported for one entry.
    pub fn revents(&self, idx: usize) -> Events {
        let r = self.set[idx].revents;
        Events {
            read: r & ffi::POLLIN != 0,
            write: r & ffi::POLLOUT != 0,
            hup: r & (ffi::POLLERR | ffi::POLLHUP | ffi::POLLNVAL) != 0,
        }
    }

    fn bits(read: bool, write: bool) -> i16 {
        (if read { ffi::POLLIN } else { 0 }) | (if write { ffi::POLLOUT } else { 0 })
    }
}

/// A kernel-resident epoll interest set (Linux). Registration is a
/// one-time `epoll_ctl`; a wait returns *only* the ready fds, so the
/// per-round cost is O(ready) no matter how many thousands of idle
/// connections are registered — `poll(2)`'s Θ(registered) kernel scan
/// is what this buys out of the hot loop.
#[cfg(target_os = "linux")]
pub(crate) struct EpollSet {
    epfd: std::os::raw::c_int,
    buf: Vec<epoll_ffi::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollSet {
    /// Events drained per wait; level-triggered readiness re-reports
    /// anything beyond this next round, so the bound only batches.
    const MAX_EVENTS: usize = 1024;

    pub fn new() -> std::io::Result<Self> {
        let epfd = unsafe { epoll_ffi::epoll_create1(epoll_ffi::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(EpollSet {
            epfd,
            buf: vec![epoll_ffi::EpollEvent { events: 0, data: 0 }; Self::MAX_EVENTS],
        })
    }

    fn ctl(
        &self,
        op: std::os::raw::c_int,
        fd: std::os::unix::io::RawFd,
        token: usize,
        read: bool,
        write: bool,
    ) -> std::io::Result<()> {
        let mut ev = epoll_ffi::EpollEvent {
            events: (if read { epoll_ffi::EPOLLIN } else { 0 })
                | (if write { epoll_ffi::EPOLLOUT } else { 0 }),
            data: token as u64,
        };
        if unsafe { epoll_ffi::epoll_ctl(self.epfd, op, fd, &mut ev) } != 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    /// Adds `fd` to the interest set; readiness reports carry `token`.
    pub fn add(
        &self,
        fd: std::os::unix::io::RawFd,
        token: usize,
        read: bool,
        write: bool,
    ) -> std::io::Result<()> {
        self.ctl(epoll_ffi::EPOLL_CTL_ADD, fd, token, read, write)
    }

    /// Rewrites the interest of a registered fd. With neither flag the
    /// fd is still watched for hangup/error.
    pub fn modify(
        &self,
        fd: std::os::unix::io::RawFd,
        token: usize,
        read: bool,
        write: bool,
    ) -> std::io::Result<()> {
        self.ctl(epoll_ffi::EPOLL_CTL_MOD, fd, token, read, write)
    }

    /// Drops a registered fd from the interest set.
    pub fn remove(&self, fd: std::os::unix::io::RawFd) -> std::io::Result<()> {
        self.ctl(epoll_ffi::EPOLL_CTL_DEL, fd, 0, false, false)
    }

    /// Blocks until something is ready or `timeout` expires, filling
    /// `out` with `(token, events)` for each ready fd (empty on
    /// timeout). `EINTR` is retried with the full timeout — the reactor
    /// re-times every loop anyway.
    pub fn wait(
        &mut self,
        timeout: Duration,
        out: &mut Vec<(usize, Events)>,
    ) -> std::io::Result<()> {
        out.clear();
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        let n = loop {
            let r = unsafe {
                epoll_ffi::epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as std::os::raw::c_int,
                    ms,
                )
            };
            if r >= 0 {
                break r as usize;
            }
            let e = std::io::Error::last_os_error();
            if e.kind() != std::io::ErrorKind::Interrupted {
                return Err(e);
            }
        };
        for e in &self.buf[..n] {
            // Copy out of the (packed) ABI struct before testing bits.
            let (events, data) = (e.events, e.data);
            out.push((
                data as usize,
                Events {
                    read: events & epoll_ffi::EPOLLIN != 0,
                    write: events & epoll_ffi::EPOLLOUT != 0,
                    hup: events & (epoll_ffi::EPOLLERR | epoll_ffi::EPOLLHUP) != 0,
                },
            ));
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollSet {
    fn drop(&mut self) {
        unsafe { epoll_ffi::close(self.epfd) };
    }
}

/// Best-effort raise of the process's soft open-file limit to at least
/// `want` (capped by the hard limit). Returns the soft limit in effect
/// afterwards — callers opening thousands of sockets (the reactor does
/// not; the loadgen and bench clients do) should call this first and
/// scale down if the answer is short. On non-unix targets there is no
/// rlimit to raise and the call reports `u64::MAX`.
#[cfg(unix)]
pub fn raise_fd_limit(want: u64) -> u64 {
    unsafe {
        let mut lim = ffi::RLimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        if ffi::getrlimit(ffi::RLIMIT_NOFILE, &mut lim) != 0 {
            return 0;
        }
        if lim.rlim_cur >= want {
            return lim.rlim_cur;
        }
        let target = want.min(lim.rlim_max);
        let new = ffi::RLimit {
            rlim_cur: target,
            rlim_max: lim.rlim_max,
        };
        if ffi::setrlimit(ffi::RLIMIT_NOFILE, &new) == 0 {
            target
        } else {
            lim.rlim_cur
        }
    }
}

/// Best-effort raise of the process's soft open-file limit (non-unix:
/// no rlimit to raise, reports `u64::MAX`).
#[cfg(not(unix))]
pub fn raise_fd_limit(_want: u64) -> u64 {
    u64::MAX
}

#[cfg(test)]
mod tests {
    #[test]
    fn fd_limit_is_monotone() {
        let before = super::raise_fd_limit(0);
        let after = super::raise_fd_limit(before.saturating_add(16));
        assert!(after >= before);
    }

    /// A connected UDP pair: quiet at first, readable after a send.
    #[cfg(unix)]
    fn udp_pair() -> (std::net::UdpSocket, std::net::UdpSocket) {
        let a = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        a.connect(b.local_addr().unwrap()).unwrap();
        b.connect(a.local_addr().unwrap()).unwrap();
        (a, b)
    }

    /// The portable `poll(2)` binding stays exercised even on Linux,
    /// where the reactor runs on epoll instead.
    #[cfg(unix)]
    #[test]
    fn poll_fdset_reports_readiness() {
        use std::os::unix::io::AsRawFd;
        use std::time::Duration;
        let (a, b) = udp_pair();
        let mut set = super::FdSet::new();
        set.push(b.as_raw_fd(), true, false);
        assert_eq!(set.poll(Duration::from_millis(1)).unwrap(), 0, "quiet");
        a.send(b"x").unwrap();
        assert_eq!(set.poll(Duration::from_millis(200)).unwrap(), 1);
        assert!(set.revents(0).read);
        set.set_events(0, false, true);
        assert_eq!(set.poll(Duration::from_millis(1)).unwrap(), 1);
        let ev = set.revents(0);
        assert!(ev.write && !ev.read, "UDP is always writable: {ev:?}");
        set.swap_remove(0);
        assert_eq!(set.poll(Duration::from_millis(1)).unwrap(), 0, "empty");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_set_reports_readiness_by_token() {
        use std::os::unix::io::AsRawFd;
        use std::time::Duration;
        let (a, b) = udp_pair();
        let mut set = super::EpollSet::new().unwrap();
        set.add(b.as_raw_fd(), 7, true, false).unwrap();
        let mut out = Vec::new();
        set.wait(Duration::from_millis(1), &mut out).unwrap();
        assert!(out.is_empty(), "quiet: {out:?}");
        a.send(b"x").unwrap();
        set.wait(Duration::from_millis(200), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 7, "readiness carries the token");
        assert!(out[0].1.read);
        set.modify(b.as_raw_fd(), 7, false, true).unwrap();
        set.wait(Duration::from_millis(1), &mut out).unwrap();
        assert!(out.iter().any(|(t, ev)| *t == 7 && ev.write));
        set.remove(b.as_raw_fd()).unwrap();
        set.wait(Duration::from_millis(1), &mut out).unwrap();
        assert!(out.is_empty(), "removed: {out:?}");
    }
}

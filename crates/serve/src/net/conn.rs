//! The per-connection state machine: incremental frame reassembly in,
//! an in-order reply pipeline through, a vectored write queue out.
//!
//! A connection owns a nonblocking [`TcpStream`] and never blocks the
//! reactor: reads stop at `WouldBlock` (or at the pipeline/write-buffer
//! bounds — TCP backpressure does the rest), writes resume exactly
//! where a partial `writev` left off, and replies that depend on a
//! shard land in a [`Slot::Waiting`] entry of the pipeline so the
//! response order always matches the request order.

use super::poll::{sock_id, SockId};
use crate::protocol::{ErrorKind, FrameAssembler, Reply};
use crate::server::{reply_bytes, PendingReply, Routed, Router};
use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Per-connection tuning of the event-driven front-end.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Reap a fully idle connection (nothing buffered, nothing in
    /// flight) after this long without a byte from the peer.
    pub idle_timeout: Duration,
    /// Reap a connection whose only activity is a stalled partial
    /// frame (the slowloris guard) after this long without progress.
    pub header_timeout: Duration,
    /// In-flight request cap per connection: decoded requests whose
    /// replies have not yet been queued for writing. At the cap the
    /// connection stops being read until replies drain.
    pub max_pipeline: usize,
    /// Queued-reply byte cap per connection; same backpressure rule.
    pub max_write_buffer: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            idle_timeout: Duration::from_secs(120),
            header_timeout: Duration::from_secs(10),
            max_pipeline: 128,
            max_write_buffer: 8 << 20,
        }
    }
}

/// Read budget per readiness wake: a firehose connection yields to its
/// peers after this many bytes (level-triggered polling re-reports it).
const READ_BUDGET: usize = 256 << 10;

/// Vectored-write fan: frames batched into one `writev`.
const MAX_IOV: usize = 32;

/// One entry of the in-order reply pipeline.
enum Slot {
    /// Reply already known (cache hit, validation error, admission
    /// rejection) but an earlier request is still in flight — it must
    /// wait its turn. Holds the complete encoded frame.
    Done(Vec<u8>),
    /// Dispatched to a shard; the reply arrives on a channel.
    Waiting(PendingReply),
}

/// The output queue: whole reply frames, flushed with `writev`, with
/// partial-write resumption (`head` tracks consumed bytes of the front
/// frame).
#[derive(Default)]
struct WriteQueue {
    frames: VecDeque<Vec<u8>>,
    head: usize,
    bytes: usize,
}

impl WriteQueue {
    fn push(&mut self, frame: Vec<u8>) {
        self.bytes += frame.len();
        self.frames.push_back(frame);
    }

    fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Unsent bytes currently queued.
    fn bytes(&self) -> usize {
        self.bytes
    }

    /// Writes as much as the socket takes. Returns whether any bytes
    /// moved; `WouldBlock` stops quietly (poll for writability), every
    /// other error is the connection's end.
    fn flush_into(&mut self, w: &mut TcpStream) -> io::Result<bool> {
        let mut progress = false;
        while !self.frames.is_empty() {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(self.frames.len().min(MAX_IOV));
            for (i, f) in self.frames.iter().take(MAX_IOV).enumerate() {
                slices.push(IoSlice::new(if i == 0 { &f[self.head..] } else { f }));
            }
            match w.write_vectored(&slices) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    progress = true;
                    self.consume(n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(progress)
    }

    /// Advances past `n` written bytes, popping fully sent frames.
    fn consume(&mut self, mut n: usize) {
        self.bytes -= n;
        while n > 0 {
            let front_remaining = self.frames[0].len() - self.head;
            if n >= front_remaining {
                n -= front_remaining;
                self.frames.pop_front();
                self.head = 0;
            } else {
                self.head += n;
                n = 0;
            }
        }
    }
}

/// Encodes a reply as one complete wire frame (length prefix + body).
fn frame_bytes(reply: &Reply) -> Vec<u8> {
    let body = reply_bytes(reply);
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// One live connection registered with the reactor.
pub(crate) struct Conn {
    stream: TcpStream,
    assembler: FrameAssembler,
    wbuf: WriteQueue,
    pipeline: VecDeque<Slot>,
    /// Last time anything progressed here (bytes read, a reply queued,
    /// bytes flushed) — the reference point of both timeouts.
    last_activity: Instant,
    /// No more requests will be read (peer EOF, a `ShuttingDown` reply,
    /// or a framing error): flush what is queued, then drop.
    closing: bool,
    /// A `WAL_SUBSCRIBE` arrived: once drained, the reactor hands the
    /// stream to a dedicated blocking subscription thread.
    handoff: bool,
}

impl Conn {
    /// Adopts an accepted stream (made nonblocking; Nagle off like the
    /// blocking path).
    pub fn new(stream: TcpStream, now: Instant) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            assembler: FrameAssembler::new(),
            wbuf: WriteQueue::default(),
            pipeline: VecDeque::new(),
            last_activity: now,
            closing: false,
            handoff: false,
        })
    }

    /// The poll identity of the socket.
    pub fn id(&self) -> SockId {
        sock_id(&self.stream)
    }

    /// Should the reactor poll this connection for readability?
    pub fn wants_read(&self, cfg: &NetConfig) -> bool {
        !self.closing
            && !self.handoff
            && self.pipeline.len() < cfg.max_pipeline
            && self.wbuf.bytes() < cfg.max_write_buffer
    }

    /// Should the reactor poll this connection for writability?
    pub fn wants_write(&self) -> bool {
        !self.wbuf.is_empty()
    }

    /// Everything queued went out and nothing is in flight.
    pub fn drained(&self) -> bool {
        self.pipeline.is_empty() && self.wbuf.is_empty()
    }

    /// Closing and fully drained: the reactor drops the connection.
    pub fn finished(&self) -> bool {
        self.closing && self.drained()
    }

    /// `WAL_SUBSCRIBE` received and every earlier reply flushed: the
    /// reactor converts the stream to a blocking subscription.
    pub fn handoff_ready(&self) -> bool {
        self.handoff && !self.closing && self.drained()
    }

    /// Surrenders the stream for the subscription handoff.
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }

    /// Drains the readable socket into the frame assembler and routes
    /// every completed frame. Returns `false` when the connection is
    /// beyond saving (I/O error, framing desync) and must be dropped
    /// immediately.
    pub fn on_readable(
        &mut self,
        router: &Router,
        cfg: &NetConfig,
        now: Instant,
        scratch: &mut [u8],
    ) -> bool {
        let mut budget = READ_BUDGET;
        while budget > 0 && self.wants_read(cfg) {
            match self.stream.read(scratch) {
                Ok(0) => {
                    // Peer EOF: no more requests, but replies already
                    // in flight still go out before the drop.
                    self.closing = true;
                    break;
                }
                Ok(n) => {
                    self.last_activity = now;
                    self.assembler.push(&scratch[..n]);
                    if !self.process_frames(router, cfg, now) {
                        return false;
                    }
                    budget = budget.saturating_sub(n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        true
    }

    /// Decodes and routes every complete frame the bounds allow.
    fn process_frames(&mut self, router: &Router, cfg: &NetConfig, now: Instant) -> bool {
        while !self.closing
            && !self.handoff
            && self.pipeline.len() < cfg.max_pipeline
            && self.wbuf.bytes() < cfg.max_write_buffer
        {
            match self.assembler.next_frame() {
                Ok(Some(body)) => match router.route_frame(&body) {
                    Routed::Ready(reply) => {
                        // The blocking path closed after answering
                        // `ShuttingDown`; keep that contract.
                        if matches!(reply, Reply::Error(ErrorKind::ShuttingDown, _)) {
                            self.closing = true;
                        }
                        self.queue_reply(&reply, now);
                    }
                    Routed::Pending(pending) => self.pipeline.push_back(Slot::Waiting(pending)),
                    Routed::Handoff => self.handoff = true,
                },
                Ok(None) => break,
                // Framing desync (oversized length prefix): the stream
                // cannot recover — drop, like the blocking path.
                Err(_) => return false,
            }
        }
        true
    }

    /// Bytes sitting in the frame assembler: complete frames the
    /// pipeline/write caps postponed, plus any trailing partial frame.
    pub fn backlog(&self) -> usize {
        self.assembler.buffered()
    }

    /// Routes frames already buffered in the assembler once pipeline or
    /// write-buffer capacity frees up. A burst can land hundreds of
    /// complete frames in a single readiness wake; `process_frames`
    /// stops at `max_pipeline`, and because the remaining frames live
    /// here — not in the kernel socket buffer — a level-triggered poll
    /// will never re-report the fd. The reactor therefore calls this
    /// from its pump pass as in-flight replies drain, which is what
    /// keeps a burst past the cap from stalling forever. Returns
    /// `false` on framing desync (the connection must be dropped).
    pub fn drain_backlog(&mut self, router: &Router, cfg: &NetConfig, now: Instant) -> bool {
        if self.assembler.buffered() == 0 {
            return true;
        }
        self.process_frames(router, cfg, now)
    }

    /// Queues a known reply, preserving request order: straight to the
    /// write queue when nothing earlier is in flight, else behind the
    /// in-flight entries.
    fn queue_reply(&mut self, reply: &Reply, now: Instant) {
        let frame = frame_bytes(reply);
        if self.pipeline.is_empty() {
            self.wbuf.push(frame);
        } else {
            self.pipeline.push_back(Slot::Done(frame));
        }
        self.last_activity = now;
    }

    /// Moves every head-of-line-ready reply from the pipeline to the
    /// write queue (shard replies are polled, never waited on).
    /// Returns whether anything moved.
    pub fn pump(&mut self, now: Instant) -> bool {
        let mut progress = false;
        loop {
            match self.pipeline.front_mut() {
                Some(Slot::Done(_)) => {
                    let Some(Slot::Done(frame)) = self.pipeline.pop_front() else {
                        unreachable!("front was Done");
                    };
                    self.wbuf.push(frame);
                }
                Some(Slot::Waiting(pending)) => match pending.try_poll() {
                    Some(reply) => {
                        if matches!(reply, Reply::Error(ErrorKind::ShuttingDown, _)) {
                            self.closing = true;
                        }
                        self.pipeline.pop_front();
                        self.wbuf.push(frame_bytes(&reply));
                    }
                    None => break,
                },
                None => break,
            }
            progress = true;
            self.last_activity = now;
        }
        progress
    }

    /// Flushes the write queue into the socket (partial-write safe).
    pub fn flush(&mut self, now: Instant) -> io::Result<bool> {
        let progress = self.wbuf.flush_into(&mut self.stream)?;
        if progress {
            self.last_activity = now;
        }
        Ok(progress)
    }

    /// Timeout check. A connection is reaped when its only activity is
    /// a stalled partial frame (header timeout) or it is completely
    /// quiet (idle timeout); connections with requests in flight or
    /// replies unflushed are never reaped.
    pub fn due_reap(&self, now: Instant, cfg: &NetConfig) -> bool {
        if !self.drained() || self.handoff || self.closing {
            return false;
        }
        let stalled = now.duration_since(self.last_activity);
        if self.assembler.buffered() > 0 {
            stalled >= cfg.header_timeout
        } else {
            stalled >= cfg.idle_timeout
        }
    }
}

//! The event-driven connection front-end: one reactor thread, 10k+
//! concurrent connections.
//!
//! The server's hot path (shard threads owning engines outright,
//! bounded queues, the connection-side `QUERY` cache) survives from the
//! thread-per-connection design unchanged — this module replaces only
//! the I/O front: instead of one blocking thread and stack per socket,
//! a single reactor thread multiplexes every connection over
//! nonblocking sockets and a readiness scan.
//!
//! ## Pieces
//!
//! - `sys`: minimal self-contained `epoll(7)` and `poll(2)` bindings
//!   plus an fd rlimit helper ([`raise_fd_limit`]) — std-only, no
//!   external crates.
//! - `poll`: the `Poller` readiness abstraction with persistent
//!   registrations — `epoll` on Linux (the kernel holds the interest
//!   set, a round costs O(ready)), `poll(2)` on other unix, a portable
//!   round-robin scan with exponential backoff everywhere else
//!   (level-triggered spurious readiness is safe with nonblocking
//!   sockets).
//! - `wake`: a UDP-socketpair waker. Shard threads finish requests on
//!   their own schedule; the reply channel pokes the waker so the
//!   reactor wakes immediately instead of on its next timeout tick.
//! - `conn`: the per-connection state machine — incremental frame
//!   reassembly ([`FrameAssembler`](crate::protocol::FrameAssembler)),
//!   an in-order pipeline of in-flight requests, and a vectored-write
//!   output queue with partial-write resumption.
//! - `reactor`: the event loop — accept, read, route, pump shard
//!   replies, flush, reap timed-out connections.
//!
//! ## Pipelining semantics
//!
//! A client may write any number of requests without waiting for
//! replies. The reactor decodes each completed frame immediately and
//! either answers inline (cache hits, validation errors, admission
//! rejections) or dispatches to the owning shard; replies are queued
//! back **in request order** regardless of completion order, so the
//! wire contract is exactly the blocking path's — byte-identical
//! replies, one per request, in order. Per-connection buffers are
//! bounded ([`NetConfig::max_pipeline`] in-flight requests,
//! [`NetConfig::max_write_buffer`] queued reply bytes); a
//! connection at either bound simply stops being read until it drains,
//! which backpressures the peer through TCP instead of buffering
//! without bound. The shard queues keep their own bound: a full queue
//! still answers `OVERLOADED` immediately.
//!
//! ## Timeouts (slowloris guard)
//!
//! Two deadlines protect the reactor's buffers, both configurable via
//! [`ServeConfig`](crate::server::ServeConfig):
//!
//! - **header-read timeout** (`header_timeout`, default 10s): a
//!   connection whose only activity is a partial frame — no queued
//!   replies, no pending requests, just bytes dribbling in — is reaped
//!   when the partial frame stalls past the deadline.
//! - **idle timeout** (`idle_timeout`, default 120s): a fully quiet
//!   connection (no buffered bytes, nothing in flight) is reaped after
//!   the deadline.
//!
//! Connections with in-flight requests or unflushed replies are never
//! reaped. Reap counts surface in `STATS` as `conns_reaped`, next to
//! `conns_open` and `conns_accepted`.

pub(crate) mod conn;
pub(crate) mod poll;
pub(crate) mod reactor;
pub(crate) mod sys;
pub(crate) mod wake;

pub use conn::NetConfig;
pub use sys::raise_fd_limit;

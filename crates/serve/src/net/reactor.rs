//! The event loop: one thread multiplexing the listener, the waker and
//! every client connection.
//!
//! Each round the reactor (1) polls readiness, (2) accepts new
//! connections, (3) reads/routes ready sockets, (4) pumps completed
//! shard replies into write queues and flushes opportunistically,
//! (5) converts drained `WAL_SUBSCRIBE` connections to blocking
//! subscription threads, and (6) reaps connections past their idle or
//! header-read deadline. The poll timeout bounds how late the stop
//! flag and the reaper can run; everything latency-sensitive is woken
//! explicitly (socket readiness, or the [`Waker`](super::wake::Waker)
//! a shard pokes when a reply completes).

use super::conn::{Conn, NetConfig};
use super::poll::{sock_id, Poller, Readiness};
use super::wake::WakeRx;
use crate::server::Router;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server-wide connection counters, shared with the shards so `STATS`
/// can report them.
#[derive(Default)]
pub(crate) struct ConnStats {
    /// Connections currently registered with the reactor.
    pub open: AtomicU64,
    /// Connections accepted since start.
    pub accepted: AtomicU64,
    /// Connections reaped by the idle/header-read timeouts.
    pub reaped: AtomicU64,
}

/// Poll timeout: the upper bound on stop-flag and reap latency when no
/// socket activity wakes the loop earlier.
const POLL_TICK: Duration = Duration::from_millis(25);

/// How long a failed `accept` (fd exhaustion, transient error) mutes
/// the listener, so a persistent error cannot spin the loop.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// Stop-drain budget: after the stop flag, in-flight replies get this
/// long to complete and flush before connections are dropped.
const STOP_DRAIN: Duration = Duration::from_secs(5);

/// Listener and waker tokens; connection slot `i` maps to token
/// `i + TOKEN_CONNS`.
const TOKEN_LISTENER: usize = 0;
const TOKEN_WAKE: usize = 1;
const TOKEN_CONNS: usize = 2;

/// Poller index of the listener registration (the waker sits at index
/// 1). Connection entries are only ever swap-removed from higher
/// indices, so the two fixed registrations never move.
const IDX_LISTENER: usize = 0;

/// The reactor: owns the listener, the wake receiver and every live
/// connection. [`run`](Self::run) consumes it on its own thread.
pub(crate) struct Reactor {
    listener: TcpListener,
    wake_rx: WakeRx,
    router: Router,
    stop: Arc<AtomicBool>,
    stats: Arc<ConnStats>,
    cfg: NetConfig,
    /// Connection slab: slot index is stable for a connection's life.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    poller: Poller,
    /// Poller index of each live slot (parallel to `conns`), kept in
    /// sync across the poller's swap-removes.
    pidx: Vec<usize>,
    /// Last interest flags pushed to the poller per slot, so the
    /// refresh pass only touches entries whose interest changed.
    pflags: Vec<(bool, bool)>,
    accept_muted_until: Option<Instant>,
    /// Listener interest currently registered with the poller.
    accept_armed: bool,
    /// Next timeout sweep — reaping is periodic, not per-round.
    next_reap: Instant,
}

impl Reactor {
    /// Builds a reactor over an already nonblocking listener.
    pub fn new(
        listener: TcpListener,
        wake_rx: WakeRx,
        router: Router,
        stop: Arc<AtomicBool>,
        stats: Arc<ConnStats>,
        cfg: NetConfig,
    ) -> Self {
        let next_reap = Instant::now();
        Reactor {
            listener,
            wake_rx,
            router,
            stop,
            stats,
            cfg,
            conns: Vec::new(),
            free: Vec::new(),
            poller: Poller::new(),
            pidx: Vec::new(),
            pflags: Vec::new(),
            accept_muted_until: None,
            accept_armed: true,
            next_reap,
        }
    }

    /// How often the timeout reaper sweeps the slab: a fraction of the
    /// tightest timeout, bounded below by the poll tick — reap latency
    /// stays proportional to the timeouts without paying a full
    /// connection scan every round.
    fn reap_tick(&self) -> Duration {
        (self.cfg.idle_timeout.min(self.cfg.header_timeout) / 8)
            .clamp(POLL_TICK, Duration::from_secs(1))
    }

    /// The event loop; returns after the stop flag is observed and the
    /// final drain completes.
    pub fn run(mut self) {
        let mut scratch = vec![0u8; 64 << 10];
        let mut ready: Vec<Readiness> = Vec::new();
        // The two fixed registrations; connections come and go above.
        self.poller
            .register(sock_id(&self.listener), TOKEN_LISTENER, true, false);
        self.poller
            .register(self.wake_rx.id(), TOKEN_WAKE, true, false);
        while !self.stop.load(Ordering::SeqCst) {
            let now = Instant::now();
            let accept_open = match self.accept_muted_until {
                Some(t) => now >= t,
                None => true,
            };
            if accept_open != self.accept_armed {
                self.poller.set_interest(IDX_LISTENER, accept_open, false);
                self.accept_armed = accept_open;
            }
            if self.poller.wait(POLL_TICK, &mut ready).is_err() {
                // A transient poll failure: take a breath and rescan.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }

            let now = Instant::now();
            let mut progress = false;
            for r in &ready {
                let r = *r;
                match r.token {
                    TOKEN_LISTENER => progress |= self.accept(now),
                    TOKEN_WAKE => self.wake_rx.drain(),
                    token => {
                        let slot = token - TOKEN_CONNS;
                        let Some(conn) = self.conns[slot].as_mut() else {
                            continue;
                        };
                        // On hangup, read anyway: the kernel may hold
                        // final bytes, and the read path reports EOF or
                        // the error cleanly.
                        if (r.read || r.hup)
                            && !conn.on_readable(&self.router, &self.cfg, now, &mut scratch)
                        {
                            self.drop_conn(slot, false);
                            continue;
                        }
                        progress |= r.read;
                        if r.write {
                            let conn = self.conns[slot].as_mut().expect("conn checked above");
                            match conn.flush(now) {
                                Ok(p) => progress |= p,
                                Err(_) => self.drop_conn(slot, false),
                            }
                        }
                    }
                }
            }

            // Completed shard replies (the waker got us here), freshly
            // queued inline replies, and finished lifecycle states.
            progress |= self.pump_all(now);
            if now >= self.next_reap {
                self.reap(now);
                self.next_reap = now + self.reap_tick();
            }
            self.poller.note_progress(progress);
        }
        self.drain_on_stop();
    }

    /// Accepts until `WouldBlock`. Any other accept error (fd
    /// exhaustion, aborted handshake storms) mutes the listener briefly
    /// instead of spinning on a level-triggered readiness that will not
    /// clear.
    fn accept(&mut self, now: Instant) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if let Ok(conn) = Conn::new(stream, now) {
                        let flags = (conn.wants_read(&self.cfg), conn.wants_write());
                        let (slot, id) = match self.free.pop() {
                            Some(s) => {
                                let id = conn.id();
                                self.conns[s] = Some(conn);
                                (s, id)
                            }
                            None => {
                                let id = conn.id();
                                self.conns.push(Some(conn));
                                self.pidx.push(0);
                                self.pflags.push((false, false));
                                (self.conns.len() - 1, id)
                            }
                        };
                        self.pidx[slot] =
                            self.poller
                                .register(id, slot + TOKEN_CONNS, flags.0, flags.1);
                        self.pflags[slot] = flags;
                        self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                        self.stats.open.fetch_add(1, Ordering::Relaxed);
                        any = true;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    self.accept_muted_until = Some(now + ACCEPT_BACKOFF);
                    break;
                }
            }
        }
        any
    }

    /// Pumps every connection's pipeline, flushes what became writable,
    /// settles finished/handoff states, and re-arms each survivor's
    /// poll interest where it changed (the only per-round full pass —
    /// a few loads per idle connection, no allocation).
    fn pump_all(&mut self, now: Instant) -> bool {
        let mut progress = false;
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            progress |= conn.pump(now);
            // Frames a burst parked in the assembler (read in one wake,
            // capped by `max_pipeline`) re-enter routing here as the
            // pipeline drains — no new socket bytes will ever arrive to
            // make the poller re-report this fd.
            let backlog_before = conn.backlog();
            if !conn.drain_backlog(&self.router, &self.cfg, now) {
                self.drop_conn(slot, false);
                continue;
            }
            let conn = self.conns[slot].as_mut().expect("conn checked above");
            progress |= conn.backlog() != backlog_before;
            if conn.wants_write() {
                match conn.flush(now) {
                    Ok(p) => progress |= p,
                    Err(_) => {
                        self.drop_conn(slot, false);
                        continue;
                    }
                }
            }
            let conn = self.conns[slot].as_ref().expect("conn checked above");
            if conn.finished() {
                self.drop_conn(slot, false);
            } else if conn.handoff_ready() {
                let conn = self.conns[slot].take().expect("conn checked above");
                self.free.push(slot);
                self.unregister(slot);
                self.stats.open.fetch_sub(1, Ordering::Relaxed);
                self.router.spawn_subscription(conn.into_stream());
                progress = true;
            } else {
                let flags = (conn.wants_read(&self.cfg), conn.wants_write());
                if flags != self.pflags[slot] {
                    self.poller.set_interest(self.pidx[slot], flags.0, flags.1);
                    self.pflags[slot] = flags;
                }
            }
        }
        progress
    }

    /// Reaps connections past their idle or header-read deadline.
    fn reap(&mut self, now: Instant) {
        for slot in 0..self.conns.len() {
            if self.conns[slot]
                .as_ref()
                .is_some_and(|c| c.due_reap(now, &self.cfg))
            {
                self.drop_conn(slot, true);
            }
        }
    }

    /// Unregisters and closes one connection.
    fn drop_conn(&mut self, slot: usize, reaped: bool) {
        if self.conns[slot].is_some() {
            // Deregister while the fd is still open, then close it.
            self.unregister(slot);
            self.conns[slot] = None;
            self.free.push(slot);
            self.stats.open.fetch_sub(1, Ordering::Relaxed);
            if reaped {
                self.stats.reaped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Removes a freed slot's poller entry and repairs the slot of the
    /// entry the poller swap-moved into its place.
    fn unregister(&mut self, slot: usize) {
        let idx = self.pidx[slot];
        if let Some(moved) = self.poller.deregister(idx) {
            if moved >= TOKEN_CONNS {
                self.pidx[moved - TOKEN_CONNS] = idx;
            }
        }
    }

    /// After the stop flag: in-flight requests still get their replies
    /// (the shards outlive the reactor; see the server's join order),
    /// and queued replies still flush — the `SHUTDOWN` ack itself rides
    /// this path. Bounded by [`STOP_DRAIN`].
    fn drain_on_stop(&mut self) {
        let deadline = Instant::now() + STOP_DRAIN;
        loop {
            let now = Instant::now();
            let mut busy = false;
            for slot in 0..self.conns.len() {
                let Some(conn) = self.conns[slot].as_mut() else {
                    continue;
                };
                conn.pump(now);
                if conn.wants_write() && conn.flush(now).is_err() {
                    self.drop_conn(slot, false);
                    continue;
                }
                let conn = self.conns[slot].as_ref().expect("conn checked above");
                if conn.drained() {
                    self.drop_conn(slot, false);
                } else {
                    busy = true;
                }
            }
            if !busy || now >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

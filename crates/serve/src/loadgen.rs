//! A small blocking client plus a multi-tenant load generator — the
//! same code path the integration tests, the CI smoke test and the
//! `serve_throughput` bench lane drive the server through.
//!
//! [`Client`] speaks the framed protocol over one TCP connection,
//! strictly request/reply; concurrency comes from one client per
//! thread. [`run_burst`] spins up one thread per tenant, streams a
//! synthetic two-cluster workload through `INSERT_BATCH`, retries on
//! [`ErrorKind::Overloaded`] (back-pressure is a signal, not a failure)
//! and finishes each tenant with a `QUERY`, returning aggregate
//! throughput.

use crate::protocol::{
    read_frame, write_frame, ErrorKind, Reply, Request, TenantConfig, WireError, WireStats,
    WireVariant,
};
use fairsw_metric::{Colored, EuclidPoint};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Errors a client call can report.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The peer sent a frame the protocol cannot decode.
    Wire(WireError),
    /// The connection closed mid-conversation.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: io::BufReader<TcpStream>,
    writer: io::BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: io::BufReader::new(stream.try_clone()?),
            writer: io::BufWriter::new(stream),
        })
    }

    /// Sends one request and waits for its reply.
    pub fn call(&mut self, req: &Request) -> Result<Reply, ClientError> {
        let body = req.encode().map_err(io::Error::from)?;
        write_frame(&mut self.writer, &body)?;
        match read_frame(&mut self.reader)? {
            Some(body) => Ok(Reply::decode(&body)?),
            None => Err(ClientError::Disconnected),
        }
    }

    /// `CREATE tenant` with the given engine configuration.
    pub fn create(&mut self, tenant: &str, config: &TenantConfig) -> Result<Reply, ClientError> {
        self.call(&Request::Create {
            tenant: tenant.into(),
            config: config.clone(),
        })
    }

    /// `INSERT` one point.
    pub fn insert(
        &mut self,
        tenant: &str,
        point: &Colored<EuclidPoint>,
    ) -> Result<Reply, ClientError> {
        self.call(&Request::Insert {
            tenant: tenant.into(),
            point: point.clone(),
        })
    }

    /// `INSERT_BATCH` a slice of points in stream order.
    pub fn insert_batch(
        &mut self,
        tenant: &str,
        points: &[Colored<EuclidPoint>],
    ) -> Result<Reply, ClientError> {
        self.call(&Request::InsertBatch {
            tenant: tenant.into(),
            points: points.to_vec(),
        })
    }

    /// `QUERY` the tenant's current window.
    pub fn query(&mut self, tenant: &str) -> Result<Reply, ClientError> {
        self.call(&Request::Query {
            tenant: tenant.into(),
        })
    }

    /// `STATS` for the tenant.
    pub fn stats(&mut self, tenant: &str) -> Result<Reply, ClientError> {
        self.call(&Request::Stats {
            tenant: tenant.into(),
        })
    }

    /// `CHECKPOINT` one tenant, or every tenant when `tenant` is empty.
    pub fn checkpoint(&mut self, tenant: &str) -> Result<Reply, ClientError> {
        self.call(&Request::Checkpoint {
            tenant: tenant.into(),
        })
    }

    /// `DELETE` the tenant.
    pub fn delete(&mut self, tenant: &str) -> Result<Reply, ClientError> {
        self.call(&Request::Delete {
            tenant: tenant.into(),
        })
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<Reply, ClientError> {
        self.call(&Request::Shutdown)
    }

    /// `PROMOTE` — detaches a follower from its leader and lifts its
    /// read-only gate. Errors with `UNSUPPORTED` on a non-follower.
    pub fn promote(&mut self) -> Result<Reply, ClientError> {
        self.call(&Request::Promote)
    }

    /// Like [`insert_batch`](Self::insert_batch), but treats
    /// `OVERLOADED` as back-pressure: sleeps briefly and retries until
    /// accepted. Returns the number of retries.
    pub fn insert_batch_backoff(
        &mut self,
        tenant: &str,
        points: &[Colored<EuclidPoint>],
    ) -> Result<u64, ClientError> {
        let mut retries = 0;
        loop {
            match self.insert_batch(tenant, points)? {
                Reply::Ok => return Ok(retries),
                Reply::Error(ErrorKind::Overloaded, _) => {
                    retries += 1;
                    std::thread::sleep(Duration::from_millis(1 << retries.min(6)));
                }
                other => {
                    return Err(ClientError::Wire(WireError::Invalid(format!(
                        "unexpected ingest reply {other:?}"
                    ))))
                }
            }
        }
    }
}

/// The request mix a [`run_burst`] worker drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mix {
    /// The original write-dominated burst: batched ingest with interim
    /// queries (`opts.queries` per tenant, plus one final).
    Ingest,
    /// A 95/5 query/ingest mix after a warmup ingest, with a Zipf-like
    /// skew across tenants (tenant `i` issues ~`1/(i+1)` of tenant 0's
    /// operations) — repeat queries against an often-unchanged window,
    /// the result cache's target workload.
    ReadHeavy,
}

impl std::str::FromStr for Mix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ingest" => Ok(Mix::Ingest),
            "read-heavy" => Ok(Mix::ReadHeavy),
            other => Err(format!("unknown mix {other:?} (want ingest|read-heavy)")),
        }
    }
}

/// Parameters of a [`run_burst`] load-generation run.
#[derive(Clone, Debug)]
pub struct BurstOptions {
    /// Concurrent tenants (one connection + thread each).
    pub tenants: usize,
    /// Points streamed per tenant.
    pub points: usize,
    /// `INSERT_BATCH` size.
    pub batch: usize,
    /// Window length of each tenant's engine.
    pub window: usize,
    /// Interim `QUERY`s issued per tenant, evenly spaced through the
    /// ingest (each tenant always issues one final query on top). Their
    /// client-side latencies feed the burst percentiles.
    pub queries: usize,
    /// Delete the tenants afterwards (leave them for inspection when
    /// `false`).
    pub cleanup: bool,
    /// The request mix each worker drives.
    pub mix: Mix,
    /// Stream the unit-norm embedding-drift workload in this dimension
    /// instead of the classic 2-D drift (`--dim D --embeddings`).
    pub embed_dim: Option<usize>,
    /// Ask the server to JL-project every ingested point to
    /// `(out_dim, sparse)` — the per-tenant projection rides in the
    /// `CREATE` config, so this exercises the full wide-dim wire path.
    pub project: Option<(usize, bool)>,
}

impl Default for BurstOptions {
    fn default() -> Self {
        BurstOptions {
            tenants: 4,
            points: 4_000,
            batch: 128,
            window: 500,
            queries: 4,
            cleanup: true,
            mix: Mix::Ingest,
            embed_dim: None,
            project: None,
        }
    }
}

/// Aggregate outcome of a [`run_burst`] run.
#[derive(Clone, Debug)]
pub struct BurstReport {
    /// Total points accepted across all tenants.
    pub points_sent: u64,
    /// Wall-clock time of the whole burst.
    pub elapsed: Duration,
    /// `points_sent / elapsed`.
    pub points_per_sec: f64,
    /// `OVERLOADED` replies absorbed by back-off (back-pressure events).
    pub overloaded_retries: u64,
    /// Tenants whose every `QUERY` (interim and final) answered with a
    /// solution.
    pub queries_ok: usize,
    /// Total `QUERY`s issued across all tenants.
    pub queries_total: usize,
    /// Client-side query-latency percentiles over every issued `QUERY`
    /// — wall-clock from request write to reply decode, so they include
    /// framing, the network and server-side queueing, complementing the
    /// server-side compute percentiles in `STATS`.
    pub query_p50: Duration,
    /// 95th percentile (same measurement).
    pub query_p95: Duration,
    /// 99th percentile (same measurement).
    pub query_p99: Duration,
    /// Projection input dimension the server reported in `STATS`
    /// (0 when no tenant projects).
    pub proj_in_dim: u64,
    /// Projection output dimension from `STATS` (0 when not projecting).
    pub proj_out_dim: u64,
    /// Mean server-side projection cost in ns/point across the tenants
    /// that reported one.
    pub proj_ns_per_point: f64,
}

/// Nearest-rank percentile over a sorted latency list (`Duration::ZERO`
/// when empty) — the same [`crate::percentile`] rank the server's
/// `STATS` percentiles use, so the two reporters agree at any sample
/// size.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    crate::percentile::nearest_rank(sorted.len(), q).map_or(Duration::ZERO, |i| sorted[i])
}

/// The deterministic synthetic workload every load-generation lane
/// streams: three drifting clusters, two colors, golden-ratio jitter
/// (matches the style of the repo's dataset generators; no RNG state).
pub fn workload(points: usize, seed: u64) -> Vec<Colored<EuclidPoint>> {
    (0..points)
        .map(|i| {
            let i = i as u64 + seed;
            let base = (i % 3) as f64 * 120.0;
            let x = base + ((i as f64) * 0.618_033_988_7).fract() * 4.0;
            let y = ((i as f64) * 0.324_717_957_2).fract() * 4.0;
            Colored::new(EuclidPoint::new(vec![x, y]), (i % 2) as u32)
        })
        .collect()
}

/// The unit-norm embedding-drift workload ([`BurstOptions::embed_dim`]):
/// the dataset generator's drifting great-circle clusters, two colors so
/// the [`burst_config`] caps apply unchanged.
pub fn embedding_workload(points: usize, dim: usize, seed: u64) -> Vec<Colored<EuclidPoint>> {
    fairsw_datasets::embedding_drift(
        points,
        dim,
        fairsw_datasets::EmbeddingDriftParams {
            num_colors: 2,
            ..fairsw_datasets::EmbeddingDriftParams::default()
        },
        seed,
    )
    .points
}

/// Seed of the projection [`run_burst`] requests when
/// [`BurstOptions::project`] is set — fixed, so repeated runs against a
/// durable server agree on the matrix.
pub const PROJECT_SEED: u64 = 0xfa15_c0de;

/// The tenant configuration [`run_burst`] creates: the fixed-lattice
/// main algorithm with bounds spanning [`workload`]'s scales.
pub fn burst_config(window: usize) -> TenantConfig {
    TenantConfig::new(
        window,
        vec![2, 2],
        WireVariant::Fixed {
            dmin: 1e-3,
            dmax: 1e4,
        },
    )
}

/// Per-tenant outcome of one burst worker.
struct TenantOutcome {
    points: u64,
    retries: u64,
    all_queries_ok: bool,
    query_latencies: Vec<Duration>,
    stats: Option<WireStats>,
}

/// Drives `opts.tenants` concurrent tenants through create → batched
/// ingest (with overload back-off, interleaved interim queries) → final
/// query (→ delete), one thread and connection per tenant, and reports
/// aggregate throughput plus client-side query-latency percentiles.
pub fn run_burst(
    addr: impl ToSocketAddrs + Clone + Send + 'static,
    opts: &BurstOptions,
) -> Result<BurstReport, String> {
    let t0 = Instant::now();
    let results: Vec<TenantOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.tenants)
            .map(|i| {
                let addr = addr.clone();
                let opts = opts.clone();
                scope.spawn(move || -> Result<TenantOutcome, String> {
                    let tenant = format!("burst-{i}");
                    let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
                    let mut config = burst_config(opts.window);
                    if let Some((out_dim, sparse)) = opts.project {
                        config = config.with_projection(out_dim, PROJECT_SEED, sparse);
                    }
                    match c.create(&tenant, &config).map_err(|e| e.to_string())? {
                        Reply::Ok => {}
                        other => return Err(format!("{tenant}: create failed: {other:?}")),
                    }
                    let stream = match opts.embed_dim {
                        Some(dim) => embedding_workload(opts.points, dim, i as u64 * 7919),
                        None => workload(opts.points, i as u64 * 7919),
                    };
                    let nchunks = stream.chunks(opts.batch.max(1)).count();
                    // Interim queries every `stride` chunks (client-side
                    // latency samples from mid-burst, under ingest load).
                    let stride = (nchunks / (opts.queries + 1)).max(1);
                    let mut outcome = TenantOutcome {
                        points: 0,
                        retries: 0,
                        all_queries_ok: true,
                        query_latencies: Vec::with_capacity(opts.queries + 1),
                        stats: None,
                    };
                    // Like ingest, a query answered `OVERLOADED` is
                    // back-pressure, not a failure: back off and retry,
                    // recording the latency of the accepted attempt.
                    let timed_query = |c: &mut Client,
                                       outcome: &mut TenantOutcome|
                     -> Result<(), String> {
                        loop {
                            let q0 = Instant::now();
                            match c.query(&tenant).map_err(|e| e.to_string())? {
                                Reply::Error(ErrorKind::Overloaded, _) => {
                                    outcome.retries += 1;
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                                reply => {
                                    outcome.query_latencies.push(q0.elapsed());
                                    outcome.all_queries_ok &= matches!(reply, Reply::Solution(_));
                                    return Ok(());
                                }
                            }
                        }
                    };
                    match opts.mix {
                        Mix::Ingest => {
                            for (ci, chunk) in stream.chunks(opts.batch.max(1)).enumerate() {
                                outcome.retries += c
                                    .insert_batch_backoff(&tenant, chunk)
                                    .map_err(|e| e.to_string())?;
                                outcome.points += chunk.len() as u64;
                                if opts.queries > 0
                                    && (ci + 1) % stride == 0
                                    && outcome.query_latencies.len() < opts.queries
                                {
                                    timed_query(&mut c, &mut outcome)?;
                                }
                            }
                        }
                        Mix::ReadHeavy => {
                            // Warmup: a quarter of the stream lands
                            // first, so the op mix queries a populated
                            // window.
                            let warmup =
                                (stream.len() / 4).max(opts.batch.max(1)).min(stream.len());
                            for chunk in stream[..warmup].chunks(opts.batch.max(1)) {
                                outcome.retries += c
                                    .insert_batch_backoff(&tenant, chunk)
                                    .map_err(|e| e.to_string())?;
                                outcome.points += chunk.len() as u64;
                            }
                            // Zipf-like skew: tenant i runs ~1/(i+1) of
                            // tenant 0's operations, so a few hot
                            // tenants dominate — repeat queries between
                            // writes. One op in twenty ingests a batch
                            // (5%); the rest query (95%).
                            let ops = (opts.points / (i + 1)).max(40);
                            let mut chunks = stream[warmup..].chunks(opts.batch.max(1));
                            for j in 0..ops {
                                if j % 20 == 19 {
                                    if let Some(chunk) = chunks.next() {
                                        outcome.retries += c
                                            .insert_batch_backoff(&tenant, chunk)
                                            .map_err(|e| e.to_string())?;
                                        outcome.points += chunk.len() as u64;
                                    }
                                } else {
                                    timed_query(&mut c, &mut outcome)?;
                                }
                            }
                        }
                    }
                    timed_query(&mut c, &mut outcome)?;
                    // Grab the server-side view before the tenant goes
                    // away — the report surfaces its projection fields.
                    if let Reply::Stats(s) = c.stats(&tenant).map_err(|e| e.to_string())? {
                        outcome.stats = Some(s);
                    }
                    if opts.cleanup {
                        c.delete(&tenant).map_err(|e| e.to_string())?;
                    }
                    Ok(outcome)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("burst worker panicked"))
            .collect::<Result<Vec<_>, String>>()
    })?;
    let elapsed = t0.elapsed();
    let points_sent: u64 = results.iter().map(|r| r.points).sum();
    let mut latencies: Vec<Duration> = results
        .iter()
        .flat_map(|r| r.query_latencies.iter().copied())
        .collect();
    latencies.sort();
    let projecting: Vec<&WireStats> = results
        .iter()
        .filter_map(|r| r.stats.as_ref())
        .filter(|s| s.proj_out_dim > 0)
        .collect();
    Ok(BurstReport {
        points_sent,
        elapsed,
        points_per_sec: points_sent as f64 / elapsed.as_secs_f64().max(1e-9),
        overloaded_retries: results.iter().map(|r| r.retries).sum(),
        queries_ok: results.iter().filter(|r| r.all_queries_ok).count(),
        queries_total: latencies.len(),
        query_p50: percentile(&latencies, 0.50),
        query_p95: percentile(&latencies, 0.95),
        query_p99: percentile(&latencies, 0.99),
        proj_in_dim: projecting.iter().map(|s| s.proj_in_dim).max().unwrap_or(0),
        proj_out_dim: projecting.iter().map(|s| s.proj_out_dim).max().unwrap_or(0),
        proj_ns_per_point: if projecting.is_empty() {
            0.0
        } else {
            projecting.iter().map(|s| s.proj_ns_per_point).sum::<f64>() / projecting.len() as f64
        },
    })
}

/// Parameters of a [`run_connections`] high-concurrency sweep.
#[derive(Clone, Debug)]
pub struct ConnOptions {
    /// Open connections held for the whole run — mostly idle at any
    /// instant, the reactor's target regime.
    pub connections: usize,
    /// Driving threads; each owns an equal slice of the connection
    /// pool and round-robins requests over it by PRNG pick.
    pub workers: usize,
    /// Tenant pool the connections are assigned over with a Zipf-like
    /// skew (tenant `i` attracts ~`1/(i+1)` of tenant 0's connections).
    pub tenants: usize,
    /// Window length of each tenant's engine.
    pub window: usize,
    /// Points warmed into every tenant before the measured phase, so
    /// queries answer over a populated window.
    pub warmup_points: usize,
    /// Requests issued across all workers during the measured phase.
    pub requests: usize,
    /// Churn rate: the chance (`0..=1`) that a connection is closed
    /// and reopened right after serving a request.
    pub churn: f64,
    /// PRNG seed (tenant assignment, op picks, churn).
    pub seed: u64,
    /// Delete the tenants afterwards.
    pub cleanup: bool,
}

impl Default for ConnOptions {
    fn default() -> Self {
        ConnOptions {
            connections: 256,
            workers: 8,
            tenants: 8,
            window: 500,
            warmup_points: 1_000,
            requests: 5_000,
            churn: 0.0,
            seed: 0x5eed,
            cleanup: true,
        }
    }
}

/// Aggregate outcome of a [`run_connections`] sweep.
#[derive(Clone, Debug)]
pub struct ConnReport {
    /// Connections held open (as configured, after worker split).
    pub connections: usize,
    /// Requests issued during the measured phase.
    pub requests: u64,
    /// Connections churned (closed and reopened) along the way.
    pub reconnects: u64,
    /// `OVERLOADED` replies absorbed (back-pressure, not failures).
    pub overloaded: u64,
    /// Wall-clock time of the measured phase.
    pub elapsed: Duration,
    /// `requests / elapsed`.
    pub requests_per_sec: f64,
    /// Client-side request-latency percentiles (request write to reply
    /// decode) over every accepted request.
    pub p50: Duration,
    /// 95th percentile (same measurement).
    pub p95: Duration,
    /// 99th percentile (same measurement).
    pub p99: Duration,
}

/// `splitmix64`: the tiny deterministic PRNG the sweep runs on.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Zipf-like pick over `n` tenants: weight `1/(i+1)`.
fn zipf_pick(n: usize, rng: &mut u64) -> usize {
    let h: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
    let mut u = (splitmix64(rng) >> 11) as f64 / (1u64 << 53) as f64 * h;
    for i in 0..n {
        u -= 1.0 / (i + 1) as f64;
        if u <= 0.0 {
            return i;
        }
    }
    n - 1
}

fn conn_tenant(i: usize) -> String {
    format!("conn-{i}")
}

/// Per-worker outcome of one connection sweep.
struct ConnOutcome {
    issued: u64,
    reconnects: u64,
    overloaded: u64,
    latencies: Vec<Duration>,
}

/// One sweep worker: owns `connections/workers` open sockets, issues
/// its share of the requests against PRNG-picked connections (~1 in 16
/// inserts a point, the rest query), and churns connections at the
/// configured rate.
fn conn_worker(
    addr: impl ToSocketAddrs + Clone,
    opts: &ConnOptions,
    w: usize,
    connections: usize,
    workers: usize,
    tenants: usize,
) -> Result<ConnOutcome, String> {
    let lo = w * connections / workers;
    let hi = (w + 1) * connections / workers;
    let mut rng = opts.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut pool: Vec<(Client, usize)> = Vec::with_capacity(hi - lo);
    for _ in lo..hi {
        let tenant = zipf_pick(tenants, &mut rng);
        let c = Client::connect(addr.clone()).map_err(|e| e.to_string())?;
        pool.push((c, tenant));
    }
    let my_requests = (w + 1) * opts.requests / workers - w * opts.requests / workers;
    let mut outcome = ConnOutcome {
        issued: 0,
        reconnects: 0,
        overloaded: 0,
        latencies: Vec::with_capacity(my_requests),
    };
    for _ in 0..my_requests {
        let slot = (splitmix64(&mut rng) as usize) % pool.len().max(1);
        let (c, tenant) = &mut pool[slot];
        let name = conn_tenant(*tenant);
        let write = splitmix64(&mut rng).is_multiple_of(16);
        let q0 = Instant::now();
        let reply = if write {
            let k = splitmix64(&mut rng);
            let x = (k % 3) as f64 * 120.0 + ((k >> 8) % 1000) as f64 * 0.004;
            let y = ((k >> 18) % 1000) as f64 * 0.004;
            c.insert(
                &name,
                &Colored::new(EuclidPoint::new(vec![x, y]), (k % 2) as u32),
            )
        } else {
            c.query(&name)
        }
        .map_err(|e| e.to_string())?;
        outcome.issued += 1;
        match reply {
            Reply::Ok | Reply::Solution(_) => outcome.latencies.push(q0.elapsed()),
            Reply::Error(ErrorKind::Overloaded, _) => outcome.overloaded += 1,
            other => return Err(format!("{name}: unexpected reply {other:?}")),
        }
        let roll = (splitmix64(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
        if opts.churn > 0.0 && roll < opts.churn {
            let tenant = *tenant;
            pool[slot] = (
                Client::connect(addr.clone()).map_err(|e| e.to_string())?,
                tenant,
            );
            outcome.reconnects += 1;
        }
    }
    Ok(outcome)
}

/// Holds `opts.connections` sockets open against a running server —
/// the overwhelming majority idle at any instant — while `opts.workers`
/// threads issue a Zipf-skewed query-dominated request mix over
/// PRNG-picked connections, optionally churning connections as they
/// go. Reports client-side latency percentiles; raises the fd rlimit
/// first.
pub fn run_connections(
    addr: impl ToSocketAddrs + Clone + Send + 'static,
    opts: &ConnOptions,
) -> Result<ConnReport, String> {
    let connections = opts.connections.max(1);
    let workers = opts.workers.clamp(1, connections);
    let tenants = opts.tenants.max(1);
    let limit = crate::net::raise_fd_limit(connections as u64 + 64);
    if limit < connections as u64 + 16 {
        return Err(format!(
            "open-file limit {limit} too low for {connections} connections \
             (raise `ulimit -n`)"
        ));
    }

    // Setup: create and warm the tenant pool over one ordinary client.
    let mut setup = Client::connect(addr.clone()).map_err(|e| e.to_string())?;
    for t in 0..tenants {
        let name = conn_tenant(t);
        match setup
            .create(&name, &burst_config(opts.window))
            .map_err(|e| e.to_string())?
        {
            Reply::Ok => {}
            other => return Err(format!("{name}: create failed: {other:?}")),
        }
        let stream = workload(opts.warmup_points, t as u64 * 104_729);
        for chunk in stream.chunks(256) {
            setup
                .insert_batch_backoff(&name, chunk)
                .map_err(|e| e.to_string())?;
        }
    }

    let t0 = Instant::now();
    let results: Vec<ConnOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let addr = addr.clone();
                let opts = opts.clone();
                scope.spawn(move || conn_worker(addr, &opts, w, connections, workers, tenants))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection worker panicked"))
            .collect::<Result<Vec<_>, String>>()
    })?;
    let elapsed = t0.elapsed();

    if opts.cleanup {
        for t in 0..tenants {
            setup.delete(&conn_tenant(t)).map_err(|e| e.to_string())?;
        }
    }

    let issued: u64 = results.iter().map(|r| r.issued).sum();
    let mut latencies: Vec<Duration> = results
        .iter()
        .flat_map(|r| r.latencies.iter().copied())
        .collect();
    latencies.sort();
    Ok(ConnReport {
        connections,
        requests: issued,
        reconnects: results.iter().map(|r| r.reconnects).sum(),
        overloaded: results.iter().map(|r| r.overloaded).sum(),
        elapsed,
        requests_per_sec: issued as f64 / elapsed.as_secs_f64().max(1e-9),
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
    })
}

/// Parameters of a [`run_crash_drill`] durability drill.
#[derive(Clone, Debug)]
pub struct DrillOptions {
    /// Path to the `fairsw-served` binary to spawn and kill.
    pub served_bin: PathBuf,
    /// Scratch directory for spools, WALs and port files (wiped).
    pub dir: PathBuf,
    /// Total points in the drill stream.
    pub points: usize,
    /// `INSERT_BATCH` size.
    pub batch: usize,
    /// Tenant window length.
    pub window: usize,
    /// Points to ingest before the `SIGKILL`.
    pub kill_after: usize,
    /// Recover by promoting a hot standby instead of restarting the
    /// killed leader from its WAL.
    pub failover: bool,
}

impl Default for DrillOptions {
    fn default() -> Self {
        DrillOptions {
            served_bin: PathBuf::from("fairsw-served"),
            dir: std::env::temp_dir().join("fairsw-crash-drill"),
            points: 4_000,
            batch: 64,
            window: 500,
            kill_after: 2_000,
            failover: false,
        }
    }
}

/// Outcome of one [`run_crash_drill`] run.
#[derive(Clone, Debug)]
pub struct DrillReport {
    /// Points the server acked before the `SIGKILL`.
    pub accepted: u64,
    /// Points the survivor (restart or promoted standby) recovered.
    pub durable: u64,
    /// `accepted - durable` — the durability contract bounds this by
    /// one batch.
    pub lost: u64,
    /// Wall-clock from the kill to the survivor answering `STATS`.
    pub recovery: Duration,
    /// How the drill recovered.
    pub failover: bool,
}

/// A spawned `fairsw-served` that is `SIGKILL`ed when dropped, so a
/// failed drill never leaks server processes.
struct ServedChild(Option<Child>);

impl ServedChild {
    /// `SIGKILL` now (`Child::kill` sends `SIGKILL` on Unix) — the
    /// crash under test, not a shutdown handshake.
    fn kill_now(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Drop for ServedChild {
    fn drop(&mut self) {
        self.kill_now();
    }
}

/// Polls `path` until the spawned server writes its bound address
/// there, failing fast if the child exits first.
fn wait_for_addr(path: &Path, child: &mut Child) -> Result<String, String> {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(s) = std::fs::read_to_string(path) {
            let s = s.trim();
            if !s.is_empty() {
                return Ok(s.to_string());
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            return Err(format!("fairsw-served exited before binding: {status}"));
        }
        if Instant::now() > deadline {
            return Err(format!(
                "timed out waiting for port file {}",
                path.display()
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Spawns one `fairsw-served` with an ephemeral port and waits for its
/// bound address.
fn spawn_served(
    bin: &Path,
    dir: &Path,
    tag: &str,
    extra: &[String],
) -> Result<(ServedChild, String), String> {
    let port_file = dir.join(format!("{tag}.port"));
    let _ = std::fs::remove_file(&port_file);
    let child = Command::new(bin)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--port-file")
        .arg(&port_file)
        .arg("--flush-batch")
        .arg("32")
        .arg("--tick-ms")
        .arg("5")
        .args(extra)
        .stdout(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawning {}: {e}", bin.display()))?;
    let mut guard = ServedChild(Some(child));
    let addr = wait_for_addr(&port_file, guard.0.as_mut().expect("child present"))?;
    Ok((guard, addr))
}

/// `STATS` the tenant, reporting `None` while the server is unreachable
/// or the tenant is not there yet (mid-bootstrap / mid-replay).
fn poll_stats(addr: &str, tenant: &str) -> Option<crate::protocol::WireStats> {
    let mut c = Client::connect(addr).ok()?;
    match c.stats(tenant) {
        Ok(Reply::Stats(s)) => Some(s),
        _ => None,
    }
}

/// Drives the crash/recovery scenario end to end: boot a WAL-backed
/// leader (plus a hot standby when `failover`), ingest `kill_after`
/// points, `SIGKILL` the leader mid-stream, recover — restart from the
/// WAL, or `PROMOTE` the standby — and verify the durable prefix lost
/// at most one batch before streaming the remainder through the
/// survivor. Returns the measured recovery time.
pub fn run_crash_drill(opts: &DrillOptions) -> Result<DrillReport, String> {
    let dir = &opts.dir;
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let leader_args = vec![
        "--spool".to_string(),
        dir.join("leader-spool").display().to_string(),
        "--wal".to_string(),
        dir.join("leader-wal").display().to_string(),
    ];
    let (mut leader, leader_addr) = spawn_served(&opts.served_bin, dir, "leader", &leader_args)?;

    let mut standby: Option<(ServedChild, String)> = None;
    if opts.failover {
        let follower_args = vec![
            "--spool".to_string(),
            dir.join("follower-spool").display().to_string(),
            "--wal".to_string(),
            dir.join("follower-wal").display().to_string(),
            "--follow".to_string(),
            leader_addr.clone(),
        ];
        standby = Some(spawn_served(
            &opts.served_bin,
            dir,
            "follower",
            &follower_args,
        )?);
    }

    let tenant = "drill";
    let stream = workload(opts.points, 0);
    let kill_after = opts.kill_after.clamp(1, stream.len());
    let mut c = Client::connect(leader_addr.as_str()).map_err(|e| e.to_string())?;
    match c
        .create(tenant, &burst_config(opts.window))
        .map_err(|e| e.to_string())?
    {
        Reply::Ok => {}
        other => return Err(format!("create failed: {other:?}")),
    }
    let mut accepted = 0u64;
    for chunk in stream[..kill_after].chunks(opts.batch.max(1)) {
        c.insert_batch_backoff(tenant, chunk)
            .map_err(|e| e.to_string())?;
        accepted += chunk.len() as u64;
    }

    if let Some((_, follower_addr)) = &standby {
        // The drill measures recovery, not replication lag: let the
        // standby catch up before pulling the plug.
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if poll_stats(follower_addr, tenant).is_some_and(|s| s.points_total >= accepted) {
                break;
            }
            if Instant::now() > deadline {
                return Err("standby never caught up to the leader".into());
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    leader.kill_now();
    let t_kill = Instant::now();

    let (survivor, survivor_addr) = match standby {
        Some((guard, follower_addr)) => {
            let mut fc = Client::connect(follower_addr.as_str()).map_err(|e| e.to_string())?;
            match fc.promote().map_err(|e| e.to_string())? {
                Reply::Ok => {}
                other => return Err(format!("promote failed: {other:?}")),
            }
            (guard, follower_addr)
        }
        None => spawn_served(&opts.served_bin, dir, "restart", &leader_args)?,
    };
    let durable = {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if let Some(s) = poll_stats(&survivor_addr, tenant) {
                break s.points_total;
            }
            if Instant::now() > deadline {
                return Err("survivor never answered STATS after recovery".into());
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    let recovery = t_kill.elapsed();

    let lost = accepted.saturating_sub(durable);
    if lost > opts.batch as u64 {
        return Err(format!(
            "durability contract broken: {accepted} acked, {durable} recovered \
             ({lost} lost > one batch of {})",
            opts.batch
        ));
    }

    // Resume the stream from the durable prefix and finish cleanly —
    // the survivor must take writes and answer queries.
    let mut c = Client::connect(survivor_addr.as_str()).map_err(|e| e.to_string())?;
    for chunk in stream[durable as usize..].chunks(opts.batch.max(1)) {
        c.insert_batch_backoff(tenant, chunk)
            .map_err(|e| e.to_string())?;
    }
    match c.query(tenant).map_err(|e| e.to_string())? {
        Reply::Solution(_) => {}
        other => return Err(format!("post-recovery query failed: {other:?}")),
    }
    match c.shutdown().map_err(|e| e.to_string())? {
        Reply::Ok => {}
        other => return Err(format!("survivor shutdown failed: {other:?}")),
    }
    drop(survivor);
    Ok(DrillReport {
        accepted,
        durable,
        lost,
        recovery,
        failover: opts.failover,
    })
}

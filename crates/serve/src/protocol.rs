//! The `fairsw-serve` wire protocol: little-endian, length-prefixed
//! frames carrying one request or one reply each.
//!
//! ## Frame layout
//!
//! ```text
//! frame   := len:u32 body[len]          (len ≤ 64 MiB)
//! request := opcode:u8 tenant:str16 payload
//! str16   := len:u16 utf8[len]
//! reply   := status:u8 payload
//! ```
//!
//! Requests (`opcode` → payload):
//!
//! | op | name           | payload                                     |
//! |----|----------------|---------------------------------------------|
//! | 1  | `CREATE`       | [`TenantConfig`]                            |
//! | 2  | `INSERT`       | one colored point                           |
//! | 3  | `INSERT_BATCH` | `count:u32` colored points                  |
//! | 4  | `QUERY`        | —                                           |
//! | 5  | `STATS`        | —                                           |
//! | 6  | `CHECKPOINT`   | — (empty tenant name = every tenant)        |
//! | 7  | `DELETE`       | —                                           |
//! | 8  | `SHUTDOWN`     | — (tenant name ignored)                     |
//! | 9  | `WAL_SUBSCRIBE`| — (tenant name ignored)                     |
//! | 10 | `PROMOTE`      | — (tenant name ignored)                     |
//!
//! A colored point is `color:u32 dim:u16 coords:f64[dim]`. Replies carry
//! `status = 0` (OK) followed by a payload tag (`0` bare ack, `1`
//! [`WireSolution`], `2` [`WireStats`], `3` checkpoint counts, `4` a
//! `WAL_APPEND` replication frame: `tenant:str16` + one
//! [`WalRecord`](crate::wal::WalRecord)), or a non-zero [`ErrorKind`]
//! code followed by `msg:str16`. All numbers are little-endian; `f64`
//! values travel as raw IEEE bits, so solutions survive the wire
//! **bit-identically** — the differential suite compares server replies
//! against in-process engines at the byte level.
//!
//! ## Replication frames
//!
//! `WAL_SUBSCRIBE` converts the connection into a one-way replication
//! stream: the server acks with a bare `Ok`, then pushes `WAL_APPEND`
//! reply frames (tag `4`) — one per durable log record — for every
//! tenant's history (bootstrap) and every subsequently accepted write
//! (live tail). The subscriber never sends another request on that
//! connection. `PROMOTE`, sent to a follower started with `--follow`,
//! detaches it from its leader and re-enables writes; on a server that
//! is not a follower it answers [`ErrorKind::Unsupported`]. Writes sent
//! to a not-yet-promoted follower answer [`ErrorKind::ReadOnly`].
//!
//! Every decoder is total: corrupt input yields [`WireError`], never a
//! panic, and length prefixes are sanity-checked against the bytes
//! remaining before any allocation is sized by them. Encoders are
//! checked the same way: a value that does not fit its wire field (a
//! point beyond 65535 dimensions, an oversized capacity vector) fails
//! with [`ProtocolError::TooLarge`] instead of emitting a frame whose
//! truncated length field would misparse on the other side.

use fairsw_core::{
    ConfigError, EngineBuilder, QueryError, Solution, SolutionExtras, VariantSpec, WindowEngine,
};
use fairsw_matroid::PartitionMatroid;
use fairsw_metric::{Colored, EuclidPoint, Euclidean, Exactness, Relaxed};
use std::fmt;
use std::io::{self, Read, Write};

/// Hard cap on one frame's body (guards the length-prefix read).
pub const MAX_FRAME: usize = 64 << 20;
/// Longest accepted tenant name (also a spool-file name stem).
pub const MAX_TENANT_LEN: usize = 64;

// ---- framing -----------------------------------------------------------

/// Writes one length-prefixed frame. A body over [`MAX_FRAME`] is a
/// hard error *before* any bytes hit the wire — the peer's `read_frame`
/// would reject the length prefix anyway, and a half-written oversized
/// frame would desynchronize the stream for good.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
                body.len()
            ),
        ));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame. Returns `None` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    if !read_exact_or_eof(r, &mut len)? {
        return Ok(None);
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {n} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; n];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// `read_exact`, except a clean EOF before the first byte returns
/// `Ok(false)` instead of an error (EOF mid-buffer stays an error).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame",
                ))
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Incremental frame reassembly for nonblocking sockets.
///
/// The blocking [`read_frame`] owns its stream and can wait for a whole
/// frame; the event-driven path (see [`crate::net`]) receives arbitrary
/// byte chunks — a frame may arrive one byte at a time, or several
/// pipelined frames may land in a single `read`. `FrameAssembler` is the
/// state machine between the two: [`push`](Self::push) appends whatever
/// the socket produced, [`next_frame`](Self::next_frame) yields each
/// completed frame body in arrival order.
///
/// The length prefix is validated against [`MAX_FRAME`] *before* any
/// allocation is sized by it, exactly like the blocking reader; an
/// oversized prefix is an unrecoverable framing error (the stream can
/// never resynchronize) and poisons the assembler. Consumed bytes are
/// compacted away lazily, so the buffer stays bounded by one maximal
/// frame plus one read chunk.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    start: usize,
    /// A framing error was hit: the stream is desynchronized for good.
    poisoned: bool,
}

/// Compaction threshold for the consumed prefix of the buffer.
const ASSEMBLER_COMPACT: usize = 64 << 10;

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes read from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes received but not yet yielded as complete frames (a partial
    /// frame, a partial length prefix, or frames not yet drained).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete frame body, `Ok(None)` while the tail is
    /// still partial. After an `Err` (length prefix over [`MAX_FRAME`])
    /// the assembler is poisoned: every later call errs too, because a
    /// desynchronized length-prefixed stream cannot be re-entered.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if self.poisoned {
            return Err(WireError::Invalid("framing desynchronized".into()));
        }
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let mut len = [0u8; 4];
        len.copy_from_slice(&self.buf[self.start..self.start + 4]);
        let n = u32::from_le_bytes(len) as usize;
        if n > MAX_FRAME {
            self.poisoned = true;
            return Err(WireError::Invalid(format!(
                "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap"
            )));
        }
        if avail < 4 + n {
            self.compact();
            return Ok(None);
        }
        let body = self.buf[self.start + 4..self.start + 4 + n].to_vec();
        self.start += 4 + n;
        self.compact();
        Ok(Some(body))
    }

    /// Reclaims the consumed prefix once it is large enough to matter
    /// (or the buffer emptied, which makes it free).
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= ASSEMBLER_COMPACT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

// ---- decode errors -----------------------------------------------------

/// Errors raised while decoding a frame body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The body ended before the encoded structure did.
    Truncated,
    /// A decoded value is structurally invalid (message attached).
    Invalid(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Invalid(m) => write!(f, "invalid frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---- encode errors -----------------------------------------------------

/// Errors raised while *encoding* a frame body: a value does not fit
/// the wire field that carries its length. Encoding is checked, never
/// asserted — an oversized value is a hard error, not a debug-only
/// panic that releases silently truncate into garbage frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// `what` has `len` items (or bytes) but the wire caps it at `max`.
    TooLarge {
        /// What overflowed (e.g. `"point dimension"`).
        what: &'static str,
        /// The offending length.
        len: usize,
        /// The wire format's cap for this field.
        max: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::TooLarge { what, len, max } => {
                write!(f, "{what} of {len} exceeds the wire cap of {max}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<ProtocolError> for io::Error {
    fn from(e: ProtocolError) -> Self {
        io::Error::new(io::ErrorKind::InvalidInput, e.to_string())
    }
}

/// Checks one length against the cap of the wire field carrying it.
pub(crate) fn check_len(what: &'static str, len: usize, max: usize) -> Result<(), ProtocolError> {
    if len > max {
        return Err(ProtocolError::TooLarge { what, len, max });
    }
    Ok(())
}

// ---- primitive helpers -------------------------------------------------

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str16(out: &mut Vec<u8>, s: &str) -> Result<(), ProtocolError> {
    check_len("string length", s.len(), u16::MAX as usize)?;
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

pub(crate) fn take_bytes<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if input.len() < n {
        return Err(WireError::Truncated);
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

pub(crate) fn take_u8(input: &mut &[u8]) -> Result<u8, WireError> {
    Ok(take_bytes(input, 1)?[0])
}

pub(crate) fn take_u16(input: &mut &[u8]) -> Result<u16, WireError> {
    Ok(u16::from_le_bytes(
        take_bytes(input, 2)?.try_into().expect("2 bytes"),
    ))
}

pub(crate) fn take_u32(input: &mut &[u8]) -> Result<u32, WireError> {
    Ok(u32::from_le_bytes(
        take_bytes(input, 4)?.try_into().expect("4 bytes"),
    ))
}

pub(crate) fn take_u64(input: &mut &[u8]) -> Result<u64, WireError> {
    Ok(u64::from_le_bytes(
        take_bytes(input, 8)?.try_into().expect("8 bytes"),
    ))
}

pub(crate) fn take_f64(input: &mut &[u8]) -> Result<f64, WireError> {
    Ok(f64::from_le_bytes(
        take_bytes(input, 8)?.try_into().expect("8 bytes"),
    ))
}

/// Reads a `u32` count and sanity-checks it against the bytes left so a
/// corrupt prefix cannot size a huge allocation.
pub(crate) fn take_count32(input: &mut &[u8], min_item_bytes: usize) -> Result<usize, WireError> {
    let n = take_u32(input)? as usize;
    if n as u128 * min_item_bytes as u128 > input.len() as u128 {
        return Err(WireError::Truncated);
    }
    Ok(n)
}

pub(crate) fn take_str16(input: &mut &[u8]) -> Result<String, WireError> {
    let n = take_u16(input)? as usize;
    let bytes = take_bytes(input, n)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("non-UTF-8 string".into()))
}

// ---- points ------------------------------------------------------------

pub(crate) fn put_point(out: &mut Vec<u8>, p: &Colored<EuclidPoint>) -> Result<(), ProtocolError> {
    check_len("point dimension", p.point.coords().len(), u16::MAX as usize)?;
    put_u32(out, p.color);
    put_u16(out, p.point.coords().len() as u16);
    for c in p.point.coords() {
        put_f64(out, *c);
    }
    Ok(())
}

pub(crate) fn take_point(input: &mut &[u8]) -> Result<Colored<EuclidPoint>, WireError> {
    let color = take_u32(input)?;
    let dim = take_u16(input)? as usize;
    if dim * 8 > input.len() {
        return Err(WireError::Truncated);
    }
    let mut coords = Vec::with_capacity(dim);
    for _ in 0..dim {
        coords.push(take_f64(input)?);
    }
    Ok(Colored::new(EuclidPoint::new(coords), color))
}

// ---- tenant configuration ---------------------------------------------

/// The variant selector inside a [`TenantConfig`] — the wire shape of
/// [`VariantSpec`] (the matroid arm carries a partition matroid over the
/// config's capacities, the one constraint expressible without shipping
/// an oracle).
#[derive(Clone, Debug, PartialEq)]
pub enum WireVariant {
    /// The main algorithm (`VariantSpec::Fixed`).
    Fixed {
        /// Lower bound on the stream's pairwise distances.
        dmin: f64,
        /// Upper bound on the stream's pairwise distances.
        dmax: f64,
    },
    /// The scale-oblivious variant.
    Oblivious,
    /// The Corollary 2 variant.
    Compact {
        /// Lower bound on the stream's pairwise distances.
        dmin: f64,
        /// Upper bound on the stream's pairwise distances.
        dmax: f64,
    },
    /// The outlier-tolerant variant.
    Robust {
        /// Tolerated outliers per window.
        z: usize,
        /// Lower bound on the stream's pairwise distances.
        dmin: f64,
        /// Upper bound on the stream's pairwise distances.
        dmax: f64,
    },
    /// A partition matroid over the config's capacities.
    Matroid {
        /// Lower bound on the stream's pairwise distances.
        dmin: f64,
        /// Upper bound on the stream's pairwise distances.
        dmax: f64,
    },
}

impl WireVariant {
    /// Stable single-byte code (also reported by [`WireStats`]).
    pub fn code(&self) -> u8 {
        match self {
            WireVariant::Fixed { .. } => 0,
            WireVariant::Oblivious => 1,
            WireVariant::Compact { .. } => 2,
            WireVariant::Robust { .. } => 3,
            WireVariant::Matroid { .. } => 4,
        }
    }
}

/// Per-tenant Johnson–Lindenstrauss ingest projection, as carried in
/// `CREATE`: every accepted point is projected to `out_dim` coordinates
/// *before* it reaches the WAL, the ingest buffer, or the engine, so
/// the tenant's durable state and resident memory shrink with the
/// dimension. Only the spec travels on the wire — the projection matrix
/// is rematerialized from the seed on every node (leader, follower,
/// restart), which keeps recovery bit-identical without serializing
/// `in_dim × out_dim` floats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireProjection {
    /// Projected dimensionality (must be > 0).
    pub out_dim: usize,
    /// Seed the projection matrix is rematerialized from.
    pub seed: u64,
    /// Use the sparse (Achlioptas ±1/0) variant instead of dense
    /// Gaussian entries.
    pub sparse: bool,
}

/// A tenant's engine configuration as sent in `CREATE`: the shared
/// [`FairSWConfig`](fairsw_core::FairSWConfig) parameters plus a
/// [`WireVariant`].
#[derive(Clone, Debug, PartialEq)]
pub struct TenantConfig {
    /// Window length `n`.
    pub window: usize,
    /// Per-color budgets `k_i`.
    pub caps: Vec<usize>,
    /// Guess progression `β`.
    pub beta: f64,
    /// Coreset precision `δ`.
    pub delta: f64,
    /// Which variant to construct.
    pub variant: WireVariant,
    /// Kernel exactness: `Exact` (the default) answers bit-identically
    /// to the scalar reference kernels; `Approx { epsilon }` lets the
    /// tenant's engine run the runtime-dispatched SIMD kernels.
    pub exactness: Exactness,
    /// In approx mode, stage coreset views as the compact `f32` mirror
    /// (final radii are still re-ranked in exact `f64`).
    pub compact_mirror: bool,
    /// Optional JL ingest projection (see [`WireProjection`]). Encoded
    /// as trailing bytes, so configs without one are byte-identical to
    /// the previous wire revision and old WAL logs/snapshots replay
    /// unchanged.
    pub projection: Option<WireProjection>,
}

impl TenantConfig {
    /// A config with the paper's defaults (`β = 2`, `δ = 1`).
    pub fn new(window: usize, caps: Vec<usize>, variant: WireVariant) -> Self {
        TenantConfig {
            window,
            caps,
            beta: 2.0,
            delta: 1.0,
            variant,
            exactness: Exactness::Exact,
            compact_mirror: false,
            projection: None,
        }
    }

    /// Attaches a JL ingest projection to the config.
    pub fn with_projection(mut self, out_dim: usize, seed: u64, sparse: bool) -> Self {
        self.projection = Some(WireProjection {
            out_dim,
            seed,
            sparse,
        });
        self
    }

    /// Builds the engine this config describes (validation included).
    /// The metric is always wrapped in [`Relaxed`]; with the default
    /// `Exactness::Exact` the engine answers bit-identically to one
    /// built over the bare metric.
    pub fn build_engine(&self) -> Result<WindowEngine<Relaxed<Euclidean>>, ConfigError> {
        let builder = EngineBuilder::new()
            .window_size(self.window)
            .capacities(self.caps.clone())
            .beta(self.beta)
            .delta(self.delta)
            .exactness(self.exactness)
            .compact_mirror(self.compact_mirror);
        let spec = match self.variant {
            WireVariant::Fixed { dmin, dmax } => VariantSpec::Fixed { dmin, dmax },
            WireVariant::Oblivious => VariantSpec::Oblivious,
            WireVariant::Compact { dmin, dmax } => VariantSpec::Compact { dmin, dmax },
            WireVariant::Robust { z, dmin, dmax } => VariantSpec::Robust { z, dmin, dmax },
            WireVariant::Matroid { dmin, dmax } => VariantSpec::Matroid {
                matroid: PartitionMatroid::new(self.caps.clone())
                    .map_err(|_| ConfigError::NoCapacities)?
                    .into(),
                dmin,
                dmax,
            },
        };
        builder.variant(spec).build_relaxed(Euclidean)
    }

    pub(crate) fn encode(&self, out: &mut Vec<u8>) -> Result<(), ProtocolError> {
        check_len("capacity count", self.caps.len(), u16::MAX as usize)?;
        put_u64(out, self.window as u64);
        put_u16(out, self.caps.len() as u16);
        for c in &self.caps {
            put_u64(out, *c as u64);
        }
        put_f64(out, self.beta);
        put_f64(out, self.delta);
        out.push(self.variant.code());
        match self.variant {
            WireVariant::Oblivious => {}
            WireVariant::Fixed { dmin, dmax }
            | WireVariant::Compact { dmin, dmax }
            | WireVariant::Matroid { dmin, dmax } => {
                put_f64(out, dmin);
                put_f64(out, dmax);
            }
            WireVariant::Robust { z, dmin, dmax } => {
                put_u64(out, z as u64);
                put_f64(out, dmin);
                put_f64(out, dmax);
            }
        }
        match self.exactness {
            Exactness::Exact => out.push(0),
            Exactness::Approx { epsilon } => {
                out.push(if self.compact_mirror { 2 } else { 1 });
                put_f64(out, epsilon);
            }
        }
        // The projection rides as trailing bytes: absent, the encoding
        // is byte-identical to the pre-projection wire revision.
        if let Some(proj) = self.projection {
            check_len("projection dimension", proj.out_dim, u16::MAX as usize)?;
            out.push(if proj.sparse { 2 } else { 1 });
            put_u64(out, proj.out_dim as u64);
            put_u64(out, proj.seed);
        }
        Ok(())
    }

    pub(crate) fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let window = take_u64(input)? as usize;
        let ncaps = take_u16(input)? as usize;
        if ncaps * 8 > input.len() {
            return Err(WireError::Truncated);
        }
        let mut caps = Vec::with_capacity(ncaps);
        for _ in 0..ncaps {
            caps.push(take_u64(input)? as usize);
        }
        let beta = take_f64(input)?;
        let delta = take_f64(input)?;
        let variant = match take_u8(input)? {
            0 => WireVariant::Fixed {
                dmin: take_f64(input)?,
                dmax: take_f64(input)?,
            },
            1 => WireVariant::Oblivious,
            2 => WireVariant::Compact {
                dmin: take_f64(input)?,
                dmax: take_f64(input)?,
            },
            3 => WireVariant::Robust {
                z: take_u64(input)? as usize,
                dmin: take_f64(input)?,
                dmax: take_f64(input)?,
            },
            4 => WireVariant::Matroid {
                dmin: take_f64(input)?,
                dmax: take_f64(input)?,
            },
            other => return Err(WireError::Invalid(format!("unknown variant code {other}"))),
        };
        let (exactness, compact_mirror) = match take_u8(input)? {
            0 => (Exactness::Exact, false),
            code @ (1 | 2) => (
                Exactness::Approx {
                    epsilon: take_f64(input)?,
                },
                code == 2,
            ),
            other => {
                return Err(WireError::Invalid(format!(
                    "unknown exactness code {other}"
                )))
            }
        };
        // Trailing projection bytes; their absence (an encoding from the
        // pre-projection wire revision, e.g. an old WAL log) means no
        // projection. Every enclosing body is length-delimited with the
        // config last, so "remaining input" is well-defined here.
        let projection = if input.is_empty() {
            None
        } else {
            let sparse = match take_u8(input)? {
                1 => false,
                2 => true,
                other => {
                    return Err(WireError::Invalid(format!(
                        "unknown projection tag {other}"
                    )))
                }
            };
            let out_dim = take_u64(input)? as usize;
            if out_dim == 0 {
                return Err(WireError::Invalid("projection dimension 0".into()));
            }
            let seed = take_u64(input)?;
            Some(WireProjection {
                out_dim,
                seed,
                sparse,
            })
        };
        Ok(TenantConfig {
            window,
            caps,
            beta,
            delta,
            variant,
            exactness,
            compact_mirror,
            projection,
        })
    }
}

// ---- requests ----------------------------------------------------------

/// One request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Creates a tenant (fails with `TENANT_EXISTS` when live).
    Create {
        /// Tenant name (`[A-Za-z0-9._-]{1,64}`).
        tenant: String,
        /// Engine configuration.
        config: TenantConfig,
    },
    /// Appends one point to the tenant's ingest buffer (acked when
    /// buffered, applied on the next size- or tick-triggered flush).
    Insert {
        /// Tenant name.
        tenant: String,
        /// The arriving point.
        point: Colored<EuclidPoint>,
    },
    /// Appends a batch of points to the tenant's ingest buffer.
    InsertBatch {
        /// Tenant name.
        tenant: String,
        /// The arriving points, in stream order.
        points: Vec<Colored<EuclidPoint>>,
    },
    /// Flushes the tenant's buffer and answers for its current window.
    Query {
        /// Tenant name.
        tenant: String,
    },
    /// Flushes the tenant's buffer and reports its memory/throughput
    /// statistics.
    Stats {
        /// Tenant name.
        tenant: String,
    },
    /// Writes FSW2 snapshots to the spool directory — the named tenant,
    /// or every tenant when the name is empty.
    Checkpoint {
        /// Tenant name ("" = all tenants).
        tenant: String,
    },
    /// Deletes the tenant (its reset engine may be reused by a matching
    /// `CREATE`).
    Delete {
        /// Tenant name.
        tenant: String,
    },
    /// Asks the server to shut down cleanly.
    Shutdown,
    /// Converts this connection into a replication stream: the server
    /// acks, then pushes one [`Reply::Wal`] frame per durable log
    /// record (bootstrap history first, live tail after). Requires the
    /// server to run with a WAL directory.
    WalSubscribe,
    /// Promotes a follower to leader: detaches it from its leader and
    /// re-enables writes. Not a follower → [`ErrorKind::Unsupported`].
    Promote,
}

const OP_CREATE: u8 = 1;
const OP_INSERT: u8 = 2;
const OP_INSERT_BATCH: u8 = 3;
const OP_QUERY: u8 = 4;
const OP_STATS: u8 = 5;
const OP_CHECKPOINT: u8 = 6;
const OP_DELETE: u8 = 7;
const OP_SHUTDOWN: u8 = 8;
const OP_WAL_SUBSCRIBE: u8 = 9;
const OP_PROMOTE: u8 = 10;

impl Request {
    /// The tenant the request addresses ("" for `SHUTDOWN` and
    /// checkpoint-all).
    pub fn tenant(&self) -> &str {
        match self {
            Request::Create { tenant, .. }
            | Request::Insert { tenant, .. }
            | Request::InsertBatch { tenant, .. }
            | Request::Query { tenant }
            | Request::Stats { tenant }
            | Request::Checkpoint { tenant }
            | Request::Delete { tenant } => tenant,
            Request::Shutdown | Request::WalSubscribe | Request::Promote => "",
        }
    }

    /// Encodes the request as one frame body. Fails with
    /// [`ProtocolError::TooLarge`] when a value does not fit its wire
    /// field (a >65535-dimensional point, an oversized tenant name or
    /// capacity vector) — the frame is refused outright instead of
    /// carrying silently truncated lengths.
    pub fn encode(&self) -> Result<Vec<u8>, ProtocolError> {
        let mut out = Vec::with_capacity(64);
        match self {
            Request::Create { tenant, config } => {
                out.push(OP_CREATE);
                put_str16(&mut out, tenant)?;
                config.encode(&mut out)?;
            }
            Request::Insert { tenant, point } => {
                out.push(OP_INSERT);
                put_str16(&mut out, tenant)?;
                put_point(&mut out, point)?;
            }
            Request::InsertBatch { tenant, points } => {
                out.push(OP_INSERT_BATCH);
                put_str16(&mut out, tenant)?;
                check_len("batch size", points.len(), u32::MAX as usize)?;
                put_u32(&mut out, points.len() as u32);
                for p in points {
                    put_point(&mut out, p)?;
                }
            }
            Request::Query { tenant } => {
                out.push(OP_QUERY);
                put_str16(&mut out, tenant)?;
            }
            Request::Stats { tenant } => {
                out.push(OP_STATS);
                put_str16(&mut out, tenant)?;
            }
            Request::Checkpoint { tenant } => {
                out.push(OP_CHECKPOINT);
                put_str16(&mut out, tenant)?;
            }
            Request::Delete { tenant } => {
                out.push(OP_DELETE);
                put_str16(&mut out, tenant)?;
            }
            Request::Shutdown => {
                out.push(OP_SHUTDOWN);
                put_str16(&mut out, "")?;
            }
            Request::WalSubscribe => {
                out.push(OP_WAL_SUBSCRIBE);
                put_str16(&mut out, "")?;
            }
            Request::Promote => {
                out.push(OP_PROMOTE);
                put_str16(&mut out, "")?;
            }
        }
        Ok(out)
    }

    /// Decodes one frame body (the whole body must be consumed).
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut input = body;
        let op = take_u8(&mut input)?;
        let tenant = take_str16(&mut input)?;
        let req = match op {
            OP_CREATE => Request::Create {
                tenant,
                config: TenantConfig::decode(&mut input)?,
            },
            OP_INSERT => Request::Insert {
                tenant,
                point: take_point(&mut input)?,
            },
            OP_INSERT_BATCH => {
                // A point is at least color + dim = 6 bytes.
                let n = take_count32(&mut input, 6)?;
                let mut points = Vec::with_capacity(n);
                for _ in 0..n {
                    points.push(take_point(&mut input)?);
                }
                Request::InsertBatch { tenant, points }
            }
            OP_QUERY => Request::Query { tenant },
            OP_STATS => Request::Stats { tenant },
            OP_CHECKPOINT => Request::Checkpoint { tenant },
            OP_DELETE => Request::Delete { tenant },
            OP_SHUTDOWN => Request::Shutdown,
            OP_WAL_SUBSCRIBE => Request::WalSubscribe,
            OP_PROMOTE => Request::Promote,
            other => return Err(WireError::Invalid(format!("unknown opcode {other}"))),
        };
        if !input.is_empty() {
            return Err(WireError::Invalid(format!(
                "{} trailing bytes",
                input.len()
            )));
        }
        Ok(req)
    }
}

// ---- replies -----------------------------------------------------------

/// Error codes a reply can carry (the non-zero status bytes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The tenant's shard queue is full — retry later (admission
    /// control, not failure).
    Overloaded = 1,
    /// No live tenant under that name.
    NoSuchTenant = 2,
    /// `CREATE` on a name that is already live.
    TenantExists = 3,
    /// Malformed request or invalid configuration.
    BadRequest = 4,
    /// The engine's query failed (message carries the engine error).
    QueryFailed = 5,
    /// The operation is not supported for this tenant's variant
    /// (e.g. `CHECKPOINT` of a non-fixed engine) or server config.
    Unsupported = 6,
    /// The server is shutting down.
    ShuttingDown = 7,
    /// The server is a not-yet-promoted follower: writes are rejected
    /// until `PROMOTE` (reads are served from the replicated state).
    ReadOnly = 8,
}

impl ErrorKind {
    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            1 => ErrorKind::Overloaded,
            2 => ErrorKind::NoSuchTenant,
            3 => ErrorKind::TenantExists,
            4 => ErrorKind::BadRequest,
            5 => ErrorKind::QueryFailed,
            6 => ErrorKind::Unsupported,
            7 => ErrorKind::ShuttingDown,
            8 => ErrorKind::ReadOnly,
            _ => return None,
        })
    }
}

/// A solution as it travels on the wire. Field-for-field the engine's
/// [`Solution`] over [`EuclidPoint`]; `f64`s are raw IEEE bits, so
/// equality of two `WireSolution`s (or of their encodings) is the
/// bit-identity the differential suite demands.
#[derive(Clone, Debug, PartialEq)]
pub struct WireSolution {
    /// The selected centers.
    pub centers: Vec<Colored<EuclidPoint>>,
    /// The winning guess `γ̂`.
    pub guess: f64,
    /// Size of the coreset handed to the solver.
    pub coreset_size: usize,
    /// Solver-reported radius over the coreset.
    pub coreset_radius: f64,
    /// Variant-specific extras.
    pub extras: WireExtras,
}

/// Wire shape of [`SolutionExtras`].
#[derive(Clone, Debug, PartialEq, Default)]
pub enum WireExtras {
    /// No extras (fixed-lattice variants).
    #[default]
    None,
    /// The robust variant's priced-out outliers.
    Robust {
        /// Coreset points the solver priced out.
        outliers: Vec<Colored<EuclidPoint>>,
    },
    /// The oblivious variant's provenance.
    Oblivious {
        /// Whether the winning guess had processed the whole window.
        mature: bool,
        /// Whether the answer fell back to the newest point.
        fallback: bool,
        /// Materialized guess range at query time.
        guess_range: Option<(f64, f64)>,
    },
}

impl WireSolution {
    /// Converts an engine solution into its wire shape.
    pub fn from_solution(sol: &Solution<EuclidPoint>) -> Self {
        WireSolution {
            centers: sol.centers.clone(),
            guess: sol.guess,
            coreset_size: sol.coreset_size,
            coreset_radius: sol.coreset_radius,
            extras: match &sol.extras {
                SolutionExtras::None => WireExtras::None,
                SolutionExtras::Robust { outliers } => WireExtras::Robust {
                    outliers: outliers.clone(),
                },
                SolutionExtras::Oblivious {
                    mature,
                    fallback,
                    guess_range,
                } => WireExtras::Oblivious {
                    mature: *mature,
                    fallback: *fallback,
                    guess_range: *guess_range,
                },
            },
        }
    }

    fn encode(&self, out: &mut Vec<u8>) -> Result<(), ProtocolError> {
        put_f64(out, self.guess);
        put_u64(out, self.coreset_size as u64);
        put_f64(out, self.coreset_radius);
        check_len("center count", self.centers.len(), u32::MAX as usize)?;
        put_u32(out, self.centers.len() as u32);
        for c in &self.centers {
            put_point(out, c)?;
        }
        match &self.extras {
            WireExtras::None => out.push(0),
            WireExtras::Robust { outliers } => {
                out.push(1);
                check_len("outlier count", outliers.len(), u32::MAX as usize)?;
                put_u32(out, outliers.len() as u32);
                for p in outliers {
                    put_point(out, p)?;
                }
            }
            WireExtras::Oblivious {
                mature,
                fallback,
                guess_range,
            } => {
                out.push(2);
                out.push(*mature as u8);
                out.push(*fallback as u8);
                match guess_range {
                    None => out.push(0),
                    Some((lo, hi)) => {
                        out.push(1);
                        put_f64(out, *lo);
                        put_f64(out, *hi);
                    }
                }
            }
        }
        Ok(())
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let guess = take_f64(input)?;
        let coreset_size = take_u64(input)? as usize;
        let coreset_radius = take_f64(input)?;
        let n = take_count32(input, 6)?;
        let mut centers = Vec::with_capacity(n);
        for _ in 0..n {
            centers.push(take_point(input)?);
        }
        let extras = match take_u8(input)? {
            0 => WireExtras::None,
            1 => {
                let n = take_count32(input, 6)?;
                let mut outliers = Vec::with_capacity(n);
                for _ in 0..n {
                    outliers.push(take_point(input)?);
                }
                WireExtras::Robust { outliers }
            }
            2 => {
                let mature = take_u8(input)? != 0;
                let fallback = take_u8(input)? != 0;
                let guess_range = match take_u8(input)? {
                    0 => None,
                    1 => Some((take_f64(input)?, take_f64(input)?)),
                    other => return Err(WireError::Invalid(format!("bad range tag {other}"))),
                };
                WireExtras::Oblivious {
                    mature,
                    fallback,
                    guess_range,
                }
            }
            other => return Err(WireError::Invalid(format!("unknown extras tag {other}"))),
        };
        Ok(WireSolution {
            centers,
            guess,
            coreset_size,
            coreset_radius,
            extras,
        })
    }
}

/// Per-tenant statistics reported by `STATS`. The engine-state fields
/// are deterministic (the differential suite compares them bit-for-bit
/// against an oracle engine); the service-side fields
/// ([`points_per_sec`](Self::points_per_sec) and the latency
/// percentiles) are wall-clock measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct WireStats {
    /// Arrival counter (applied points, buffer excluded).
    pub time: u64,
    /// Window length `n`.
    pub window: u64,
    /// Stored handle entries (the paper's memory metric).
    pub stored_points: u64,
    /// Distinct live payloads in the interned arena.
    pub unique_points: u64,
    /// Heap bytes of those payloads.
    pub payload_bytes: u64,
    /// Total resident bytes (handles + payloads).
    pub resident_bytes: u64,
    /// Materialized guesses.
    pub num_guesses: u64,
    /// The tenant's variant code ([`WireVariant::code`]).
    pub variant: u8,
    /// Points accepted into the buffer since the tenant was created.
    pub points_total: u64,
    /// Points currently buffered (acked, not yet applied).
    pub buffered: u64,
    /// Ingest throughput since creation (wall clock).
    pub points_per_sec: f64,
    /// Query-latency percentiles over the recent-query window, in
    /// microseconds (0 before the first query).
    pub query_p50_us: f64,
    /// 90th percentile.
    pub query_p90_us: f64,
    /// 99th percentile.
    pub query_p99_us: f64,
    /// Live bytes across the tenant's WAL segments (0 without a WAL).
    pub wal_bytes: u64,
    /// Live WAL segment files (0 without a WAL).
    pub wal_segments: u64,
    /// Bytes appended since the last group-commit fsync — the window a
    /// power loss could take (a plain `kill -9` loses nothing that
    /// reached the page cache).
    pub wal_unsynced_bytes: u64,
    /// Time since the last fsync of this tenant's WAL, in microseconds
    /// (0 when nothing is unsynced).
    pub wal_fsync_lag_us: f64,
    /// Live replication subscribers on this tenant's shard.
    pub followers: u64,
    /// Largest replication backlog (queued frames) across those
    /// subscribers — follower lag in records.
    pub repl_lag: u64,
    /// Server-wide `QUERY` replies answered from the result cache
    /// (repeat queries at an unchanged tenant version never reach the
    /// shard's engine thread).
    pub query_cache_hits: u64,
    /// Server-wide `QUERY` replies that missed the result cache and
    /// were computed by the shard's engine.
    pub query_cache_misses: u64,
    /// Connections currently registered with the reactor (subscription
    /// streams handed off to their own thread are not counted).
    pub conns_open: u64,
    /// Connections accepted since the server started.
    pub conns_accepted: u64,
    /// Connections reaped by the idle/header-read timeouts (the
    /// slowloris guard; see [`crate::net`]).
    pub conns_reaped: u64,
    /// Input dimensionality of the tenant's JL ingest projection (0
    /// when the tenant does not project, or before its first point).
    pub proj_in_dim: u64,
    /// Projected dimensionality (0 when the tenant does not project).
    pub proj_out_dim: u64,
    /// Mean projection cost per accepted point, in nanoseconds (0 when
    /// the tenant does not project).
    pub proj_ns_per_point: f64,
}

impl WireStats {
    /// Blanks the wall-clock and durability-bookkeeping fields, leaving
    /// the deterministic engine-state part (what differential tests
    /// compare). The WAL fields depend on record framing and fsync
    /// timing, so they are service-side observability, not oracle state.
    pub fn deterministic(mut self) -> Self {
        self.points_per_sec = 0.0;
        self.query_p50_us = 0.0;
        self.query_p90_us = 0.0;
        self.query_p99_us = 0.0;
        self.wal_bytes = 0;
        self.wal_segments = 0;
        self.wal_unsynced_bytes = 0;
        self.wal_fsync_lag_us = 0.0;
        self.followers = 0;
        self.repl_lag = 0;
        self.query_cache_hits = 0;
        self.query_cache_misses = 0;
        self.conns_open = 0;
        self.conns_accepted = 0;
        self.conns_reaped = 0;
        // The projection dims are engine state; only the timing is
        // wall-clock.
        self.proj_ns_per_point = 0.0;
        self
    }

    fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.time,
            self.window,
            self.stored_points,
            self.unique_points,
            self.payload_bytes,
            self.resident_bytes,
            self.num_guesses,
        ] {
            put_u64(out, v);
        }
        out.push(self.variant);
        put_u64(out, self.points_total);
        put_u64(out, self.buffered);
        for v in [
            self.points_per_sec,
            self.query_p50_us,
            self.query_p90_us,
            self.query_p99_us,
        ] {
            put_f64(out, v);
        }
        for v in [self.wal_bytes, self.wal_segments, self.wal_unsynced_bytes] {
            put_u64(out, v);
        }
        put_f64(out, self.wal_fsync_lag_us);
        put_u64(out, self.followers);
        put_u64(out, self.repl_lag);
        put_u64(out, self.query_cache_hits);
        put_u64(out, self.query_cache_misses);
        put_u64(out, self.conns_open);
        put_u64(out, self.conns_accepted);
        put_u64(out, self.conns_reaped);
        put_u64(out, self.proj_in_dim);
        put_u64(out, self.proj_out_dim);
        put_f64(out, self.proj_ns_per_point);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(WireStats {
            time: take_u64(input)?,
            window: take_u64(input)?,
            stored_points: take_u64(input)?,
            unique_points: take_u64(input)?,
            payload_bytes: take_u64(input)?,
            resident_bytes: take_u64(input)?,
            num_guesses: take_u64(input)?,
            variant: take_u8(input)?,
            points_total: take_u64(input)?,
            buffered: take_u64(input)?,
            points_per_sec: take_f64(input)?,
            query_p50_us: take_f64(input)?,
            query_p90_us: take_f64(input)?,
            query_p99_us: take_f64(input)?,
            wal_bytes: take_u64(input)?,
            wal_segments: take_u64(input)?,
            wal_unsynced_bytes: take_u64(input)?,
            wal_fsync_lag_us: take_f64(input)?,
            followers: take_u64(input)?,
            repl_lag: take_u64(input)?,
            query_cache_hits: take_u64(input)?,
            query_cache_misses: take_u64(input)?,
            conns_open: take_u64(input)?,
            conns_accepted: take_u64(input)?,
            conns_reaped: take_u64(input)?,
            proj_in_dim: take_u64(input)?,
            proj_out_dim: take_u64(input)?,
            proj_ns_per_point: take_f64(input)?,
        })
    }
}

/// One reply frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Bare acknowledgement (`CREATE`, inserts, `DELETE`, `SHUTDOWN`).
    Ok,
    /// `QUERY` succeeded.
    Solution(WireSolution),
    /// `STATS` succeeded.
    Stats(WireStats),
    /// `CHECKPOINT` succeeded: snapshots written / tenants skipped
    /// (variants without snapshot support).
    Checkpointed {
        /// Snapshots written to the spool.
        written: u32,
        /// Tenants skipped (no snapshot support).
        skipped: u32,
    },
    /// A `WAL_APPEND` replication frame, pushed (never solicited
    /// per-request) on a connection converted by `WAL_SUBSCRIBE`.
    Wal {
        /// The tenant the record belongs to.
        tenant: String,
        /// The replicated log record.
        record: crate::wal::WalRecord,
    },
    /// The request failed.
    Error(ErrorKind, String),
}

const REPLY_ACK: u8 = 0;
const REPLY_SOLUTION: u8 = 1;
const REPLY_STATS: u8 = 2;
const REPLY_CHECKPOINTED: u8 = 3;
const REPLY_WAL: u8 = 4;

impl Reply {
    /// Encodes a `WAL_APPEND` frame body from an already-encoded record
    /// body — the shard-side hot path pushes replication frames without
    /// materializing an owned [`WalRecord`](crate::wal::WalRecord).
    pub(crate) fn wal_frame_bytes(tenant: &str, record_body: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + tenant.len() + record_body.len());
        out.push(0);
        out.push(REPLY_WAL);
        // Tenant names passed `valid_tenant_name` (≤ 64 bytes) before any
        // record could be logged under them, so this cannot overflow.
        put_str16(&mut out, tenant).expect("validated tenant name fits str16");
        out.extend_from_slice(record_body);
        out
    }

    /// Builds the reply for an engine query outcome.
    pub fn from_query(result: &Result<Solution<EuclidPoint>, QueryError>) -> Self {
        match result {
            Ok(sol) => Reply::Solution(WireSolution::from_solution(sol)),
            Err(e) => Reply::Error(ErrorKind::QueryFailed, e.to_string()),
        }
    }

    /// Encodes the reply as one frame body. Fails with
    /// [`ProtocolError::TooLarge`] when a value does not fit its wire
    /// field. [`Reply::Error`] always encodes (its message is truncated
    /// to fit), so a failed encode can always be *reported* on the wire.
    pub fn encode(&self) -> Result<Vec<u8>, ProtocolError> {
        let mut out = Vec::with_capacity(32);
        match self {
            Reply::Ok => {
                out.push(0);
                out.push(REPLY_ACK);
            }
            Reply::Solution(sol) => {
                out.push(0);
                out.push(REPLY_SOLUTION);
                sol.encode(&mut out)?;
            }
            Reply::Stats(stats) => {
                out.push(0);
                out.push(REPLY_STATS);
                stats.encode(&mut out);
            }
            Reply::Checkpointed { written, skipped } => {
                out.push(0);
                out.push(REPLY_CHECKPOINTED);
                put_u32(&mut out, *written);
                put_u32(&mut out, *skipped);
            }
            Reply::Wal { tenant, record } => {
                check_len("tenant name", tenant.len(), u16::MAX as usize)?;
                let mut body = Vec::new();
                record.encode(&mut body)?;
                return Ok(Reply::wal_frame_bytes(tenant, &body));
            }
            Reply::Error(kind, msg) => {
                out.push(*kind as u8);
                // str16 caps the message at 64 KiB; back the cut off to
                // a char boundary (byte-index slicing panics mid-char).
                let mut cut = msg.len().min(u16::MAX as usize);
                while !msg.is_char_boundary(cut) {
                    cut -= 1;
                }
                put_str16(&mut out, &msg[..cut]).expect("truncated message fits str16");
            }
        }
        Ok(out)
    }

    /// Decodes one frame body (the whole body must be consumed).
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut input = body;
        let status = take_u8(&mut input)?;
        let reply = if status == 0 {
            match take_u8(&mut input)? {
                REPLY_ACK => Reply::Ok,
                REPLY_SOLUTION => Reply::Solution(WireSolution::decode(&mut input)?),
                REPLY_STATS => Reply::Stats(WireStats::decode(&mut input)?),
                REPLY_CHECKPOINTED => Reply::Checkpointed {
                    written: take_u32(&mut input)?,
                    skipped: take_u32(&mut input)?,
                },
                REPLY_WAL => Reply::Wal {
                    tenant: take_str16(&mut input)?,
                    record: crate::wal::WalRecord::decode(&mut input)?,
                },
                other => return Err(WireError::Invalid(format!("unknown reply tag {other}"))),
            }
        } else {
            let kind = ErrorKind::from_code(status)
                .ok_or_else(|| WireError::Invalid(format!("unknown status {status}")))?;
            Reply::Error(kind, take_str16(&mut input)?)
        };
        if !input.is_empty() {
            return Err(WireError::Invalid(format!(
                "{} trailing bytes",
                input.len()
            )));
        }
        Ok(reply)
    }
}

/// Whether `name` is acceptable as a tenant name (non-empty, at most
/// [`MAX_TENANT_LEN`] bytes, `[A-Za-z0-9._-]` only — it doubles as the
/// spool-file stem).
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT_LEN
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
        && !name.starts_with('.')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, c: u32) -> Colored<EuclidPoint> {
        Colored::new(EuclidPoint::new(vec![x, -x]), c)
    }

    #[test]
    fn request_roundtrip() {
        let reqs = vec![
            Request::Create {
                tenant: "t0".into(),
                config: TenantConfig::new(
                    100,
                    vec![2, 1],
                    WireVariant::Robust {
                        z: 3,
                        dmin: 0.5,
                        dmax: 1e3,
                    },
                ),
            },
            Request::Insert {
                tenant: "a-b.c_9".into(),
                point: pt(1.25, 7),
            },
            Request::InsertBatch {
                tenant: "t".into(),
                points: vec![pt(1.0, 0), pt(-2.5, 1)],
            },
            Request::Query { tenant: "t".into() },
            Request::Stats { tenant: "t".into() },
            Request::Checkpoint { tenant: "".into() },
            Request::Delete { tenant: "t".into() },
            Request::Shutdown,
            Request::WalSubscribe,
            Request::Promote,
        ];
        for req in reqs {
            let body = req.encode().unwrap();
            assert_eq!(Request::decode(&body).unwrap(), req, "roundtrip {req:?}");
        }
    }

    #[test]
    fn reply_roundtrip() {
        let replies = vec![
            Reply::Ok,
            Reply::Solution(WireSolution {
                centers: vec![pt(0.5, 0), pt(100.0, 1)],
                guess: 2.0_f64.powi(7),
                coreset_size: 42,
                coreset_radius: 1.5,
                extras: WireExtras::Oblivious {
                    mature: true,
                    fallback: false,
                    guess_range: Some((0.25, 64.0)),
                },
            }),
            Reply::Solution(WireSolution {
                centers: vec![pt(1.0, 2)],
                guess: 1.0,
                coreset_size: 3,
                coreset_radius: 0.0,
                extras: WireExtras::Robust {
                    outliers: vec![pt(9e9, 0)],
                },
            }),
            Reply::Stats(WireStats {
                time: 10,
                window: 5,
                stored_points: 40,
                unique_points: 9,
                payload_bytes: 144,
                resident_bytes: 464,
                num_guesses: 12,
                variant: 3,
                points_total: 11,
                buffered: 1,
                points_per_sec: 123.5,
                query_p50_us: 10.0,
                query_p90_us: 20.0,
                query_p99_us: 30.0,
                wal_bytes: 4096,
                wal_segments: 2,
                wal_unsynced_bytes: 128,
                wal_fsync_lag_us: 1500.0,
                followers: 1,
                repl_lag: 7,
                query_cache_hits: 21,
                query_cache_misses: 4,
                conns_open: 3,
                conns_accepted: 900,
                conns_reaped: 12,
                proj_in_dim: 768,
                proj_out_dim: 64,
                proj_ns_per_point: 412.5,
            }),
            Reply::Checkpointed {
                written: 3,
                skipped: 1,
            },
            Reply::Wal {
                tenant: "repl".into(),
                record: crate::wal::WalRecord::Batch {
                    start: 42,
                    points: vec![pt(1.0, 0), pt(-2.5, 1)],
                },
            },
            Reply::Wal {
                tenant: "repl".into(),
                record: crate::wal::WalRecord::Create(TenantConfig::new(
                    10,
                    vec![1, 1],
                    WireVariant::Oblivious,
                )),
            },
            Reply::Error(ErrorKind::ReadOnly, "follower is read-only".into()),
        ];
        for reply in replies {
            let body = reply.encode().unwrap();
            assert_eq!(Reply::decode(&body).unwrap(), reply, "roundtrip {reply:?}");
        }
    }

    #[test]
    fn decoders_reject_garbage_without_panicking() {
        for body in [&b""[..], &b"\xff"[..], &b"\x01\x00"[..], &[11, 0, 0][..]] {
            assert!(Request::decode(body).is_err());
            assert!(Reply::decode(body).is_err());
        }
        // Truncations of a valid body always err.
        let body = Request::InsertBatch {
            tenant: "t".into(),
            points: vec![pt(1.0, 0); 10],
        }
        .encode()
        .unwrap();
        for cut in 0..body.len() {
            assert!(Request::decode(&body[..cut]).is_err(), "cut at {cut}");
        }
        // A huge batch count against a short body is refused before any
        // allocation is sized by it.
        let mut evil = Vec::new();
        evil.push(3u8); // INSERT_BATCH
        put_str16(&mut evil, "t").unwrap();
        put_u32(&mut evil, u32::MAX);
        assert_eq!(Request::decode(&evil), Err(WireError::Truncated));
    }

    #[test]
    fn oversized_values_are_hard_encode_errors() {
        // A 70k-dimensional point cannot travel in a u16 dim field: the
        // encoder refuses outright instead of emitting a frame whose
        // truncated length misparses the coordinate payload.
        let big = Colored::new(EuclidPoint::new(vec![0.0; 70_000]), 0);
        let err = Request::Insert {
            tenant: "t".into(),
            point: big.clone(),
        }
        .encode()
        .unwrap_err();
        assert_eq!(
            err,
            ProtocolError::TooLarge {
                what: "point dimension",
                len: 70_000,
                max: u16::MAX as usize,
            }
        );
        // The same point inside a batch, and inside a solution reply.
        assert!(Request::InsertBatch {
            tenant: "t".into(),
            points: vec![big.clone()],
        }
        .encode()
        .is_err());
        assert!(Reply::Solution(WireSolution {
            centers: vec![big],
            guess: 1.0,
            coreset_size: 1,
            coreset_radius: 0.0,
            extras: WireExtras::None,
        })
        .encode()
        .is_err());
        // An oversized capacity vector overflows its u16 count field.
        let caps = vec![1usize; u16::MAX as usize + 1];
        assert!(matches!(
            Request::Create {
                tenant: "t".into(),
                config: TenantConfig::new(10, caps, WireVariant::Oblivious),
            }
            .encode(),
            Err(ProtocolError::TooLarge {
                what: "capacity count",
                ..
            })
        ));
        // An oversized tenant name overflows str16.
        assert!(Request::Query {
            tenant: "x".repeat(u16::MAX as usize + 1),
        }
        .encode()
        .is_err());
        // write_frame refuses an over-cap body before any bytes move.
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &vec![0u8; MAX_FRAME + 1]).is_err());
        assert!(sink.is_empty(), "no partial frame reaches the wire");
    }

    #[test]
    fn frame_io_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
        // Oversized length prefix is refused.
        let mut evil = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        evil.extend_from_slice(&[0; 8]);
        assert!(read_frame(&mut evil.as_slice()).is_err());
    }

    #[test]
    fn tenant_name_validation() {
        assert!(valid_tenant_name("tenant-1"));
        assert!(valid_tenant_name("a.b_c"));
        assert!(!valid_tenant_name(""));
        assert!(!valid_tenant_name(".hidden"));
        assert!(!valid_tenant_name("a/b"));
        assert!(!valid_tenant_name("über"));
        assert!(!valid_tenant_name(&"x".repeat(MAX_TENANT_LEN + 1)));
    }

    #[test]
    fn config_builds_every_variant() {
        for variant in [
            WireVariant::Fixed {
                dmin: 0.1,
                dmax: 100.0,
            },
            WireVariant::Oblivious,
            WireVariant::Compact {
                dmin: 0.1,
                dmax: 100.0,
            },
            WireVariant::Robust {
                z: 1,
                dmin: 0.1,
                dmax: 100.0,
            },
            WireVariant::Matroid {
                dmin: 0.1,
                dmax: 100.0,
            },
        ] {
            let code = variant.code();
            let engine = TenantConfig::new(10, vec![1, 1], variant)
                .build_engine()
                .expect("valid config");
            assert_eq!(
                ["fixed", "oblivious", "compact", "robust", "matroid"][code as usize],
                engine.variant_name()
            );
        }
        // Bad configs surface as errors, not panics.
        assert!(TenantConfig::new(
            0,
            vec![1],
            WireVariant::Fixed {
                dmin: 1.0,
                dmax: 2.0
            }
        )
        .build_engine()
        .is_err());
    }
}

//! The one nearest-rank percentile used everywhere a latency
//! distribution is summarized (tenant `STATS`, the load generator).
//!
//! Both call sites previously carried their own copy with the
//! linear-interpolation index `round((len-1) * q)`, which overshoots at
//! small samples: two observations put "p50" at the *larger* one. The
//! standard nearest-rank definition — the smallest value with at least
//! `q·n` observations at or below it, `idx = ceil(q·n) − 1` — picks the
//! smaller, and the two reporters can no longer drift apart.

/// Index of the nearest-rank `q`-th percentile in a sorted sample of
/// `len` values; `None` for an empty sample. `q` is clamped to `[0, 1]`.
pub fn nearest_rank(len: usize, q: f64) -> Option<usize> {
    if len == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * len as f64).ceil() as usize;
    Some(rank.clamp(1, len) - 1)
}

/// The nearest-rank `q`-th percentile of a **sorted** slice (0.0 when
/// empty, mirroring how the stats reporters treat "no samples yet").
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    nearest_rank(sorted.len(), q).map_or(0.0, |i| sorted[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_has_no_rank() {
        assert_eq!(nearest_rank(0, 0.5), None);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn small_samples_round_down_not_up() {
        // The old `round((len-1)*q)` formula put p50 of two samples at
        // index 1; nearest rank puts it at index 0.
        assert_eq!(nearest_rank(2, 0.5), Some(0));
        assert_eq!(percentile_sorted(&[1.0, 9.0], 0.5), 1.0);
        assert_eq!(nearest_rank(1, 0.99), Some(0));
        assert_eq!(nearest_rank(2, 0.9), Some(1));
    }

    #[test]
    fn boundaries_are_clamped() {
        assert_eq!(nearest_rank(10, 0.0), Some(0));
        assert_eq!(nearest_rank(10, 1.0), Some(9));
        assert_eq!(nearest_rank(10, -3.0), Some(0));
        assert_eq!(nearest_rank(10, 7.0), Some(9));
    }

    #[test]
    fn matches_the_textbook_definition() {
        // 10 samples: p50 = ceil(5) = rank 5 → index 4; p90 → index 8;
        // p99 → ceil(9.9) = rank 10 → index 9.
        assert_eq!(nearest_rank(10, 0.5), Some(4));
        assert_eq!(nearest_rank(10, 0.9), Some(8));
        assert_eq!(nearest_rank(10, 0.99), Some(9));
        // 100 samples: p50 → index 49, p90 → index 89, p99 → index 98.
        assert_eq!(nearest_rank(100, 0.5), Some(49));
        assert_eq!(nearest_rank(100, 0.9), Some(89));
        assert_eq!(nearest_rank(100, 0.99), Some(98));
    }
}

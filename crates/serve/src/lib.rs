//! # fairsw-serve — a multi-tenant streaming clustering service
//!
//! The network-facing layer of the sliding-window fair-clustering
//! engine: a TCP server (`fairsw-served`) that hosts many independent
//! tenants, each an own [`WindowEngine`](fairsw_core::WindowEngine) over
//! its own window, stream and variant, plus the framed wire
//! [`protocol`] and a [`loadgen`] client.
//!
//! Built entirely on `std` (`std::net` + threads — no async runtime, no
//! new dependencies), composing the substrate of the earlier layers:
//!
//! * **one facade** — tenants are [`WindowEngine`](fairsw_core::WindowEngine)s built from a
//!   `VariantSpec`-shaped [`protocol::TenantConfig`]; the serving loop
//!   has no per-variant code;
//! * **batched ingest** — per-tenant buffers flush into the engines'
//!   `insert_batch` throughput path by size or tick; answers are
//!   bit-identical to per-point insertion, so buffering is invisible to
//!   clients;
//! * **shard ownership** — tenants are hash-sharded across worker
//!   threads that own their engines outright; the hot path takes no
//!   locks, and each engine may itself fan guesses out over a worker
//!   pool (`FAIRSW_THREADS`);
//! * **admission control** — per-shard queues are bounded; a full queue
//!   answers `OVERLOADED` instead of buffering without bound;
//! * **crash recovery** — `CHECKPOINT` spools FSW2 snapshots; a
//!   per-tenant write-ahead log ([`wal`]) makes every *acknowledged*
//!   write durable between checkpoints, with group-commit fsync,
//!   segment compaction, and a `--follow` hot standby replicating the
//!   same records; startup replays snapshot + WAL suffix.
//!
//! ## Quick tour
//!
//! ```
//! use fairsw_serve::loadgen::Client;
//! use fairsw_serve::protocol::{Reply, TenantConfig, WireVariant};
//! use fairsw_serve::server::{ServeConfig, Server};
//! use fairsw_metric::{Colored, EuclidPoint};
//!
//! // An ephemeral-port server (in production: `fairsw-served`).
//! let handle = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//!
//! let config = TenantConfig::new(100, vec![1, 1], WireVariant::Oblivious);
//! assert_eq!(client.create("demo", &config).unwrap(), Reply::Ok);
//! let batch: Vec<_> = (0..250u32)
//!     .map(|i| Colored::new(EuclidPoint::new(vec![(i % 97) as f64]), i % 2))
//!     .collect();
//! assert_eq!(client.insert_batch("demo", &batch).unwrap(), Reply::Ok);
//! match client.query("demo").unwrap() {
//!     Reply::Solution(sol) => assert!(!sol.centers.is_empty()),
//!     other => panic!("unexpected reply {other:?}"),
//! }
//! handle.shutdown();
//! ```
//!
//! The [`protocol`] module documents the exact frame layout; the
//! integration suite (`tests/differential.rs`) proves every reply
//! bit-identical to an in-process sequential engine fed the same
//! stream, across tenants, variants, batch shapes and thread counts.

pub mod loadgen;
pub mod net;
pub mod percentile;
pub mod protocol;
pub mod server;
pub mod wal;

pub use loadgen::{
    run_burst, run_connections, BurstOptions, BurstReport, Client, ConnOptions, ConnReport,
};
pub use protocol::{ProtocolError, Reply, Request, TenantConfig, WireProjection, WireVariant};
pub use server::{ServeConfig, Server, ServerHandle};
pub use wal::{TenantWal, WalRecord, WalTuning};

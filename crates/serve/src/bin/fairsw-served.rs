//! `fairsw-served` — the multi-tenant sliding-window clustering server.
//!
//! ```text
//! USAGE:
//!   fairsw-served [--addr 127.0.0.1:4871] [OPTIONS]
//!
//! OPTIONS:
//!   --addr HOST:PORT   bind address (default 127.0.0.1:4871; port 0
//!                      picks an ephemeral port — see --port-file)
//!   --shards N         shard threads owning the tenants (default 2)
//!   --flush-batch N    ingest-buffer flush threshold (default 512)
//!   --queue-depth N    bounded per-shard queue (default 128); a full
//!                      queue answers OVERLOADED (admission control)
//!   --tick-ms N        idle flush tick in milliseconds (default 20)
//!   --spool DIR        snapshot spool directory: CHECKPOINT writes
//!                      FSW2 snapshots here and startup replays them
//!   --wal DIR          write-ahead-log root: every accepted write is
//!                      logged before it is acked, and startup replays
//!                      snapshot + WAL suffix (crash-safe durability)
//!   --wal-segment-bytes N  rotate WAL segments at N bytes (default 1 MiB)
//!   --wal-compact-bytes N  fold the WAL into a spool snapshot once a
//!                      tenant's log exceeds N bytes (default 4 MiB)
//!   --follow ADDR      start as a hot standby of the leader at ADDR:
//!                      read-only, streams the leader's WAL, becomes a
//!                      leader itself on PROMOTE
//!   --idle-timeout-ms N    reap a fully idle connection after N ms
//!                      without a byte from the peer (default 120000)
//!   --header-timeout-ms N  reap a connection stalled mid-frame after
//!                      N ms — the slowloris guard (default 10000)
//!   --port-file PATH   write the bound address to PATH once listening
//!                      (lets scripts find an ephemeral port)
//! ```
//!
//! Per-tenant engines honor `FAIRSW_THREADS` for their worker pools.
//! The server runs until a client sends `SHUTDOWN`.

use fairsw_serve::server::{ServeConfig, Server};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
fairsw-served: multi-tenant sliding-window fair-clustering server

USAGE:
  fairsw-served [--addr 127.0.0.1:4871] [OPTIONS]

OPTIONS:
  --addr HOST:PORT  bind address (default 127.0.0.1:4871; port 0 = ephemeral)
  --shards N        shard threads owning the tenants (default 2)
  --flush-batch N   ingest-buffer flush threshold (default 512)
  --queue-depth N   bounded per-shard queue depth (default 128)
  --tick-ms N       idle flush tick in milliseconds (default 20)
  --spool DIR       snapshot spool (CHECKPOINT target, replayed on start)
  --wal DIR         write-ahead-log root (log before ack, replay on start)
  --wal-segment-bytes N  WAL segment rotation threshold (default 1 MiB)
  --wal-compact-bytes N  WAL-into-snapshot compaction threshold (default 4 MiB)
  --follow ADDR     run as a read-only hot standby of the leader at ADDR
  --idle-timeout-ms N    reap idle connections after N ms (default 120000)
  --header-timeout-ms N  reap mid-frame stalls after N ms (default 10000)
  --port-file PATH  write the bound address to PATH once listening
";

struct Args {
    addr: String,
    cfg: ServeConfig,
    port_file: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:4871".into(),
        cfg: ServeConfig::default(),
        port_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--shards" => {
                args.cfg.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--flush-batch" => {
                args.cfg.flush_batch = value("--flush-batch")?
                    .parse()
                    .map_err(|e| format!("--flush-batch: {e}"))?
            }
            "--queue-depth" => {
                args.cfg.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?
            }
            "--tick-ms" => {
                let ms: u64 = value("--tick-ms")?
                    .parse()
                    .map_err(|e| format!("--tick-ms: {e}"))?;
                args.cfg.tick = Duration::from_millis(ms.max(1));
            }
            "--spool" => args.cfg.spool_dir = Some(PathBuf::from(value("--spool")?)),
            "--wal" => args.cfg.wal_dir = Some(PathBuf::from(value("--wal")?)),
            "--wal-segment-bytes" => {
                args.cfg.wal_tuning.segment_bytes = value("--wal-segment-bytes")?
                    .parse()
                    .map_err(|e| format!("--wal-segment-bytes: {e}"))?
            }
            "--wal-compact-bytes" => {
                args.cfg.wal_tuning.compact_bytes = value("--wal-compact-bytes")?
                    .parse()
                    .map_err(|e| format!("--wal-compact-bytes: {e}"))?
            }
            "--follow" => args.cfg.follow = Some(value("--follow")?),
            "--idle-timeout-ms" => {
                let ms: u64 = value("--idle-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--idle-timeout-ms: {e}"))?;
                args.cfg.idle_timeout = Duration::from_millis(ms.max(1));
            }
            "--header-timeout-ms" => {
                let ms: u64 = value("--header-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--header-timeout-ms: {e}"))?;
                args.cfg.header_timeout = Duration::from_millis(ms.max(1));
            }
            "--port-file" => args.port_file = Some(PathBuf::from(value("--port-file")?)),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let follow = args.cfg.follow.clone();
    let handle = Server::start(args.addr.as_str(), args.cfg)
        .map_err(|e| format!("bind {}: {e}", args.addr))?;
    let addr = handle.local_addr();
    match follow {
        Some(leader) => println!("fairsw-served listening on {addr} (following {leader})"),
        None => println!("fairsw-served listening on {addr}"),
    }
    if let Some(path) = &args.port_file {
        std::fs::write(path, addr.to_string()).map_err(|e| format!("writing {path:?}: {e}"))?;
    }
    handle.wait();
    println!("fairsw-served: clean shutdown");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

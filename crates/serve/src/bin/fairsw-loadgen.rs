//! `fairsw-loadgen` — drive a running `fairsw-served` with a
//! multi-tenant ingest burst and report throughput.
//!
//! ```text
//! USAGE:
//!   fairsw-loadgen --addr 127.0.0.1:4871 [OPTIONS]
//!
//! OPTIONS:
//!   --addr HOST:PORT  the server (required)
//!   --tenants N       concurrent tenants, one connection each (default 4)
//!   --points N        points per tenant (default 4000)
//!   --batch N         INSERT_BATCH size (default 128)
//!   --window N        tenant window length (default 500)
//!   --queries N       interim QUERYs per tenant during ingest (default 4;
//!                     one final QUERY per tenant is always issued)
//!   --mix MIX         request mix: `ingest` (default) or `read-heavy`
//!                     (95/5 query/ingest after a warmup, Zipf-skewed
//!                     across tenants — exercises the QUERY result cache)
//!   --embeddings      stream the unit-norm embedding-drift workload
//!                     instead of the classic 2-D drift
//!   --dim D           embedding dimension (default 256; needs
//!                     --embeddings)
//!   --project DIM     ask the server to JL-project every point to DIM
//!                     dimensions (rides in the CREATE config; the
//!                     report surfaces the projection STATS)
//!   --project-sparse  sparse Achlioptas matrix instead of dense
//!   --shutdown        send SHUTDOWN after the burst
//!
//! CONNECTION SWEEP (hold a large, mostly idle connection pool open):
//!   --connections N   run the high-concurrency sweep instead of a burst:
//!                     N open connections, Zipf-assigned over --tenants,
//!                     driven by --workers threads with a query-dominated
//!                     mix; reports client-side p50/p95/p99
//!   --requests N      requests issued across all workers (default 5000)
//!   --workers N       driving threads (default 8)
//!   --churn F         close-and-reopen chance per request, 0..=1
//!                     (default 0 — exercises accept/reap under load)
//!
//! CRASH DRILL (spawns its own servers; --addr is not used):
//!   --crash-drill     run the kill -9 durability drill instead of a burst
//!   --kill-after N    points to ingest before the SIGKILL (default 2000)
//!   --failover        recover by promoting a hot standby instead of
//!                     restarting the killed leader from its WAL
//!   --dir DIR         drill scratch directory (wiped; default under /tmp)
//!   --served-bin PATH fairsw-served binary (default: sibling of this one)
//! ```
//!
//! The summary reports client-side p50/p95/p99 query latency (request
//! write to reply decode, so framing + network + server queueing are
//! included), complementing the server-compute percentiles in `STATS`.
//!
//! Exits non-zero when any tenant's final `QUERY` fails — the burst
//! doubles as a smoke test (CI boots a server, runs a short burst and
//! asserts a clean shutdown).

use fairsw_serve::loadgen::{
    run_burst, run_connections, run_crash_drill, BurstOptions, Client, ConnOptions, DrillOptions,
};
use fairsw_serve::protocol::Reply;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
fairsw-loadgen: multi-tenant ingest burst against fairsw-served

USAGE:
  fairsw-loadgen --addr 127.0.0.1:4871 [OPTIONS]

OPTIONS:
  --addr HOST:PORT  the server (required)
  --tenants N       concurrent tenants (default 4)
  --points N        points per tenant (default 4000)
  --batch N         INSERT_BATCH size (default 128)
  --window N        tenant window length (default 500)
  --queries N       interim QUERYs per tenant during ingest (default 4)
  --mix MIX         request mix: ingest (default) or read-heavy
  --embeddings      stream the unit-norm embedding-drift workload
  --dim D           embedding dimension (default 256; needs --embeddings)
  --project DIM     server-side JL projection to DIM dimensions
  --project-sparse  sparse Achlioptas matrix instead of dense
  --shutdown        send SHUTDOWN after the burst

CONNECTION SWEEP (hold a large, mostly idle connection pool open):
  --connections N   N open connections, Zipf-assigned over --tenants
  --requests N      requests issued across all workers (default 5000)
  --workers N       driving threads (default 8)
  --churn F         close-and-reopen chance per request, 0..=1 (default 0)

CRASH DRILL (spawns its own servers; --addr is not used):
  --crash-drill     run the kill -9 durability drill instead of a burst
  --kill-after N    points to ingest before the SIGKILL (default 2000)
  --failover        promote a hot standby instead of restarting the leader
  --dir DIR         drill scratch directory (wiped; default under /tmp)
  --served-bin PATH fairsw-served binary (default: sibling of this one)
";

/// `--served-bin` default: the `fairsw-served` next to this binary.
fn sibling_served() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("fairsw-served")))
        .unwrap_or_else(|| PathBuf::from("fairsw-served"))
}

fn run() -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut opts = BurstOptions::default();
    let mut embeddings = false;
    let mut dim: Option<usize> = None;
    let mut project_sparse = false;
    let mut shutdown = false;
    let mut crash_drill = false;
    let mut connections: Option<usize> = None;
    let mut conn = ConnOptions::default();
    let mut drill = DrillOptions {
        served_bin: sibling_served(),
        dir: std::env::temp_dir().join(format!("fairsw-crash-drill-{}", std::process::id())),
        ..DrillOptions::default()
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--crash-drill" => crash_drill = true,
            "--kill-after" => {
                drill.kill_after = value("--kill-after")?
                    .parse()
                    .map_err(|e| format!("--kill-after: {e}"))?
            }
            "--failover" => drill.failover = true,
            "--dir" => drill.dir = PathBuf::from(value("--dir")?),
            "--served-bin" => drill.served_bin = PathBuf::from(value("--served-bin")?),
            "--tenants" => {
                opts.tenants = value("--tenants")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?
            }
            "--points" => {
                opts.points = value("--points")?
                    .parse()
                    .map_err(|e| format!("--points: {e}"))?
            }
            "--batch" => {
                opts.batch = value("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?
            }
            "--window" => {
                opts.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?
            }
            "--queries" => {
                opts.queries = value("--queries")?
                    .parse()
                    .map_err(|e| format!("--queries: {e}"))?
            }
            "--mix" => opts.mix = value("--mix")?.parse()?,
            "--embeddings" => embeddings = true,
            "--dim" => dim = Some(value("--dim")?.parse().map_err(|e| format!("--dim: {e}"))?),
            "--project" => {
                let d: usize = value("--project")?
                    .parse()
                    .map_err(|e| format!("--project: {e}"))?;
                if d == 0 {
                    return Err("--project: dimension must be positive".into());
                }
                opts.project = Some((d, false));
            }
            "--project-sparse" => project_sparse = true,
            "--connections" => {
                connections = Some(
                    value("--connections")?
                        .parse()
                        .map_err(|e| format!("--connections: {e}"))?,
                )
            }
            "--requests" => {
                conn.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--workers" => {
                conn.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--churn" => {
                conn.churn = value("--churn")?
                    .parse()
                    .map_err(|e| format!("--churn: {e}"))?
            }
            "--shutdown" => shutdown = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if dim.is_some() && !embeddings {
        return Err("--dim needs --embeddings (the 2-D drift has a fixed dimension)".into());
    }
    if embeddings {
        let d = dim.unwrap_or(256);
        if d < 4 {
            return Err("--dim: embedding dimension must be at least 4".into());
        }
        opts.embed_dim = Some(d);
    }
    if project_sparse {
        match &mut opts.project {
            Some((_, sparse)) => *sparse = true,
            None => return Err("--project-sparse needs --project DIM".into()),
        }
    }
    if crash_drill {
        drill.points = opts.points;
        drill.batch = opts.batch;
        drill.window = opts.window;
        let report = run_crash_drill(&drill)?;
        println!(
            "crash drill ({}): {} points acked, {} recovered, {} lost \
             (contract: at most one batch of {}), recovery in {:.2?}",
            if report.failover {
                "failover: SIGKILL leader, PROMOTE standby"
            } else {
                "SIGKILL, restart from WAL"
            },
            report.accepted,
            report.durable,
            report.lost,
            drill.batch,
            report.recovery,
        );
        return Ok(());
    }
    let addr = addr.ok_or("--addr is required (try --help)")?;

    if let Some(n) = connections {
        conn.connections = n;
        conn.tenants = opts.tenants.max(1);
        conn.window = opts.window;
        let report = run_connections(addr.clone(), &conn)?;
        println!(
            "{} connections ({} workers, {} tenants, churn {:.2}): \
             {} requests in {:.2?} = {:.0} req/s, {} reconnects, {} overloaded",
            report.connections,
            conn.workers,
            conn.tenants,
            conn.churn,
            report.requests,
            report.elapsed,
            report.requests_per_sec,
            report.reconnects,
            report.overloaded,
        );
        println!(
            "client-side request latency: p50={:.2?} p95={:.2?} p99={:.2?}",
            report.p50, report.p95, report.p99,
        );
        if shutdown {
            let mut c = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
            match c.shutdown().map_err(|e| e.to_string())? {
                Reply::Ok => println!("server acknowledged shutdown"),
                other => return Err(format!("shutdown not acknowledged: {other:?}")),
            }
        }
        return Ok(());
    }

    let report = run_burst(addr.clone(), &opts)?;
    println!(
        "{} tenants x {} points (batch {}): {} points in {:.2?} = {:.0} points/s, \
         {} overload retries, {}/{} tenants all-queries-ok",
        opts.tenants,
        opts.points,
        opts.batch,
        report.points_sent,
        report.elapsed,
        report.points_per_sec,
        report.overloaded_retries,
        report.queries_ok,
        opts.tenants,
    );
    println!(
        "client-side query latency over {} queries: p50={:.2?} p95={:.2?} p99={:.2?}",
        report.queries_total, report.query_p50, report.query_p95, report.query_p99,
    );
    if report.proj_out_dim > 0 {
        println!(
            "server-side projection: {} -> {} dims, {:.0} ns/point",
            report.proj_in_dim, report.proj_out_dim, report.proj_ns_per_point,
        );
    }
    if report.queries_ok != opts.tenants {
        return Err(format!(
            "only {}/{} tenants answered all their queries",
            report.queries_ok, opts.tenants
        ));
    }
    if shutdown {
        let mut c = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
        match c.shutdown().map_err(|e| e.to_string())? {
            Reply::Ok => println!("server acknowledged shutdown"),
            other => return Err(format!("shutdown not acknowledged: {other:?}")),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Randomized matroid-axiom coverage for the oracles this crate ships.
//!
//! The `axioms` module provides exhaustive checkers (empty-set
//! independence, downward closure / heredity, augmentation / exchange)
//! but until now only the partition and uniform matroids ran them under
//! random inputs. This suite extends the randomized coverage to
//! [`AnyMatroid`] (all three runtime-selected shapes), [`LaminarMatroid`]
//! (random chains and a capped tree), [`TransversalMatroid`] (random
//! bipartite slot systems), and the matroid-intersection oracle
//! (answers verified against brute-force enumeration on heterogeneous
//! matroid pairs).

use fairsw_matroid::axioms::check_all;
use fairsw_matroid::{
    max_common_independent, AnyMatroid, Group, LaminarMatroid, Matroid, PartitionMatroid,
    TransversalMatroid, UniformMatroid,
};
use proptest::prelude::*;

/// A random laminar *chain*: groups are the color prefixes
/// `{0}, {0,1}, …` with the given caps — always a valid laminar family.
fn chain(caps: &[usize]) -> LaminarMatroid {
    let groups: Vec<Group> = caps
        .iter()
        .enumerate()
        .map(|(i, &cap)| Group::new((0..=i as u32).collect::<Vec<_>>(), cap))
        .collect();
    LaminarMatroid::new(groups).expect("prefix chains are laminar")
}

/// Restricts a random color list to the matroid's color range.
fn clamp_colors(ground: Vec<u32>, num_colors: usize) -> Vec<u32> {
    ground
        .into_iter()
        .filter(|&c| (c as usize) < num_colors)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_matroid_satisfies_the_axioms(
        kind in 0u8..3,
        caps in proptest::collection::vec(1usize..3, 1..4),
        ground in proptest::collection::vec(0u32..4, 0..9),
    ) {
        let ncolors = caps.len();
        let m: AnyMatroid = match kind {
            0 => PartitionMatroid::new(caps).unwrap().into(),
            1 => chain(&caps).into(),
            _ => UniformMatroid::new(caps.iter().sum()).into(),
        };
        let ground = clamp_colors(ground, ncolors);
        prop_assert!(check_all(&m, &ground).is_ok(), "axioms failed for kind {kind}");
    }

    #[test]
    fn laminar_chains_satisfy_the_axioms(
        caps in proptest::collection::vec(1usize..4, 1..4),
        ground in proptest::collection::vec(0u32..4, 0..9),
    ) {
        let m = chain(&caps);
        let ground = clamp_colors(ground, caps.len());
        prop_assert!(check_all(&m, &ground).is_ok());
    }

    #[test]
    fn laminar_tree_satisfies_the_axioms(
        cap_left in 1usize..3,
        cap_right in 1usize..3,
        cap_root in 1usize..5,
        ground in proptest::collection::vec(0u32..4, 0..9),
    ) {
        // Two disjoint subtrees under a capped root: {0,1}, {2,3}, all.
        let m = LaminarMatroid::new(vec![
            Group::new(vec![0, 1], cap_left),
            Group::new(vec![2, 3], cap_right),
            Group::new(vec![0, 1, 2, 3], cap_root),
        ])
        .unwrap();
        prop_assert!(check_all(&m, &ground).is_ok());
    }

    #[test]
    fn transversal_satisfies_the_axioms(
        n in 1usize..6,
        num_slots in 1usize..4,
        edges in proptest::collection::vec((0usize..6, 0usize..4), 0..14),
    ) {
        let mut adj = vec![Vec::new(); n];
        for (e, s) in edges {
            if e < n && s < num_slots && !adj[e].contains(&s) {
                adj[e].push(s);
            }
        }
        let m = TransversalMatroid::new(adj, num_slots);
        let ground: Vec<usize> = (0..n).collect();
        prop_assert!(check_all(&m, &ground).is_ok());
    }
}

/// Partition matroid lifted to element indices through a color list
/// (the shape the intersection oracle consumes).
struct ByColor<'a> {
    colors: &'a [u32],
    inner: PartitionMatroid,
}

impl Matroid<usize> for ByColor<'_> {
    fn is_independent(&self, set: &[usize]) -> bool {
        let mut sorted = set.to_vec();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return false;
        }
        self.inner
            .colors_independent(set.iter().map(|&i| self.colors[i]))
    }
    fn rank(&self) -> usize {
        self.inner.rank()
    }
}

/// Brute-force maximum common independent set size over all subsets.
fn brute_common<M1: Matroid<usize>, M2: Matroid<usize>>(n: usize, m1: &M1, m2: &M2) -> usize {
    let mut best = 0;
    for mask in 0u32..(1 << n) {
        let set: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
        if set.len() > best && m1.is_independent(&set) && m2.is_independent(&set) {
            best = set.len();
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn intersection_oracle_on_transversal_vs_partition(
        n in 1usize..6,
        num_slots in 1usize..4,
        edges in proptest::collection::vec((0usize..6, 0usize..4), 0..14),
        colors in proptest::collection::vec(0u32..3, 6),
        caps in proptest::collection::vec(1usize..3, 3),
    ) {
        let mut adj = vec![Vec::new(); n];
        for (e, s) in edges {
            if e < n && s < num_slots && !adj[e].contains(&s) {
                adj[e].push(s);
            }
        }
        let trans = TransversalMatroid::new(adj, num_slots);
        let part = ByColor {
            colors: &colors[..n],
            inner: PartitionMatroid::new(caps).unwrap(),
        };
        let s = max_common_independent(n, &trans, &part);
        prop_assert!(trans.is_independent(&s), "oracle answer not independent in M1");
        prop_assert!(part.is_independent(&s), "oracle answer not independent in M2");
        prop_assert_eq!(s.len(), brute_common(n, &trans, &part));
    }

    #[test]
    fn intersection_oracle_on_laminar_pairs(
        n in 1usize..7,
        caps_a in proptest::collection::vec(1usize..3, 1..4),
        caps_b in proptest::collection::vec(1usize..3, 1..4),
        colors_a in proptest::collection::vec(0u32..3, 7),
        colors_b in proptest::collection::vec(0u32..3, 7),
    ) {
        // Laminar chains lifted through two different colorings of the
        // same elements: a heterogeneous pair the partition shortcut
        // does not cover.
        let lift = |caps: &[usize], colors: &[u32]| {
            let m = chain(caps);
            let colors: Vec<u32> = colors
                .iter()
                .map(|&c| c.min(caps.len() as u32 - 1))
                .collect();
            (m, colors)
        };
        let (ma, cols_a) = lift(&caps_a, &colors_a[..n]);
        let (mb, cols_b) = lift(&caps_b, &colors_b[..n]);
        struct Lifted<'a> {
            colors: &'a [u32],
            inner: &'a LaminarMatroid,
        }
        impl Matroid<usize> for Lifted<'_> {
            fn is_independent(&self, set: &[usize]) -> bool {
                let mut sorted = set.to_vec();
                sorted.sort_unstable();
                if sorted.windows(2).any(|w| w[0] == w[1]) {
                    return false;
                }
                self.inner
                    .colors_independent(set.iter().map(|&i| self.colors[i]))
            }
            fn rank(&self) -> usize {
                self.inner.rank()
            }
        }
        let m1 = Lifted { colors: &cols_a, inner: &ma };
        let m2 = Lifted { colors: &cols_b, inner: &mb };
        let s = max_common_independent(n, &m1, &m2);
        prop_assert!(m1.is_independent(&s) && m2.is_independent(&s));
        prop_assert_eq!(s.len(), brute_common(n, &m1, &m2));
    }
}

//! The partition matroid encoding the fairness constraint.

use crate::Matroid;
use std::fmt;

/// Error raised when constructing a [`PartitionMatroid`] from invalid
/// capacities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CapacityError {
    /// No colors were given — the matroid would be empty.
    NoColors,
    /// Some `k_i` is zero. The paper assumes *positive* integers
    /// `k_1..k_ℓ`; a zero budget would make that color's points
    /// unselectable and is almost always a configuration mistake, so we
    /// reject it loudly instead of silently dropping the class.
    ZeroCapacity {
        /// The offending color index.
        color: usize,
    },
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapacityError::NoColors => write!(f, "partition matroid needs at least one color"),
            CapacityError::ZeroCapacity { color } => {
                write!(f, "capacity k_{color} must be positive")
            }
        }
    }
}

impl std::error::Error for CapacityError {}

/// The partition matroid over colored elements: a set is independent iff
/// it contains at most `k_i` elements of each color `i`. Its rank is
/// `k = Σ k_i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionMatroid {
    caps: Vec<usize>,
    rank: usize,
}

impl PartitionMatroid {
    /// Builds the matroid from per-color budgets `k_1..k_ℓ` (all positive).
    pub fn new(caps: Vec<usize>) -> Result<Self, CapacityError> {
        if caps.is_empty() {
            return Err(CapacityError::NoColors);
        }
        if let Some(color) = caps.iter().position(|&c| c == 0) {
            return Err(CapacityError::ZeroCapacity { color });
        }
        let rank = caps.iter().sum();
        Ok(PartitionMatroid { caps, rank })
    }

    /// Number of colors `ℓ`.
    pub fn num_colors(&self) -> usize {
        self.caps.len()
    }

    /// The per-color budgets.
    pub fn capacities(&self) -> &[usize] {
        &self.caps
    }

    /// The budget of a single color; colors outside `0..ℓ` have budget 0.
    pub fn capacity(&self, color: u32) -> usize {
        self.caps.get(color as usize).copied().unwrap_or(0)
    }

    /// Checks independence of a multiset of colors given by an iterator.
    /// This is the form every algorithm actually uses (they carry
    /// `Colored<P>` values and test the color multiset).
    pub fn colors_independent(&self, colors: impl IntoIterator<Item = u32>) -> bool {
        let mut counter = ColorCounter::new(self.num_colors());
        for c in colors {
            if !counter.try_add(c, self) {
                return false;
            }
        }
        true
    }
}

impl Matroid<u32> for PartitionMatroid {
    fn is_independent(&self, set: &[u32]) -> bool {
        self.colors_independent(set.iter().copied())
    }

    fn rank(&self) -> usize {
        self.rank
    }
}

/// Incremental per-color occupancy counter: the O(1)-per-element way to
/// maintain/test independence while scanning a stream of colors.
#[derive(Clone, Debug)]
pub struct ColorCounter {
    counts: Vec<usize>,
}

impl ColorCounter {
    /// A counter for `num_colors` colors, all counts zero.
    pub fn new(num_colors: usize) -> Self {
        ColorCounter {
            counts: vec![0; num_colors],
        }
    }

    /// Adds one element of `color` if the budget in `matroid` allows it;
    /// returns whether the element was accepted. Colors outside the
    /// matroid's range are always rejected.
    pub fn try_add(&mut self, color: u32, matroid: &PartitionMatroid) -> bool {
        let idx = color as usize;
        if idx >= self.counts.len() {
            return false;
        }
        if self.counts[idx] + 1 > matroid.capacity(color) {
            return false;
        }
        self.counts[idx] += 1;
        true
    }

    /// Removes one previously-added element of `color`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the count for `color` is already zero —
    /// that indicates a bookkeeping bug in the caller.
    pub fn remove(&mut self, color: u32) {
        let idx = color as usize;
        debug_assert!(self.counts[idx] > 0, "removing untracked color {color}");
        self.counts[idx] = self.counts[idx].saturating_sub(1);
    }

    /// The current count of `color`.
    pub fn count(&self, color: u32) -> usize {
        self.counts.get(color as usize).copied().unwrap_or(0)
    }

    /// Total number of tracked elements.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_capacities() {
        assert_eq!(PartitionMatroid::new(vec![]), Err(CapacityError::NoColors));
        assert_eq!(
            PartitionMatroid::new(vec![1, 0, 2]),
            Err(CapacityError::ZeroCapacity { color: 1 })
        );
        let m = PartitionMatroid::new(vec![2, 3]).unwrap();
        assert_eq!(m.rank(), 5);
        assert_eq!(m.num_colors(), 2);
        assert_eq!(m.capacity(0), 2);
        assert_eq!(m.capacity(7), 0);
    }

    #[test]
    fn independence_respects_budgets() {
        let m = PartitionMatroid::new(vec![1, 2]).unwrap();
        assert!(m.is_independent(&[]));
        assert!(m.is_independent(&[0]));
        assert!(m.is_independent(&[0, 1, 1]));
        assert!(!m.is_independent(&[0, 0]));
        assert!(!m.is_independent(&[1, 1, 1]));
        // Unknown color is never independent.
        assert!(!m.is_independent(&[2]));
    }

    #[test]
    fn counter_add_remove_roundtrip() {
        let m = PartitionMatroid::new(vec![1, 2]).unwrap();
        let mut c = ColorCounter::new(2);
        assert!(c.try_add(0, &m));
        assert!(!c.try_add(0, &m));
        c.remove(0);
        assert!(c.try_add(0, &m));
        assert!(c.try_add(1, &m));
        assert!(c.try_add(1, &m));
        assert!(!c.try_add(1, &m));
        assert_eq!(c.total(), 3);
        assert_eq!(c.count(1), 2);
    }

    #[test]
    fn counter_rejects_out_of_range() {
        let m = PartitionMatroid::new(vec![1]).unwrap();
        let mut c = ColorCounter::new(1);
        assert!(!c.try_add(9, &m));
    }

    #[test]
    fn error_messages_render() {
        assert!(format!("{}", CapacityError::NoColors).contains("at least one"));
        assert!(format!("{}", CapacityError::ZeroCapacity { color: 3 }).contains("k_3"));
    }
}

//! Transversal matroids: independence = matchability into a bipartite
//! slot system.
//!
//! Given elements on the left and "slots" on the right of a bipartite
//! graph, a set of elements is independent iff it can be completely
//! matched into distinct slots. Transversal matroids strictly generalize
//! partition matroids (a partition matroid is the transversal matroid of
//! a disjoint star forest with duplicated slots) and model fairness
//! policies like "each selected center must be endorsable by a distinct
//! committee member, where members endorse only some categories".
//!
//! The independence oracle delegates to the workspace's Hopcroft–Karp
//! implementation, closing the loop between the matroid and matching
//! substrates.

use crate::Matroid;
use fairsw_matching::max_bipartite_matching;

/// The transversal matroid of a bipartite graph: element `e` (an index
/// into `adj`) may occupy any slot in `adj[e]`; a set is independent iff
/// a perfect matching of the set into distinct slots exists.
#[derive(Clone, Debug)]
pub struct TransversalMatroid {
    adj: Vec<Vec<usize>>,
    num_slots: usize,
}

impl TransversalMatroid {
    /// Builds the matroid from element→slot adjacency.
    ///
    /// # Panics
    /// Panics if an adjacency entry references a slot `>= num_slots`.
    pub fn new(adj: Vec<Vec<usize>>, num_slots: usize) -> Self {
        assert!(
            adj.iter().all(|nb| nb.iter().all(|&s| s < num_slots)),
            "slot index out of range"
        );
        TransversalMatroid { adj, num_slots }
    }

    /// Number of elements in the ground set.
    pub fn num_elements(&self) -> usize {
        self.adj.len()
    }
}

impl Matroid<usize> for TransversalMatroid {
    fn is_independent(&self, set: &[usize]) -> bool {
        if set.iter().any(|&e| e >= self.adj.len()) {
            return false;
        }
        // Duplicate elements can never be matched to distinct slots...
        // except that a multiset with repeats is not a set; reject.
        let mut sorted = set.to_vec();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return false;
        }
        let sub_adj: Vec<Vec<usize>> = set.iter().map(|&e| self.adj[e].clone()).collect();
        let m = max_bipartite_matching(set.len(), self.num_slots, &sub_adj);
        m.size == set.len()
    }

    fn rank(&self) -> usize {
        let m = max_bipartite_matching(self.adj.len(), self.num_slots, &self.adj);
        m.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::check_all;

    #[test]
    fn basic_matchability() {
        // Elements: 0 -> slot {0}, 1 -> slot {0, 1}, 2 -> slot {1}.
        let m = TransversalMatroid::new(vec![vec![0], vec![0, 1], vec![1]], 2);
        assert!(m.is_independent(&[0]));
        assert!(m.is_independent(&[0, 1])); // 0->0 impossible with 1->0; 1->1 works
        assert!(m.is_independent(&[0, 2]));
        assert!(!m.is_independent(&[0, 1, 2])); // only two slots
        assert_eq!(Matroid::<usize>::rank(&m), 2);
    }

    #[test]
    fn rejects_out_of_range_and_duplicates() {
        let m = TransversalMatroid::new(vec![vec![0]], 1);
        assert!(!m.is_independent(&[5]));
        assert!(!m.is_independent(&[0, 0]));
    }

    #[test]
    fn isolated_element_is_a_loop() {
        let m = TransversalMatroid::new(vec![vec![], vec![0]], 1);
        assert!(!m.is_independent(&[0]));
        assert!(m.is_independent(&[1]));
    }

    #[test]
    fn axioms_hold() {
        // A small non-trivial slot system.
        let m = TransversalMatroid::new(
            vec![vec![0], vec![0, 1], vec![1, 2], vec![2], vec![0, 2]],
            3,
        );
        let ground: Vec<usize> = (0..5).collect();
        check_all(&m, &ground).unwrap();
    }

    #[test]
    fn encodes_partition_matroid() {
        // Partition with caps [2, 1]: colors 0 -> slots {0,1}, color 1 ->
        // slot {2}. Elements: colors [0,0,0,1,1].
        let colors = [0usize, 0, 0, 1, 1];
        let slot_sets = [vec![0usize, 1], vec![2]];
        let adj: Vec<Vec<usize>> = colors.iter().map(|&c| slot_sets[c].clone()).collect();
        let trans = TransversalMatroid::new(adj, 3);
        let part = crate::PartitionMatroid::new(vec![2, 1]).unwrap();
        // Compare on all subsets.
        for mask in 0u32..32 {
            let idx: Vec<usize> = (0..5).filter(|&i| mask >> i & 1 == 1).collect();
            let cols: Vec<u32> = idx.iter().map(|&i| colors[i] as u32).collect();
            assert_eq!(
                trans.is_independent(&idx),
                part.is_independent(&cols),
                "disagree on {idx:?}"
            );
        }
    }
}

//! A concrete union of the color matroids shipped by this crate.
//!
//! The sliding-window engine (`fairsw-core`'s `WindowEngine`) needs to
//! hold "some matroid over colors" without a type parameter, so that a
//! heterogeneous fleet of engines (`Vec<WindowEngine<M>>`) can mix
//! partition-, laminar- and uniform-constrained variants. `AnyMatroid` is
//! that erased type: an enum over the crate's `Matroid<u32>`
//! implementations, dispatching by match (no boxing, stays `Clone`).

use crate::laminar::LaminarMatroid;
use crate::partition::PartitionMatroid;
use crate::uniform::UniformMatroid;
use crate::Matroid;

/// One of the crate's matroids over colors, selected at runtime.
#[derive(Clone, Debug)]
pub enum AnyMatroid {
    /// Per-color capacities (the paper's fairness constraint).
    Partition(PartitionMatroid),
    /// Nested group capacities (hierarchical fairness).
    Laminar(LaminarMatroid),
    /// A bare cardinality bound (unconstrained k-center).
    Uniform(UniformMatroid),
}

impl Matroid<u32> for AnyMatroid {
    fn is_independent(&self, set: &[u32]) -> bool {
        match self {
            AnyMatroid::Partition(m) => m.is_independent(set),
            AnyMatroid::Laminar(m) => m.is_independent(set),
            AnyMatroid::Uniform(m) => m.is_independent(set),
        }
    }

    fn rank(&self) -> usize {
        match self {
            AnyMatroid::Partition(m) => m.rank(),
            AnyMatroid::Laminar(m) => m.rank(),
            AnyMatroid::Uniform(m) => Matroid::<u32>::rank(m),
        }
    }
}

impl From<PartitionMatroid> for AnyMatroid {
    fn from(m: PartitionMatroid) -> Self {
        AnyMatroid::Partition(m)
    }
}

impl From<LaminarMatroid> for AnyMatroid {
    fn from(m: LaminarMatroid) -> Self {
        AnyMatroid::Laminar(m)
    }
}

impl From<UniformMatroid> for AnyMatroid {
    fn from(m: UniformMatroid) -> Self {
        AnyMatroid::Uniform(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laminar::Group;

    #[test]
    fn dispatches_to_inner_matroid() {
        let part: AnyMatroid = PartitionMatroid::new(vec![1, 2]).unwrap().into();
        assert!(part.is_independent(&[0, 1, 1]));
        assert!(!part.is_independent(&[0, 0]));
        assert_eq!(part.rank(), 3);

        let lam: AnyMatroid =
            LaminarMatroid::new(vec![Group::new(vec![0], 1), Group::new(vec![0, 1], 2)])
                .unwrap()
                .into();
        assert!(lam.is_independent(&[0, 1]));
        assert!(!lam.is_independent(&[0, 0]));
        assert_eq!(lam.rank(), 2);

        let uni: AnyMatroid = UniformMatroid::new(2).into();
        assert!(uni.is_independent(&[5, 9]));
        assert!(!uni.is_independent(&[5, 9, 2]));
        assert_eq!(uni.rank(), 2);
    }
}

//! Exhaustive matroid-axiom checkers for small ground sets.
//!
//! These are test/verification utilities: given a [`Matroid`]
//! implementation and a concrete ground set of at most ~20 elements, they
//! enumerate subsets and verify downward closure and the augmentation
//! property. The property-test suites of this crate run them against the
//! partition and uniform matroids on random inputs, which pins down the
//! implementations far more tightly than example-based tests would.

use crate::Matroid;

/// Outcome of an axiom check: `Ok(())` or a human-readable counterexample.
pub type AxiomResult = Result<(), String>;

fn subset_from_mask<E: Clone>(ground: &[E], mask: u32) -> Vec<E> {
    ground
        .iter()
        .enumerate()
        .filter(|(i, _)| mask >> i & 1 == 1)
        .map(|(_, e)| e.clone())
        .collect()
}

/// Checks that the empty set is independent.
pub fn check_empty_independent<E: Clone, M: Matroid<E>>(matroid: &M) -> AxiomResult {
    if matroid.is_independent(&[]) {
        Ok(())
    } else {
        Err("empty set is not independent".to_string())
    }
}

/// Checks downward closure on every subset of `ground`
/// (`|ground| ≤ 20` to keep the 2^n enumeration tractable).
pub fn check_downward_closure<E: Clone, M: Matroid<E>>(matroid: &M, ground: &[E]) -> AxiomResult {
    assert!(ground.len() <= 20, "ground set too large for enumeration");
    let n = ground.len() as u32;
    for mask in 0..(1u32 << n) {
        let set = subset_from_mask(ground, mask);
        if !matroid.is_independent(&set) {
            continue;
        }
        // Remove each element in turn; all must remain independent.
        for i in 0..n {
            if mask >> i & 1 == 0 {
                continue;
            }
            let sub = subset_from_mask(ground, mask & !(1 << i));
            if !matroid.is_independent(&sub) {
                return Err(format!(
                    "downward closure violated: mask {mask:b} independent, sub-mask {:b} is not",
                    mask & !(1 << i)
                ));
            }
        }
    }
    Ok(())
}

/// Checks the augmentation property on every pair of independent subsets
/// of `ground` (`|ground| ≤ 12`: the check is 4^n).
pub fn check_augmentation<E: Clone, M: Matroid<E>>(matroid: &M, ground: &[E]) -> AxiomResult {
    assert!(ground.len() <= 12, "ground set too large for enumeration");
    let n = ground.len() as u32;
    let masks: Vec<u32> = (0..(1u32 << n))
        .filter(|&m| matroid.is_independent(&subset_from_mask(ground, m)))
        .collect();
    for &p in &masks {
        for &q in &masks {
            if (p.count_ones() as usize) <= (q.count_ones() as usize) {
                continue;
            }
            // Find x in P \ Q with Q + x independent.
            let mut found = false;
            for i in 0..n {
                if p >> i & 1 == 1 && q >> i & 1 == 0 {
                    let aug = subset_from_mask(ground, q | (1 << i));
                    if matroid.is_independent(&aug) {
                        found = true;
                        break;
                    }
                }
            }
            if !found {
                return Err(format!(
                    "augmentation violated: P={p:b} (|P|={}), Q={q:b} (|Q|={})",
                    p.count_ones(),
                    q.count_ones()
                ));
            }
        }
    }
    Ok(())
}

/// Runs all three axiom checks.
pub fn check_all<E: Clone, M: Matroid<E>>(matroid: &M, ground: &[E]) -> AxiomResult {
    check_empty_independent(matroid)?;
    check_downward_closure(matroid, ground)?;
    check_augmentation(matroid, ground)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartitionMatroid, UniformMatroid};
    use proptest::prelude::*;

    #[test]
    fn partition_matroid_axioms_small() {
        let m = PartitionMatroid::new(vec![1, 2, 1]).unwrap();
        let ground: Vec<u32> = vec![0, 0, 1, 1, 1, 2, 2];
        check_all(&m, &ground).unwrap();
    }

    #[test]
    fn uniform_matroid_axioms_small() {
        let m = UniformMatroid::new(3);
        let ground: Vec<u32> = (0..8).collect();
        check_all(&m, &ground).unwrap();
    }

    /// A deliberately broken "matroid" to prove the checkers can fail:
    /// independence = "set does not contain both 0 and 1" is downward
    /// closed but violates augmentation with P={0,2},Q={1}? Let's use the
    /// classic non-matroid: independent iff set is one of {}, {0}, {1},
    /// {0,1}... that IS a matroid. Use instead: independent iff |set|<=2
    /// and not ({0,1} ⊆ set): P={0,2}, Q={1} — augmenting Q by 2 gives
    /// {1,2} which is fine... P={0,2},{2,?}. Take P={2,3}, Q={0}: add 2 or
    /// 3 to Q fine. The failing pair is P={0,2}, Q={1}: x∈{0,2}\{1}; {1,0}
    /// dependent but {1,2} independent → ok. Need a real violation:
    /// independence = sets of even size ≤ 2 fails downward closure.
    struct EvenSize;
    impl Matroid<u32> for EvenSize {
        fn is_independent(&self, set: &[u32]) -> bool {
            set.len().is_multiple_of(2) && set.len() <= 2
        }
        fn rank(&self) -> usize {
            2
        }
    }

    #[test]
    fn checkers_detect_non_matroid() {
        let ground: Vec<u32> = vec![0, 1, 2];
        assert!(check_downward_closure(&EvenSize, &ground).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn partition_matroid_axioms_random(
            caps in proptest::collection::vec(1usize..3, 1..4),
            ground in proptest::collection::vec(0u32..4, 0..9),
        ) {
            let m = PartitionMatroid::new(caps).unwrap();
            // Keep only in-range colors: out-of-range colors are loops
            // (never independent), which the augmentation axiom tolerates,
            // but downward closure enumeration wastes time on them.
            let ground: Vec<u32> = ground
                .into_iter()
                .filter(|&c| (c as usize) < m.num_colors())
                .collect();
            prop_assert!(check_all(&m, &ground).is_ok());
        }

        #[test]
        fn uniform_matroid_axioms_random(
            k in 0usize..5,
            n in 0usize..9,
        ) {
            let m = UniformMatroid::new(k);
            let ground: Vec<u32> = (0..n as u32).collect();
            prop_assert!(check_all(&m, &ground).is_ok());
        }

        #[test]
        fn greedy_subset_is_maximum(
            caps in proptest::collection::vec(1usize..3, 1..4),
            ground in proptest::collection::vec(0u32..3, 0..10),
        ) {
            // For partition matroids the maximum independent subset size
            // is Σ min(k_i, count_i); greedy must achieve it.
            let m = PartitionMatroid::new(caps.clone()).unwrap();
            let ground: Vec<u32> = ground
                .into_iter()
                .filter(|&c| (c as usize) < caps.len())
                .collect();
            let greedy = m.maximal_independent_subset(&ground).len();
            let optimum: usize = caps
                .iter()
                .enumerate()
                .map(|(i, &k)| k.min(ground.iter().filter(|&&c| c as usize == i).count()))
                .sum();
            prop_assert_eq!(greedy, optimum);
        }
    }
}

//! Matroid substrate for fair center clustering.
//!
//! The fairness constraint of the paper — "at most `k_i` centers of color
//! `i`" — is the independence condition of a **partition matroid** of rank
//! `k = Σ k_i`. This crate provides the matroid abstraction, the partition
//! matroid used throughout the workspace, the uniform matroid (which
//! recovers unconstrained k-center as a special case) and the maximal-
//! independent-set machinery that the sliding-window coreset maintains per
//! c-attractor.
//!
//! The [`axioms`] module contains exhaustive checkers for the matroid
//! axioms (downward closure and augmentation) on small ground sets; they
//! are exercised by property tests to validate the implementations.

pub mod any;
pub mod axioms;
pub mod intersection;
pub mod laminar;
pub mod partition;
pub mod transversal;
pub mod uniform;

pub use any::AnyMatroid;
pub use intersection::max_common_independent;
pub use laminar::{Group, LaminarError, LaminarMatroid};
pub use partition::{CapacityError, ColorCounter, PartitionMatroid};
pub use transversal::TransversalMatroid;
pub use uniform::UniformMatroid;

/// A matroid over elements of type `E`.
///
/// `I ⊆ 2^X` must satisfy: (a) downward closure — every subset of an
/// independent set is independent; (b) augmentation — if `|P| > |Q|` for
/// independent `P`, `Q`, some `x ∈ P \ Q` keeps `Q ∪ {x}` independent.
/// The empty set is always independent.
pub trait Matroid<E> {
    /// Whether `set` is independent.
    fn is_independent(&self, set: &[E]) -> bool;

    /// The rank of the matroid: the (common) cardinality of its maximal
    /// independent sets over the full ground set.
    fn rank(&self) -> usize;

    /// Greedily extends the empty set to a maximal independent subset of
    /// `ground`, scanning left to right. For matroids, greedy scanning
    /// yields a maximum-cardinality independent subset of the scanned
    /// ground set (the matroid exchange property makes greedy optimal).
    fn maximal_independent_subset<'a>(&self, ground: &'a [E]) -> Vec<&'a E>
    where
        E: Clone,
    {
        let mut chosen: Vec<E> = Vec::new();
        let mut refs: Vec<&'a E> = Vec::new();
        for e in ground {
            chosen.push(e.clone());
            if self.is_independent(&chosen) {
                refs.push(e);
            } else {
                chosen.pop();
            }
        }
        refs
    }
}

/// Adapter lifting a matroid over *colors* to a matroid over *element
/// indices*, given each element's color. This is how the partition /
/// laminar constraints (stated on categories) are applied to concrete
/// point sets by the generic matroid-center solver and the matroid
/// sliding window.
#[derive(Clone, Copy, Debug)]
pub struct OverColors<'a, Inner> {
    colors: &'a [u32],
    inner: &'a Inner,
}

impl<'a, Inner: Matroid<u32>> OverColors<'a, Inner> {
    /// Builds the adapter; `colors[i]` is element `i`'s color.
    pub fn new(colors: &'a [u32], inner: &'a Inner) -> Self {
        OverColors { colors, inner }
    }
}

impl<Inner: Matroid<u32>> Matroid<usize> for OverColors<'_, Inner> {
    fn is_independent(&self, set: &[usize]) -> bool {
        if set.iter().any(|&i| i >= self.colors.len()) {
            return false;
        }
        let cols: Vec<u32> = set.iter().map(|&i| self.colors[i]).collect();
        self.inner.is_independent(&cols)
    }

    fn rank(&self) -> usize {
        self.inner.rank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_maximal_subset_partition() {
        // Colors with capacities [1, 2]: greedy over colors
        // [0,0,1,1,1] keeps one 0 and two 1s.
        let m = PartitionMatroid::new(vec![1, 2]).unwrap();
        let ground = vec![0u32, 0, 1, 1, 1];
        let max = m.maximal_independent_subset(&ground);
        assert_eq!(max.len(), 3);
        assert_eq!(max.iter().filter(|&&&c| c == 0).count(), 1);
        assert_eq!(max.iter().filter(|&&&c| c == 1).count(), 2);
    }

    #[test]
    fn over_colors_adapter() {
        let m = PartitionMatroid::new(vec![1, 1]).unwrap();
        let colors = [0u32, 0, 1];
        let a = OverColors::new(&colors, &m);
        assert!(a.is_independent(&[0, 2]));
        assert!(!a.is_independent(&[0, 1]));
        assert!(!a.is_independent(&[9]));
        assert_eq!(Matroid::<usize>::rank(&a), 2);
    }

    #[test]
    fn greedy_maximal_subset_uniform() {
        let m = UniformMatroid::new(2);
        let ground = vec![10u32, 20, 30];
        let max = m.maximal_independent_subset(&ground);
        assert_eq!(max, vec![&10, &20]);
    }
}

//! Matroid intersection: maximum common independent set of two matroids.
//!
//! The original Chen–Li–Liang–Wang matroid-center algorithm asks, for a
//! radius guess `r`, whether an independent set of the *constraint*
//! matroid can hit every head's ball — a maximum common independent set
//! between the constraint matroid and the (partition) matroid of disjoint
//! balls. Our fair-center solvers shortcut this to capacitated bipartite
//! matching (valid exactly because the constraint is a partition
//! matroid); this module provides the general algorithm so the library
//! also solves matroid center under *laminar*, *transversal* or any other
//! user-supplied matroid (see [`crate::laminar`], [`crate::transversal`]
//! and `fairsw-sequential`'s generic solver).
//!
//! Implementation: the classical exchange-graph augmenting-path scheme
//! (Lawler). Starting from `S = ∅`, build the directed exchange graph
//!
//! * `x ∈ S → y ∉ S` when `S − x + y` is independent in `M₁`,
//! * `y ∉ S → x ∈ S` when `S − x + y` is independent in `M₂`,
//!
//! with sources `X₁ = {y ∉ S : S + y ∈ I₁}` and sinks
//! `X₂ = {y ∉ S : S + y ∈ I₂}`; a shortest source→sink path is an
//! augmenting sequence whose symmetric difference with `S` is a common
//! independent set one larger. No augmenting path ⇒ `S` is maximum
//! (Lawler's theorem). Oracle cost `O(n²)` per augmentation, `O(r·n²)`
//! total — fine for the coreset-sized instances the solvers feed it.

use crate::Matroid;
use std::collections::VecDeque;

/// Computes a maximum common independent set (as element indices
/// `0..n`) of two matroids given by independence oracles over index
/// subsets.
pub fn max_common_independent<M1, M2>(n: usize, m1: &M1, m2: &M2) -> Vec<usize>
where
    M1: Matroid<usize>,
    M2: Matroid<usize>,
{
    let mut in_s = vec![false; n];

    loop {
        let s: Vec<usize> = (0..n).filter(|&i| in_s[i]).collect();

        // Membership-toggled independence test: S with x removed, y added.
        let indep_with =
            |m: &dyn Fn(&[usize]) -> bool, remove: Option<usize>, add: Option<usize>| -> bool {
                let mut set: Vec<usize> =
                    s.iter().copied().filter(|&e| Some(e) != remove).collect();
                if let Some(a) = add {
                    set.push(a);
                }
                m(&set)
            };
        let i1 = |set: &[usize]| m1.is_independent(set);
        let i2 = |set: &[usize]| m2.is_independent(set);

        // Sources and sinks.
        let x1: Vec<usize> = (0..n)
            .filter(|&y| !in_s[y] && indep_with(&i1, None, Some(y)))
            .collect();
        let x2: Vec<usize> = (0..n)
            .filter(|&y| !in_s[y] && indep_with(&i2, None, Some(y)))
            .collect();

        // Immediate win: an element free in both matroids.
        if let Some(&y) = x1.iter().find(|y| x2.contains(y)) {
            in_s[y] = true;
            continue;
        }

        // BFS over the exchange graph from all of X1, looking for X2.
        let mut prev: Vec<Option<usize>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        for &y in &x1 {
            seen[y] = true;
            queue.push_back(y);
        }
        let mut found: Option<usize> = None;
        'bfs: while let Some(u) = queue.pop_front() {
            if !in_s[u] {
                // u ∉ S: edges u → x ∈ S when S − x + u ∈ I₂.
                if x2.contains(&u) && prev[u].is_some() {
                    // (Handled below at enqueue time; kept for clarity.)
                }
                for x in 0..n {
                    if in_s[x] && !seen[x] && indep_with(&i2, Some(x), Some(u)) {
                        seen[x] = true;
                        prev[x] = Some(u);
                        queue.push_back(x);
                    }
                }
            } else {
                // u ∈ S: edges u → y ∉ S when S − u + y ∈ I₁.
                for y in 0..n {
                    if !in_s[y] && !seen[y] && indep_with(&i1, Some(u), Some(y)) {
                        seen[y] = true;
                        prev[y] = Some(u);
                        if x2.contains(&y) {
                            found = Some(y);
                            break 'bfs;
                        }
                        queue.push_back(y);
                    }
                }
            }
        }
        // A source that is itself a sink was handled above; otherwise a
        // source in X2 with no path step means direct augmentation too.
        if found.is_none() {
            if let Some(&y) = x1.iter().find(|y| x2.contains(y)) {
                found = Some(y);
            }
        }

        match found {
            None => break, // no augmenting path: S is maximum
            Some(mut v) => {
                // Symmetric difference along the path toggles membership.
                loop {
                    in_s[v] = !in_s[v];
                    match prev[v] {
                        Some(p) => v = p,
                        None => break,
                    }
                }
            }
        }
    }

    (0..n).filter(|&i| in_s[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartitionMatroid, UniformMatroid};
    use proptest::prelude::*;

    /// Adapter: a matroid over indices given per-index colors and a
    /// color-level partition matroid.
    struct Colored<'a> {
        colors: &'a [u32],
        inner: PartitionMatroid,
    }

    impl Matroid<usize> for Colored<'_> {
        fn is_independent(&self, set: &[usize]) -> bool {
            self.inner
                .colors_independent(set.iter().map(|&i| self.colors[i]))
        }
        fn rank(&self) -> usize {
            self.inner.rank()
        }
    }

    /// Brute-force maximum common independent set size.
    fn brute<M1: Matroid<usize>, M2: Matroid<usize>>(n: usize, m1: &M1, m2: &M2) -> usize {
        let mut best = 0;
        for mask in 0u32..(1 << n) {
            let set: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            if m1.is_independent(&set) && m2.is_independent(&set) && set.len() > best {
                best = set.len();
            }
        }
        best
    }

    #[test]
    fn uniform_uniform() {
        let a = UniformMatroid::new(3);
        let b = UniformMatroid::new(2);
        let s = max_common_independent(5, &a, &b);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn partition_vs_partition_needs_augmentation() {
        // Elements 0..4 with colors in two different partitions; greedy
        // without augmentation under-fills.
        let colors_a = [0u32, 0, 1, 1];
        let colors_b = [0u32, 1, 0, 1];
        let ma = Colored {
            colors: &colors_a,
            inner: PartitionMatroid::new(vec![1, 1]).unwrap(),
        };
        let mb = Colored {
            colors: &colors_b,
            inner: PartitionMatroid::new(vec![1, 1]).unwrap(),
        };
        let s = max_common_independent(4, &ma, &mb);
        // Max = 2 (e.g. {0, 3}: colors a = {0,1}, colors b = {0,1}).
        assert_eq!(s.len(), brute(4, &ma, &mb));
        assert!(ma.is_independent(&s) && mb.is_independent(&s));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matches_brute_force(
            n in 1usize..8,
            colors_a in proptest::collection::vec(0u32..3, 8),
            colors_b in proptest::collection::vec(0u32..3, 8),
            caps_a in proptest::collection::vec(1usize..3, 3),
            caps_b in proptest::collection::vec(1usize..3, 3),
        ) {
            let ma = Colored {
                colors: &colors_a[..n],
                inner: PartitionMatroid::new(caps_a).unwrap(),
            };
            let mb = Colored {
                colors: &colors_b[..n],
                inner: PartitionMatroid::new(caps_b).unwrap(),
            };
            let s = max_common_independent(n, &ma, &mb);
            prop_assert!(ma.is_independent(&s));
            prop_assert!(mb.is_independent(&s));
            prop_assert_eq!(s.len(), brute(n, &ma, &mb));
        }

        #[test]
        fn uniform_intersection_is_min_rank(
            n in 0usize..10,
            ka in 0usize..6,
            kb in 0usize..6,
        ) {
            let a = UniformMatroid::new(ka);
            let b = UniformMatroid::new(kb);
            let s = max_common_independent(n, &a, &b);
            prop_assert_eq!(s.len(), n.min(ka).min(kb));
        }
    }
}

//! Laminar matroids: hierarchical fairness budgets.
//!
//! The partition matroid caps each color independently. Real fairness
//! policies are often *nested*: "at most 2 centers per ethnicity, at most
//! 3 from all minority ethnicities combined, at most 5 under-30s
//! overall". A family of color groups is **laminar** when any two groups
//! are disjoint or nested; capping each group yields a laminar matroid —
//! still a matroid, so every guarantee in this workspace (greedy
//! maximality, matroid intersection, the generic matroid-center solver)
//! carries over unchanged.

use crate::Matroid;
use std::fmt;

/// A capped group of colors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    /// The colors belonging to this group.
    pub colors: Vec<u32>,
    /// Maximum number of selected elements whose color is in the group.
    pub cap: usize,
}

impl Group {
    /// Convenience constructor.
    pub fn new(colors: impl Into<Vec<u32>>, cap: usize) -> Self {
        Group {
            colors: colors.into(),
            cap,
        }
    }

    fn contains(&self, color: u32) -> bool {
        self.colors.contains(&color)
    }
}

/// Errors raised when validating a laminar family.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaminarError {
    /// Two groups overlap without nesting.
    NotLaminar {
        /// Indices of the offending groups.
        a: usize,
        /// Second group index.
        b: usize,
    },
    /// A group has no colors.
    EmptyGroup(usize),
    /// No groups were given.
    NoGroups,
}

impl fmt::Display for LaminarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaminarError::NotLaminar { a, b } => {
                write!(f, "groups {a} and {b} overlap without nesting")
            }
            LaminarError::EmptyGroup(i) => write!(f, "group {i} has no colors"),
            LaminarError::NoGroups => write!(f, "at least one group is required"),
        }
    }
}

impl std::error::Error for LaminarError {}

/// The laminar matroid over colored elements: a set is independent iff
/// every group's cap is respected by the multiset of selected colors.
///
/// Colors not covered by any group are unconstrained (wrap everything in
/// a top group to cap the total).
#[derive(Clone, Debug)]
pub struct LaminarMatroid {
    groups: Vec<Group>,
    rank: usize,
}

impl LaminarMatroid {
    /// Validates laminarity (any two groups disjoint or nested) and
    /// builds the matroid.
    pub fn new(groups: Vec<Group>) -> Result<Self, LaminarError> {
        if groups.is_empty() {
            return Err(LaminarError::NoGroups);
        }
        for (i, g) in groups.iter().enumerate() {
            if g.colors.is_empty() {
                return Err(LaminarError::EmptyGroup(i));
            }
        }
        for i in 0..groups.len() {
            for j in (i + 1)..groups.len() {
                let (a, b) = (&groups[i], &groups[j]);
                let common = a.colors.iter().filter(|c| b.contains(**c)).count();
                let nested = common == a.colors.len() || common == b.colors.len();
                if common > 0 && !nested {
                    return Err(LaminarError::NotLaminar { a: i, b: j });
                }
            }
        }
        // Rank = maximum selectable elements: computed greedily by
        // saturating colors one at a time (sound because this laminar
        // structure is a matroid: greedy achieves the rank).
        let max_color = groups
            .iter()
            .flat_map(|g| g.colors.iter())
            .max()
            .copied()
            .unwrap_or(0);
        let m = LaminarMatroid { groups, rank: 0 };
        let mut counts: Vec<u32> = Vec::new();
        'grow: loop {
            for c in 0..=max_color {
                counts.push(c);
                if m.colors_independent(counts.iter().copied()) {
                    continue 'grow;
                }
                counts.pop();
            }
            break;
        }
        let rank = counts.len();
        Ok(LaminarMatroid { rank, ..m })
    }

    /// The constituent groups.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// Independence of a color multiset.
    pub fn colors_independent(&self, colors: impl IntoIterator<Item = u32>) -> bool {
        let mut loads = vec![0usize; self.groups.len()];
        for c in colors {
            for (gi, g) in self.groups.iter().enumerate() {
                if g.contains(c) {
                    loads[gi] += 1;
                    if loads[gi] > g.cap {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl Matroid<u32> for LaminarMatroid {
    fn is_independent(&self, set: &[u32]) -> bool {
        self.colors_independent(set.iter().copied())
    }

    fn rank(&self) -> usize {
        self.rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::check_all;
    use proptest::prelude::*;

    fn nested() -> LaminarMatroid {
        // Colors: 0,1 = minority ethnicities, 2 = majority.
        // ≤1 of color 0, ≤2 of color 1, ≤2 minorities total, ≤4 overall.
        LaminarMatroid::new(vec![
            Group::new(vec![0], 1),
            Group::new(vec![1], 2),
            Group::new(vec![0, 1], 2),
            Group::new(vec![0, 1, 2], 4),
        ])
        .unwrap()
    }

    #[test]
    fn validation_rejects_crossing_groups() {
        let err = LaminarMatroid::new(vec![Group::new(vec![0, 1], 1), Group::new(vec![1, 2], 1)])
            .unwrap_err();
        assert_eq!(err, LaminarError::NotLaminar { a: 0, b: 1 });
        assert!(LaminarMatroid::new(vec![]).is_err());
        assert!(matches!(
            LaminarMatroid::new(vec![Group::new(vec![], 1)]),
            Err(LaminarError::EmptyGroup(0))
        ));
    }

    #[test]
    fn nested_caps_enforced() {
        let m = nested();
        assert!(m.is_independent(&[0, 1, 2, 2]));
        // Two minorities of color 1 hit the minority cap with color 0.
        assert!(m.is_independent(&[1, 1, 2, 2]));
        assert!(!m.is_independent(&[0, 1, 1])); // minorities > 2
        assert!(!m.is_independent(&[0, 0])); // color 0 > 1
        assert!(!m.is_independent(&[2, 2, 2, 2, 2])); // total > 4
    }

    #[test]
    fn rank_accounts_for_nesting() {
        let m = nested();
        // Best selection: 2 minorities + 2 majority = 4 (total cap).
        assert_eq!(Matroid::<u32>::rank(&m), 4);
        // Without the total cap the rank would be 2 + unlimited color 2 —
        // check a family whose binding cap is the middle group.
        let m2 =
            LaminarMatroid::new(vec![Group::new(vec![0], 5), Group::new(vec![0, 1], 3)]).unwrap();
        // Color 1 unconstrained individually but capped at 3 with 0...
        // and color 1 has no individual group: rank counts colors 0..=1:
        // any 3 of {0,1} fill group 2; rank = 3.
        assert_eq!(Matroid::<u32>::rank(&m2), 3);
    }

    #[test]
    fn axioms_hold_on_small_ground_sets() {
        let m = nested();
        let ground: Vec<u32> = vec![0, 0, 1, 1, 2, 2, 2];
        check_all(&m, &ground).unwrap();
    }

    #[test]
    fn partition_is_a_special_case() {
        // Disjoint singleton groups == partition matroid.
        let lam =
            LaminarMatroid::new(vec![Group::new(vec![0], 1), Group::new(vec![1], 2)]).unwrap();
        let part = crate::PartitionMatroid::new(vec![1, 2]).unwrap();
        for set in [
            vec![],
            vec![0],
            vec![0, 0],
            vec![0, 1, 1],
            vec![1, 1, 1],
            vec![0, 1],
        ] {
            assert_eq!(
                lam.is_independent(&set),
                part.is_independent(&set),
                "disagree on {set:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn random_nested_families_are_matroids(
            cap0 in 1usize..3,
            cap1 in 1usize..3,
            cap_top in 1usize..4,
            ground in proptest::collection::vec(0u32..3, 0..8),
        ) {
            let m = LaminarMatroid::new(vec![
                Group::new(vec![0], cap0),
                Group::new(vec![1], cap1),
                Group::new(vec![0, 1, 2], cap_top),
            ]).unwrap();
            prop_assert!(check_all(&m, &ground).is_ok());
        }
    }
}

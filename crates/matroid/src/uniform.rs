//! The uniform matroid `U_{k,n}`: independence = cardinality at most `k`.
//!
//! Unconstrained k-center is exactly matroid center under the uniform
//! matroid, so keeping this implementation around lets the sequential
//! solvers and the tests express the unconstrained problem in the same
//! vocabulary as the fair one.

use crate::Matroid;

/// The uniform matroid of rank `k` over any element type: every set with
/// at most `k` elements is independent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UniformMatroid {
    k: usize,
}

impl UniformMatroid {
    /// Builds the uniform matroid of rank `k`.
    pub fn new(k: usize) -> Self {
        UniformMatroid { k }
    }
}

impl<E> Matroid<E> for UniformMatroid {
    fn is_independent(&self, set: &[E]) -> bool {
        set.len() <= self.k
    }

    fn rank(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_rule() {
        let m = UniformMatroid::new(2);
        assert!(Matroid::<u32>::is_independent(&m, &[]));
        assert!(m.is_independent(&[1u32]));
        assert!(m.is_independent(&[1u32, 2]));
        assert!(!m.is_independent(&[1u32, 2, 3]));
        assert_eq!(Matroid::<u32>::rank(&m), 2);
    }

    #[test]
    fn rank_zero_matroid_only_has_empty_set() {
        let m = UniformMatroid::new(0);
        assert!(Matroid::<u32>::is_independent(&m, &[]));
        assert!(!m.is_independent(&[7u32]));
    }
}

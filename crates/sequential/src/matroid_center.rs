//! The generic matroid-center solver — Chen, Li, Liang, Wang
//! (Algorithmica 2016) in full generality.
//!
//! Fair center is matroid center under a partition matroid; the
//! [`crate::ChenEtAl`] and [`crate::Jones`] solvers exploit that special
//! structure (capacitated bipartite matching). This module implements the
//! *actual* Chen et al. algorithm for an **arbitrary matroid** given by
//! an independence oracle over point indices:
//!
//! 1. binary search the radius `r` over the pairwise distances;
//! 2. greedily collect heads pairwise `> 2r` (at most `rank(M)` of them,
//!    else `r < OPT`);
//! 3. the balls `B(head, r)` are disjoint; ask for a common independent
//!    set of the constraint matroid and the balls' partition matroid that
//!    hits every ball — **matroid intersection**
//!    ([`fairsw_matroid::max_common_independent`]);
//! 4. a full hit at radius `r` yields a solution of radius `≤ 3r`, and
//!    any `r ≥ OPT` admits one (each head is within `OPT` of a distinct
//!    point of the optimal independent set), so the minimal feasible `r`
//!    gives a 3-approximation.
//!
//! This is the most general — and slowest — solver in the crate: each
//! feasibility test runs matroid intersection with `O(n²)` oracle calls.
//! Use it for laminar/transversal constraints or any custom matroid;
//! stick to `Jones`/`ChenEtAl` for plain per-color budgets.

use crate::SolveError;
use fairsw_matroid::{max_common_independent, Matroid};
use fairsw_metric::{CoresetView, Metric};

/// A matroid-center instance: raw points plus an independence oracle over
/// point indices.
pub struct MatroidInstance<'a, M: Metric, Mat: Matroid<usize>> {
    /// The distance oracle.
    pub metric: &'a M,
    /// The points to cluster.
    pub points: &'a [M::Point],
    /// The constraint matroid over indices `0..points.len()`.
    pub matroid: &'a Mat,
}

/// A matroid-center solution: selected point indices and their radius.
#[derive(Clone, Debug)]
pub struct MatroidCenterSolution {
    /// Indices of the chosen centers (an independent set).
    pub centers: Vec<usize>,
    /// Covering radius over all points.
    pub radius: f64,
}

/// The partition matroid induced by disjoint balls: each element belongs
/// to at most one ball (`ball_of[i]`); an index set is independent iff it
/// selects at most one element per ball and nothing outside every ball.
struct BallMatroid {
    ball_of: Vec<Option<usize>>,
    num_balls: usize,
}

impl Matroid<usize> for BallMatroid {
    fn is_independent(&self, set: &[usize]) -> bool {
        let mut used = vec![false; self.num_balls];
        for &e in set {
            match self.ball_of.get(e).copied().flatten() {
                None => return false, // outside every ball: a loop
                Some(b) => {
                    if used[b] {
                        return false;
                    }
                    used[b] = true;
                }
            }
        }
        true
    }

    fn rank(&self) -> usize {
        self.num_balls
    }
}

/// [`matroid_center`] over arena handles — the sliding-window `Query`
/// entry point. Payloads are resolved out of the point store once, here,
/// at solution-assembly time; the returned center indices index into
/// `ids`.
pub fn matroid_center_ids<M: Metric, Mat: Matroid<usize>>(
    metric: &M,
    res: fairsw_metric::Resolver<'_, M::Point>,
    ids: &[fairsw_metric::PointId],
    matroid: &Mat,
) -> Result<MatroidCenterSolution, SolveError> {
    let points: Vec<M::Point> = ids.iter().map(|&id| res.get(id).clone()).collect();
    matroid_center(&MatroidInstance {
        metric,
        points: &points,
        matroid,
    })
}

/// Solves matroid center to a 3-approximation. See the module docs.
pub fn matroid_center<M: Metric, Mat: Matroid<usize>>(
    inst: &MatroidInstance<'_, M, Mat>,
) -> Result<MatroidCenterSolution, SolveError> {
    if inst.points.is_empty() {
        return Err(SolveError::EmptyInstance);
    }
    let n = inst.points.len();
    let rank = inst.matroid.rank();
    // Stage the instance once; the candidate sweep and every
    // feasibility test below run batched kernels over this view.
    let mut view = CoresetView::new();
    view.gather(inst.metric, inst.points.iter());

    let mut cands = vec![0.0f64];
    let mut dbuf = vec![0.0f64; n];
    for i in 0..n {
        inst.metric
            .dist_one_to_many(view.point(i), &view, &mut dbuf);
        cands.extend_from_slice(&dbuf[(i + 1)..]);
    }
    cands.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    cands.dedup();

    // Working buffers shared across every feasibility probe.
    let mut mind: Vec<f64> = Vec::new();
    let mut feasible = |r: f64| -> Option<Vec<usize>> {
        // Greedy heads pairwise > 2r: running minimum to the packed
        // heads (one kernel call per accepted head) replaces the
        // per-candidate `any` scan — identical decisions.
        let mut heads: Vec<usize> = Vec::new();
        dbuf.clear();
        dbuf.resize(n, 0.0);
        mind.clear();
        mind.resize(n, f64::INFINITY);
        for i in 0..n {
            if mind[i] > 2.0 * r {
                heads.push(i);
                if heads.len() > rank {
                    return None; // certificate that r < OPT
                }
                inst.metric
                    .dist_one_to_many(view.point(i), &view, &mut dbuf);
                for j in (i + 1)..n {
                    if dbuf[j] < mind[j] {
                        mind[j] = dbuf[j];
                    }
                }
            }
        }
        // Ball membership (balls are disjoint because heads are > 2r
        // apart and balls have radius r); one kernel call per head.
        let mut ball_of = vec![None; n];
        for (bi, &h) in heads.iter().enumerate() {
            inst.metric
                .dist_one_to_many(view.point(h), &view, &mut dbuf);
            for (i, bo) in ball_of.iter_mut().enumerate() {
                if dbuf[i] <= r {
                    debug_assert!(bo.is_none(), "balls must be disjoint");
                    *bo = Some(bi);
                }
            }
        }
        let balls = BallMatroid {
            ball_of,
            num_balls: heads.len(),
        };
        let common = max_common_independent(n, inst.matroid, &balls);
        (common.len() == heads.len()).then_some(common)
    };

    let (mut lo, mut hi) = (0usize, cands.len() - 1);
    if feasible(cands[hi]).is_none() {
        // Even at r = dmax there is no independent hit. With a loop-free
        // matroid of positive rank this cannot happen (a single head is
        // hit by any non-loop element); surface a best-effort singleton
        // using any independent element.
        let single = (0..n).find(|&i| inst.matroid.is_independent(&[i]));
        return match single {
            Some(i) => {
                let centers = vec![i];
                let radius = radius_of(inst, &centers);
                Ok(MatroidCenterSolution { centers, radius })
            }
            // Every element is a loop: only the empty set is independent.
            None => Err(SolveError::BadBudgets),
        };
    }
    while lo < hi {
        let mid = (lo + hi) / 2;
        if feasible(cands[mid]).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let centers = feasible(cands[lo]).expect("lo feasible");
    let radius = radius_of(inst, &centers);
    Ok(MatroidCenterSolution { centers, radius })
}

fn radius_of<M: Metric, Mat: Matroid<usize>>(
    inst: &MatroidInstance<'_, M, Mat>,
    centers: &[usize],
) -> f64 {
    let mut view = CoresetView::new();
    view.gather(inst.metric, inst.points.iter());
    let (mut dbuf, mut mind) = (Vec::new(), Vec::new());
    crate::min_over_centers(
        inst.metric,
        &view,
        centers.iter().map(|&i| &inst.points[i]),
        &mut dbuf,
        &mut mind,
    );
    let mut r: f64 = 0.0;
    for &d in &mind {
        if d > r {
            r = d;
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsw_matroid::{
        Group, LaminarMatroid, PartitionMatroid, TransversalMatroid, UniformMatroid,
    };
    use fairsw_metric::{EuclidPoint, Euclidean};

    fn pts(vals: &[f64]) -> Vec<EuclidPoint> {
        vals.iter().map(|&v| EuclidPoint::new(vec![v])).collect()
    }

    #[test]
    fn uniform_matroid_recovers_kcenter() {
        let points = pts(&[0.0, 1.0, 10.0, 11.0]);
        let m = UniformMatroid::new(2);
        let inst = MatroidInstance {
            metric: &Euclidean,
            points: &points,
            matroid: &m,
        };
        let sol = matroid_center(&inst).unwrap();
        // OPT = 1.0 (one center per cluster); 3-approx bound.
        assert!(sol.radius <= 3.0 + 1e-9, "radius {}", sol.radius);
        assert!(sol.centers.len() <= 2);
    }

    #[test]
    fn partition_constraint_agrees_with_fair_solvers() {
        let points = pts(&[0.0, 0.6, 1.0, 100.0, 100.5, 101.0]);
        let colors = [0u32, 1, 0, 1, 0, 1];
        let inner = PartitionMatroid::new(vec![1, 1]).unwrap();
        let m = fairsw_matroid::OverColors::new(&colors, &inner);
        let inst = MatroidInstance {
            metric: &Euclidean,
            points: &points,
            matroid: &m,
        };
        let sol = matroid_center(&inst).unwrap();
        // Fairness: at most one of each color.
        let c0 = sol.centers.iter().filter(|&&i| colors[i] == 0).count();
        let c1 = sol.centers.iter().filter(|&&i| colors[i] == 1).count();
        assert!(c0 <= 1 && c1 <= 1);
        // Two clusters of spread 1: 3-approx of OPT=1 means ≤ 3.
        assert!(sol.radius <= 3.0 + 1e-9, "radius {}", sol.radius);
    }

    #[test]
    fn laminar_constraint_is_enforced() {
        // Three clusters, colors 0/1/2; laminar: ≤1 of color 0, ≤1 of
        // {0,1} combined, ≤3 overall. Cluster colors force trade-offs.
        let points = pts(&[0.0, 0.4, 50.0, 50.4, 100.0, 100.4]);
        let colors = [0u32, 1, 0, 1, 2, 2];
        let inner = LaminarMatroid::new(vec![
            Group::new(vec![0], 1),
            Group::new(vec![0, 1], 1),
            Group::new(vec![0, 1, 2], 3),
        ])
        .unwrap();
        let m = fairsw_matroid::OverColors::new(&colors, &inner);
        let inst = MatroidInstance {
            metric: &Euclidean,
            points: &points,
            matroid: &m,
        };
        let sol = matroid_center(&inst).unwrap();
        // Only one center from colors {0,1} allowed: one of the first two
        // clusters must be served remotely → OPT = 50.4-ish, and the
        // constraint must hold on our answer.
        let c01 = sol
            .centers
            .iter()
            .filter(|&&i| colors[i] == 0 || colors[i] == 1)
            .count();
        assert!(c01 <= 1, "laminar cap violated");
        assert!(sol.radius >= 49.0, "radius {} impossibly good", sol.radius);
        assert!(sol.radius <= 3.0 * 50.4 + 1e-9);
    }

    #[test]
    fn transversal_constraint() {
        // Two clusters; slots: committee member 0 endorses points 0..3,
        // member 1 endorses points 2..6 — at most 2 centers total, each
        // with a distinct endorser.
        let points = pts(&[0.0, 0.5, 1.0, 100.0, 100.5, 101.0]);
        let adj: Vec<Vec<usize>> = (0..6)
            .map(|i| {
                let mut slots = Vec::new();
                if i <= 3 {
                    slots.push(0);
                }
                if i >= 2 {
                    slots.push(1);
                }
                slots
            })
            .collect();
        let m = TransversalMatroid::new(adj, 2);
        let inst = MatroidInstance {
            metric: &Euclidean,
            points: &points,
            matroid: &m,
        };
        let sol = matroid_center(&inst).unwrap();
        assert!(m.is_independent(&sol.centers));
        assert!(sol.centers.len() <= 2);
        // One endorsable center per cluster exists: OPT = 1.
        assert!(sol.radius <= 3.0 + 1e-9, "radius {}", sol.radius);
    }

    #[test]
    fn all_loops_is_an_error() {
        let points = pts(&[0.0, 1.0]);
        // Transversal matroid with no slots: every element is a loop.
        let m = TransversalMatroid::new(vec![vec![], vec![]], 0);
        let inst = MatroidInstance {
            metric: &Euclidean,
            points: &points,
            matroid: &m,
        };
        assert!(matroid_center(&inst).is_err());
    }

    #[test]
    fn empty_instance_errors() {
        let points: Vec<EuclidPoint> = vec![];
        let m = UniformMatroid::new(1);
        let inst = MatroidInstance {
            metric: &Euclidean,
            points: &points,
            matroid: &m,
        };
        assert!(matroid_center(&inst).is_err());
    }
}

//! The Chen–Li–Liang–Wang matroid-center algorithm (Algorithmica 2016)
//! specialised to the partition matroid — a 3-approximation.
//!
//! For a radius guess `r` the classical construction is:
//!
//! 1. scan the points, keeping a greedy set of **heads** pairwise `> 2r`
//!    (every point is within `2r` of some head by maximality); if more
//!    than `k` heads emerge, `r < OPT` and the guess is infeasible;
//! 2. ask whether each head's ball `B(head, r)` can be served by a point
//!    of a distinct color slot — a capacitated matching between heads and
//!    colors (for the partition matroid, matroid intersection degenerates
//!    to exactly this);
//! 3. if the matching covers every head, the witness points form a fair
//!    solution of radius `≤ 2r + r = 3r`; and for any `r ≥ OPT` the
//!    matching is guaranteed to exist (each head is within `OPT ≤ r` of a
//!    distinct optimal center).
//!
//! The minimal feasible `r` is found by binary search. Following the
//! original paper we search the exact candidate set of all pairwise
//! distances when the instance is small; for larger instances
//! materialising the `O(n²)` distances is prohibitive (at the paper's
//! 500k-point windows it would be terabytes), so we binary-search radius
//! *values* to a relative tolerance — see DESIGN.md §4. This solver is
//! deliberately the slow, high-quality baseline of the evaluation.

use crate::{validate, FairCenterSolver, FairSolution, Instance, SolveError};
use fairsw_matching::max_capacitated_matching;
use fairsw_metric::{Colored, CoresetView, Metric};

/// The ChenEtAl matroid-center solver (α = 3).
#[derive(Clone, Copy, Debug)]
pub struct ChenEtAl {
    /// Up to this many points the binary search runs over the exact set
    /// of pairwise distances; above it, over radius values.
    pub exact_threshold: usize,
    /// Relative tolerance of the value binary search.
    pub value_tolerance: f64,
}

impl Default for ChenEtAl {
    fn default() -> Self {
        ChenEtAl {
            exact_threshold: 2048,
            value_tolerance: 1e-6,
        }
    }
}

impl ChenEtAl {
    /// Creates a solver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tests feasibility of radius `r`; on success returns the witness
    /// center indices. Distances are staged through `view` (the
    /// instance's points, gathered once by `solve`, which also owns the
    /// `dbuf`/`mind` working buffers shared across probes).
    fn feasible<M: Metric>(
        &self,
        inst: &Instance<'_, M>,
        view: &CoresetView<M::Point>,
        r: f64,
        dbuf: &mut Vec<f64>,
        mind: &mut Vec<f64>,
    ) -> Option<Vec<usize>> {
        let k = inst.k();
        // Greedy 2r-separated heads: the running minimum to the packed
        // heads replaces the per-candidate `any` scan (a candidate is
        // close iff its min head distance is ≤ 2r), with one kernel
        // call per accepted head.
        let n = inst.points.len();
        let mut heads: Vec<usize> = Vec::new();
        dbuf.clear();
        dbuf.resize(n, 0.0);
        mind.clear();
        mind.resize(n, f64::INFINITY);
        for i in 0..n {
            if mind[i] > 2.0 * r {
                heads.push(i);
                if heads.len() > k {
                    return None; // certificate that r < OPT
                }
                inst.metric.dist_one_to_many(view.point(i), view, dbuf);
                for j in (i + 1)..n {
                    if dbuf[j] < mind[j] {
                        mind[j] = dbuf[j];
                    }
                }
            }
        }
        // Nearest point of each color within distance r of each head:
        // one kernel call per head, merged per color with the same
        // ascending-index tie-break as the pointwise scan.
        let ncolors = inst.num_colors();
        let mut witness = vec![vec![(f64::INFINITY, usize::MAX); ncolors]; heads.len()];
        for (hi, &h) in heads.iter().enumerate() {
            inst.metric.dist_one_to_many(view.point(h), view, dbuf);
            for (qi, q) in inst.points.iter().enumerate() {
                let d = dbuf[qi];
                if d <= r {
                    let slot = &mut witness[hi][q.color as usize];
                    if d < slot.0 {
                        *slot = (d, qi);
                    }
                }
            }
        }
        let adj: Vec<Vec<usize>> = witness
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|(_, &(d, _))| d.is_finite())
                    .map(|(c, _)| c)
                    .collect()
            })
            .collect();
        let m = max_capacitated_matching(inst.caps, &adj);
        if m.is_left_perfect() {
            Some(
                m.assigned
                    .iter()
                    .enumerate()
                    .map(|(h, a)| witness[h][a.expect("perfect")].1)
                    .collect(),
            )
        } else {
            None
        }
    }
}

impl<M: Metric> FairCenterSolver<M> for ChenEtAl {
    fn name(&self) -> &'static str {
        "ChenEtAl"
    }

    fn solve(&self, inst: &Instance<'_, M>) -> Result<FairSolution<M::Point>, SolveError> {
        validate(inst)?;
        let n = inst.points.len();
        // Stage the instance once; every feasibility test and candidate
        // sweep below runs batched kernels over this view.
        let mut view = CoresetView::new();
        view.gather_colored(inst.metric, inst.points.iter());
        let mut dbuf = vec![0.0f64; n];
        let mut mind: Vec<f64> = Vec::new();

        let witnesses: Vec<usize> = if n <= self.exact_threshold {
            // Exact mode: binary search over all pairwise distances
            // (including 0: with n ≤ k every point can be its own center),
            // one kernel row per point.
            let mut cands: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2 + 1);
            cands.push(0.0);
            for i in 0..n {
                inst.metric
                    .dist_one_to_many(view.point(i), &view, &mut dbuf);
                cands.extend_from_slice(&dbuf[(i + 1)..]);
            }
            cands.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
            cands.dedup();
            let (mut lo, mut hi) = (0usize, cands.len() - 1);
            debug_assert!(
                self.feasible(inst, &view, cands[hi], &mut dbuf, &mut mind)
                    .is_some(),
                "r = dmax must be feasible"
            );
            while lo < hi {
                let mid = (lo + hi) / 2;
                if self
                    .feasible(inst, &view, cands[mid], &mut dbuf, &mut mind)
                    .is_some()
                {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            self.feasible(inst, &view, cands[lo], &mut dbuf, &mut mind)
                .expect("binary search ended on a feasible radius")
        } else {
            // Value mode: [0, dmax_estimate] to relative tolerance. The
            // Gonzalez-style double sweep is two kernel calls.
            let mut dmax: f64 = 0.0;
            let mut far = 0usize;
            inst.metric
                .dist_one_to_many(view.point(0), &view, &mut dbuf);
            for (i, &d) in dbuf.iter().enumerate() {
                if d > dmax {
                    dmax = d;
                    far = i;
                }
            }
            inst.metric
                .dist_one_to_many(view.point(far), &view, &mut dbuf);
            for &d in &dbuf {
                if d > dmax {
                    dmax = d;
                }
            }
            if dmax == 0.0 {
                // All points coincide: the first point alone is optimal.
                let centers = vec![inst.points[0].clone()];
                return Ok(FairSolution {
                    centers,
                    radius: 0.0,
                });
            }
            let (mut lo, mut hi) = (0.0f64, dmax);
            let mut best = self
                .feasible(inst, &view, hi, &mut dbuf, &mut mind)
                .expect("r = diameter estimate must be feasible");
            while hi - lo > self.value_tolerance * dmax {
                let mid = 0.5 * (lo + hi);
                match self.feasible(inst, &view, mid, &mut dbuf, &mut mind) {
                    Some(w) => {
                        best = w;
                        hi = mid;
                    }
                    None => lo = mid,
                }
            }
            best
        };

        let mut seen = std::collections::HashSet::new();
        let centers: Vec<Colored<M::Point>> = witnesses
            .into_iter()
            .filter(|i| seen.insert(*i))
            .map(|i| inst.points[i].clone())
            .collect();
        // Radius over the already-staged view — no re-gather.
        let mut mind = Vec::new();
        crate::min_over_centers(
            inst.metric,
            &view,
            centers.iter().map(|c| &c.point),
            &mut dbuf,
            &mut mind,
        );
        let mut radius: f64 = 0.0;
        for &d in &mind {
            if d > radius {
                radius = d;
            }
        }
        Ok(FairSolution { centers, radius })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::exact_fair_center;
    use crate::testutil::{pts1d, scatter};
    use fairsw_metric::Euclidean;
    use proptest::prelude::*;

    #[test]
    fn single_point() {
        let pts = pts1d(&[(1.0, 0)]);
        let inst = Instance::new(&Euclidean, &pts, &[1]);
        let sol = ChenEtAl::new().solve(&inst).unwrap();
        assert_eq!(sol.radius, 0.0);
        assert_eq!(sol.centers.len(), 1);
    }

    #[test]
    fn coincident_points_value_mode() {
        let pts = pts1d(&[(2.0, 0); 5]);
        let solver = ChenEtAl {
            exact_threshold: 0,
            value_tolerance: 1e-6,
        };
        let inst = Instance::new(&Euclidean, &pts, &[1]);
        let sol = solver.solve(&inst).unwrap();
        assert_eq!(sol.radius, 0.0);
    }

    #[test]
    fn respects_budgets_and_beats_3opt() {
        let pts = pts1d(&[
            (0.0, 0),
            (1.0, 1),
            (2.0, 0),
            (50.0, 1),
            (51.0, 1),
            (100.0, 0),
        ]);
        let caps = [1usize, 2];
        let inst = Instance::new(&Euclidean, &pts, &caps);
        let sol = ChenEtAl::new().solve(&inst).unwrap();
        assert!(inst.is_fair(&sol.centers));
        let opt = exact_fair_center(&inst).unwrap();
        assert!(sol.radius <= 3.0 * opt.radius + 1e-9);
    }

    #[test]
    fn value_mode_matches_exact_mode_closely() {
        let pts = scatter(150, 2, 3);
        let caps = [2usize, 2, 1];
        let inst = Instance::new(&Euclidean, &pts, &caps);
        let exact = ChenEtAl::new().solve(&inst).unwrap();
        let value = ChenEtAl {
            exact_threshold: 0,
            value_tolerance: 1e-6,
        }
        .solve(&inst)
        .unwrap();
        // Both are 3-approximations; value mode's radius can differ but
        // only within the tolerance-perturbed guess lattice.
        assert!(value.radius <= exact.radius * 1.5 + 1e-9);
        assert!(inst.is_fair(&value.centers));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(30))]

        #[test]
        fn three_approximation(
            coords in proptest::collection::vec((-30.0..30.0f64, 0u32..2), 2..10),
            caps in proptest::collection::vec(1usize..3, 2),
        ) {
            let pts = pts1d(
                &coords.iter().map(|&(x, c)| (x, c)).collect::<Vec<_>>());
            let inst = Instance::new(&Euclidean, &pts, &caps);
            let sol = ChenEtAl::new().solve(&inst).unwrap();
            prop_assert!(inst.is_fair(&sol.centers));
            let opt = exact_fair_center(&inst).unwrap();
            prop_assert!(
                sol.radius <= 3.0 * opt.radius + 1e-9,
                "chen {} vs opt {}", sol.radius, opt.radius
            );
        }
    }
}

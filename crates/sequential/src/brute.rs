//! Exponential-time exact solvers for tiny instances.
//!
//! These establish ground truth for the approximation-factor property
//! tests: Gonzalez ≤ 2·OPT, Jones/ChenEtAl ≤ 3·OPT. They enumerate all
//! center subsets, so keep `n ≤ ~14`.

use crate::{validate, FairCenterSolver, FairSolution, Instance, SolveError};
use fairsw_metric::{Colored, Metric};

/// The exact solver as a [`FairCenterSolver`] (α = 1).
///
/// Usable as the coreset solver `A` in `Query` when coresets are tiny
/// (≲ 18 points): Theorem 1 then yields a `(1+ε)`-approximate streaming
/// answer. Exponential time — guard instance sizes accordingly.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactSolver;

impl ExactSolver {
    /// Creates the exact solver.
    pub fn new() -> Self {
        ExactSolver
    }
}

impl<M: Metric> FairCenterSolver<M> for ExactSolver {
    fn name(&self) -> &'static str {
        "Exact"
    }

    fn solve(&self, inst: &Instance<'_, M>) -> Result<FairSolution<M::Point>, SolveError> {
        exact_fair_center(inst)
    }
}

/// Exact optimal radius for *unconstrained* k-center by enumeration of all
/// `≤ k`-subsets.
pub fn exact_kcenter_radius<M: Metric>(metric: &M, points: &[M::Point], k: usize) -> f64 {
    assert!(points.len() <= 20, "instance too large for enumeration");
    if points.is_empty() {
        return 0.0;
    }
    if k == 0 {
        return f64::INFINITY;
    }
    let n = points.len();
    let mut best = f64::INFINITY;
    for mask in 1u32..(1u32 << n) {
        if mask.count_ones() as usize > k {
            continue;
        }
        let centers: Vec<&M::Point> = (0..n)
            .filter(|&i| mask >> i & 1 == 1)
            .map(|i| &points[i])
            .collect();
        let mut r: f64 = 0.0;
        for p in points {
            let d = metric.dist_to_set(p, centers.iter().copied());
            if d > r {
                r = d;
            }
            if r >= best {
                break;
            }
        }
        if r < best {
            best = r;
        }
    }
    best
}

/// Exact optimal fair-center solution by enumeration of all subsets that
/// satisfy the color budgets.
pub fn exact_fair_center<M: Metric>(
    inst: &Instance<'_, M>,
) -> Result<FairSolution<M::Point>, SolveError> {
    validate(inst)?;
    assert!(
        inst.points.len() <= 18,
        "instance too large for enumeration"
    );
    let n = inst.points.len();
    let mut best_r = f64::INFINITY;
    let mut best_mask = 0u32;
    let k = inst.k();

    'mask: for mask in 1u32..(1u32 << n) {
        if mask.count_ones() as usize > k {
            continue;
        }
        // Fairness check.
        let mut counts = vec![0usize; inst.caps.len()];
        for i in 0..n {
            if mask >> i & 1 == 1 {
                let c = inst.points[i].color as usize;
                counts[c] += 1;
                if counts[c] > inst.caps[c] {
                    continue 'mask;
                }
            }
        }
        // Radius with early exit.
        let mut r: f64 = 0.0;
        for p in inst.points {
            let mut d = f64::INFINITY;
            for i in 0..n {
                if mask >> i & 1 == 1 {
                    let dd = inst.metric.dist(&p.point, &inst.points[i].point);
                    if dd < d {
                        d = dd;
                    }
                }
            }
            if d > r {
                r = d;
            }
            if r >= best_r {
                continue 'mask;
            }
        }
        best_r = r;
        best_mask = mask;
    }

    let centers: Vec<Colored<M::Point>> = (0..n)
        .filter(|&i| best_mask >> i & 1 == 1)
        .map(|i| inst.points[i].clone())
        .collect();
    Ok(FairSolution {
        centers,
        radius: best_r,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::pts1d;
    use fairsw_metric::{EuclidPoint, Euclidean};

    #[test]
    fn exact_kcenter_line() {
        let pts: Vec<EuclidPoint> = [0.0, 1.0, 10.0, 11.0]
            .iter()
            .map(|&v| EuclidPoint::new(vec![v]))
            .collect();
        // k=2: centers at 0/1 and 10/11 -> radius 1... actually picking
        // 0 and 10 gives radius 1; picking 0.5 not allowed (centers are
        // input points). Optimum = 1.0.
        let r = exact_kcenter_radius(&Euclidean, &pts, 2);
        assert!((r - 1.0).abs() < 1e-12);
        // k=4: zero radius.
        assert_eq!(exact_kcenter_radius(&Euclidean, &pts, 4), 0.0);
    }

    #[test]
    fn exact_kcenter_degenerate() {
        assert_eq!(exact_kcenter_radius(&Euclidean, &[], 2), 0.0);
        let p = [EuclidPoint::new(vec![0.0])];
        assert_eq!(exact_kcenter_radius(&Euclidean, &p, 0), f64::INFINITY);
    }

    #[test]
    fn fairness_makes_radius_worse() {
        // Two clusters; all points of cluster 2 share color 0, budget 1.
        // Unconstrained k=2 optimum: one center per cluster, radius 1.
        // Fair optimum with caps [1,1]: color-1 point only exists in
        // cluster 1, so cluster 2 takes the single color-0 slot; radius
        // is still 1 if color assignment permits... craft so fair is
        // strictly worse: all points color 0, caps [1] with k=1 < 2.
        let pts = pts1d(&[(0.0, 0), (1.0, 0), (10.0, 0), (11.0, 0)]);
        let inst = Instance::new(&Euclidean, &pts, &[1]);
        let sol = exact_fair_center(&inst).unwrap();
        // One center only: best is 0.0/1.0 -> covers within 11; center at
        // 1.0 or 10.0 gives radius 10.
        assert!((sol.radius - 10.0).abs() < 1e-12);
        assert_eq!(sol.centers.len(), 1);
        assert!(inst.is_fair(&sol.centers));
    }

    #[test]
    fn fair_equals_unconstrained_when_budgets_loose() {
        let pts = pts1d(&[(0.0, 0), (1.0, 1), (10.0, 0), (11.0, 1)]);
        let inst = Instance::new(&Euclidean, &pts, &[2, 2]);
        let sol = exact_fair_center(&inst).unwrap();
        let points: Vec<EuclidPoint> = pts.iter().map(|c| c.point.clone()).collect();
        let unc = exact_kcenter_radius(&Euclidean, &points, 4);
        assert!((sol.radius - unc).abs() < 1e-12);
    }

    #[test]
    fn exact_solver_trait_roundtrip() {
        let pts = pts1d(&[(0.0, 0), (1.0, 1), (10.0, 0)]);
        let inst = Instance::new(&Euclidean, &pts, &[1, 1]);
        let sol =
            <ExactSolver as crate::FairCenterSolver<Euclidean>>::solve(&ExactSolver::new(), &inst)
                .unwrap();
        assert!(inst.is_fair(&sol.centers));
        assert!((sol.radius - 1.0).abs() < 1e-12);
    }

    #[test]
    fn errors_propagate() {
        let pts = pts1d(&[]);
        let inst = Instance::new(&Euclidean, &pts, &[1]);
        assert!(matches!(
            exact_fair_center(&inst),
            Err(SolveError::EmptyInstance)
        ));
    }
}

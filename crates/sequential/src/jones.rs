//! The Jones–Nguyen–Nguyen fair k-center algorithm ("Fair k-Centers via
//! Maximum Matching", ICML 2020) — a 3-approximation in `O(nk)`-ish time.
//!
//! Outline (as implemented here):
//!
//! 1. Run Gonzalez for `k` pivots, recording the coverage radius of every
//!    prefix `P_j` (`coverage[j-1]` = clustering radius of `P_j`).
//! 2. Precompute `mind[p][i]` = distance from pivot `p` to the nearest
//!    point of color `i` (`O(nk)` total).
//! 3. For each prefix length `j`, binary-search the smallest threshold `τ`
//!    (over the candidate values `mind[p][i]`, `p < j`) such that the
//!    capacitated matching "pivot `p` may take color `i` iff
//!    `mind[p][i] ≤ τ`" assigns a color to *every* pivot of `P_j`.
//!    Replacing each pivot by its matched witness point yields a fair
//!    solution of radius at most `coverage[j-1] + τ(j)`.
//! 4. Return the candidate with the best bound (we additionally evaluate
//!    its true radius over the instance, which can only be smaller).
//!
//! Why 3-approximate: let `r*` be the fair optimum and `j*` the largest
//! prefix whose pivots are pairwise `> 2r*` apart. Each pivot of `P_{j*}`
//! then lies within `r*` of a *distinct* optimal center, so assigning each
//! pivot its optimal center's color is a feasible matching with
//! `τ ≤ r*`; and the next Gonzalez pivot was within `2r*` of `P_{j*}`
//! (otherwise `P_{j*+1}` would still be pairwise `> 2r*`), hence
//! `coverage[j*-1] ≤ 2r*`. The returned minimum is therefore at most
//! `coverage + τ ≤ 3r*`.

use crate::{gonzalez_view, validate, FairCenterSolver, FairSolution, Instance, SolveError};
use fairsw_matching::max_capacitated_matching;
use fairsw_metric::{Colored, CoresetView, Metric};

/// The Jones fair-center solver (α = 3). Stateless; construct freely.
#[derive(Clone, Copy, Debug, Default)]
pub struct Jones;

impl Jones {
    /// Creates a new solver.
    pub fn new() -> Self {
        Jones
    }

    /// The algorithm proper, over an already-staged view (points +
    /// colors). Both entry points below land here: `solve` stages the
    /// instance slice, `solve_ids` gathers straight out of the arena —
    /// either way every candidate distance flows through the batched
    /// kernels and no intermediate point copies are materialized.
    fn solve_on_view<M: Metric>(
        &self,
        metric: &M,
        view: &CoresetView<M::Point>,
        caps: &[usize],
    ) -> Result<FairSolution<M::Point>, SolveError> {
        if view.is_empty() {
            return Err(SolveError::EmptyInstance);
        }
        if caps.is_empty() || caps.contains(&0) {
            return Err(SolveError::BadBudgets);
        }
        let k: usize = caps.iter().sum();
        let ncolors = caps.len();
        let colors = view.colors();
        debug_assert!(
            colors.iter().all(|&c| (c as usize) < ncolors),
            "point color out of range"
        );
        let g = gonzalez_view(metric, view, k);
        let npiv = g.pivots.len();

        // mind[p * ncolors + i] = (distance, witness index) of the
        // nearest point of color i to pivot p, flattened row-major into a
        // single allocation. One kernel call per pivot replaces the
        // pointwise O(nk) scan; the per-color argmin keeps the same
        // ascending-index tie-break.
        let mut mind = vec![(f64::INFINITY, usize::MAX); npiv * ncolors];
        let mut dbuf = vec![0.0f64; view.len()];
        let mut mind_buf: Vec<f64> = Vec::new();
        for (pi, &pividx) in g.pivots.iter().enumerate() {
            metric.dist_one_to_many(view.point(pividx), view, &mut dbuf);
            let row = &mut mind[pi * ncolors..(pi + 1) * ncolors];
            for (qi, &color) in colors.iter().enumerate() {
                let d = dbuf[qi];
                let slot = &mut row[color as usize];
                if d < slot.0 {
                    *slot = (d, qi);
                }
            }
        }

        let mut best: Option<(f64, Vec<usize>)> = None; // (bound, witness indices)

        // Buffers hoisted out of the prefix loop: `cands` accumulates the
        // finite mind values seen so far (prefix j's candidate set is
        // prefix j-1's plus row j-1, so extend-then-sort beats
        // re-collecting), and `adj` keeps one reusable adjacency row per
        // pivot so the feasibility probes inside the binary search
        // allocate nothing in steady state.
        let mut cands: Vec<f64> = Vec::new();
        let mut adj: Vec<Vec<usize>> = Vec::new();
        adj.resize_with(npiv, Vec::new);

        for j in 1..=npiv {
            if j > k {
                break;
            }
            // Candidate thresholds: the finite mind values of the prefix.
            cands.extend(
                mind[(j - 1) * ncolors..j * ncolors]
                    .iter()
                    .map(|&(d, _)| d)
                    .filter(|d| d.is_finite()),
            );
            cands.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            cands.dedup();
            if cands.is_empty() {
                continue;
            }

            // Perfect matching is monotone in τ: binary search the
            // smallest feasible candidate. Each probe refills the first j
            // adjacency rows in place.
            let mind = &mind;
            let feasible = |tau: f64, adj: &mut Vec<Vec<usize>>| -> bool {
                for (p, row) in adj[..j].iter_mut().enumerate() {
                    row.clear();
                    row.extend(
                        mind[p * ncolors..(p + 1) * ncolors]
                            .iter()
                            .enumerate()
                            .filter(|(_, &(d, _))| d <= tau)
                            .map(|(c, _)| c),
                    );
                }
                max_capacitated_matching(caps, &adj[..j]).is_left_perfect()
            };

            if !feasible(*cands.last().expect("non-empty"), &mut adj) {
                // Even the loosest threshold fails (some color classes
                // absent): this prefix cannot be perfectly matched.
                continue;
            }
            let (mut lo, mut hi) = (0usize, cands.len() - 1);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if feasible(cands[mid], &mut adj) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            let tau = cands[lo];
            let cover = g.coverage[j - 1];
            let bound = cover + tau;
            if best.as_ref().is_none_or(|(b, _)| bound < *b) {
                // Materialize the witnesses only for an improving prefix.
                assert!(feasible(tau, &mut adj), "lo is feasible");
                let m = max_capacitated_matching(caps, &adj[..j]);
                let witnesses: Vec<usize> = m
                    .assigned
                    .iter()
                    .enumerate()
                    .map(|(p, a)| mind[p * ncolors + a.expect("perfect")].1)
                    .collect();
                best = Some((bound, witnesses));
            }
        }

        let (_, witnesses) = best.ok_or(SolveError::EmptyInstance)?;
        // Distinct pivots can share a witness point (the same point may be
        // the closest representative of one color to two pivots); dedup by
        // index to keep the center set a set.
        let mut seen = std::collections::HashSet::new();
        let centers: Vec<Colored<M::Point>> = witnesses
            .iter()
            .filter(|&&i| seen.insert(i))
            .map(|&i| Colored::new(view.point(i).clone(), colors[i]))
            .collect();

        // Radius over the already-staged view — no re-gather.
        crate::min_over_centers(
            metric,
            view,
            centers.iter().map(|c| &c.point),
            &mut dbuf,
            &mut mind_buf,
        );
        let mut radius: f64 = 0.0;
        for &d in &mind_buf {
            if d > radius {
                radius = d;
            }
        }
        Ok(FairSolution { centers, radius })
    }
}

impl<M: Metric> FairCenterSolver<M> for Jones {
    fn name(&self) -> &'static str {
        "Jones"
    }

    fn solve(&self, inst: &Instance<'_, M>) -> Result<FairSolution<M::Point>, SolveError> {
        validate(inst)?;
        // Stage the instance once; everything downstream runs on batched
        // kernels over this view.
        let mut view = CoresetView::new();
        view.gather_colored(inst.metric, inst.points.iter());
        self.solve_on_view(inst.metric, &view, inst.caps)
    }

    /// Gathers the coreset straight out of the arena into a staged view
    /// — one resolver pass, no intermediate `Vec<Colored<_>>` — and
    /// solves on it.
    fn solve_ids(
        &self,
        metric: &M,
        res: fairsw_metric::Resolver<'_, M::Point>,
        ids: &[fairsw_metric::ColoredId],
        caps: &[usize],
    ) -> Result<FairSolution<M::Point>, SolveError> {
        let mut view = CoresetView::new();
        view.gather_colored_ids(metric, res, ids.iter().copied());
        self.solve_on_view(metric, &view, caps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::exact_fair_center;
    use crate::testutil::{pts1d, scatter};
    use fairsw_metric::Euclidean;
    use proptest::prelude::*;

    #[test]
    fn trivial_single_point() {
        let pts = pts1d(&[(3.0, 0)]);
        let inst = Instance::new(&Euclidean, &pts, &[1]);
        let sol = Jones.solve(&inst).unwrap();
        assert_eq!(sol.centers.len(), 1);
        assert_eq!(sol.radius, 0.0);
    }

    #[test]
    fn respects_budgets() {
        let pts = scatter(120, 2, 3);
        let caps = [2usize, 1, 1];
        let inst = Instance::new(&Euclidean, &pts, &caps);
        let sol = Jones.solve(&inst).unwrap();
        assert!(inst.is_fair(&sol.centers), "unfair solution");
        assert!(sol.centers.len() <= 4);
        assert!(sol.radius.is_finite());
    }

    #[test]
    fn color_forced_substitution() {
        // Cluster at 0 has only color 0; cluster at 100 only color 1.
        // caps [1,1]: one center per cluster forced by colors; radius 1.
        let pts = pts1d(&[(0.0, 0), (1.0, 0), (100.0, 1), (101.0, 1)]);
        let inst = Instance::new(&Euclidean, &pts, &[1, 1]);
        let sol = Jones.solve(&inst).unwrap();
        assert!(sol.radius <= 1.0 + 1e-9, "radius {}", sol.radius);
    }

    #[test]
    fn missing_color_is_fine() {
        // Budget exists for color 1 but no color-1 points: solver must
        // still return a valid color-0-only solution.
        let pts = pts1d(&[(0.0, 0), (5.0, 0), (10.0, 0)]);
        let inst = Instance::new(&Euclidean, &pts, &[2, 5]);
        let sol = Jones.solve(&inst).unwrap();
        assert!(inst.is_fair(&sol.centers));
        assert!(sol.radius <= 5.0 + 1e-9);
    }

    #[test]
    fn empty_instance_errors() {
        let pts = pts1d(&[]);
        let inst = Instance::new(&Euclidean, &pts, &[1]);
        assert!(Jones.solve(&inst).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn three_approximation(
            coords in proptest::collection::vec((-30.0..30.0f64, 0u32..3), 2..11),
            caps in proptest::collection::vec(1usize..3, 3),
        ) {
            let pts = pts1d(
                &coords.iter().map(|&(x, c)| (x, c)).collect::<Vec<_>>());
            let inst = Instance::new(&Euclidean, &pts, &caps);
            let sol = Jones.solve(&inst).unwrap();
            prop_assert!(inst.is_fair(&sol.centers));
            let opt = exact_fair_center(&inst).unwrap();
            prop_assert!(
                sol.radius <= 3.0 * opt.radius + 1e-9,
                "jones {} vs opt {}", sol.radius, opt.radius
            );
        }
    }
}

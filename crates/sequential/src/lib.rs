//! Sequential (offline) algorithms for k-center, fair center and matroid
//! center.
//!
//! These play two roles in the reproduction:
//!
//! 1. **Baselines** — the paper evaluates its streaming algorithm against
//!    [`ChenEtAl`] (matroid center, Chen-Li-Liang-Wang,
//!    Algorithmica 2016, specialised to the partition matroid) and
//!    [`Jones`] (fair k-center via maximum matching, Jones-
//!    Nguyen-Nguyen, ICML 2020) run on the *entire window*;
//! 2. **The coreset solver `A`** — `Query` extracts a coreset and runs a
//!    sequential fair-center algorithm on it; the paper uses Jones
//!    (`α = 3`), and so do we by default.
//!
//! [`fn@gonzalez`] provides the classical greedy 2-approximation for
//! unconstrained k-center (Gonzalez 1985), used inside Jones and widely in
//! tests; [`brute`] holds exponential-time exact solvers for tiny
//! instances, backing the approximation-factor property tests.

pub mod brute;
pub mod chen;
pub mod gonzalez;
pub mod jones;
pub mod kleindessner;
pub mod matroid_center;
pub mod robust;

pub use brute::ExactSolver;
pub use chen::ChenEtAl;
pub use gonzalez::{gonzalez, gonzalez_view, GonzalezResult};
pub use jones::Jones;
pub use kleindessner::Kleindessner;
pub use matroid_center::{
    matroid_center, matroid_center_ids, MatroidCenterSolution, MatroidInstance,
};
pub use robust::{robust_kcenter, RobustFair, RobustSolution};

use fairsw_metric::{Colored, ColoredId, CoresetView, Metric, Resolver};
use std::fmt;

/// Batched distance-to-set: fills `min_dist[i]` with the distance of
/// `view[i]` to the closest of `centers` (`+∞` when `centers` is empty)
/// — one [`dist_one_to_many_exact`](Metric::dist_one_to_many_exact)
/// kernel call per center, merged into running minima. Produces the same
/// values as a per-point `dist_to_set` scan because the minimum of a
/// fixed set of non-negative distances is order-independent. Every call
/// site is a *final-radius* computation, so this deliberately uses the
/// exact kernel: even when the view was staged in an `Approx` mode, the
/// reported radii are full-`f64` re-ranks of the surviving candidates.
pub(crate) fn min_over_centers<'a, M: Metric>(
    metric: &M,
    view: &CoresetView<M::Point>,
    centers: impl IntoIterator<Item = &'a M::Point>,
    dbuf: &mut Vec<f64>,
    min_dist: &mut Vec<f64>,
) where
    M::Point: 'a,
{
    let n = view.len();
    min_dist.clear();
    min_dist.resize(n, f64::INFINITY);
    dbuf.clear();
    dbuf.resize(n, 0.0);
    for c in centers {
        metric.dist_one_to_many_exact(c, view, dbuf);
        for (m, &d) in min_dist.iter_mut().zip(dbuf.iter()) {
            if d < *m {
                *m = d;
            }
        }
    }
}

/// A fair-center problem instance: colored points, a metric, and the
/// per-color budgets `k_1..k_ℓ` of the partition matroid.
#[derive(Clone, Copy)]
pub struct Instance<'a, M: Metric> {
    /// The distance oracle.
    pub metric: &'a M,
    /// The points to cluster, each tagged with its color in `0..ℓ`.
    pub points: &'a [Colored<M::Point>],
    /// Per-color budgets; `caps.len() = ℓ`, all entries positive.
    pub caps: &'a [usize],
}

impl<'a, M: Metric> Instance<'a, M> {
    /// Builds an instance. The caller guarantees colors are `< caps.len()`
    /// (checked in debug builds).
    pub fn new(metric: &'a M, points: &'a [Colored<M::Point>], caps: &'a [usize]) -> Self {
        debug_assert!(
            points.iter().all(|p| (p.color as usize) < caps.len()),
            "point color out of range"
        );
        Instance {
            metric,
            points,
            caps,
        }
    }

    /// Total budget `k = Σ k_i`.
    pub fn k(&self) -> usize {
        self.caps.iter().sum()
    }

    /// Number of colors `ℓ`.
    pub fn num_colors(&self) -> usize {
        self.caps.len()
    }

    /// The clustering radius of `centers` over this instance's points:
    /// `max_p min_c d(p, c)`; `f64::INFINITY` when `centers` is empty and
    /// points are not. Stages the points once and evaluates one batched
    /// kernel call per center.
    pub fn radius_of(&self, centers: &[Colored<M::Point>]) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        if centers.is_empty() {
            return f64::INFINITY;
        }
        let mut view = CoresetView::new();
        view.gather_colored(self.metric, self.points.iter());
        let (mut dbuf, mut mind) = (Vec::new(), Vec::new());
        min_over_centers(
            self.metric,
            &view,
            centers.iter().map(|c| &c.point),
            &mut dbuf,
            &mut mind,
        );
        let mut r: f64 = 0.0;
        for &d in &mind {
            if d > r {
                r = d;
            }
        }
        r
    }

    /// Whether `centers` satisfies the fairness constraint (at most `k_i`
    /// centers of color `i`).
    pub fn is_fair(&self, centers: &[Colored<M::Point>]) -> bool {
        let mut counts = vec![0usize; self.caps.len()];
        for c in centers {
            let idx = c.color as usize;
            if idx >= counts.len() {
                return false;
            }
            counts[idx] += 1;
            if counts[idx] > self.caps[idx] {
                return false;
            }
        }
        true
    }
}

/// A fair-center solution: the chosen centers (a subset of the instance's
/// points) and their clustering radius over the instance.
#[derive(Clone, Debug)]
pub struct FairSolution<P> {
    /// Selected centers with their colors; satisfies the budgets.
    pub centers: Vec<Colored<P>>,
    /// `max_p min_c d(p, c)` over the instance points.
    pub radius: f64,
}

/// Errors a sequential solver can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The instance has no points.
    EmptyInstance,
    /// The budgets are malformed (empty or containing zeros).
    BadBudgets,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::EmptyInstance => write!(f, "instance has no points"),
            SolveError::BadBudgets => write!(f, "budgets must be non-empty and positive"),
        }
    }
}

impl std::error::Error for SolveError {}

/// A sequential fair-center algorithm, usable both as a full-window
/// baseline and as the coreset solver `A` inside the streaming `Query`.
pub trait FairCenterSolver<M: Metric> {
    /// Short display name (used by the experiment harness).
    fn name(&self) -> &'static str;

    /// Solves the instance, returning fair centers and their radius.
    fn solve(&self, inst: &Instance<'_, M>) -> Result<FairSolution<M::Point>, SolveError>;

    /// Solves an instance given as colored arena handles — the entry
    /// point the sliding-window `Query` uses. Payloads are resolved out
    /// of the [`PointStore`](fairsw_metric::PointStore) exactly once,
    /// here; `solve` then stages them into a [`CoresetView`] so every
    /// candidate distance flows through the batched [`Metric`] kernels.
    /// The streaming structures above never materialize point copies.
    fn solve_ids(
        &self,
        metric: &M,
        res: Resolver<'_, M::Point>,
        ids: &[ColoredId],
        caps: &[usize],
    ) -> Result<FairSolution<M::Point>, SolveError> {
        let points: Vec<Colored<M::Point>> = ids
            .iter()
            .map(|c| Colored::new(res.get(c.point).clone(), c.color))
            .collect();
        self.solve(&Instance::new(metric, &points, caps))
    }
}

/// Validates instance preconditions shared by all solvers.
pub(crate) fn validate<M: Metric>(inst: &Instance<'_, M>) -> Result<(), SolveError> {
    if inst.points.is_empty() {
        return Err(SolveError::EmptyInstance);
    }
    if inst.caps.is_empty() || inst.caps.contains(&0) {
        return Err(SolveError::BadBudgets);
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod testutil {
    use fairsw_metric::{Colored, EuclidPoint};

    /// 1-D colored points from `(coordinate, color)` pairs.
    pub fn pts1d(vals: &[(f64, u32)]) -> Vec<Colored<EuclidPoint>> {
        vals.iter()
            .map(|&(x, c)| Colored::new(EuclidPoint::new(vec![x]), c))
            .collect()
    }

    /// Deterministic scatter of `n` colored points in `dim` dimensions
    /// with `ncolors` colors (quasi-random, no rand dependency).
    pub fn scatter(n: usize, dim: usize, ncolors: u32) -> Vec<Colored<EuclidPoint>> {
        let primes = [2.0f64, 3.0, 5.0, 7.0, 11.0, 13.0];
        (0..n)
            .map(|i| {
                let coords: Vec<f64> = (0..dim)
                    .map(|j| (((i + 1) as f64) * primes[j % primes.len()].sqrt()).fract() * 10.0)
                    .collect();
                Colored::new(EuclidPoint::new(coords), (i as u32 * 7 + 3) % ncolors)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::pts1d;
    use super::*;
    use fairsw_metric::Euclidean;

    #[test]
    fn radius_of_basic() {
        let pts = pts1d(&[(0.0, 0), (10.0, 1), (4.0, 0)]);
        let inst = Instance::new(&Euclidean, &pts, &[1, 1]);
        let centers = vec![pts[0].clone()];
        assert!((inst.radius_of(&centers) - 10.0).abs() < 1e-12);
        let centers2 = vec![pts[0].clone(), pts[1].clone()];
        assert!((inst.radius_of(&centers2) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn radius_of_empty_center_set() {
        let pts = pts1d(&[(0.0, 0)]);
        let inst = Instance::new(&Euclidean, &pts, &[1]);
        assert_eq!(inst.radius_of(&[]), f64::INFINITY);
    }

    #[test]
    fn fairness_check() {
        let pts = pts1d(&[(0.0, 0), (1.0, 0), (2.0, 1)]);
        let inst = Instance::new(&Euclidean, &pts, &[1, 2]);
        assert!(inst.is_fair(&[pts[0].clone(), pts[2].clone()]));
        assert!(!inst.is_fair(&[pts[0].clone(), pts[1].clone()]));
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        let pts = pts1d(&[]);
        let inst = Instance::new(&Euclidean, &pts, &[1]);
        assert_eq!(validate(&inst), Err(SolveError::EmptyInstance));
        let pts = pts1d(&[(0.0, 0)]);
        let inst = Instance::new(&Euclidean, &pts, &[0, 1]);
        assert_eq!(validate(&inst), Err(SolveError::BadBudgets));
    }

    #[test]
    fn k_and_colors() {
        let pts = pts1d(&[(0.0, 0)]);
        let inst = Instance::new(&Euclidean, &pts, &[2, 3, 1]);
        assert_eq!(inst.k(), 6);
        assert_eq!(inst.num_colors(), 3);
    }
}

//! A matching-free greedy-swap baseline in the spirit of Kleindessner,
//! Awasthi and Morgenstern ("Fair k-center clustering for data
//! summarization", ICML 2019, reference \[12\] of the paper).
//!
//! The original algorithm achieves a `(3·2^{ℓ-1} − 1)`-approximation in
//! time linear in `n` and `k` by greedily picking farthest points and
//! recursively repairing budget violations. We implement the same
//! ingredients — a Gonzalez sweep followed by local color repairs without
//! any matching machinery — and inherit its character: much cheaper than
//! matching-based solvers, with a weaker (exponential-in-ℓ) guarantee.
//! The paper under reproduction cites this algorithm as related work but
//! benchmarks Jones instead; we keep it as an ablation baseline.
//!
//! Repair rule: process pivots in selection order; a pivot keeps its own
//! color while the budget lasts, otherwise it is *swapped* for the nearest
//! point (preferring its own cluster) whose color still has budget. If no
//! budgeted color exists anywhere, the pivot is dropped (the remaining
//! pivots still cover the data within twice the Gonzalez radius of the
//! shorter prefix).

use crate::{gonzalez, validate, FairCenterSolver, FairSolution, Instance, SolveError};
use fairsw_metric::{Colored, Metric};

/// The greedy-swap fair-center baseline (exponential-in-ℓ guarantee,
/// matching-free, fastest of the sequential solvers).
#[derive(Clone, Copy, Debug, Default)]
pub struct Kleindessner;

impl Kleindessner {
    /// Creates a new solver.
    pub fn new() -> Self {
        Kleindessner
    }
}

impl<M: Metric> FairCenterSolver<M> for Kleindessner {
    fn name(&self) -> &'static str {
        "Kleindessner"
    }

    fn solve(&self, inst: &Instance<'_, M>) -> Result<FairSolution<M::Point>, SolveError> {
        validate(inst)?;
        let k = inst.k();
        let raw: Vec<M::Point> = inst.points.iter().map(|c| c.point.clone()).collect();
        let g = gonzalez(inst.metric, &raw, k);

        let mut remaining: Vec<usize> = inst.caps.to_vec();
        let mut chosen: Vec<usize> = Vec::with_capacity(g.pivots.len());
        let mut used = vec![false; inst.points.len()];

        for (pi, &pividx) in g.pivots.iter().enumerate() {
            let own_color = inst.points[pividx].color as usize;
            if remaining[own_color] > 0 && !used[pividx] {
                remaining[own_color] -= 1;
                used[pividx] = true;
                chosen.push(pividx);
                continue;
            }
            // Swap: nearest unused point with budgeted color, preferring
            // the pivot's own cluster.
            let pivot = &inst.points[pividx].point;
            let mut best: Option<(bool, f64, usize)> = None; // (in_cluster, dist, idx)
            for (qi, q) in inst.points.iter().enumerate() {
                if used[qi] || remaining[q.color as usize] == 0 {
                    continue;
                }
                let d = inst.metric.dist(pivot, &q.point);
                let in_cluster = g.assignment[qi] == pi;
                let cand = (in_cluster, d, qi);
                let better = match &best {
                    None => true,
                    // Prefer in-cluster; among equals, smaller distance.
                    Some((bc, bd, _)) => (cand.0 && !bc) || (cand.0 == *bc && d < *bd),
                };
                if better {
                    best = Some(cand);
                }
            }
            if let Some((_, _, qi)) = best {
                remaining[inst.points[qi].color as usize] -= 1;
                used[qi] = true;
                chosen.push(qi);
            }
            // else: budgets exhausted everywhere; drop this pivot.
        }

        let centers: Vec<Colored<M::Point>> =
            chosen.into_iter().map(|i| inst.points[i].clone()).collect();
        if centers.is_empty() {
            return Err(SolveError::EmptyInstance);
        }
        let radius = inst.radius_of(&centers);
        Ok(FairSolution { centers, radius })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{pts1d, scatter};
    use fairsw_metric::Euclidean;

    #[test]
    fn keeps_own_colors_when_budgeted() {
        let pts = pts1d(&[(0.0, 0), (100.0, 1)]);
        let inst = Instance::new(&Euclidean, &pts, &[1, 1]);
        let sol = Kleindessner.solve(&inst).unwrap();
        assert_eq!(sol.centers.len(), 2);
        assert!(sol.radius <= 1e-12);
    }

    #[test]
    fn swaps_on_budget_exhaustion() {
        // Three far clusters all headed by color 0, budget 1: two pivots
        // must swap to the nearby color-1 points.
        let pts = pts1d(&[
            (0.0, 0),
            (0.5, 1),
            (100.0, 0),
            (100.5, 1),
            (200.0, 0),
            (200.5, 1),
        ]);
        let inst = Instance::new(&Euclidean, &pts, &[1, 2]);
        let sol = Kleindessner.solve(&inst).unwrap();
        assert!(inst.is_fair(&sol.centers));
        assert!(sol.radius <= 1.0, "radius {}", sol.radius);
    }

    #[test]
    fn drops_pivots_when_everything_exhausted() {
        // k = 1 but three far apart points: only one center possible.
        let pts = pts1d(&[(0.0, 0), (100.0, 0), (200.0, 0)]);
        let inst = Instance::new(&Euclidean, &pts, &[1]);
        let sol = Kleindessner.solve(&inst).unwrap();
        assert_eq!(sol.centers.len(), 1);
        assert!(inst.is_fair(&sol.centers));
    }

    #[test]
    fn fair_on_scatter() {
        let pts = scatter(200, 3, 4);
        let caps = [1usize, 2, 1, 2];
        let inst = Instance::new(&Euclidean, &pts, &caps);
        let sol = Kleindessner.solve(&inst).unwrap();
        assert!(inst.is_fair(&sol.centers));
        assert!(sol.radius.is_finite());
    }
}

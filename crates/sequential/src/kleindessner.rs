//! A matching-free greedy-swap baseline in the spirit of Kleindessner,
//! Awasthi and Morgenstern ("Fair k-center clustering for data
//! summarization", ICML 2019, reference \[12\] of the paper).
//!
//! The original algorithm achieves a `(3·2^{ℓ-1} − 1)`-approximation in
//! time linear in `n` and `k` by greedily picking farthest points and
//! recursively repairing budget violations. We implement the same
//! ingredients — a Gonzalez sweep followed by local color repairs without
//! any matching machinery — and inherit its character: much cheaper than
//! matching-based solvers, with a weaker (exponential-in-ℓ) guarantee.
//! The paper under reproduction cites this algorithm as related work but
//! benchmarks Jones instead; we keep it as an ablation baseline.
//!
//! Repair rule: process pivots in selection order; a pivot keeps its own
//! color while the budget lasts, otherwise it is *swapped* for the nearest
//! point (preferring its own cluster) whose color still has budget. If no
//! budgeted color exists anywhere, the pivot is dropped (the remaining
//! pivots still cover the data within twice the Gonzalez radius of the
//! shorter prefix).

use crate::{gonzalez_view, validate, FairCenterSolver, FairSolution, Instance, SolveError};
use fairsw_metric::{Colored, CoresetView, Metric};

/// The greedy-swap fair-center baseline (exponential-in-ℓ guarantee,
/// matching-free, fastest of the sequential solvers).
#[derive(Clone, Copy, Debug, Default)]
pub struct Kleindessner;

impl Kleindessner {
    /// Creates a new solver.
    pub fn new() -> Self {
        Kleindessner
    }
}

impl Kleindessner {
    /// The algorithm proper, over an already-staged view (points +
    /// colors). Both trait entry points land here: `solve` stages the
    /// instance slice, `solve_ids` gathers straight out of the arena —
    /// every candidate distance flows through the batched kernels.
    fn solve_on_view<M: Metric>(
        &self,
        metric: &M,
        view: &CoresetView<M::Point>,
        caps: &[usize],
    ) -> Result<FairSolution<M::Point>, SolveError> {
        if view.is_empty() {
            return Err(SolveError::EmptyInstance);
        }
        if caps.is_empty() || caps.contains(&0) {
            return Err(SolveError::BadBudgets);
        }
        let k: usize = caps.iter().sum();
        let colors = view.colors();
        debug_assert!(
            colors.iter().all(|&c| (c as usize) < caps.len()),
            "point color out of range"
        );
        let g = gonzalez_view(metric, view, k);

        let mut remaining: Vec<usize> = caps.to_vec();
        let mut chosen: Vec<usize> = Vec::with_capacity(g.pivots.len());
        let mut used = vec![false; view.len()];
        let mut dbuf = vec![0.0f64; view.len()];

        for (pi, &pividx) in g.pivots.iter().enumerate() {
            let own_color = colors[pividx] as usize;
            if remaining[own_color] > 0 && !used[pividx] {
                remaining[own_color] -= 1;
                used[pividx] = true;
                chosen.push(pividx);
                continue;
            }
            // Swap: nearest unused point with budgeted color, preferring
            // the pivot's own cluster. One kernel call per swap, same
            // candidate order and tie-breaks as the pointwise scan.
            metric.dist_one_to_many(view.point(pividx), view, &mut dbuf);
            let mut best: Option<(bool, f64, usize)> = None; // (in_cluster, dist, idx)
            for (qi, &color) in colors.iter().enumerate() {
                if used[qi] || remaining[color as usize] == 0 {
                    continue;
                }
                let d = dbuf[qi];
                let in_cluster = g.assignment[qi] == pi;
                let cand = (in_cluster, d, qi);
                let better = match &best {
                    None => true,
                    // Prefer in-cluster; among equals, smaller distance.
                    Some((bc, bd, _)) => (cand.0 && !bc) || (cand.0 == *bc && d < *bd),
                };
                if better {
                    best = Some(cand);
                }
            }
            if let Some((_, _, qi)) = best {
                remaining[colors[qi] as usize] -= 1;
                used[qi] = true;
                chosen.push(qi);
            }
            // else: budgets exhausted everywhere; drop this pivot.
        }

        let centers: Vec<Colored<M::Point>> = chosen
            .into_iter()
            .map(|i| Colored::new(view.point(i).clone(), colors[i]))
            .collect();
        if centers.is_empty() {
            return Err(SolveError::EmptyInstance);
        }
        // Radius over the already-staged view — no re-gather.
        let mut mind = Vec::new();
        crate::min_over_centers(
            metric,
            view,
            centers.iter().map(|c| &c.point),
            &mut dbuf,
            &mut mind,
        );
        let mut radius: f64 = 0.0;
        for &d in &mind {
            if d > radius {
                radius = d;
            }
        }
        Ok(FairSolution { centers, radius })
    }
}

impl<M: Metric> FairCenterSolver<M> for Kleindessner {
    fn name(&self) -> &'static str {
        "Kleindessner"
    }

    fn solve(&self, inst: &Instance<'_, M>) -> Result<FairSolution<M::Point>, SolveError> {
        validate(inst)?;
        let mut view = CoresetView::new();
        view.gather_colored(inst.metric, inst.points.iter());
        self.solve_on_view(inst.metric, &view, inst.caps)
    }

    /// Gathers the coreset straight out of the arena into a staged view
    /// — one resolver pass, no intermediate `Vec<Colored<_>>` — and
    /// solves on it.
    fn solve_ids(
        &self,
        metric: &M,
        res: fairsw_metric::Resolver<'_, M::Point>,
        ids: &[fairsw_metric::ColoredId],
        caps: &[usize],
    ) -> Result<FairSolution<M::Point>, SolveError> {
        let mut view = CoresetView::new();
        view.gather_colored_ids(metric, res, ids.iter().copied());
        self.solve_on_view(metric, &view, caps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{pts1d, scatter};
    use fairsw_metric::Euclidean;

    #[test]
    fn keeps_own_colors_when_budgeted() {
        let pts = pts1d(&[(0.0, 0), (100.0, 1)]);
        let inst = Instance::new(&Euclidean, &pts, &[1, 1]);
        let sol = Kleindessner.solve(&inst).unwrap();
        assert_eq!(sol.centers.len(), 2);
        assert!(sol.radius <= 1e-12);
    }

    #[test]
    fn swaps_on_budget_exhaustion() {
        // Three far clusters all headed by color 0, budget 1: two pivots
        // must swap to the nearby color-1 points.
        let pts = pts1d(&[
            (0.0, 0),
            (0.5, 1),
            (100.0, 0),
            (100.5, 1),
            (200.0, 0),
            (200.5, 1),
        ]);
        let inst = Instance::new(&Euclidean, &pts, &[1, 2]);
        let sol = Kleindessner.solve(&inst).unwrap();
        assert!(inst.is_fair(&sol.centers));
        assert!(sol.radius <= 1.0, "radius {}", sol.radius);
    }

    #[test]
    fn drops_pivots_when_everything_exhausted() {
        // k = 1 but three far apart points: only one center possible.
        let pts = pts1d(&[(0.0, 0), (100.0, 0), (200.0, 0)]);
        let inst = Instance::new(&Euclidean, &pts, &[1]);
        let sol = Kleindessner.solve(&inst).unwrap();
        assert_eq!(sol.centers.len(), 1);
        assert!(inst.is_fair(&sol.centers));
    }

    #[test]
    fn fair_on_scatter() {
        let pts = scatter(200, 3, 4);
        let caps = [1usize, 2, 1, 2];
        let inst = Instance::new(&Euclidean, &pts, &caps);
        let sol = Kleindessner.solve(&inst).unwrap();
        assert!(inst.is_fair(&sol.centers));
        assert!(sol.radius.is_finite());
    }
}

//! Robust (outlier-tolerant) center selection — the paper's declared
//! future work ("the extension of our algorithms to the robust variant of
//! fair center, tolerating a fixed number of outliers").
//!
//! Two solvers:
//!
//! * [`robust_kcenter`] — unconstrained k-center with `z` outliers, the
//!   classical greedy of Charikar–Khuller–Mount–Narasimhan (SODA 2001):
//!   for a radius guess `r`, repeatedly pick the point whose `r`-ball
//!   covers the most uncovered points and mark its expanded `3r`-ball
//!   covered; after `k` picks, `r` is feasible iff at most `z` points
//!   remain. The CKMN lemma guarantees feasibility for **every**
//!   `r ≥ OPT_z`, so binary search over the pairwise distances never
//!   overshoots the first candidate above `OPT_z` and the result is a
//!   3-approximation of the optimal radius excluding the `z` worst
//!   points.
//! * [`RobustFair`] — fair center with `z` outliers, structured like the
//!   Jones algorithm so that each search stage is *monotone* (a naive
//!   joint radius search is not — the color matching can fail on a band
//!   of mid-range radii while succeeding below and above it):
//!   1. heads and outliers come from `robust_kcenter` (sound by CKMN);
//!   2. a second binary search finds the smallest threshold `τ` such
//!      that heads admit a perfect capacitated color matching using
//!      *inlier* witnesses within `τ` of each head — the adjacency grows
//!      with `τ`, so perfect-matching feasibility is monotone;
//!   3. each head is replaced by its matched witness. Inliers covered
//!      within `3r` of a head are then within `3r + τ` of a center.
//!
//! If even `τ = ∞` admits no perfect matching (a color class is absent
//! among the inliers), unmatched heads are dropped: the answer stays
//! fair and feasible, with coverage degrading gracefully. Fairness is
//! exact and at most `z` points are excluded; the radius guarantee is
//! bicriteria in the spirit of Amagata (AISTATS 2024) — the
//! exact-constant LP machinery is out of scope and flagged in DESIGN.md.

use crate::{validate, FairCenterSolver, FairSolution, Instance, SolveError};
use fairsw_matching::max_capacitated_matching;
use fairsw_metric::{Colored, CoresetView, Metric};

/// Result of a robust (outlier-tolerant) clustering call.
#[derive(Clone, Debug)]
pub struct RobustSolution<P> {
    /// The selected centers.
    pub centers: Vec<Colored<P>>,
    /// The covering radius over the *inliers* (all points except the
    /// `outliers` listed below).
    pub radius: f64,
    /// Indices (into the instance's points) the solution declares
    /// outliers; at most the requested `z`.
    pub outliers: Vec<usize>,
}

/// For a radius guess `r`: greedy max-coverage disk selection over a
/// staged view. Returns (head indices, uncovered indices) where heads
/// are chosen by `r`-ball coverage counts and coverage expands to `3r`
/// balls. Selection is identical to the pointwise scan; per round each
/// candidate's coverage count is evaluated either as one kernel row or
/// — once most points are covered — as scalar distances to just the
/// uncovered set (the batched analog of the old `!covered` short
/// circuit). `dbuf` is caller-owned working space (one slot per point).
fn greedy_disks<M: Metric>(
    metric: &M,
    view: &CoresetView<M::Point>,
    k: usize,
    r: f64,
    dbuf: &mut Vec<f64>,
) -> (Vec<usize>, Vec<usize>) {
    let n = view.len();
    let mut covered = vec![false; n];
    let mut heads = Vec::with_capacity(k);
    let mut uncovered: Vec<usize> = (0..n).collect();
    dbuf.clear();
    dbuf.resize(n, 0.0);
    for _ in 0..k {
        // Pick the point whose r-ball covers the most uncovered points.
        // A full kernel row per candidate only pays while a decent
        // fraction of points is still uncovered; past that, scalar
        // distances to the uncovered set cost strictly less.
        let dense = uncovered.len() * 4 >= n;
        let mut best = (usize::MAX, 0usize);
        for i in 0..n {
            let cnt = if dense {
                metric.dist_one_to_many(view.point(i), view, dbuf);
                uncovered.iter().filter(|&&j| dbuf[j] <= r).count()
            } else {
                let p = view.point(i);
                uncovered
                    .iter()
                    .filter(|&&j| metric.dist(p, view.point(j)) <= r)
                    .count()
            };
            if best.0 == usize::MAX || cnt > best.1 {
                best = (i, cnt);
            }
        }
        let (head, gain) = best;
        if gain == 0 {
            break; // every remaining point is isolated beyond r
        }
        heads.push(head);
        // Expanded ball: mark everything within 3r of the head covered.
        metric.dist_one_to_many(view.point(head), view, dbuf);
        uncovered.retain(|&j| {
            let keep = dbuf[j] > 3.0 * r;
            if !keep {
                covered[j] = true;
            }
            keep
        });
    }
    (heads, uncovered)
}

/// Unconstrained k-center with `z` outliers (Charikar et al. greedy,
/// 3-approximation). Returns the chosen center indices, the radius over
/// the inliers, and the declared outliers.
///
/// # Panics
/// Panics on an empty input (callers check emptiness; for the library
/// entry point use [`RobustFair`] which returns a `SolveError`).
pub fn robust_kcenter<M: Metric>(
    metric: &M,
    points: &[Colored<M::Point>],
    k: usize,
    z: usize,
) -> RobustSolution<M::Point> {
    assert!(!points.is_empty(), "robust_kcenter on empty input");
    let mut view = CoresetView::new();
    view.gather_colored(metric, points.iter());
    let (heads, outliers, _) = robust_heads(metric, &view, k, z);
    let centers: Vec<Colored<M::Point>> = heads.iter().map(|&i| points[i].clone()).collect();
    let radius = inlier_radius(metric, &view, &centers, &outliers);
    RobustSolution {
        centers,
        radius,
        outliers,
    }
}

/// The shared head-selection stage over a staged view: binary search the
/// smallest feasible radius, returning (heads, outliers, radius).
fn robust_heads<M: Metric>(
    metric: &M,
    view: &CoresetView<M::Point>,
    k: usize,
    z: usize,
) -> (Vec<usize>, Vec<usize>, f64) {
    let n = view.len();
    let mut cands = vec![0.0f64];
    let mut dbuf = vec![0.0f64; n];
    for i in 0..n {
        metric.dist_one_to_many(view.point(i), view, &mut dbuf);
        cands.extend_from_slice(&dbuf[(i + 1)..]);
    }
    cands.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    cands.dedup();

    // The probe buffer is shared across every feasibility test.
    let mut feasible = |r: f64| -> Option<(Vec<usize>, Vec<usize>)> {
        let (heads, uncovered) = greedy_disks(metric, view, k, r, &mut dbuf);
        (uncovered.len() <= z).then_some((heads, uncovered))
    };

    let (mut lo, mut hi) = (0usize, cands.len() - 1);
    debug_assert!(feasible(cands[hi]).is_some(), "r = dmax must be feasible");
    while lo < hi {
        let mid = (lo + hi) / 2;
        if feasible(cands[mid]).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let (heads, outliers) = feasible(cands[lo]).expect("lo feasible");
    (heads, outliers, cands[lo])
}

/// Covering radius over the staged points not listed in `outliers`: one
/// kernel call per center merged into running minima, then a maximum
/// over the inlier rows.
fn inlier_radius<M: Metric>(
    metric: &M,
    view: &CoresetView<M::Point>,
    centers: &[Colored<M::Point>],
    outliers: &[usize],
) -> f64 {
    let out: std::collections::HashSet<usize> = outliers.iter().copied().collect();
    let (mut dbuf, mut mind) = (Vec::new(), Vec::new());
    crate::min_over_centers(
        metric,
        view,
        centers.iter().map(|c| &c.point),
        &mut dbuf,
        &mut mind,
    );
    let mut r: f64 = 0.0;
    for (i, &d) in mind.iter().enumerate() {
        if out.contains(&i) {
            continue;
        }
        if d > r {
            r = d;
        }
    }
    r
}

/// Fair center with `z` outliers (robust heads + monotone color-matching
/// threshold search).
#[derive(Clone, Copy, Debug)]
pub struct RobustFair {
    /// Number of tolerated outliers.
    pub z: usize,
}

impl RobustFair {
    /// Creates a solver tolerating `z` outliers.
    pub fn new(z: usize) -> Self {
        RobustFair { z }
    }

    /// [`solve_robust`](Self::solve_robust) over colored arena handles —
    /// the sliding-window `Query` entry point. Payloads are resolved out
    /// of the point store once, here; the returned outlier indices still
    /// index into `ids`.
    pub fn solve_robust_ids<M: Metric>(
        &self,
        metric: &M,
        res: fairsw_metric::Resolver<'_, M::Point>,
        ids: &[fairsw_metric::ColoredId],
        caps: &[usize],
    ) -> Result<RobustSolution<M::Point>, SolveError> {
        let points: Vec<Colored<M::Point>> = ids
            .iter()
            .map(|c| Colored::new(res.get(c.point).clone(), c.color))
            .collect();
        self.solve_robust(&Instance::new(metric, &points, caps))
    }

    /// Solves the robust fair instance, reporting centers, inlier radius
    /// and the declared outliers.
    pub fn solve_robust<M: Metric>(
        &self,
        inst: &Instance<'_, M>,
    ) -> Result<RobustSolution<M::Point>, SolveError> {
        validate(inst)?;
        let k = inst.k();
        let ncolors = inst.num_colors();
        // Stage the instance once; head selection, witness tables and
        // the inlier radius all run batched kernels over this view.
        let mut view = CoresetView::new();
        view.gather_colored(inst.metric, inst.points.iter());

        // Stage 1: robust heads + outliers (CKMN, sound binary search).
        let (heads, outliers, _r) = robust_heads(inst.metric, &view, k, self.z);
        if heads.is_empty() {
            // Degenerate: k = 0 or everything isolated; one center
            // (first point) is the best fair answer available here.
            return Ok(RobustSolution {
                centers: vec![inst.points[0].clone()],
                radius: inst.radius_of(std::slice::from_ref(&inst.points[0])),
                outliers: Vec::new(),
            });
        }
        let out_set: std::collections::HashSet<usize> = outliers.iter().copied().collect();

        // Stage 2: nearest *inlier* witness of each color per head —
        // one kernel call per head, outliers skipped in the merge, with
        // the scalar scan's ascending-index tie-break per (head, color).
        let mut mind = vec![vec![(f64::INFINITY, usize::MAX); ncolors]; heads.len()];
        let mut dbuf = vec![0.0f64; view.len()];
        for (hi, &h) in heads.iter().enumerate() {
            inst.metric
                .dist_one_to_many(view.point(h), &view, &mut dbuf);
            for (qi, q) in inst.points.iter().enumerate() {
                if out_set.contains(&qi) {
                    continue;
                }
                let d = dbuf[qi];
                let slot = &mut mind[hi][q.color as usize];
                if d < slot.0 {
                    *slot = (d, qi);
                }
            }
        }

        // Candidate thresholds; perfect matching is monotone in τ.
        let mut taus: Vec<f64> = mind
            .iter()
            .flat_map(|row| row.iter().map(|&(d, _)| d))
            .filter(|d| d.is_finite())
            .collect();
        taus.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        taus.dedup();

        let matching_at = |tau: f64| {
            let adj: Vec<Vec<usize>> = mind
                .iter()
                .map(|row| {
                    row.iter()
                        .enumerate()
                        .filter(|(_, &(d, _))| d <= tau)
                        .map(|(c, _)| c)
                        .collect()
                })
                .collect();
            max_capacitated_matching(inst.caps, &adj)
        };

        let assignment = if taus.is_empty() {
            None
        } else if matching_at(*taus.last().expect("non-empty")).is_left_perfect() {
            let (mut lo, mut hi) = (0usize, taus.len() - 1);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if matching_at(taus[mid]).is_left_perfect() {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            Some(matching_at(taus[lo]))
        } else {
            None
        };

        // Stage 3: replace heads by witnesses; drop unmatched heads when
        // no perfect matching exists at any threshold.
        let matching =
            assignment.unwrap_or_else(|| matching_at(taus.last().copied().unwrap_or(0.0)));
        let mut seen = std::collections::HashSet::new();
        let centers: Vec<Colored<M::Point>> = matching
            .assigned
            .iter()
            .enumerate()
            .filter_map(|(h, a)| a.map(|c| mind[h][c].1))
            .filter(|&w| w != usize::MAX && seen.insert(w))
            .map(|w| inst.points[w].clone())
            .collect();
        if centers.is_empty() {
            // All inlier colors missing (everything is an outlier?):
            // return the first point, declaring no outliers.
            return Ok(RobustSolution {
                centers: vec![inst.points[0].clone()],
                radius: inst.radius_of(std::slice::from_ref(&inst.points[0])),
                outliers: Vec::new(),
            });
        }
        let radius = inlier_radius(inst.metric, &view, &centers, &outliers);
        Ok(RobustSolution {
            centers,
            radius,
            outliers,
        })
    }
}

impl<M: Metric> FairCenterSolver<M> for RobustFair {
    fn name(&self) -> &'static str {
        "RobustFair"
    }

    /// Solves and reports the *inlier* radius (the `FairSolution` shape
    /// has no outlier slot; use [`RobustFair::solve_robust`] for them).
    fn solve(&self, inst: &Instance<'_, M>) -> Result<FairSolution<M::Point>, SolveError> {
        let sol = self.solve_robust(inst)?;
        Ok(FairSolution {
            centers: sol.centers,
            radius: sol.radius,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::pts1d;
    use fairsw_metric::Euclidean;

    #[test]
    fn robust_kcenter_ignores_planted_outliers() {
        // Two tight clusters plus 2 far outliers. k=2, z=2: the radius
        // must reflect the clusters (1.0), not the outliers.
        let pts = pts1d(&[
            (0.0, 0),
            (1.0, 0),
            (100.0, 0),
            (101.0, 0),
            (1e6, 0),
            (-1e6, 0),
        ]);
        let sol = robust_kcenter(&Euclidean, &pts, 2, 2);
        assert!(sol.radius <= 3.0, "radius {}", sol.radius);
        assert!(sol.outliers.len() <= 2);
        // Without outlier tolerance the radius explodes.
        let strict = robust_kcenter(&Euclidean, &pts, 2, 0);
        assert!(strict.radius > 1e5);
    }

    #[test]
    fn robust_kcenter_zero_z_equals_plain_flavor() {
        let pts = pts1d(&[(0.0, 0), (10.0, 0), (20.0, 0)]);
        let sol = robust_kcenter(&Euclidean, &pts, 3, 0);
        assert_eq!(sol.radius, 0.0);
        assert!(sol.outliers.is_empty());
    }

    #[test]
    fn robust_fair_respects_budgets_and_drops_outliers() {
        // Clusters: color 0 at ~0, color 1 at ~100; outlier far away.
        let pts = pts1d(&[
            (0.0, 0),
            (0.5, 0),
            (1.0, 1),
            (100.0, 1),
            (100.5, 1),
            (101.0, 0),
            (5e5, 0),
        ]);
        let caps = [1usize, 1];
        let inst = Instance::new(&Euclidean, &pts, &caps);
        let sol = RobustFair::new(1).solve_robust(&inst).unwrap();
        assert!(inst.is_fair(&sol.centers), "unfair robust solution");
        assert!(sol.outliers.len() <= 1);
        assert!(sol.radius <= 3.5, "radius {}", sol.radius);
    }

    #[test]
    fn robust_fair_survives_mid_band_matching_failures() {
        // The regression that motivated the two-stage design: two
        // single-color sites plus a far glitch cluster whose points
        // alternate colors. A joint radius search gets stuck above the
        // glitch spacing; the two-stage solver must return the site
        // geometry (radius ≈ site spread, not ≈ glitch spacing).
        let mut pts = Vec::new();
        for i in 0..40u64 {
            let c = (i % 2) as u32;
            let base = if c == 0 { 0.0 } else { 120.0 };
            pts.push(fairsw_metric::Colored::new(
                fairsw_metric::EuclidPoint::new(vec![base + (i as f64 * 0.618).fract() * 5.0, 0.0]),
                c,
            ));
        }
        for g in 0..9u64 {
            pts.push(fairsw_metric::Colored::new(
                fairsw_metric::EuclidPoint::new(vec![9e5 + 211.0 * g as f64, -7e5]),
                (g % 2) as u32,
            ));
        }
        let caps = [2usize, 2];
        let inst = Instance::new(&Euclidean, &pts, &caps);
        let sol = RobustFair::new(12).solve_robust(&inst).unwrap();
        assert!(inst.is_fair(&sol.centers));
        assert!(
            sol.radius <= 20.0,
            "mid-band failure: radius {} should reflect the 5-wide sites",
            sol.radius
        );
    }

    #[test]
    fn robust_fair_zero_outliers_close_to_jones() {
        let pts = crate::testutil::scatter(80, 2, 3);
        let caps = [2usize, 1, 1];
        let inst = Instance::new(&Euclidean, &pts, &caps);
        let robust = RobustFair::new(0).solve_robust(&inst).unwrap();
        let jones = crate::Jones.solve(&inst).unwrap();
        assert!(inst.is_fair(&robust.centers));
        // Both are constant-factor approximations of the same optimum.
        assert!(robust.radius <= 4.0 * jones.radius + 1e-9);
        assert!(jones.radius <= 4.0 * robust.radius + 1e-9);
    }

    #[test]
    fn robust_fair_via_trait() {
        let pts = pts1d(&[(0.0, 0), (1.0, 1), (2.0, 0), (1e4, 1)]);
        let caps = [1usize, 1];
        let inst = Instance::new(&Euclidean, &pts, &caps);
        let sol =
            <RobustFair as FairCenterSolver<Euclidean>>::solve(&RobustFair::new(1), &inst).unwrap();
        assert!(inst.is_fair(&sol.centers));
        assert!(sol.radius <= 2.0, "inlier radius {}", sol.radius);
    }

    #[test]
    fn missing_color_class_degrades_gracefully() {
        // Budgets for two colors but only color 0 exists: unmatched heads
        // are dropped; the result is fair and non-empty.
        let pts = pts1d(&[(0.0, 0), (50.0, 0), (100.0, 0)]);
        let caps = [1usize, 2];
        let inst = Instance::new(&Euclidean, &pts, &caps);
        let sol = RobustFair::new(0).solve_robust(&inst).unwrap();
        assert!(!sol.centers.is_empty());
        assert!(inst.is_fair(&sol.centers));
    }

    #[test]
    fn empty_instance_errors() {
        let pts = pts1d(&[]);
        let inst = Instance::new(&Euclidean, &pts, &[1]);
        assert!(RobustFair::new(1).solve_robust(&inst).is_err());
    }
}

//! Gonzalez's greedy farthest-point algorithm for unconstrained k-center
//! (Gonzalez, TCS 1985) — a 2-approximation in `O(nk)` time.
//!
//! Besides being the classical baseline, the full *pivot sequence* with
//! its coverage radii is the backbone of the Jones fair-center algorithm
//! (prefixes of the sequence are candidate head sets) and of the paper's
//! `Query` validation step (a greedy 2γ-packing is a Gonzalez run with an
//! early exit).

use fairsw_metric::{CoresetView, Metric};

/// Output of a Gonzalez run.
#[derive(Clone, Debug)]
pub struct GonzalezResult {
    /// Indices of the selected pivots, in selection order.
    pub pivots: Vec<usize>,
    /// `coverage[j]` = the maximum distance of any point to the first
    /// `j+1` pivots, i.e. the clustering radius of the prefix
    /// `pivots[..=j]`. Non-increasing.
    pub coverage: Vec<f64>,
    /// For each point, the index (into `pivots`) of its closest pivot.
    pub assignment: Vec<usize>,
}

impl GonzalezResult {
    /// The clustering radius of the full pivot set.
    pub fn radius(&self) -> f64 {
        self.coverage.last().copied().unwrap_or(0.0)
    }
}

/// Runs Gonzalez's algorithm for `k` centers over `points`, starting from
/// index 0 (deterministic). Returns fewer than `k` pivots when the input
/// has fewer points.
///
/// Stages `points` into a [`CoresetView`] and delegates to
/// [`gonzalez_view`]; callers that already hold a staged view (Jones,
/// Kleindessner) should call that entry point directly and reuse the
/// view for their own kernel calls.
pub fn gonzalez<M: Metric>(metric: &M, points: &[M::Point], k: usize) -> GonzalezResult {
    let mut view = CoresetView::new();
    view.gather(metric, points.iter());
    gonzalez_view(metric, &view, k)
}

/// [`gonzalez`] over a pre-staged view. Each round evaluates the new
/// pivot's distances to every point with one
/// [`dist_one_to_many`](Metric::dist_one_to_many) kernel call and merges
/// them into the running minima — decision-identical to the classical
/// pointwise loop.
///
/// The greedy invariant: after selecting `j` pivots the next pivot is the
/// point farthest from the current pivot set, so pivots are pairwise at
/// least `coverage[j-1]` apart, giving the classical 2-approximation.
pub fn gonzalez_view<M: Metric>(
    metric: &M,
    view: &CoresetView<M::Point>,
    k: usize,
) -> GonzalezResult {
    if view.is_empty() || k == 0 {
        return GonzalezResult {
            pivots: Vec::new(),
            coverage: Vec::new(),
            assignment: Vec::new(),
        };
    }

    let n = view.len();
    let kk = k.min(n);
    let mut pivots = Vec::with_capacity(kk);
    let mut coverage = Vec::with_capacity(kk);
    // dist[i] = distance of point i to the closest selected pivot.
    let mut dist = vec![f64::INFINITY; n];
    let mut dbuf = vec![0.0f64; n];
    let mut assignment = vec![0usize; n];

    let mut next = 0usize;
    for round in 0..kk {
        pivots.push(next);
        metric.dist_one_to_many(view.point(next), view, &mut dbuf);
        let mut far_idx = 0usize;
        let mut far_d: f64 = -1.0;
        for i in 0..n {
            if dbuf[i] < dist[i] {
                dist[i] = dbuf[i];
                assignment[i] = round;
            }
            if dist[i] > far_d {
                far_d = dist[i];
                far_idx = i;
            }
        }
        coverage.push(far_d);
        next = far_idx;
    }

    GonzalezResult {
        pivots,
        coverage,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::exact_kcenter_radius;
    use fairsw_metric::{EuclidPoint, Euclidean};
    use proptest::prelude::*;

    fn pts(vals: &[f64]) -> Vec<EuclidPoint> {
        vals.iter().map(|&v| EuclidPoint::new(vec![v])).collect()
    }

    #[test]
    fn empty_and_zero_k() {
        let r = gonzalez(&Euclidean, &pts(&[]), 3);
        assert!(r.pivots.is_empty());
        let r = gonzalez(&Euclidean, &pts(&[1.0]), 0);
        assert!(r.pivots.is_empty());
        assert_eq!(r.radius(), 0.0);
    }

    #[test]
    fn singleton() {
        let r = gonzalez(&Euclidean, &pts(&[5.0]), 3);
        assert_eq!(r.pivots, vec![0]);
        assert_eq!(r.radius(), 0.0);
    }

    #[test]
    fn two_well_separated_clusters() {
        let p = pts(&[0.0, 0.5, 1.0, 100.0, 100.5, 101.0]);
        let r = gonzalez(&Euclidean, &p, 2);
        assert_eq!(r.pivots.len(), 2);
        // One pivot per cluster; radius = 1 (cluster spread).
        assert!(r.radius() <= 1.0 + 1e-12);
        // Assignments split by cluster.
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[3], r.assignment[4]);
        assert_ne!(r.assignment[0], r.assignment[3]);
    }

    #[test]
    fn coverage_is_non_increasing() {
        let p = crate::testutil::scatter(60, 2, 1);
        let pts: Vec<EuclidPoint> = p.into_iter().map(|c| c.point).collect();
        let r = gonzalez(&Euclidean, &pts, 10);
        for w in r.coverage.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn pivots_are_pairwise_far() {
        // Pivots selected after round j are at distance >= coverage[j-1]
        // from all earlier pivots.
        let p = crate::testutil::scatter(80, 3, 1);
        let pts: Vec<EuclidPoint> = p.into_iter().map(|c| c.point).collect();
        let r = gonzalez(&Euclidean, &pts, 8);
        for j in 1..r.pivots.len() {
            for i in 0..j {
                let d = Euclidean.dist(&pts[r.pivots[i]], &pts[r.pivots[j]]);
                assert!(d + 1e-9 >= r.coverage[j - 1], "pivot {j} too close to {i}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn two_approximation(
            coords in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 2..11),
            k in 1usize..4,
        ) {
            let points: Vec<EuclidPoint> = coords
                .iter()
                .map(|&(x, y)| EuclidPoint::new(vec![x, y]))
                .collect();
            let g = gonzalez(&Euclidean, &points, k);
            let opt = exact_kcenter_radius(&Euclidean, &points, k);
            prop_assert!(
                g.radius() <= 2.0 * opt + 1e-9,
                "gonzalez {} vs opt {}", g.radius(), opt
            );
        }

        #[test]
        fn radius_matches_assignment(
            coords in proptest::collection::vec(-50.0..50.0f64, 1..30),
            k in 1usize..5,
        ) {
            let points = pts(&coords);
            let g = gonzalez(&Euclidean, &points, k);
            // Recompute radius from assignment; must equal coverage.last().
            let mut r: f64 = 0.0;
            for (i, &a) in g.assignment.iter().enumerate() {
                let d = Euclidean.dist(&points[i], &points[g.pivots[a]]);
                if d > r { r = d; }
            }
            // Assignment maps to the closest pivot, so r == radius.
            prop_assert!((r - g.radius()).abs() < 1e-9);
        }
    }
}

//! The main sliding-window algorithm ("Ours" in the paper's experiments):
//! a fixed guess lattice spanning the stream's `[dmin, dmax]`, one
//! [`GuessState`] per guess, `Update` on every arrival and `Query` on
//! demand.
//!
//! Each arriving point is interned once in the algorithm's shared
//! [`PointStore`](fairsw_metric::PointStore) arena; the per-guess
//! structures hold 8-byte handles, and the query path resolves payloads
//! only at solution-assembly time (the `guess_set` module documents the
//! arrival protocol).

use crate::api::{MemoryStats, QueryError, SlidingWindowClustering, Solution, SolutionExtras};
use crate::config::{validate_scale, ConfigError, FairSWConfig};
use crate::guess::{Budgets, GuessState};
use crate::guess_set::GuessSet;
use crate::memo::{prefix_for, QueryMemo};
use crate::parallel::{Exec, ParallelismSpec};
use fairsw_metric::{packing_scan, Colored, ColoredId, DistScratch, Metric, Resolver, ScratchPool};
use fairsw_sequential::{FairCenterSolver, Jones};
use fairsw_stream::Lattice;

/// The per-algorithm pool of reusable distance-staging buffers: query
/// shards check a [`DistScratch`] out for their chunk of the guess scan
/// and return it, so steady-state queries gather and stage coresets
/// without allocating. Never semantic state — clones start empty,
/// snapshots skip it.
pub(crate) type QueryScratch<P> = ScratchPool<DistScratch<P>>;

/// The sliding-window fair-center algorithm with a fixed guess range
/// (requires `dmin`/`dmax` of the stream up front; see
/// [`ObliviousFairSlidingWindow`](crate::ObliviousFairSlidingWindow) for
/// the estimate-as-you-go variant).
#[derive(Clone, Debug)]
pub struct FairSlidingWindow<M: Metric> {
    pub(crate) metric: M,
    pub(crate) cfg: FairSWConfig,
    pub(crate) k: usize,
    pub(crate) lattice: Lattice,
    pub(crate) set: GuessSet<GuessState, M::Point>,
    pub(crate) t: u64,
    pub(crate) exec: Exec,
    pub(crate) scratch: QueryScratch<M::Point>,
    pub(crate) memo: QueryMemo<M::Point>,
}

impl<M: Metric> FairSlidingWindow<M> {
    /// Creates the algorithm for a stream whose pairwise distances fall in
    /// `[dmin, dmax]`. The guess lattice is
    /// `Γ = {(1+β)^i : ⌊log dmin⌋ ≤ i ≤ ⌈log dmax⌉}` exactly as in the
    /// paper.
    pub fn new(cfg: FairSWConfig, metric: M, dmin: f64, dmax: f64) -> Result<Self, ConfigError> {
        cfg.validate()?;
        validate_scale(dmin, dmax)?;
        let lattice = Lattice::new(cfg.beta);
        let span = lattice.span(dmin, dmax);
        let guesses = span
            .clone()
            .map(|lvl| GuessState::new(lattice.value(lvl)))
            .collect();
        let k = cfg.k();
        Ok(FairSlidingWindow {
            metric,
            cfg,
            k,
            lattice,
            set: GuessSet::new(guesses),
            t: 0,
            exec: Exec::default(),
            scratch: QueryScratch::default(),
            memo: QueryMemo::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &FairSWConfig {
        &self.cfg
    }

    /// Spreads per-guess work over `spec` worker threads (sequential and
    /// parallel runs are bit-identical; see [`crate::parallel`]).
    pub fn with_parallelism(mut self, spec: ParallelismSpec) -> Self {
        self.exec = Exec::new(spec);
        self
    }

    /// The effective worker-thread count (1 when sequential).
    pub fn threads(&self) -> usize {
        self.exec.threads()
    }

    /// Drops every streamed point and rebuilds empty structures from the
    /// retained configuration: same guess lattice, same budgets, same
    /// worker pool. Equivalent to (but much cheaper than) reconstructing
    /// through [`new`](Self::new) — the delete-and-recreate reuse path of
    /// multi-tenant serving layers.
    pub fn reset(&mut self) {
        let gammas: Vec<f64> = self.set.guesses.iter().map(|g| g.gamma).collect();
        self.set = GuessSet::new(gammas.into_iter().map(GuessState::new).collect());
        self.t = 0;
        self.memo.clear();
    }

    /// `Query` (Algorithm 3) with an explicit coreset solver: find the
    /// smallest guess that (a) is valid (`|AV| ≤ k`) and (b) admits a
    /// `≤ k`-point greedy `2γ`-packing of `RV`, then run `solver` on its
    /// coreset `R`. The trait-level
    /// [`query`](SlidingWindowClustering::query) uses the paper's default
    /// solver (Jones, `α = 3`).
    pub fn query_with<S>(&self, solver: &S) -> Result<Solution<M::Point>, QueryError>
    where
        S: FairCenterSolver<M> + Sync,
        M: Sync,
        M::Point: Send + Sync,
    {
        if self.t == 0 {
            return Err(QueryError::EmptyWindow);
        }
        // Skip the leading guesses a previous scan proved non-qualifying
        // at an identical `(γ, rev)` state — qualification is
        // solver-independent, so the skip is sound for any `solver`.
        let pairs: Vec<(f64, u64)> = self
            .set
            .guesses
            .iter()
            .map(|g| (g.gamma(), g.rev()))
            .collect();
        let skip = self.memo.skip_count(pairs.iter().copied());
        let guesses: Vec<(&GuessState, ())> =
            self.set.guesses[skip..].iter().map(|g| (g, ())).collect();
        let result = query_over_guesses(
            &self.exec,
            &self.scratch,
            &self.metric,
            self.set.store.resolver(),
            &guesses,
            self.k,
            &self.cfg.capacities,
            solver,
        )
        .map(|(sol, ())| sol);
        self.memo
            .record_prefix(self.t, prefix_for(pairs.iter().copied(), &result));
        result
    }

    /// Iterates the guesses (used by tests and diagnostics).
    pub fn guesses(&self) -> impl Iterator<Item = &GuessState> {
        self.set.guesses.iter()
    }

    /// A resolver over the algorithm's interned arena (resolves the
    /// handles exposed by [`guesses`](Self::guesses)).
    pub fn resolver(&self) -> Resolver<'_, M::Point> {
        self.set.store.resolver()
    }

    /// The guess lattice.
    pub fn lattice(&self) -> Lattice {
        self.lattice
    }
}

impl<M> SlidingWindowClustering<M> for FairSlidingWindow<M>
where
    M: Metric + Sync,
    M::Point: Send + Sync,
{
    /// Handles one arrival: the point is interned once, then expiry of
    /// the outgoing point plus Update on every guess (Algorithm 1) —
    /// fanned out over the worker pool when one is configured (the
    /// guesses never read each other's state; they share the arena
    /// read-only plus atomic reference counts).
    fn insert(&mut self, p: Colored<M::Point>) {
        self.t += 1;
        let t = self.t;
        let te = t.checked_sub(self.cfg.window_size as u64);
        let id = self.set.store.insert(t, p.point);
        let metric = &self.metric;
        let budgets = Budgets {
            caps: &self.cfg.capacities,
            k: self.k,
            delta: self.cfg.delta,
        };
        let res = self.set.store.resolver();
        self.exec.for_each_mut(&mut self.set.guesses, |g| {
            if let Some(te) = te {
                g.expire(res, te);
            }
            g.update(metric, res, t, id, p.color, budgets);
        });
        self.set.finish_arrival(te);
    }

    /// Batch arrivals: the whole batch is interned up front, then each
    /// guess replays it locally, so one pool dispatch amortizes the
    /// fan-out cost over the batch (the throughput path of the parallel
    /// engine). Per-guess evolution is identical to repeated
    /// [`insert`](SlidingWindowClustering::insert) because guesses are
    /// mutually independent; payloads released mid-batch are reclaimed in
    /// the epilogue, so the arena transiently holds up to one batch of
    /// extra points during the dispatch.
    fn insert_batch<I>(&mut self, batch: I)
    where
        I: IntoIterator<Item = Colored<M::Point>>,
    {
        let n = self.cfg.window_size as u64;
        let ids: Vec<ColoredId> = batch
            .into_iter()
            .enumerate()
            .map(|(j, p)| {
                let t = self.t + 1 + j as u64;
                Colored::new(self.set.store.insert(t, p.point), p.color)
            })
            .collect();
        let metric = &self.metric;
        let budgets = Budgets {
            caps: &self.cfg.capacities,
            k: self.k,
            delta: self.cfg.delta,
        };
        let res = self.set.store.resolver();
        self.t = self
            .exec
            .replay_batch(&mut self.set.guesses, &ids, self.t, n, |g, t, te, cid| {
                if let Some(te) = te {
                    g.expire(res, te);
                }
                g.update(metric, res, t, cid.point, cid.color, budgets);
            });
        self.set.finish_arrival(self.t.checked_sub(n));
    }

    /// `Query` with the paper's default solver, memoized: repeat queries
    /// at an unchanged engine time return the recorded result (inserts
    /// are the only mutation, so equal `t` means equal state).
    fn query(&self) -> Result<Solution<M::Point>, QueryError> {
        if let Some(hit) = self.memo.cached(self.t) {
            return hit;
        }
        let result = self.query_with(&Jones);
        self.memo.record_result(self.t, &result);
        result
    }

    fn time(&self) -> u64 {
        self.t
    }

    fn window_size(&self) -> usize {
        self.cfg.window_size
    }

    fn memory_stats(&self) -> MemoryStats {
        self.set.memory_stats()
    }

    fn stored_points(&self) -> usize {
        self.set.stored_points()
    }

    fn num_guesses(&self) -> usize {
        self.set.guesses.len()
    }

    /// Verifies every guess's structural invariants (test helper).
    fn check_invariants(&self) -> Result<(), String> {
        let res = self.set.store.resolver();
        for g in &self.set.guesses {
            g.check_invariants(
                &self.metric,
                res,
                self.t,
                self.cfg.window_size as u64,
                Budgets {
                    caps: &self.cfg.capacities,
                    k: self.k,
                    delta: self.cfg.delta,
                },
            )?;
        }
        Ok(())
    }
}

/// Shared Query logic: scans `(guess, tag)` pairs in ascending-γ order,
/// applies the validation packing test, and solves on the first
/// qualifying coreset. Returns the tag with the solution so callers can
/// report which guess won. Used by the fixed and oblivious variants.
///
/// Per guess, `RV` is gathered out of the arena **once** into the
/// shard's [`DistScratch`] view and the `2γ`-packing runs as a batched
/// minimum-distance scan ([`packing_scan`]) — one kernel call per packed
/// point instead of a pointwise `dist_to_set` per representative.
/// Payload copies are materialized only inside the solver's id-slice
/// entry point, at solution-assembly time.
///
/// With a parallel [`Exec`] the scan shards into contiguous chunks —
/// each checking its own scratch out of `scratch` — and the earliest
/// shard's outcome wins: exactly the guess the sequential scan selects
/// (see [`crate::parallel`] for the determinism argument).
#[allow(clippy::too_many_arguments)] // internal; mirrors the query's parameter list
pub(crate) fn query_over_guesses<M, S, T>(
    exec: &Exec,
    scratch: &QueryScratch<M::Point>,
    metric: &M,
    res: Resolver<'_, M::Point>,
    guesses: &[(&GuessState, T)],
    k: usize,
    caps: &[usize],
    solver: &S,
) -> Result<(Solution<M::Point>, T), QueryError>
where
    M: Metric + Sync,
    M::Point: Send + Sync,
    S: FairCenterSolver<M> + Sync,
    T: Copy + Send + Sync,
{
    exec.find_map_first_pooled(scratch, guesses, |&(g, tag), s| {
        if g.av_len() > k {
            return None; // invalid guess: γ is a lower bound on OPT
        }
        // Greedy 2γ-packing over RV (Algorithm 3 inner loop), staged.
        s.view.gather_ids(metric, res, g.rv_ids());
        packing_scan(
            metric,
            &s.view,
            2.0 * g.gamma(),
            k,
            &mut s.dist,
            &mut s.min_dist,
            &mut s.packed,
        )?; // packing overflow: guess not qualified
            // Qualifying guess: solve on the coreset R. A solver error on
            // the winning guess is the query's outcome, as in the
            // sequential scan.
        let ids = g.coreset_ids();
        Some(
            solver
                .solve_ids(metric, res, &ids, caps)
                .map_err(QueryError::from)
                .map(|sol| {
                    (
                        Solution {
                            centers: sol.centers,
                            guess: g.gamma(),
                            coreset_size: ids.len(),
                            coreset_radius: sol.radius,
                            extras: SolutionExtras::None,
                        },
                        tag,
                    )
                }),
        )
    })
    .unwrap_or(Err(QueryError::NoValidGuess))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsw_metric::{EuclidPoint, Euclidean};

    fn cfg(n: usize, caps: Vec<usize>, delta: f64) -> FairSWConfig {
        FairSWConfig::builder()
            .window_size(n)
            .capacities(caps)
            .beta(2.0)
            .delta(delta)
            .build()
            .unwrap()
    }

    fn cp(x: f64, c: u32) -> Colored<EuclidPoint> {
        Colored::new(EuclidPoint::new(vec![x]), c)
    }

    #[test]
    fn empty_query_errors() {
        let sw = FairSlidingWindow::new(cfg(10, vec![1], 1.0), Euclidean, 0.1, 100.0).unwrap();
        assert!(matches!(sw.query(), Err(QueryError::EmptyWindow)));
    }

    #[test]
    fn bad_scale_bounds_rejected() {
        for (dmin, dmax) in [(0.0, 1.0), (-1.0, 1.0), (2.0, 1.0), (f64::NAN, 1.0)] {
            assert!(
                matches!(
                    FairSlidingWindow::new(cfg(10, vec![1], 1.0), Euclidean, dmin, dmax),
                    Err(ConfigError::BadScaleBounds { .. })
                ),
                "({dmin}, {dmax}) accepted"
            );
        }
    }

    #[test]
    fn single_point_roundtrip() {
        let mut sw = FairSlidingWindow::new(cfg(10, vec![1], 1.0), Euclidean, 0.1, 100.0).unwrap();
        sw.insert(cp(5.0, 0));
        let sol = sw.query().unwrap();
        assert_eq!(sol.centers.len(), 1);
        assert_eq!(sol.centers[0].point.coords(), &[5.0]);
        assert!(matches!(sol.extras, SolutionExtras::None));
        sw.check_invariants().unwrap();
        // One arrival: one payload in the arena, many handles.
        assert_eq!(sw.memory_stats().unique_points, 1);
    }

    #[test]
    fn two_clusters_two_centers() {
        let mut sw =
            FairSlidingWindow::new(cfg(100, vec![1, 1], 0.5), Euclidean, 0.5, 200.0).unwrap();
        for i in 0..50 {
            sw.insert(cp(i as f64 * 0.01, 0));
            sw.insert(cp(100.0 + i as f64 * 0.01, 1));
        }
        sw.check_invariants().unwrap();
        let sol = sw.query().unwrap();
        assert!(sol.centers.len() <= 2);
        // Solution must have one center near each cluster: check the
        // coreset radius is far below the cluster separation.
        assert!(sol.coreset_radius < 50.0, "radius {}", sol.coreset_radius);
    }

    #[test]
    fn memory_stays_bounded_as_window_slides() {
        let mut sw =
            FairSlidingWindow::new(cfg(50, vec![1, 1], 1.0), Euclidean, 0.01, 1000.0).unwrap();
        let mut peak_during_fill = 0usize;
        for i in 0..500u64 {
            let x = (i as f64 * 0.618_033_988_7).fract() * 100.0;
            sw.insert(cp(x, (i % 2) as u32));
            if i < 50 {
                peak_during_fill = peak_during_fill.max(sw.stored_points());
            }
        }
        sw.check_invariants().unwrap();
        // Memory after 500 arrivals must not exceed a small multiple of
        // the peak reached while the first window filled — i.e. it is
        // governed by the window content, not the stream length.
        assert!(
            sw.stored_points() <= 2 * peak_during_fill + 64,
            "memory grew with stream length: {} vs fill-peak {}",
            sw.stored_points(),
            peak_during_fill
        );
    }

    #[test]
    fn memory_stats_breakdown_consistent() {
        let mut sw =
            FairSlidingWindow::new(cfg(30, vec![1, 1], 1.0), Euclidean, 0.01, 1000.0).unwrap();
        for i in 0..90u64 {
            let x = (i as f64 * 0.618_033_988_7).fract() * 100.0;
            sw.insert(cp(x, (i % 2) as u32));
        }
        let stats = sw.memory_stats();
        assert_eq!(stats.num_guesses(), sw.guesses().count());
        assert_eq!(stats.auxiliary, 0);
        assert_eq!(
            stats.stored_points(),
            sw.guesses().map(GuessState::stored_points).sum::<usize>()
        );
        // Ascending-γ order.
        for pair in stats.per_guess.windows(2) {
            assert!(pair[0].gamma < pair[1].gamma);
        }
        // The arena dedup: payloads never exceed entries, and entries
        // reference at least one payload each.
        assert!(stats.unique_points <= stats.stored_points());
        assert!(stats.unique_points > 0);
        assert!(stats.payload_bytes > 0);
        // No payload exceeds the window: the arena never outlives expiry.
        assert!(stats.unique_points <= sw.window_size());
    }

    #[test]
    fn fairness_constraint_respected() {
        let mut sw =
            FairSlidingWindow::new(cfg(60, vec![2, 1], 1.0), Euclidean, 0.05, 500.0).unwrap();
        for i in 0..200u64 {
            let x = (i as f64 * 0.324_717_957_2).fract() * 250.0;
            sw.insert(cp(x, (i % 5 == 0) as u32));
        }
        let sol = sw.query().unwrap();
        let c0 = sol.centers.iter().filter(|c| c.color == 0).count();
        let c1 = sol.centers.iter().filter(|c| c.color == 1).count();
        assert!(c0 <= 2 && c1 <= 1, "budgets violated: {c0}, {c1}");
    }

    #[test]
    fn query_uses_small_guess_for_tight_window() {
        // All window points nearly coincide: the selected guess should be
        // near the bottom of the lattice, and the coreset tiny.
        let mut sw = FairSlidingWindow::new(cfg(20, vec![2], 1.0), Euclidean, 0.1, 1000.0).unwrap();
        for i in 0..40u64 {
            sw.insert(cp(500.0 + (i % 3) as f64 * 0.05, 0));
        }
        let sol = sw.query().unwrap();
        assert!(sol.guess <= 1.0, "guess {} too large", sol.guess);
    }

    #[test]
    fn memoized_queries_bit_identical_to_cold_engine() {
        // `warm` queries after every insert (exercising the memo and the
        // prefix skip); `cold` queries once at the end. Answers must be
        // bit-identical — the memo may only skip work, never change it.
        let mk = || FairSlidingWindow::new(cfg(50, vec![2, 1], 1.0), Euclidean, 1e-3, 1e4).unwrap();
        let (mut warm, mut cold) = (mk(), mk());
        for i in 0..200u64 {
            let x = (i as f64 * 0.618_033_988_7).fract() * 500.0;
            let p = cp(x, (i % 3 == 0) as u32);
            warm.insert(p.clone());
            cold.insert(p);
            let _ = warm.query();
        }
        let (a, b) = (warm.query().unwrap(), cold.query().unwrap());
        assert_eq!(a.guess.to_bits(), b.guess.to_bits());
        assert_eq!(a.coreset_size, b.coreset_size);
        assert_eq!(a.coreset_radius.to_bits(), b.coreset_radius.to_bits());
        assert_eq!(a.centers.len(), b.centers.len());
        for (ca, cb) in a.centers.iter().zip(&b.centers) {
            assert_eq!(ca.color, cb.color);
            let (xa, xb) = (ca.point.coords(), cb.point.coords());
            assert_eq!(xa.len(), xb.len());
            for (va, vb) in xa.iter().zip(xb) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
        // Repeat query at the same t hits the memo and stays identical.
        let again = warm.query().unwrap();
        assert_eq!(again.guess.to_bits(), a.guess.to_bits());
        // Reset clears the memo along with the state.
        warm.reset();
        assert!(matches!(warm.query(), Err(QueryError::EmptyWindow)));
    }

    #[test]
    fn arena_dedup_beats_per_guess_copies() {
        // Many guesses over a drifting stream: handle entries must
        // outnumber resident payloads by a wide margin — the whole point
        // of the interned arena.
        let mut sw =
            FairSlidingWindow::new(cfg(200, vec![2, 2], 1.0), Euclidean, 1e-3, 1e4).unwrap();
        for i in 0..600u64 {
            let x = (i as f64 * 0.618_033_988_7).fract() * 1000.0 + i as f64 * 0.3;
            sw.insert(cp(x, (i % 2) as u32));
        }
        let stats = sw.memory_stats();
        assert!(
            stats.stored_points() >= 3 * stats.unique_points,
            "expected entries ≫ payloads, got {} entries vs {} payloads",
            stats.stored_points(),
            stats.unique_points
        );
    }
}

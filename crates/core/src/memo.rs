//! Query memoization: reuse work between queries when nothing changed.
//!
//! Every state change funnels through the insert/expire choke points in
//! [`guess`](crate::guess), so each per-guess state carries a revision
//! counter that bumps exactly when one of its families mutates. A query
//! records, alongside its result, the engine time it answered for and
//! the `(γ, rev)` prefix of guesses it proved *not* qualifying (too many
//! attractors, or no `≤ k` packing). The next query then
//!
//! * returns the memoized [`Solution`] outright when the engine time is
//!   unchanged (nothing was inserted, so nothing expired either), and
//! * skips re-scanning the leading guesses whose `(γ, rev)` pair still
//!   matches — their families are bit-for-bit the state already scanned.
//!
//! Both reuse paths return exactly the bytes the from-scratch scan would
//! produce; the differential suite enforces this on every thread leg.
//! The memo is interior-mutable (queries take `&self`) behind a `Mutex`,
//! and — like [`ScratchPool`](fairsw_metric::ScratchPool) — clones start
//! empty: a memo is never semantic state.

use crate::api::{QueryError, Solution};
use std::fmt;
use std::sync::Mutex;

/// A memoized query result plus the qualification prefix it proved.
struct MemoInner<P> {
    /// Engine time the memo answers for.
    t: u64,
    /// The full result at `t`, when one was recorded.
    result: Option<Result<Solution<P>, QueryError>>,
    /// `(γ bits, rev)` of the leading guesses proven non-qualifying at
    /// `t` — still skippable later while both components match.
    prefix: Vec<(u64, u64)>,
}

/// Interior-mutable query memo carried by every variant (queries take
/// `&self`). Cleared on `reset`; never serialized; clones start empty.
pub(crate) struct QueryMemo<P> {
    inner: Mutex<MemoInner<P>>,
}

impl<P> Default for QueryMemo<P> {
    fn default() -> Self {
        QueryMemo {
            inner: Mutex::new(MemoInner {
                t: 0,
                result: None,
                prefix: Vec::new(),
            }),
        }
    }
}

/// Clones start empty — a memo is cached work, never semantic state.
impl<P> Clone for QueryMemo<P> {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl<P> fmt::Debug for QueryMemo<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryMemo").finish_non_exhaustive()
    }
}

impl<P: Clone> QueryMemo<P> {
    /// The memoized result, when one was recorded at exactly time `t`.
    pub fn cached(&self, t: u64) -> Option<Result<Solution<P>, QueryError>> {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.t == t {
            inner.result.clone()
        } else {
            None
        }
    }

    /// How many leading guesses of `guesses` (as `(γ, rev)` pairs, in
    /// scan order) the recorded prefix still covers — each was proven
    /// non-qualifying at an identical family state, so the scan may
    /// start after them.
    pub fn skip_count(&self, guesses: impl Iterator<Item = (f64, u64)>) -> usize {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        guesses
            .zip(inner.prefix.iter())
            .take_while(|((gamma, rev), (pg, pr))| gamma.to_bits() == *pg && *rev == *pr)
            .count()
    }

    /// Records the non-qualifying `(γ bits, rev)` prefix a scan proved
    /// at time `t`. Qualification (attractor count, packing fit) is
    /// solver-independent, so this is safe to record from
    /// `query_with(solver)` for *any* solver; the full result is not
    /// (it names a solver), so this drops any memoized result.
    pub fn record_prefix(&self, t: u64, prefix: Vec<(u64, u64)>) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.t = t;
        inner.result = None;
        inner.prefix = prefix;
    }

    /// Records the default-solver result at time `t` (the same-`t` fast
    /// path for [`cached`](Self::cached)). Keeps a prefix already
    /// recorded at the same `t`; discards one recorded at another time.
    pub fn record_result(&self, t: u64, result: &Result<Solution<P>, QueryError>) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.t != t {
            inner.t = t;
            inner.prefix.clear();
        }
        inner.result = Some(result.clone());
    }

    /// Forgets everything (used by `reset`).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.t = 0;
        inner.result = None;
        inner.prefix.clear();
    }
}

/// Builds the non-qualifying prefix to record for a scan outcome over
/// `guesses` (ascending-γ `(γ, rev)` pairs): every guess strictly below
/// the winning `γ̂` for a solution, every guess when no guess qualified,
/// and nothing when the solver itself failed (the scan stopped early).
pub(crate) fn prefix_for<P>(
    guesses: impl Iterator<Item = (f64, u64)>,
    result: &Result<Solution<P>, QueryError>,
) -> Vec<(u64, u64)> {
    match result {
        Ok(sol) => guesses
            .take_while(|(gamma, _)| *gamma < sol.guess)
            .map(|(gamma, rev)| (gamma.to_bits(), rev))
            .collect(),
        Err(QueryError::NoValidGuess) => {
            guesses.map(|(gamma, rev)| (gamma.to_bits(), rev)).collect()
        }
        Err(_) => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SolutionExtras;
    use fairsw_metric::{Colored, EuclidPoint};

    fn sol(guess: f64) -> Solution<EuclidPoint> {
        Solution {
            centers: vec![Colored::new(EuclidPoint::new(vec![0.0]), 0)],
            guess,
            coreset_size: 1,
            coreset_radius: 0.0,
            extras: SolutionExtras::None,
        }
    }

    #[test]
    fn cached_hits_only_at_the_recorded_time() {
        let memo: QueryMemo<EuclidPoint> = QueryMemo::default();
        assert!(memo.cached(0).is_none(), "empty memo never hits");
        memo.record_result(7, &Ok(sol(2.0)));
        assert!(memo.cached(6).is_none());
        assert!(memo.cached(8).is_none());
        let hit = memo.cached(7).expect("hit at recorded t");
        assert_eq!(hit.unwrap().guess, 2.0);
        memo.clear();
        assert!(memo.cached(7).is_none(), "cleared memo misses");
    }

    #[test]
    fn prefix_and_result_keep_independent_lifetimes() {
        let memo: QueryMemo<EuclidPoint> = QueryMemo::default();
        memo.record_prefix(4, vec![(1.0f64.to_bits(), 1)]);
        memo.record_result(4, &Ok(sol(2.0)));
        assert!(memo.cached(4).is_some());
        assert_eq!(memo.skip_count([(1.0, 1u64)].iter().copied()), 1);
        // A prefix recorded at a new time drops the stale result…
        memo.record_prefix(5, vec![(1.0f64.to_bits(), 2)]);
        assert!(memo.cached(4).is_none());
        assert!(memo.cached(5).is_none());
        // …and a result at a new time drops the stale prefix.
        memo.record_result(6, &Ok(sol(2.0)));
        assert_eq!(memo.skip_count([(1.0, 2u64)].iter().copied()), 0);
    }

    #[test]
    fn skip_count_requires_matching_gamma_and_rev() {
        let memo: QueryMemo<EuclidPoint> = QueryMemo::default();
        memo.record_prefix(3, vec![(1.0f64.to_bits(), 5), (2.0f64.to_bits(), 9)]);
        let same = [(1.0, 5u64), (2.0, 9u64), (4.0, 1u64)];
        assert_eq!(memo.skip_count(same.iter().copied()), 2);
        let bumped = [(1.0, 5u64), (2.0, 10u64), (4.0, 1u64)];
        assert_eq!(
            memo.skip_count(bumped.iter().copied()),
            1,
            "rev mismatch stops the prefix"
        );
        let shifted = [(0.5, 5u64), (2.0, 9u64)];
        assert_eq!(
            memo.skip_count(shifted.iter().copied()),
            0,
            "γ mismatch stops the prefix"
        );
    }

    #[test]
    fn prefix_covers_losers_below_the_winner() {
        let guesses = [(1.0, 1u64), (2.0, 2u64), (4.0, 3u64), (8.0, 4u64)];
        let p = prefix_for(guesses.iter().copied(), &Ok(sol(4.0)));
        assert_eq!(p, vec![(1.0f64.to_bits(), 1), (2.0f64.to_bits(), 2)]);
        let all =
            prefix_for::<EuclidPoint>(guesses.iter().copied(), &Err(QueryError::NoValidGuess));
        assert_eq!(all.len(), 4, "no winner ⇒ every guess proven out");
        let none =
            prefix_for::<EuclidPoint>(guesses.iter().copied(), &Err(QueryError::EmptyWindow));
        assert!(none.is_empty(), "other errors record nothing");
    }
}

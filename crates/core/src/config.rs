//! Configuration of the sliding-window algorithms.

use std::fmt;

/// Errors raised when validating a [`FairSWConfig`].
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `window_size` must be positive.
    ZeroWindow,
    /// The per-color budgets are empty.
    NoCapacities,
    /// Some `k_i` is zero (color index attached).
    ZeroCapacity(usize),
    /// `beta` must be positive and finite.
    BadBeta(f64),
    /// `delta` must be in `(0, 4]` (the paper evaluates `δ ∈ [0.5, 4]`;
    /// `δ = 4` degenerates to the Corollary 2 regime).
    BadDelta(f64),
    /// Scale bounds must satisfy `0 < dmin ≤ dmax`, both finite (the
    /// fixed-lattice variants span their guess set over `[dmin, dmax]`).
    BadScaleBounds {
        /// The offending lower bound.
        dmin: f64,
        /// The offending upper bound.
        dmax: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWindow => write!(f, "window_size must be positive"),
            ConfigError::NoCapacities => write!(f, "at least one color capacity is required"),
            ConfigError::ZeroCapacity(i) => write!(f, "capacity k_{i} must be positive"),
            ConfigError::BadBeta(b) => write!(f, "beta must be positive and finite, got {b}"),
            ConfigError::BadDelta(d) => write!(f, "delta must be in (0, 4], got {d}"),
            ConfigError::BadScaleBounds { dmin, dmax } => {
                write!(f, "need 0 < dmin <= dmax, both finite (got {dmin}, {dmax})")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validates the stream scale bounds the fixed-lattice variants need
/// (`0 < dmin ≤ dmax`, both finite).
pub fn validate_scale(dmin: f64, dmax: f64) -> Result<(), ConfigError> {
    if dmin.is_finite() && dmax.is_finite() && dmin > 0.0 && dmax >= dmin {
        Ok(())
    } else {
        Err(ConfigError::BadScaleBounds { dmin, dmax })
    }
}

/// Parameters of the sliding-window fair-center algorithm.
///
/// * `window_size` — the window length `n`;
/// * `capacities` — the per-color budgets `k_1..k_ℓ` (`k = Σ k_i`);
/// * `beta` — guess progression: guesses are `(1+β)^i` (the paper's
///   experiments fix `β = 2` and observe little sensitivity);
/// * `delta` — coreset precision: c-attractors are kept pairwise
///   `> δγ/2`; smaller `δ` → larger coreset → better approximation.
///   Theorem 1: choosing `δ = ε / ((1+β)(1+2α))` yields an `(α+ε)`-
///   approximation, see [`FairSWConfig::delta_for_epsilon`].
#[derive(Clone, Debug, PartialEq)]
pub struct FairSWConfig {
    /// Window length `n`.
    pub window_size: usize,
    /// Per-color budgets `k_i`.
    pub capacities: Vec<usize>,
    /// Guess lattice parameter `β`.
    pub beta: f64,
    /// Coreset precision `δ`.
    pub delta: f64,
}

impl FairSWConfig {
    /// Starts a builder with the paper's default `β = 2`, `δ = 1`.
    pub fn builder() -> FairSWConfigBuilder {
        FairSWConfigBuilder::default()
    }

    /// Total budget `k = Σ k_i`.
    pub fn k(&self) -> usize {
        self.capacities.iter().sum()
    }

    /// Number of colors `ℓ`.
    pub fn num_colors(&self) -> usize {
        self.capacities.len()
    }

    /// The `δ` that Theorem 1 prescribes for a target accuracy `ε`,
    /// given the guess parameter `β` and the approximation factor `α`
    /// of the sequential solver used in `Query` (3 for Jones):
    /// `δ = ε / ((1+β)(1+2α))`.
    pub fn delta_for_epsilon(epsilon: f64, beta: f64, alpha: f64) -> f64 {
        epsilon / ((1.0 + beta) * (1.0 + 2.0 * alpha))
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.window_size == 0 {
            return Err(ConfigError::ZeroWindow);
        }
        if self.capacities.is_empty() {
            return Err(ConfigError::NoCapacities);
        }
        if let Some(i) = self.capacities.iter().position(|&c| c == 0) {
            return Err(ConfigError::ZeroCapacity(i));
        }
        if !(self.beta.is_finite() && self.beta > 0.0) {
            return Err(ConfigError::BadBeta(self.beta));
        }
        if !(self.delta.is_finite() && self.delta > 0.0 && self.delta <= 4.0) {
            return Err(ConfigError::BadDelta(self.delta));
        }
        Ok(())
    }
}

/// Builder for [`FairSWConfig`].
#[derive(Clone, Debug)]
pub struct FairSWConfigBuilder {
    window_size: usize,
    capacities: Vec<usize>,
    beta: f64,
    delta: f64,
    /// A pending `ε` target; resolved against the *final* `β` in
    /// [`build`](Self::build), so `.epsilon(..)` and `.beta(..)` compose
    /// in either order.
    epsilon: Option<f64>,
}

impl Default for FairSWConfigBuilder {
    fn default() -> Self {
        FairSWConfigBuilder {
            window_size: 0,
            capacities: Vec::new(),
            beta: 2.0,
            delta: 1.0,
            epsilon: None,
        }
    }
}

impl FairSWConfigBuilder {
    /// Sets the window length `n`.
    pub fn window_size(mut self, n: usize) -> Self {
        self.window_size = n;
        self
    }

    /// Sets the per-color budgets `k_i`.
    pub fn capacities(mut self, caps: Vec<usize>) -> Self {
        self.capacities = caps;
        self
    }

    /// Sets the guess parameter `β` (default 2, as in the paper).
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the coreset precision `δ` (default 1). Overrides any earlier
    /// [`epsilon`](Self::epsilon).
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self.epsilon = None;
        self
    }

    /// Sets `δ` from a target `ε` per Theorem 1 (`α = 3`, Jones):
    /// `δ = ε / ((1+β)(1+2α))`, evaluated with the final `β` at
    /// [`build`](Self::build) time.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = Some(epsilon);
        self
    }

    /// Resolves the pending `ε` (if any) and assembles the configuration
    /// without validating it. Used by the engine builder's matroid path,
    /// which replaces the capacity constraint with a matroid.
    pub(crate) fn build_raw(self) -> FairSWConfig {
        let delta = match self.epsilon {
            Some(eps) => FairSWConfig::delta_for_epsilon(eps, self.beta, 3.0),
            None => self.delta,
        };
        FairSWConfig {
            window_size: self.window_size,
            capacities: self.capacities,
            beta: self.beta,
            delta,
        }
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<FairSWConfig, ConfigError> {
        let cfg = self.build_raw();
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Builder tests return `Result` and propagate with `?` so a failure
    // reports the actual `ConfigError` instead of an unwrap panic.
    #[test]
    fn builder_happy_path() -> Result<(), ConfigError> {
        let cfg = FairSWConfig::builder()
            .window_size(100)
            .capacities(vec![1, 2])
            .beta(2.0)
            .delta(0.5)
            .build()?;
        assert_eq!(cfg.k(), 3);
        assert_eq!(cfg.num_colors(), 2);
        Ok(())
    }

    #[test]
    fn builder_rejects_invalid() {
        assert_eq!(
            FairSWConfig::builder().capacities(vec![1]).build(),
            Err(ConfigError::ZeroWindow)
        );
        assert_eq!(
            FairSWConfig::builder().window_size(5).build(),
            Err(ConfigError::NoCapacities)
        );
        assert_eq!(
            FairSWConfig::builder()
                .window_size(5)
                .capacities(vec![1, 0])
                .build(),
            Err(ConfigError::ZeroCapacity(1))
        );
        assert_eq!(
            FairSWConfig::builder()
                .window_size(5)
                .capacities(vec![1])
                .beta(-1.0)
                .build(),
            Err(ConfigError::BadBeta(-1.0))
        );
        assert_eq!(
            FairSWConfig::builder()
                .window_size(5)
                .capacities(vec![1])
                .delta(5.0)
                .build(),
            Err(ConfigError::BadDelta(5.0))
        );
    }

    #[test]
    fn theorem1_delta() {
        // ε = 1, β = 2, α = 3: δ = 1 / (3·7) = 1/21.
        let d = FairSWConfig::delta_for_epsilon(1.0, 2.0, 3.0);
        assert!((d - 1.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_builder_sets_delta() -> Result<(), ConfigError> {
        let cfg = FairSWConfig::builder()
            .window_size(10)
            .capacities(vec![1])
            .beta(2.0)
            .epsilon(2.1)
            .build()?;
        assert!((cfg.delta - 0.1).abs() < 1e-12);
        Ok(())
    }

    #[test]
    fn epsilon_resolves_against_final_beta_regardless_of_order() -> Result<(), ConfigError> {
        let mk = |first_eps: bool| {
            let b = FairSWConfig::builder().window_size(10).capacities(vec![1]);
            let b = if first_eps {
                b.epsilon(2.1).beta(2.0)
            } else {
                b.beta(2.0).epsilon(2.1)
            };
            b.build()
        };
        assert_eq!(mk(true)?.delta, mk(false)?.delta);
        // A later explicit delta overrides a pending epsilon.
        let cfg = FairSWConfig::builder()
            .window_size(10)
            .capacities(vec![1])
            .epsilon(2.1)
            .delta(0.7)
            .build()?;
        assert_eq!(cfg.delta, 0.7);
        Ok(())
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", ConfigError::ZeroWindow).contains("window"));
        assert!(format!("{}", ConfigError::BadDelta(9.0)).contains("9"));
        assert!(format!(
            "{}",
            ConfigError::BadScaleBounds {
                dmin: -1.0,
                dmax: 2.0
            }
        )
        .contains("-1"));
    }

    #[test]
    fn scale_validation() {
        assert_eq!(validate_scale(0.1, 100.0), Ok(()));
        assert_eq!(validate_scale(5.0, 5.0), Ok(()));
        for (dmin, dmax) in [
            (0.0, 1.0),
            (-2.0, 1.0),
            (2.0, 1.0),
            (f64::NAN, 1.0),
            (1.0, f64::INFINITY),
        ] {
            assert!(
                matches!(
                    validate_scale(dmin, dmax),
                    Err(ConfigError::BadScaleBounds { .. })
                ),
                "({dmin}, {dmax}) accepted"
            );
        }
    }
}

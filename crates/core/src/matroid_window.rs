//! Sliding-window **matroid** center: the paper's algorithm generalized
//! from partition-matroid fairness to arbitrary matroid constraints over
//! colors (laminar hierarchies, transversal slot systems, …).
//!
//! The paper observes (§2) that its fairness constraint is the partition-
//! matroid case of matroid center, and that its coreset construction
//! "can be immediately specialised" from matroid machinery. This module
//! walks the implication in the other direction: the per-attractor
//! representative maintenance generalizes from "≤ k_i per color, evict
//! the oldest of the same color" to "keep an independent set, and when
//! adding the newcomer creates a circuit, evict the **oldest element of
//! that circuit**" — for partition matroids the circuit is exactly the
//! over-capacity color class, recovering Algorithm 1 line 19 verbatim.
//! The matroid exchange property guarantees the rep set stays a maximal
//! independent set of its cluster's most recent points, which is all
//! Lemma 3 needs; Theorem 1's mapping argument then goes through with
//! `k = rank(M)`.
//!
//! `Query` runs the generic Chen-et-al matroid-center solver
//! ([`fn@fairsw_sequential::matroid_center`], matroid-intersection based,
//! `α = 3`) on the coreset, resolved out of the shared arena only at
//! solution-assembly time
//! ([`fairsw_sequential::matroid_center_ids`]).
//!
//! Complexity note: circuit-eviction costs `O(|R_a|)` independence-oracle
//! calls per arrival and the generic query solver is much slower than the
//! matching-based partition solvers — use [`crate::FairSlidingWindow`]
//! when the constraint is a plain partition matroid.

use crate::algorithm::QueryScratch;
use crate::api::{MemoryStats, QueryError, SlidingWindowClustering, Solution, SolutionExtras};
use crate::config::{validate_scale, ConfigError};
use crate::guess_set::{DeadList, GuessSet, GuessSlot};
use crate::memo::{prefix_for, QueryMemo};
use crate::parallel::{Exec, ParallelismSpec};
use fairsw_matroid::{Matroid, OverColors};
use fairsw_metric::{packing_scan, Colored, ColoredId, Metric, PointId, Resolver};
use fairsw_sequential::matroid_center_ids;
use fairsw_stream::Lattice;
use std::collections::{BTreeMap, HashMap};

/// Per-guess state of the matroid variant (validation families identical
/// to the partition algorithm; coreset rep sets kept independent via
/// circuit eviction). All families hold arena handles.
#[derive(Clone, Debug)]
struct MatroidGuess {
    gamma: f64,
    av: BTreeMap<u64, PointId>,
    rep_of: HashMap<u64, u64>,
    rv: BTreeMap<u64, PointId>,
    a: BTreeMap<u64, PointId>,
    /// Per-attractor representative arrival times, sorted (push-back).
    reps: HashMap<u64, Vec<u64>>,
    /// Coreset entries: handle, color, attractor.
    r: BTreeMap<u64, (PointId, u32, u64)>,
    /// Arena ids observed crossing refcount zero (owner drains).
    dead: DeadList,
    /// Revision counter for the query memo (bumps on family mutation).
    rev: u64,
}

impl GuessSlot for MatroidGuess {
    fn gamma(&self) -> f64 {
        self.gamma
    }
    fn entries(&self) -> usize {
        self.stored_points()
    }
    fn drain_dead(&mut self, into: &mut Vec<PointId>) {
        self.dead.drain_into(into);
    }
    fn rev(&self) -> u64 {
        self.rev
    }
}

impl MatroidGuess {
    fn new(gamma: f64) -> Self {
        MatroidGuess {
            gamma,
            av: BTreeMap::new(),
            rep_of: HashMap::new(),
            rv: BTreeMap::new(),
            a: BTreeMap::new(),
            reps: HashMap::new(),
            r: BTreeMap::new(),
            dead: DeadList::default(),
            rev: 0,
        }
    }

    fn stored_points(&self) -> usize {
        self.av.len() + self.rv.len() + self.a.len() + self.r.len()
    }

    fn expire<P>(&mut self, res: Resolver<'_, P>, te: u64) {
        let mut removed = false;
        if let Some(id) = self.av.remove(&te) {
            self.rep_of.remove(&te);
            self.dead.release(res, id);
            removed = true;
        }
        if let Some(id) = self.rv.remove(&te) {
            self.dead.release(res, id);
            removed = true;
        }
        if let Some(id) = self.a.remove(&te) {
            self.reps.remove(&te);
            self.dead.release(res, id);
            removed = true;
        }
        // Timing invariant (same as the partition variant): an expiring
        // representative's attractor is at least as old, hence already
        // gone — no live rep list needs fixing.
        if let Some((id, _, _)) = self.r.remove(&te) {
            self.dead.release(res, id);
            removed = true;
        }
        if removed {
            self.rev = self.rev.wrapping_add(1);
        }
    }

    #[allow(clippy::too_many_arguments)] // internal; mirrors Algorithm 1's parameter list
    fn update<M: Metric, Mat: Matroid<u32>>(
        &mut self,
        metric: &M,
        res: Resolver<'_, M::Point>,
        t: u64,
        id: PointId,
        color: u32,
        matroid: &Mat,
        k: usize,
        delta: f64,
    ) {
        // Both validation branches insert into RV, so every arrival
        // mutates this guess.
        self.rev = self.rev.wrapping_add(1);
        let p = res.get(id);
        let two_gamma = 2.0 * self.gamma;

        // Validation side: identical to Algorithm 1.
        let psi = self
            .av
            .iter()
            .find(|(_, &v)| metric.dist(p, res.get(v)) <= two_gamma)
            .map(|(&tv, _)| tv);
        match psi {
            None => {
                self.av.insert(t, id);
                res.acquire(id);
                self.rep_of.insert(t, t);
                self.rv.insert(t, id);
                res.acquire(id);
                self.cleanup(res, k);
            }
            Some(v) => {
                let old = self
                    .rep_of
                    .insert(v, t)
                    .expect("live v-attractor has a representative");
                if let Some(oid) = self.rv.remove(&old) {
                    self.dead.release(res, oid);
                }
                self.rv.insert(t, id);
                res.acquire(id);
            }
        }

        // Coreset side with circuit eviction.
        let attach = delta * self.gamma / 2.0;
        // Prefer an attractor whose rep set accepts the newcomer without
        // eviction; fall back to the one with the smallest rep set (the
        // generalization of the paper's per-color argmin balancing).
        let mut no_evict: Option<u64> = None;
        let mut smallest: Option<(usize, u64)> = None;
        for (&ta, &q) in &self.a {
            if metric.dist(p, res.get(q)) > attach {
                continue;
            }
            let times = self.reps.get(&ta).map(Vec::as_slice).unwrap_or(&[]);
            let mut colors: Vec<u32> = times.iter().map(|tt| self.r[tt].1).collect();
            colors.push(color);
            if no_evict.is_none() && matroid.is_independent(&colors) {
                no_evict = Some(ta);
            }
            if smallest.is_none_or(|(len, _)| times.len() < len) {
                smallest = Some((times.len(), ta));
            }
        }
        match no_evict.or(smallest.map(|(_, ta)| ta)) {
            None => {
                // New c-attractor. A loop color (never independent even
                // alone) is still stored as an attractor (it must repel
                // nearby points) but cannot serve as a representative —
                // nevertheless we keep it in R for coverage accounting if
                // independent alone.
                self.a.insert(t, id);
                res.acquire(id);
                if matroid.is_independent(&[color]) {
                    self.reps.insert(t, vec![t]);
                    self.r.insert(t, (id, color, t));
                    res.acquire(id);
                } else {
                    self.reps.insert(t, Vec::new());
                }
            }
            Some(ta) => {
                let times = self.reps.get_mut(&ta).expect("live attractor");
                let mut colors: Vec<u32> = times.iter().map(|tt| self.r[tt].1).collect();
                colors.push(color);
                if matroid.is_independent(&colors) {
                    times.push(t);
                    self.r.insert(t, (id, color, ta));
                    res.acquire(id);
                } else {
                    // Circuit eviction: drop the oldest element whose
                    // removal restores independence (for partition
                    // matroids: the oldest same-color rep). If none does,
                    // the newcomer is itself a loop — skip it.
                    let mut evict: Option<usize> = None;
                    for i in 0..times.len() {
                        let cols: Vec<u32> = times
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| *j != i)
                            .map(|(_, tt)| self.r[tt].1)
                            .chain(std::iter::once(color))
                            .collect();
                        if matroid.is_independent(&cols) {
                            evict = Some(i);
                            break;
                        }
                    }
                    if let Some(i) = evict {
                        let dead_t = times.remove(i);
                        if let Some((oid, _, _)) = self.r.remove(&dead_t) {
                            self.dead.release(res, oid);
                        }
                        times.push(t);
                        self.r.insert(t, (id, color, ta));
                        res.acquire(id);
                    }
                }
            }
        }
    }

    fn cleanup<P>(&mut self, res: Resolver<'_, P>, k: usize) {
        if self.av.len() == k + 2 {
            let oldest = *self.av.keys().next().expect("non-empty");
            if let Some(id) = self.av.remove(&oldest) {
                self.dead.release(res, id);
            }
            self.rep_of.remove(&oldest);
        }
        if self.av.len() == k + 1 {
            let tmin = *self.av.keys().next().expect("non-empty");
            let keep_a = self.a.split_off(&tmin);
            for (dead_t, id) in std::mem::replace(&mut self.a, keep_a) {
                self.reps.remove(&dead_t);
                self.dead.release(res, id);
            }
            let keep_rv = self.rv.split_off(&tmin);
            for (_, id) in std::mem::replace(&mut self.rv, keep_rv) {
                self.dead.release(res, id);
            }
            let keep_r = self.r.split_off(&tmin);
            for (_, (id, _, _)) in std::mem::replace(&mut self.r, keep_r) {
                self.dead.release(res, id);
            }
        }
    }

    /// Structural invariants (test helper): liveness of every stored
    /// time, the `2γ` separation of `AV`, the `δγ/2` separation of `A`,
    /// and independence of every live attractor's representative colors.
    #[allow(clippy::too_many_arguments)] // internal checker; mirrors update's list
    fn check_invariants<M: Metric, Mat: Matroid<u32>>(
        &self,
        metric: &M,
        res: Resolver<'_, M::Point>,
        t: u64,
        n: u64,
        matroid: &Mat,
        k: usize,
        delta: f64,
    ) -> Result<(), String> {
        let live = |time: u64| time + n > t;
        for &time in self
            .av
            .keys()
            .chain(self.rv.keys())
            .chain(self.a.keys())
            .chain(self.r.keys())
        {
            if !live(time) {
                return Err(format!("expired entry {time} at t={t}"));
            }
        }
        for &id in self
            .av
            .values()
            .chain(self.rv.values())
            .chain(self.a.values())
        {
            if res.try_get(id).is_none() {
                return Err("entry holds a collected arena id".into());
            }
        }
        if self.av.len() > k + 1 {
            return Err(format!("|AV| = {} > rank+1", self.av.len()));
        }
        let avs: Vec<_> = self.av.iter().collect();
        for i in 0..avs.len() {
            for j in (i + 1)..avs.len() {
                if metric.dist(res.get(*avs[i].1), res.get(*avs[j].1)) <= 2.0 * self.gamma {
                    return Err(format!(
                        "v-attractors {} and {} within 2γ",
                        avs[i].0, avs[j].0
                    ));
                }
            }
        }
        let cas: Vec<_> = self.a.iter().collect();
        for i in 0..cas.len() {
            for j in (i + 1)..cas.len() {
                if metric.dist(res.get(*cas[i].1), res.get(*cas[j].1)) <= delta * self.gamma / 2.0 {
                    return Err(format!(
                        "c-attractors {} and {} within δγ/2",
                        cas[i].0, cas[j].0
                    ));
                }
            }
        }
        for (&a, times) in &self.reps {
            if !self.a.contains_key(&a) {
                return Err(format!("rep set for dead attractor {a}"));
            }
            let mut colors = Vec::with_capacity(times.len());
            for &time in times {
                match self.r.get(&time) {
                    None => return Err(format!("tracked rep {time} missing from R")),
                    Some(&(id, c, att)) => {
                        if att != a {
                            return Err(format!("R entry {time} attractor mismatch"));
                        }
                        let Some(rp) = res.try_get(id) else {
                            return Err(format!("R entry {time} holds a collected id"));
                        };
                        let d = metric.dist(rp, res.get(self.a[&a]));
                        if d > delta * self.gamma / 2.0 + 1e-9 {
                            return Err(format!(
                                "rep {time} at distance {d} > δγ/2 from attractor {a}"
                            ));
                        }
                        colors.push(c);
                    }
                }
            }
            if !matroid.is_independent(&colors) {
                return Err(format!("rep colors of attractor {a} not independent"));
            }
        }
        Ok(())
    }
}

/// Sliding-window matroid center under an arbitrary matroid over colors.
#[derive(Clone, Debug)]
pub struct MatroidSlidingWindow<M: Metric, Mat: Matroid<u32>> {
    metric: M,
    matroid: Mat,
    window_size: usize,
    delta: f64,
    k: usize,
    set: GuessSet<MatroidGuess, M::Point>,
    t: u64,
    exec: Exec,
    scratch: QueryScratch<M::Point>,
    memo: QueryMemo<M::Point>,
}

impl<M: Metric, Mat: Matroid<u32>> MatroidSlidingWindow<M, Mat> {
    /// Creates the algorithm for a stream with pairwise distances in
    /// `[dmin, dmax]`, window length `window_size`, guess parameter
    /// `beta` and coreset precision `delta`, under `matroid` (over
    /// colors; its rank plays the role of `k`).
    pub fn new(
        metric: M,
        matroid: Mat,
        window_size: usize,
        beta: f64,
        delta: f64,
        dmin: f64,
        dmax: f64,
    ) -> Result<Self, ConfigError> {
        if window_size == 0 {
            return Err(ConfigError::ZeroWindow);
        }
        if !(beta.is_finite() && beta > 0.0) {
            return Err(ConfigError::BadBeta(beta));
        }
        if !(delta.is_finite() && delta > 0.0 && delta <= 4.0) {
            return Err(ConfigError::BadDelta(delta));
        }
        validate_scale(dmin, dmax)?;
        let lattice = Lattice::new(beta);
        let guesses = lattice
            .span(dmin, dmax)
            .map(|lvl| MatroidGuess::new(lattice.value(lvl)))
            .collect();
        let k = matroid.rank();
        Ok(MatroidSlidingWindow {
            metric,
            matroid,
            window_size,
            delta,
            k,
            set: GuessSet::new(guesses),
            t: 0,
            exec: Exec::default(),
            scratch: QueryScratch::default(),
            memo: QueryMemo::default(),
        })
    }

    /// The constraint's rank (plays the role of `k`).
    pub fn rank(&self) -> usize {
        self.k
    }

    /// Spreads per-guess work over `spec` worker threads (bit-identical
    /// to sequential execution; see [`crate::parallel`]).
    pub fn with_parallelism(mut self, spec: ParallelismSpec) -> Self {
        self.exec = Exec::new(spec);
        self
    }

    /// The effective worker-thread count (1 when sequential).
    pub fn threads(&self) -> usize {
        self.exec.threads()
    }

    /// Drops every streamed point and rebuilds empty structures from the
    /// retained configuration (same guess lattice, same matroid, same
    /// worker pool) — the delete-and-recreate reuse path of serving
    /// layers.
    pub fn reset(&mut self) {
        let gammas: Vec<f64> = self.set.guesses.iter().map(|g| g.gamma).collect();
        self.set = GuessSet::new(gammas.into_iter().map(MatroidGuess::new).collect());
        self.t = 0;
        self.memo.clear();
    }
}

impl<M, Mat> SlidingWindowClustering<M> for MatroidSlidingWindow<M, Mat>
where
    M: Metric + Sync,
    M::Point: Send + Sync,
    Mat: Matroid<u32> + Sync,
{
    /// Handles one arrival (interned once, fanned out per guess when a
    /// pool is set; the matroid oracle is shared read-only across
    /// workers).
    fn insert(&mut self, p: Colored<M::Point>) {
        self.t += 1;
        let t = self.t;
        let te = t.checked_sub(self.window_size as u64);
        let id = self.set.store.insert(t, p.point);
        let metric = &self.metric;
        let matroid = &self.matroid;
        let (k, delta) = (self.k, self.delta);
        let res = self.set.store.resolver();
        self.exec.for_each_mut(&mut self.set.guesses, |g| {
            if let Some(te) = te {
                g.expire(res, te);
            }
            g.update(metric, res, t, id, p.color, matroid, k, delta);
        });
        self.set.finish_arrival(te);
    }

    /// Batch arrivals: the batch is interned up front and each guess
    /// replays it locally (one pool dispatch per batch; identical
    /// evolution to repeated insert).
    fn insert_batch<I>(&mut self, batch: I)
    where
        I: IntoIterator<Item = Colored<M::Point>>,
    {
        let n = self.window_size as u64;
        let ids: Vec<ColoredId> = batch
            .into_iter()
            .enumerate()
            .map(|(j, p)| {
                let t = self.t + 1 + j as u64;
                Colored::new(self.set.store.insert(t, p.point), p.color)
            })
            .collect();
        let metric = &self.metric;
        let matroid = &self.matroid;
        let (k, delta) = (self.k, self.delta);
        let res = self.set.store.resolver();
        self.t = self
            .exec
            .replay_batch(&mut self.set.guesses, &ids, self.t, n, |g, t, te, cid| {
                if let Some(te) = te {
                    g.expire(res, te);
                }
                g.update(metric, res, t, cid.point, cid.color, matroid, k, delta);
            });
        self.set.finish_arrival(self.t.checked_sub(n));
    }

    /// Queries: validation packing as in Algorithm 3 (`k = rank`), then
    /// the generic matroid-center solver on the coreset (resolved from
    /// the arena inside [`matroid_center_ids`] at solution assembly).
    fn query(&self) -> Result<Solution<M::Point>, QueryError> {
        if self.t == 0 {
            return Err(QueryError::EmptyWindow);
        }
        // Memoized on the engine time (inserts are the only mutation),
        // with the solver-independent non-qualifying prefix skipped.
        if let Some(hit) = self.memo.cached(self.t) {
            return hit;
        }
        let pairs: Vec<(f64, u64)> = self
            .set
            .guesses
            .iter()
            .map(|g| (GuessSlot::gamma(g), GuessSlot::rev(g)))
            .collect();
        let skip = self.memo.skip_count(pairs.iter().copied());
        let res = self.set.store.resolver();
        let result = self
            .exec
            .find_map_first_pooled(&self.scratch, &self.set.guesses[skip..], |g, s| {
                if g.av.len() > self.k {
                    return None;
                }
                // Batched 2γ-packing over RV (k = rank).
                s.view.gather_ids(&self.metric, res, g.rv.values().copied());
                packing_scan(
                    &self.metric,
                    &s.view,
                    2.0 * g.gamma,
                    self.k,
                    &mut s.dist,
                    &mut s.min_dist,
                    &mut s.packed,
                )?;
                let ids: Vec<PointId> = g.r.values().map(|&(id, _, _)| id).collect();
                let colors: Vec<u32> = g.r.values().map(|&(_, c, _)| c).collect();
                let idx_matroid = OverColors::new(&colors, &self.matroid);
                Some(
                    matroid_center_ids(&self.metric, res, &ids, &idx_matroid)
                        .map_err(QueryError::Solver)
                        .map(|sol| {
                            let centers = sol
                                .centers
                                .iter()
                                .map(|&i| Colored::new(res.get(ids[i]).clone(), colors[i]))
                                .collect();
                            Solution {
                                centers,
                                guess: g.gamma,
                                coreset_size: ids.len(),
                                coreset_radius: sol.radius,
                                extras: SolutionExtras::None,
                            }
                        }),
                )
            })
            .unwrap_or(Err(QueryError::NoValidGuess));
        self.memo
            .record_prefix(self.t, prefix_for(pairs.iter().copied(), &result));
        self.memo.record_result(self.t, &result);
        result
    }

    fn time(&self) -> u64 {
        self.t
    }

    fn window_size(&self) -> usize {
        self.window_size
    }

    fn memory_stats(&self) -> MemoryStats {
        self.set.memory_stats()
    }

    fn stored_points(&self) -> usize {
        self.set.stored_points()
    }

    fn num_guesses(&self) -> usize {
        self.set.guesses.len()
    }

    /// Verifies per-guess invariants (test helper).
    fn check_invariants(&self) -> Result<(), String> {
        let res = self.set.store.resolver();
        for g in &self.set.guesses {
            g.check_invariants(
                &self.metric,
                res,
                self.t,
                self.window_size as u64,
                &self.matroid,
                self.k,
                self.delta,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsw_matroid::{Group, LaminarMatroid, PartitionMatroid};
    use fairsw_metric::{EuclidPoint, Euclidean};

    fn cp(x: f64, c: u32) -> Colored<EuclidPoint> {
        Colored::new(EuclidPoint::new(vec![x]), c)
    }

    #[test]
    fn partition_case_matches_fair_sliding_window() {
        // Same stream through both implementations; the matroid variant
        // under a partition matroid must deliver comparable quality.
        let caps = vec![1usize, 1];
        let part = PartitionMatroid::new(caps.clone()).unwrap();
        let mut generic =
            MatroidSlidingWindow::new(Euclidean, part, 80, 2.0, 1.0, 0.01, 1e4).unwrap();
        let cfg = crate::FairSWConfig::builder()
            .window_size(80)
            .capacities(caps)
            .beta(2.0)
            .delta(1.0)
            .build()
            .unwrap();
        let mut special = crate::FairSlidingWindow::new(cfg, Euclidean, 0.01, 1e4).unwrap();
        for i in 0..200u64 {
            let base = if i % 2 == 0 { 0.0 } else { 500.0 };
            let p = cp(base + (i as f64 * 0.618).fract() * 3.0, (i % 2) as u32);
            generic.insert(p.clone());
            special.insert(p);
        }
        let gs = generic.query().unwrap();
        let ss = special.query().unwrap();
        assert!(gs.centers.len() <= 2);
        // Same two-cluster geometry: both must land at cluster scale.
        assert!(
            gs.coreset_radius < 50.0,
            "generic radius {}",
            gs.coreset_radius
        );
        assert!(ss.coreset_radius < 50.0);
    }

    #[test]
    fn laminar_constraint_respected_over_stream() {
        // ≤1 center of color 0, ≤2 of {0,1} combined, ≤3 total.
        let lam = LaminarMatroid::new(vec![
            Group::new(vec![0], 1),
            Group::new(vec![0, 1], 2),
            Group::new(vec![0, 1, 2], 3),
        ])
        .unwrap();
        let mut sw =
            MatroidSlidingWindow::new(Euclidean, lam.clone(), 100, 2.0, 1.0, 0.01, 1e4).unwrap();
        for i in 0..300u64 {
            let base = (i % 3) as f64 * 400.0;
            sw.insert(cp(base + (i as f64 * 0.33).fract() * 4.0, (i % 3) as u32));
        }
        let sol = sw.query().unwrap();
        let cols: Vec<u32> = sol.centers.iter().map(|c| c.color).collect();
        assert!(
            lam.colors_independent(cols.iter().copied()),
            "laminar constraint violated: {cols:?}"
        );
        assert!(sol.centers.len() <= 3);
        // Three far clusters, ≤3 centers: covering radius stays at
        // cluster scale only if each cluster got a center.
        assert!(sol.coreset_radius < 200.0, "radius {}", sol.coreset_radius);
    }

    #[test]
    fn circuit_eviction_keeps_newest() {
        // One attractor; caps [1] with extra total group cap 1: each new
        // same-color point must replace the previous rep.
        let part = PartitionMatroid::new(vec![1]).unwrap();
        let mut sw = MatroidSlidingWindow::new(Euclidean, part, 50, 2.0, 4.0, 0.01, 100.0).unwrap();
        for i in 0..10u64 {
            sw.insert(cp(0.1 * i as f64, 0));
        }
        // Every guess's coreset holds at most rank-many points per
        // attractor; the newest point must be present somewhere.
        let sol = sw.query().unwrap();
        assert_eq!(sol.centers.len(), 1);
        assert!(sol.coreset_radius < 2.0);
    }

    #[test]
    fn memory_stays_bounded() {
        let part = PartitionMatroid::new(vec![1, 1]).unwrap();
        let mut sw = MatroidSlidingWindow::new(Euclidean, part, 60, 2.0, 1.0, 0.01, 1e4).unwrap();
        let mut peak_early = 0usize;
        for i in 0..600u64 {
            let x = (i as f64 * 0.445).fract() * 900.0;
            sw.insert(cp(x, (i % 2) as u32));
            if i < 120 {
                peak_early = peak_early.max(sw.stored_points());
            }
        }
        assert!(
            sw.stored_points() <= 2 * peak_early + 64,
            "memory grew with stream length"
        );
        // Arena payloads are the deduplicated union, never more than the
        // handle entries.
        let stats = sw.memory_stats();
        assert!(stats.unique_points <= stats.stored_points());
    }

    #[test]
    fn empty_query_errors() {
        let part = PartitionMatroid::new(vec![1]).unwrap();
        let sw = MatroidSlidingWindow::new(Euclidean, part, 10, 2.0, 1.0, 0.1, 10.0).unwrap();
        assert!(matches!(sw.query(), Err(QueryError::EmptyWindow)));
    }

    #[test]
    fn config_validation() {
        let part = PartitionMatroid::new(vec![1]).unwrap();
        assert!(matches!(
            MatroidSlidingWindow::new(Euclidean, part.clone(), 0, 2.0, 1.0, 0.1, 1.0),
            Err(ConfigError::ZeroWindow)
        ));
        assert!(matches!(
            MatroidSlidingWindow::new(Euclidean, part.clone(), 5, -1.0, 1.0, 0.1, 1.0),
            Err(ConfigError::BadBeta(_))
        ));
        assert!(matches!(
            MatroidSlidingWindow::new(Euclidean, part, 5, 2.0, 9.0, 0.1, 1.0),
            Err(ConfigError::BadDelta(_))
        ));
    }
}

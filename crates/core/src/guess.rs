//! Per-guess state: validation points (`AV`, `RV`) and coreset points
//! (`A`, `repsC`, `R`) with the `Update` / `Cleanup` logic of
//! Algorithms 1–2 of the paper.
//!
//! Every family is keyed by arrival time in a `BTreeMap`, which makes the
//! three removal patterns of the algorithm cheap and obviously correct:
//!
//! * **natural expiry** removes the single key `t - n`;
//! * **Cleanup's age filter** ("remove everything with TTL below the
//!   oldest v-attractor's") removes a *prefix* of keys;
//! * **min-TTL evictions** (oldest v-attractor, oldest same-color
//!   c-representative) pop the smallest key / the deque front.
//!
//! Two timing invariants keep the bookkeeping free of back-references
//! (proved in the comments where they are used):
//!
//! 1. a representative never *precedes* its attractor (`t(rep) ≥
//!    t(attractor)`), so when a representative expires its attractor is
//!    already gone — natural expiry never has to fix a live attractor's
//!    representative list;
//! 2. Cleanup's age filter only ever removes *orphaned* representatives
//!    (reps of already-removed attractors), because live attractors are
//!    at least as old as the filter threshold and their reps are younger
//!    still.
//!
//! ## Interned storage
//!
//! Family entries hold 4-byte [`PointId`] handles into the algorithm's
//! shared [`PointStore`] arena rather than owned points: one resident
//! payload per live window point, however many
//! guesses and families reference it. Every entry holds one arena
//! reference — insertions `acquire`, removals `release` — and a release
//! that drops a point's count to zero records the id in this guess's
//! [`dead`](GuessState) scratch list, which the owning algorithm drains
//! (on its thread, after any parallel dispatch) to reclaim payloads the
//! moment no guess needs them.

use crate::guess_set::DeadList;
use fairsw_metric::{Colored, ColoredId, Metric, PointId, PointStore, Resolver};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// The per-algorithm parameters threaded into every `Update`: the color
/// budgets `k_i`, their sum `k`, and the coreset precision `δ`.
#[derive(Clone, Copy, Debug)]
pub struct Budgets<'a> {
    /// Per-color budgets `k_1..k_ℓ`.
    pub caps: &'a [usize],
    /// Total budget `k = Σ k_i`.
    pub k: usize,
    /// Coreset precision `δ` (c-attractors are pairwise `> δγ/2`).
    pub delta: f64,
}

/// A coreset entry in `R`: handle, color, and the c-attractor it was
/// attracted by (used only for diagnostics/invariant checking — the
/// algorithm itself never follows the back-pointer, per invariant 1).
#[derive(Clone, Copy, Debug)]
pub(crate) struct CoresetEntry {
    pub id: PointId,
    pub color: u32,
    pub attractor: u64,
}

/// The state maintained for a single radius guess `γ`.
///
/// Points live in the algorithm's shared arena; the families below store
/// handles only, so the struct's footprint is independent of the point
/// dimensionality.
#[derive(Clone, Debug)]
pub struct GuessState {
    /// The guess value `γ`. (Fields are `pub(crate)` so the snapshot
    /// codec in [`crate::snapshot`] can serialize them directly.)
    pub(crate) gamma: f64,
    /// v-attractors `AV`: pairwise `> 2γ`, at most `k+1` after Update.
    pub(crate) av: BTreeMap<u64, PointId>,
    /// Current representative time of each live v-attractor.
    pub(crate) rep_of: HashMap<u64, u64>,
    /// v-representatives `RV` (current reps + orphans of dead attractors).
    pub(crate) rv: BTreeMap<u64, PointId>,
    /// c-attractors `A`: pairwise `> δγ/2`; size bounded by the doubling
    /// dimension (Theorem 2, Fact 2), not by an explicit cap.
    pub(crate) a: BTreeMap<u64, PointId>,
    /// Per-attractor, per-color representative times (`repsC`). Each
    /// deque is sorted by arrival (we always push the newest), so the
    /// min-TTL eviction of Algorithm 1 line 19 is `pop_front`.
    pub(crate) reps_c: HashMap<u64, Vec<VecDeque<u64>>>,
    /// Coreset `R`: union of the `repsC` sets plus orphans.
    pub(crate) r: BTreeMap<u64, CoresetEntry>,
    /// Arena ids whose refcount this guess observed crossing zero —
    /// drained by the owner's reclaim pass after each (possibly
    /// parallel) dispatch. Never observable between arrivals.
    pub(crate) dead: DeadList,
    /// Revision counter: bumps whenever a family mutates (`update`
    /// always inserts; `expire` bumps only when it removed something).
    /// Queries compare `(γ, rev)` pairs to skip re-scanning unchanged
    /// guesses. Not serialized — restored states restart at 0, which is
    /// safe because memos start empty too.
    pub(crate) rev: u64,
}

impl GuessState {
    /// Creates empty state for guess `gamma`.
    pub fn new(gamma: f64) -> Self {
        GuessState {
            gamma,
            av: BTreeMap::new(),
            rep_of: HashMap::new(),
            rv: BTreeMap::new(),
            a: BTreeMap::new(),
            reps_c: HashMap::new(),
            r: BTreeMap::new(),
            dead: DeadList::default(),
            rev: 0,
        }
    }

    /// The guess value `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The revision counter (bumps on every family mutation).
    pub fn rev(&self) -> u64 {
        self.rev
    }

    /// `|AV|` — the validity test: the guess is *valid* iff `|AV| ≤ k`.
    pub fn av_len(&self) -> usize {
        self.av.len()
    }

    /// Iterates the v-representative handles in arrival order (the set
    /// the Query validation packing runs on).
    pub fn rv_ids(&self) -> impl Iterator<Item = PointId> + '_ {
        self.rv.values().copied()
    }

    /// Resolves the v-representatives `RV` in arrival order.
    pub fn rv_points<'a, P>(&'a self, res: Resolver<'a, P>) -> impl Iterator<Item = &'a P> + 'a {
        self.rv.values().map(move |&id| res.get(id))
    }

    /// The coreset `R` as colored handles (what the id-slice solver entry
    /// points consume; no payloads are touched).
    pub fn coreset_ids(&self) -> Vec<ColoredId> {
        self.r
            .values()
            .map(|e| Colored::new(e.id, e.color))
            .collect()
    }

    /// Materializes the coreset `R` as owned colored points (tests and
    /// diagnostics; the query path stays on handles until solution
    /// assembly).
    pub fn coreset<P: Clone>(&self, res: Resolver<'_, P>) -> Vec<Colored<P>> {
        self.r
            .values()
            .map(|e| Colored::new(res.get(e.id).clone(), e.color))
            .collect()
    }

    /// `|R|` without materializing.
    pub fn coreset_len(&self) -> usize {
        self.r.len()
    }

    /// Total entries stored by this guess (`|AV| + |RV| + |A| + |R|`) —
    /// the paper's memory metric counts stored points across all sets.
    /// With the arena these are 8-byte handles, not payload copies.
    pub fn stored_points(&self) -> usize {
        self.av.len() + self.rv.len() + self.a.len() + self.r.len()
    }

    /// Releases every reference this guess holds (owner-side; used when a
    /// guess is retired wholesale, e.g. by the oblivious range
    /// adjustment).
    pub(crate) fn release_all<P>(&self, store: &mut PointStore<P>) {
        for &id in self
            .av
            .values()
            .chain(self.rv.values())
            .chain(self.a.values())
        {
            store.release_owned(id);
        }
        for e in self.r.values() {
            store.release_owned(e.id);
        }
    }

    /// Removes the point that expires at time `te` from every family
    /// (Algorithm 1, first step). Call once per arrival with
    /// `te = t - n` before inserting the new point.
    pub fn expire<P>(&mut self, res: Resolver<'_, P>, te: u64) {
        let mut removed = false;
        if let Some(id) = self.av.remove(&te) {
            // The attractor dies; its current representative becomes an
            // orphan and stays in RV until it expires or Cleanup drops it.
            self.rep_of.remove(&te);
            self.dead.release(res, id);
            removed = true;
        }
        // Invariant 1: if rv contains te as the *current* rep of a live
        // attractor v, then t(v) ≤ te, so v expired at te or earlier —
        // i.e. this entry is an orphan (or v == te, handled above).
        if let Some(id) = self.rv.remove(&te) {
            self.dead.release(res, id);
            removed = true;
        }
        if let Some(id) = self.a.remove(&te) {
            // Its representatives become orphans in R.
            self.reps_c.remove(&te);
            self.dead.release(res, id);
            removed = true;
        }
        // Same invariant on the coreset side: an expiring representative
        // cannot belong to a live c-attractor, so no deque fix-up needed.
        if let Some(e) = self.r.remove(&te) {
            self.dead.release(res, e.id);
            removed = true;
        }
        if removed {
            self.rev = self.rev.wrapping_add(1);
        }
    }

    /// Handles the arrival of the point behind `id` (color `color`) at
    /// time `t` — Algorithm 1's per-guess body (validation + coreset
    /// sides). The id must already be interned in the arena `res` views.
    pub fn update<M: Metric>(
        &mut self,
        metric: &M,
        res: Resolver<'_, M::Point>,
        t: u64,
        id: PointId,
        color: u32,
        b: Budgets<'_>,
    ) {
        let Budgets { caps, k, delta } = b;
        // Both validation branches insert into RV and both coreset
        // branches insert into R, so every arrival mutates this guess.
        self.rev = self.rev.wrapping_add(1);
        let p = res.get(id);
        let two_gamma = 2.0 * self.gamma;

        // ---- validation side (Algorithm 1, lines 1, 3–10) -------------------
        let psi = self
            .av
            .iter()
            .find(|(_, &v)| metric.dist(p, res.get(v)) <= two_gamma)
            .map(|(&tv, _)| tv);
        match psi {
            None => {
                self.av.insert(t, id);
                res.acquire(id);
                self.rep_of.insert(t, t);
                self.rv.insert(t, id);
                res.acquire(id);
                self.cleanup(res, k);
            }
            Some(v) => {
                let old = self
                    .rep_of
                    .insert(v, t)
                    .expect("live v-attractor has a representative");
                if let Some(oid) = self.rv.remove(&old) {
                    self.dead.release(res, oid);
                }
                self.rv.insert(t, id);
                res.acquire(id);
            }
        }

        // ---- coreset side (Algorithm 1, lines 2, 11–20) ----------------------
        let attach = delta * self.gamma / 2.0;
        let ci = color as usize;
        // φ = c-attractor within δγ/2 of p minimising |repsC^i| (line 16).
        let phi = self
            .a
            .iter()
            .filter(|(_, &q)| metric.dist(p, res.get(q)) <= attach)
            .min_by_key(|(&ta, _)| self.reps_c.get(&ta).map(|per| per[ci].len()).unwrap_or(0))
            .map(|(&ta, _)| ta);
        match phi {
            None => {
                // p becomes a new c-attractor with itself as its only rep.
                self.a.insert(t, id);
                res.acquire(id);
                let mut per = vec![VecDeque::new(); caps.len()];
                per[ci].push_back(t);
                self.reps_c.insert(t, per);
                self.r.insert(
                    t,
                    CoresetEntry {
                        id,
                        color,
                        attractor: t,
                    },
                );
                res.acquire(id);
            }
            Some(a) => {
                let per = self
                    .reps_c
                    .get_mut(&a)
                    .expect("live c-attractor has a repsC table");
                per[ci].push_back(t);
                self.r.insert(
                    t,
                    CoresetEntry {
                        id,
                        color,
                        attractor: a,
                    },
                );
                res.acquire(id);
                if per[ci].len() > caps[ci] {
                    // Evict the same-color representative with minimum
                    // TTL = earliest arrival = deque front.
                    let orem = per[ci].pop_front().expect("len > cap ≥ 1");
                    if let Some(e) = self.r.remove(&orem) {
                        self.dead.release(res, e.id);
                    }
                }
            }
        }
    }

    /// `Cleanup` (Algorithm 2), invoked after a new v-attractor arrival.
    fn cleanup<P>(&mut self, res: Resolver<'_, P>, k: usize) {
        if self.av.len() == k + 2 {
            // Remove the v-attractor with minimum TTL (oldest arrival);
            // its representative is orphaned but stays in RV.
            let oldest = *self.av.keys().next().expect("non-empty");
            if let Some(id) = self.av.remove(&oldest) {
                self.dead.release(res, id);
            }
            self.rep_of.remove(&oldest);
        }
        if self.av.len() == k + 1 {
            // AV certifies the guess invalid until its oldest attractor
            // expires; anything older than that attractor is dead weight.
            let tmin = *self.av.keys().next().expect("non-empty");
            // Prefix removals (strictly below tmin). Invariant 2: every
            // removed rv/r entry is an orphan — live attractors have
            // arrival ≥ tmin and reps are younger than their attractor.
            let keep_a = self.a.split_off(&tmin);
            for (dead, id) in std::mem::replace(&mut self.a, keep_a) {
                self.reps_c.remove(&dead);
                self.dead.release(res, id);
            }
            let keep_rv = self.rv.split_off(&tmin);
            for (_, id) in std::mem::replace(&mut self.rv, keep_rv) {
                self.dead.release(res, id);
            }
            let keep_r = self.r.split_off(&tmin);
            for (_, e) in std::mem::replace(&mut self.r, keep_r) {
                self.dead.release(res, e.id);
            }
        }
    }

    /// Verifies the structural invariants of this guess at time `t` for
    /// window length `n`. Used by tests and debug assertions; returns a
    /// description of the first violation found.
    pub fn check_invariants<M: Metric>(
        &self,
        metric: &M,
        res: Resolver<'_, M::Point>,
        t: u64,
        n: u64,
        b: Budgets<'_>,
    ) -> Result<(), String> {
        let Budgets { caps, k, delta } = b;
        let live = |time: u64| time + n > t;
        // All stored times are active and all handles resolve.
        for (&time, &id) in self.av.iter().chain(self.a.iter()).chain(self.rv.iter()) {
            if !live(time) {
                return Err(format!("expired entry {time} at t={t}"));
            }
            if res.try_get(id).is_none() {
                return Err(format!("entry {time} holds a collected arena id"));
            }
        }
        for (&time, e) in &self.r {
            if !live(time) {
                return Err(format!("expired r entry {time} at t={t}"));
            }
            if res.try_get(e.id).is_none() {
                return Err(format!("r entry {time} holds a collected arena id"));
            }
        }
        // AV bounded and pairwise > 2γ.
        if self.av.len() > k + 1 {
            return Err(format!("|AV| = {} > k+1", self.av.len()));
        }
        let avs: Vec<_> = self.av.iter().collect();
        for i in 0..avs.len() {
            for j in (i + 1)..avs.len() {
                if metric.dist(res.get(*avs[i].1), res.get(*avs[j].1)) <= 2.0 * self.gamma {
                    return Err(format!(
                        "v-attractors {} and {} within 2γ",
                        avs[i].0, avs[j].0
                    ));
                }
            }
        }
        // A pairwise > δγ/2.
        let cas: Vec<_> = self.a.iter().collect();
        for i in 0..cas.len() {
            for j in (i + 1)..cas.len() {
                if metric.dist(res.get(*cas[i].1), res.get(*cas[j].1)) <= delta * self.gamma / 2.0 {
                    return Err(format!(
                        "c-attractors {} and {} within δγ/2",
                        cas[i].0, cas[j].0
                    ));
                }
            }
        }
        // rep_of maps live attractors to live rv entries.
        for (&v, &rep) in &self.rep_of {
            if !self.av.contains_key(&v) {
                return Err(format!("rep_of references dead attractor {v}"));
            }
            if !self.rv.contains_key(&rep) {
                return Err(format!("rep_of[{v}] = {rep} missing from RV"));
            }
            if rep < v {
                return Err(format!("rep {rep} older than attractor {v}"));
            }
        }
        for &v in self.av.keys() {
            if !self.rep_of.contains_key(&v) {
                return Err(format!("live attractor {v} lacks a representative"));
            }
        }
        // reps_c: per-color caps, sorted deques, entries present in R with
        // the right attractor, within δγ of the attractor (2·(δγ/2)).
        for (&a, per) in &self.reps_c {
            if !self.a.contains_key(&a) {
                return Err(format!("repsC table for dead attractor {a}"));
            }
            if per.len() != caps.len() {
                return Err("repsC color arity mismatch".into());
            }
            for (ci, dq) in per.iter().enumerate() {
                if dq.len() > caps[ci] {
                    return Err(format!("repsC^{ci}({a}) over capacity"));
                }
                let mut prev = 0u64;
                for &time in dq {
                    if time < prev {
                        return Err(format!("repsC deque of {a} unsorted"));
                    }
                    prev = time;
                    match self.r.get(&time) {
                        None => return Err(format!("repsC entry {time} missing from R")),
                        Some(e) => {
                            if e.attractor != a || e.color as usize != ci {
                                return Err(format!("R entry {time} metadata mismatch"));
                            }
                            let d = metric.dist(res.get(e.id), res.get(self.a[&a]));
                            if d > delta * self.gamma / 2.0 + 1e-9 {
                                return Err(format!(
                                    "rep {time} at distance {d} > δγ/2 from attractor {a}"
                                ));
                            }
                        }
                    }
                }
            }
        }
        // Every R entry whose attractor is live must be listed in repsC.
        for (&time, e) in &self.r {
            if let Some(per) = self.reps_c.get(&e.attractor) {
                if !per[e.color as usize].contains(&time) {
                    return Err(format!("R entry {time} not tracked by its live attractor"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsw_metric::{EuclidPoint, Euclidean};

    fn p(x: f64) -> EuclidPoint {
        EuclidPoint::new(vec![x])
    }

    /// A guess plus its arena, driven in lockstep the way the algorithms
    /// drive them (expire → update → reclaim → epoch sweep).
    struct Harness {
        store: PointStore<EuclidPoint>,
        g: GuessState,
    }

    impl Harness {
        fn new(gamma: f64) -> Self {
            Harness {
                store: PointStore::new(),
                g: GuessState::new(gamma),
            }
        }

        fn step(&mut self, t: u64, n: u64, x: f64, color: u32, caps: &[usize], delta: f64) {
            let k: usize = caps.iter().sum();
            let te = t.checked_sub(n);
            let id = self.store.insert(t, p(x));
            let res = self.store.resolver();
            if let Some(te) = te {
                self.g.expire(res, te);
            }
            self.g
                .update(&Euclidean, res, t, id, color, Budgets { caps, k, delta });
            let mut dead = Vec::new();
            self.g.dead.drain_into(&mut dead);
            for id in dead {
                self.store.free_if_dead(id);
            }
            if let Some(te) = te {
                self.store.expire(te);
            }
        }

        fn check(&self, t: u64, n: u64, caps: &[usize], delta: f64) {
            let k: usize = caps.iter().sum();
            self.g
                .check_invariants(
                    &Euclidean,
                    self.store.resolver(),
                    t,
                    n,
                    Budgets { caps, k, delta },
                )
                .unwrap_or_else(|e| panic!("t={t}: {e}"));
        }
    }

    /// Drives a guess state over a 1-D stream with full checks.
    fn drive(gamma: f64, delta: f64, caps: &[usize], n: u64, xs: &[f64]) -> Harness {
        let mut h = Harness::new(gamma);
        for (i, &x) in xs.iter().enumerate() {
            let t = i as u64 + 1;
            let color = (i % caps.len()) as u32;
            h.step(t, n, x, color, caps, delta);
            h.check(t, n, caps, delta);
        }
        h
    }

    #[test]
    fn single_point_everywhere() {
        let h = drive(1.0, 1.0, &[1], 10, &[5.0]);
        assert_eq!(h.g.av_len(), 1);
        assert_eq!(h.g.coreset_len(), 1);
        assert_eq!(h.g.stored_points(), 4); // av + rv + a + r
        assert_eq!(h.store.live_points(), 1, "one payload behind 4 handles");
    }

    #[test]
    fn close_points_share_attractors() {
        // All points within 2γ of the first: one v-attractor; within
        // δγ/2: one c-attractor.
        let h = drive(10.0, 1.0, &[2], 100, &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(h.g.av_len(), 1);
        assert_eq!(h.g.a.len(), 1);
        // caps[0] = 2: coreset keeps the 2 newest.
        assert_eq!(h.g.coreset_len(), 2);
        let times: Vec<u64> = h.g.r.keys().copied().collect();
        assert_eq!(times, vec![3, 4]);
    }

    #[test]
    fn rv_keeps_latest_rep_per_attractor() {
        let h = drive(10.0, 1.0, &[1], 100, &[0.0, 1.0, 2.0]);
        // One attractor (t=1); rep replaced twice; RV = {newest}.
        assert_eq!(h.g.rv.len(), 1);
        assert!(h.g.rv.contains_key(&3));
    }

    #[test]
    fn cleanup_caps_av_at_k_plus_one() {
        // γ small: every distinct point is its own v-attractor. k = 1:
        // av must stay at ≤ 2 entries (k+1) after updates.
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 100.0).collect();
        let h = drive(1.0, 1.0, &[1], 100, &xs);
        assert_eq!(h.g.av_len(), 2);
        // The two newest attractors survive.
        assert!(h.g.av.contains_key(&9) && h.g.av.contains_key(&10));
    }

    #[test]
    fn cleanup_prunes_older_than_oldest_attractor() {
        // Same far-apart stream; after cleanup, coreset entries older
        // than the oldest v-attractor (t=9) must be gone — and their
        // payloads reclaimed from the arena, not just their handles.
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 100.0).collect();
        let h = drive(1.0, 1.0, &[1], 100, &xs);
        assert!(h.g.r.keys().all(|&t| t >= 9));
        assert!(h.g.a.keys().all(|&t| t >= 9));
        assert!(h.g.rv.keys().all(|&t| t >= 9));
        assert_eq!(
            h.store.live_points(),
            2,
            "cleanup must reclaim evicted payloads"
        );
    }

    #[test]
    fn expiry_removes_all_traces() {
        let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        // n = 3: by t=8 only arrivals 6..8 are active.
        let h = drive(0.2, 1.0, &[1, 1], 3, &xs);
        assert!(h.g.av.keys().all(|&t| t >= 6));
        assert!(h.g.r.keys().all(|&t| t >= 6));
        assert!(h.g.stored_points() <= 4 * 3);
        assert!(h.store.live_points() <= 3, "arena bounded by the window");
    }

    #[test]
    fn orphaned_reps_survive_attractor_expiry() {
        // γ large: first point is the only v-attractor; n = 3.
        // t=1: attractor born. t=2,3: reps replace each other.
        // t=4: attractor (t=1) expires; the newest orphan rep must still
        // be in RV afterwards.
        let mut h = Harness::new(1000.0);
        let caps = [1usize];
        for t in 1..=4u64 {
            h.step(t, 3, t as f64, 0, &caps, 1.0);
            h.check(t, 3, &caps, 1.0);
        }
        // At t=4 the original attractor (t=1) expired. The arrival at
        // t=4 found no live attractor (t=1 was removed first), so it
        // became a new attractor. The orphan rep from t=3 must survive.
        assert!(h.g.rv.contains_key(&3), "orphan rep evicted too early");
        assert!(h.g.av.contains_key(&4));
    }

    #[test]
    fn per_color_caps_evict_oldest_of_that_color() {
        // One c-attractor; colors alternate 0,1; caps [1,2].
        let mut h = Harness::new(10.0);
        let caps = [1usize, 2];
        let xs = [0.0, 0.1, 0.2, 0.3, 0.4];
        for (i, &x) in xs.iter().enumerate() {
            let t = i as u64 + 1;
            h.step(t, 100, x, (i % 2) as u32, &caps, 1.0);
        }
        // Arrivals: t1 c0, t2 c1, t3 c0, t4 c1, t5 c0.
        // Color 0 cap 1: keeps t5. Color 1 cap 2: keeps t2, t4.
        let times: Vec<u64> = h.g.r.keys().copied().collect();
        assert_eq!(times, vec![2, 4, 5]);
        h.check(5, 100, &caps, 1.0);
    }

    #[test]
    fn invariant_checker_detects_corruption() {
        let mut h = drive(10.0, 1.0, &[1], 100, &[0.0, 1.0]);
        // Corrupt: inject a duplicate v-attractor within 2γ.
        let fake = h.store.insert(99, p(0.5));
        h.g.av.insert(99, fake);
        h.g.rep_of.insert(99, 99);
        h.g.rv.insert(99, fake);
        assert!(h
            .g
            .check_invariants(
                &Euclidean,
                h.store.resolver(),
                99,
                1000,
                Budgets {
                    caps: &[1],
                    k: 1,
                    delta: 1.0
                }
            )
            .is_err());
    }

    #[test]
    fn release_all_returns_every_reference() {
        let mut h = drive(10.0, 1.0, &[2, 2], 100, &[0.0, 1.0, 30.0, 31.0]);
        h.g.release_all(&mut h.store);
        assert_eq!(h.store.live_points(), 0, "retired guess leaked payloads");
    }
}

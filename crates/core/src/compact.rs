//! The Corollary 2 variant: dimension-independent space.
//!
//! The coreset families (`A`, `repsC`, `R`) are dropped entirely; instead
//! each v-attractor's single representative is upgraded to a *maximal
//! independent set* of the most recent points it attracted (at most `k_i`
//! per color). `Query` selects the guess exactly as before and runs the
//! sequential algorithm on `RV` itself. This costs a weaker — but still
//! constant — approximation factor (`31 + O(ε)` with `β = ε`), in
//! exchange for `O(k² log Δ / ε)` space with **no** `(c/ε)^D` term: the
//! per-guess memory is at most a factor `k` larger than the plain
//! validation structures, regardless of the data's doubling dimension.
//!
//! The paper notes that running the main algorithm with `δ = 4` produces
//! a coreset "comparable in size to the validation set", i.e. this
//! variant; we implement it explicitly so the ablation benchmark can
//! compare the two (`ablation_compact`).
//!
//! Like every variant, the per-guess families hold arena handles; the
//! point payloads live once in the shared
//! [`PointStore`](fairsw_metric::PointStore).

use crate::algorithm::QueryScratch;
use crate::api::{MemoryStats, QueryError, SlidingWindowClustering, Solution, SolutionExtras};
use crate::config::{validate_scale, ConfigError, FairSWConfig};
use crate::guess_set::{DeadList, GuessSet, GuessSlot};
use crate::memo::{prefix_for, QueryMemo};
use crate::parallel::{Exec, ParallelismSpec};
use fairsw_metric::{packing_scan, Colored, ColoredId, Metric, PointId, Resolver};
use fairsw_sequential::{FairCenterSolver, Jones};
use fairsw_stream::Lattice;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// An `RV` entry of the compact variant: handle, color and the
/// v-attractor that attracted it.
#[derive(Clone, Copy, Debug)]
struct RvEntry {
    id: PointId,
    color: u32,
    attractor: u64,
}

/// Per-guess state of the compact variant.
#[derive(Clone, Debug)]
struct CompactGuess {
    gamma: f64,
    /// v-attractors, pairwise `> 2γ`, at most `k+1` after Update.
    av: BTreeMap<u64, PointId>,
    /// Per-attractor, per-color representative times (sorted deques).
    reps_v: HashMap<u64, Vec<VecDeque<u64>>>,
    /// All representatives (current + orphans of dead attractors).
    rv: BTreeMap<u64, RvEntry>,
    /// Arena ids observed crossing refcount zero (owner drains).
    dead: DeadList,
    /// Revision counter for the query memo (bumps on family mutation).
    rev: u64,
}

impl GuessSlot for CompactGuess {
    fn gamma(&self) -> f64 {
        self.gamma
    }
    fn entries(&self) -> usize {
        self.stored_points()
    }
    fn drain_dead(&mut self, into: &mut Vec<PointId>) {
        self.dead.drain_into(into);
    }
    fn rev(&self) -> u64 {
        self.rev
    }
}

impl CompactGuess {
    fn new(gamma: f64) -> Self {
        CompactGuess {
            gamma,
            av: BTreeMap::new(),
            reps_v: HashMap::new(),
            rv: BTreeMap::new(),
            dead: DeadList::default(),
            rev: 0,
        }
    }

    fn stored_points(&self) -> usize {
        self.av.len() + self.rv.len()
    }

    fn expire<P>(&mut self, res: Resolver<'_, P>, te: u64) {
        let mut removed = false;
        if let Some(id) = self.av.remove(&te) {
            // Representatives are orphaned, not removed (same timing
            // invariant as the main algorithm: reps are never older than
            // their attractor, so an expiring rep's attractor is gone).
            self.reps_v.remove(&te);
            self.dead.release(res, id);
            removed = true;
        }
        if let Some(e) = self.rv.remove(&te) {
            self.dead.release(res, e.id);
            removed = true;
        }
        if removed {
            self.rev = self.rev.wrapping_add(1);
        }
    }

    #[allow(clippy::too_many_arguments)] // internal; mirrors Algorithm 1's parameter list
    fn update<M: Metric>(
        &mut self,
        metric: &M,
        res: Resolver<'_, M::Point>,
        t: u64,
        id: PointId,
        color: u32,
        caps: &[usize],
        k: usize,
    ) {
        // Both branches insert into RV, so every arrival mutates.
        self.rev = self.rev.wrapping_add(1);
        let p = res.get(id);
        let two_gamma = 2.0 * self.gamma;
        let ci = color as usize;
        // ψ = attractor within 2γ with the fewest same-color reps (the
        // analog of the coreset side's balancing rule, which is what
        // keeps each attractor's rep set maximal w.r.t. its cluster).
        let psi = self
            .av
            .iter()
            .filter(|(_, &v)| metric.dist(p, res.get(v)) <= two_gamma)
            .min_by_key(|(&tv, _)| self.reps_v.get(&tv).map(|per| per[ci].len()).unwrap_or(0))
            .map(|(&tv, _)| tv);
        match psi {
            None => {
                self.av.insert(t, id);
                res.acquire(id);
                let mut per = vec![VecDeque::new(); caps.len()];
                per[ci].push_back(t);
                self.reps_v.insert(t, per);
                self.rv.insert(
                    t,
                    RvEntry {
                        id,
                        color,
                        attractor: t,
                    },
                );
                res.acquire(id);
                self.cleanup(res, k);
            }
            Some(v) => {
                let per = self.reps_v.get_mut(&v).expect("live attractor");
                per[ci].push_back(t);
                self.rv.insert(
                    t,
                    RvEntry {
                        id,
                        color,
                        attractor: v,
                    },
                );
                res.acquire(id);
                if per[ci].len() > caps[ci] {
                    let orem = per[ci].pop_front().expect("over cap");
                    if let Some(e) = self.rv.remove(&orem) {
                        self.dead.release(res, e.id);
                    }
                }
            }
        }
    }

    fn cleanup<P>(&mut self, res: Resolver<'_, P>, k: usize) {
        if self.av.len() == k + 2 {
            let oldest = *self.av.keys().next().expect("non-empty");
            if let Some(id) = self.av.remove(&oldest) {
                self.dead.release(res, id);
            }
            self.reps_v.remove(&oldest);
        }
        if self.av.len() == k + 1 {
            let tmin = *self.av.keys().next().expect("non-empty");
            // Prefix prune: only orphans can be below tmin (reps of live
            // attractors are younger than their attractor ≥ tmin).
            let keep = self.rv.split_off(&tmin);
            for (_, e) in std::mem::replace(&mut self.rv, keep) {
                self.dead.release(res, e.id);
            }
        }
    }

    /// Structural invariants (test helper).
    fn check_invariants<M: Metric>(
        &self,
        metric: &M,
        res: Resolver<'_, M::Point>,
        t: u64,
        n: u64,
        caps: &[usize],
        k: usize,
    ) -> Result<(), String> {
        let live = |time: u64| time + n > t;
        if self.av.len() > k + 1 {
            return Err(format!("|AV| = {} > k+1", self.av.len()));
        }
        let avs: Vec<_> = self.av.iter().collect();
        for i in 0..avs.len() {
            if !live(*avs[i].0) {
                return Err(format!("expired attractor {}", avs[i].0));
            }
            if res.try_get(*avs[i].1).is_none() {
                return Err(format!("attractor {} holds a collected id", avs[i].0));
            }
            for j in (i + 1)..avs.len() {
                if metric.dist(res.get(*avs[i].1), res.get(*avs[j].1)) <= 2.0 * self.gamma {
                    return Err("attractors within 2γ".into());
                }
            }
        }
        for (&time, e) in &self.rv {
            if !live(time) {
                return Err(format!("expired rv {time}"));
            }
            if res.try_get(e.id).is_none() {
                return Err(format!("rv {time} holds a collected id"));
            }
            if let Some(per) = self.reps_v.get(&e.attractor) {
                if !per[e.color as usize].contains(&time) {
                    return Err(format!("rv {time} untracked by live attractor"));
                }
                let d = metric.dist(res.get(e.id), res.get(self.av[&e.attractor]));
                if d > 2.0 * self.gamma + 1e-9 {
                    return Err(format!("rep {time} outside 2γ of attractor"));
                }
            }
        }
        for (&a, per) in &self.reps_v {
            if !self.av.contains_key(&a) {
                return Err(format!("reps_v for dead attractor {a}"));
            }
            for (ci, dq) in per.iter().enumerate() {
                if dq.len() > caps[ci] {
                    return Err(format!("reps_v^{ci}({a}) over capacity"));
                }
                for &time in dq {
                    if !self.rv.contains_key(&time) {
                        return Err(format!("tracked rep {time} missing from rv"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// The Corollary 2 algorithm: validation-only structures, `O(1)`
/// approximation, space free of the doubling dimension.
#[derive(Clone, Debug)]
pub struct CompactFairSlidingWindow<M: Metric> {
    metric: M,
    cfg: FairSWConfig,
    k: usize,
    set: GuessSet<CompactGuess, M::Point>,
    t: u64,
    exec: Exec,
    scratch: QueryScratch<M::Point>,
    memo: QueryMemo<M::Point>,
}

impl<M: Metric> CompactFairSlidingWindow<M> {
    /// Creates the compact algorithm for a stream with distances in
    /// `[dmin, dmax]`. Corollary 2 suggests `β = ε`; any positive `β`
    /// works, trading guesses for accuracy. The config's `delta` is
    /// ignored (there is no coreset side).
    pub fn new(cfg: FairSWConfig, metric: M, dmin: f64, dmax: f64) -> Result<Self, ConfigError> {
        cfg.validate()?;
        validate_scale(dmin, dmax)?;
        let lattice = Lattice::new(cfg.beta);
        let guesses = lattice
            .span(dmin, dmax)
            .map(|lvl| CompactGuess::new(lattice.value(lvl)))
            .collect();
        let k = cfg.k();
        Ok(CompactFairSlidingWindow {
            metric,
            cfg,
            k,
            set: GuessSet::new(guesses),
            t: 0,
            exec: Exec::default(),
            scratch: QueryScratch::default(),
            memo: QueryMemo::default(),
        })
    }

    /// Spreads per-guess work over `spec` worker threads (bit-identical
    /// to sequential execution; see [`crate::parallel`]).
    pub fn with_parallelism(mut self, spec: ParallelismSpec) -> Self {
        self.exec = Exec::new(spec);
        self
    }

    /// The effective worker-thread count (1 when sequential).
    pub fn threads(&self) -> usize {
        self.exec.threads()
    }

    /// Drops every streamed point and rebuilds empty structures from the
    /// retained configuration (same guess lattice, same worker pool) —
    /// the delete-and-recreate reuse path of serving layers.
    pub fn reset(&mut self) {
        let gammas: Vec<f64> = self.set.guesses.iter().map(|g| g.gamma).collect();
        self.set = GuessSet::new(gammas.into_iter().map(CompactGuess::new).collect());
        self.t = 0;
        self.memo.clear();
    }

    /// Queries with an explicit solver: guess selection identical to the
    /// main algorithm — `RV` is gathered into the shard's scratch view
    /// once and the packing runs batched — then the sequential solver
    /// runs on `RV` directly (payload copies materialize only inside
    /// the solver's id-slice entry point).
    pub fn query_with<S>(&self, solver: &S) -> Result<Solution<M::Point>, QueryError>
    where
        S: FairCenterSolver<M> + Sync,
        M: Sync,
        M::Point: Send + Sync,
    {
        if self.t == 0 {
            return Err(QueryError::EmptyWindow);
        }
        // Skip leading guesses a previous scan proved non-qualifying at
        // an identical `(γ, rev)` state (solver-independent test).
        let pairs: Vec<(f64, u64)> = self
            .set
            .guesses
            .iter()
            .map(|g| (GuessSlot::gamma(g), GuessSlot::rev(g)))
            .collect();
        let skip = self.memo.skip_count(pairs.iter().copied());
        let res = self.set.store.resolver();
        let result = self
            .exec
            .find_map_first_pooled(&self.scratch, &self.set.guesses[skip..], |g, s| {
                if g.av.len() > self.k {
                    return None;
                }
                // The packing never reads colors: gather handles only.
                s.view
                    .gather_ids(&self.metric, res, g.rv.values().map(|e| e.id));
                packing_scan(
                    &self.metric,
                    &s.view,
                    2.0 * g.gamma,
                    self.k,
                    &mut s.dist,
                    &mut s.min_dist,
                    &mut s.packed,
                )?;
                let ids: Vec<ColoredId> =
                    g.rv.values().map(|e| Colored::new(e.id, e.color)).collect();
                Some(
                    solver
                        .solve_ids(&self.metric, res, &ids, &self.cfg.capacities)
                        .map_err(QueryError::from)
                        .map(|sol| Solution {
                            centers: sol.centers,
                            guess: g.gamma,
                            coreset_size: ids.len(),
                            coreset_radius: sol.radius,
                            extras: SolutionExtras::None,
                        }),
                )
            })
            .unwrap_or(Err(QueryError::NoValidGuess));
        self.memo
            .record_prefix(self.t, prefix_for(pairs.iter().copied(), &result));
        result
    }
}

impl<M> SlidingWindowClustering<M> for CompactFairSlidingWindow<M>
where
    M: Metric + Sync,
    M::Point: Send + Sync,
{
    /// Handles one arrival (interned once, fanned out per guess when a
    /// pool is set).
    fn insert(&mut self, p: Colored<M::Point>) {
        self.t += 1;
        let t = self.t;
        let te = t.checked_sub(self.cfg.window_size as u64);
        let id = self.set.store.insert(t, p.point);
        let metric = &self.metric;
        let caps = &self.cfg.capacities;
        let k = self.k;
        let res = self.set.store.resolver();
        self.exec.for_each_mut(&mut self.set.guesses, |g| {
            if let Some(te) = te {
                g.expire(res, te);
            }
            g.update(metric, res, t, id, p.color, caps, k);
        });
        self.set.finish_arrival(te);
    }

    /// Batch arrivals: the batch is interned up front and each guess
    /// replays it locally (one pool dispatch per batch; identical
    /// evolution to repeated insert).
    fn insert_batch<I>(&mut self, batch: I)
    where
        I: IntoIterator<Item = Colored<M::Point>>,
    {
        let n = self.cfg.window_size as u64;
        let ids: Vec<ColoredId> = batch
            .into_iter()
            .enumerate()
            .map(|(j, p)| {
                let t = self.t + 1 + j as u64;
                Colored::new(self.set.store.insert(t, p.point), p.color)
            })
            .collect();
        let metric = &self.metric;
        let caps = &self.cfg.capacities;
        let k = self.k;
        let res = self.set.store.resolver();
        self.t = self
            .exec
            .replay_batch(&mut self.set.guesses, &ids, self.t, n, |g, t, te, cid| {
                if let Some(te) = te {
                    g.expire(res, te);
                }
                g.update(metric, res, t, cid.point, cid.color, caps, k);
            });
        self.set.finish_arrival(self.t.checked_sub(n));
    }

    /// Query with the default solver, memoized on the engine time
    /// (repeat queries at unchanged `t` return the recorded result).
    fn query(&self) -> Result<Solution<M::Point>, QueryError> {
        if let Some(hit) = self.memo.cached(self.t) {
            return hit;
        }
        let result = self.query_with(&Jones);
        self.memo.record_result(self.t, &result);
        result
    }

    fn time(&self) -> u64 {
        self.t
    }

    fn window_size(&self) -> usize {
        self.cfg.window_size
    }

    fn memory_stats(&self) -> MemoryStats {
        self.set.memory_stats()
    }

    fn stored_points(&self) -> usize {
        self.set.stored_points()
    }

    fn num_guesses(&self) -> usize {
        self.set.guesses.len()
    }

    /// Verifies per-guess invariants (test helper).
    fn check_invariants(&self) -> Result<(), String> {
        let res = self.set.store.resolver();
        for g in &self.set.guesses {
            g.check_invariants(
                &self.metric,
                res,
                self.t,
                self.cfg.window_size as u64,
                &self.cfg.capacities,
                self.k,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsw_metric::{EuclidPoint, Euclidean};
    fn cfg(n: usize, caps: Vec<usize>) -> FairSWConfig {
        FairSWConfig::builder()
            .window_size(n)
            .capacities(caps)
            .beta(2.0)
            .build()
            .unwrap()
    }

    fn cp(x: f64, c: u32) -> Colored<EuclidPoint> {
        Colored::new(EuclidPoint::new(vec![x]), c)
    }

    #[test]
    fn roundtrip_and_invariants() {
        let mut sw =
            CompactFairSlidingWindow::new(cfg(40, vec![1, 1]), Euclidean, 0.05, 500.0).unwrap();
        for i in 0..150u64 {
            let x = (i as f64 * 0.618_033_988_7).fract() * 200.0;
            sw.insert(cp(x, (i % 2) as u32));
            if i % 10 == 0 {
                sw.check_invariants().unwrap();
            }
        }
        let sol = sw.query().unwrap();
        assert!(!sol.centers.is_empty());
        assert!(sol.centers.len() <= 2);
    }

    #[test]
    fn memory_at_most_k_times_validation() {
        // Per guess: |AV| ≤ k+1 and |RV| ≤ (k+1)·k + orphan slack; the
        // whole structure stays small even with a large window.
        let mut sw =
            CompactFairSlidingWindow::new(cfg(1000, vec![2, 2]), Euclidean, 0.05, 500.0).unwrap();
        for i in 0..3000u64 {
            let x = (i as f64 * 0.324_717_957_2).fract() * 300.0;
            sw.insert(cp(x, (i % 2) as u32));
        }
        let per_guess = sw.stored_points() / sw.num_guesses().max(1);
        assert!(
            per_guess <= 4 * (sw.k + 1) * (sw.k + 1),
            "per-guess memory {per_guess} too large"
        );
        assert!(
            sw.stored_points() < 1000,
            "compact variant beats the window"
        );
        // The arena holds each referenced point once: resident payloads
        // are bounded by the deduplicated union, far below the window.
        let stats = sw.memory_stats();
        assert!(stats.unique_points <= stats.stored_points());
        assert!(stats.unique_points < 1000);
    }

    #[test]
    fn empty_query_errors() {
        let sw = CompactFairSlidingWindow::new(cfg(10, vec![1]), Euclidean, 0.1, 10.0).unwrap();
        assert!(matches!(sw.query(), Err(QueryError::EmptyWindow)));
    }

    #[test]
    fn fairness_respected() {
        let mut sw =
            CompactFairSlidingWindow::new(cfg(50, vec![1, 2]), Euclidean, 0.05, 500.0).unwrap();
        for i in 0..200u64 {
            let x = (i as f64 * 0.445_041_867_9).fract() * 400.0;
            sw.insert(cp(x, (i % 3 == 0) as u32));
        }
        let sol = sw.query().unwrap();
        let c0 = sol.centers.iter().filter(|c| c.color == 0).count();
        let c1 = sol.centers.iter().filter(|c| c.color == 1).count();
        assert!(c0 <= 1 && c1 <= 2);
    }
}

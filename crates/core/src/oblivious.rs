//! The aspect-ratio-oblivious variant ("OursOblivious").
//!
//! The main algorithm needs `dmin`/`dmax` of the stream to lay out its
//! guess lattice. This variant estimates the relevant scale range *of the
//! current window* on the fly, maintaining guesses only inside it
//! (cf. the techniques of Pellizzoni et al. \[8\] adopted by the paper;
//! DESIGN.md §4 documents our estimator):
//!
//! * the **upper** cutoff comes from a sliding-window diameter estimator
//!   (rotating anchors, lattice-quantized windowed maxima): guesses above
//!   the window diameter are redundant — the one just above it already
//!   yields a single cluster;
//! * the **lower** cutoff is the *invalidity frontier*: if a guess `γ` is
//!   invalid (`|AV| = k+1` points pairwise `> 2γ`), every smaller guess
//!   is invalid too (the same witness separates further), so guesses well
//!   below the largest invalid level are dead weight and are dropped,
//!   keeping one buffer level;
//! * when no materialized guess is invalid the range is extended
//!   downward a level at a time, bounded below by the windowed minimum of
//!   consecutive-arrival distances (a cheap `dmin` proxy; descent also
//!   stops as soon as a level turns invalid).
//!
//! Freshly materialized guesses have missed older window points, so they
//! cannot certify validity yet: a guess born at time `b` is **mature**
//! once it has processed every arrival of the current window
//! (`b + n - 1 ≤ t`, or `b = 1`). `Query` prefers mature guesses and
//! falls back to immature ones (best effort) only when no mature guess
//! qualifies — in the experiments this only happens during stream warm-up.
//! The returned [`Solution`] records that provenance in its
//! [`SolutionExtras::Oblivious`] annotation.

use crate::algorithm::{query_over_guesses, QueryScratch};
use crate::api::{MemoryStats, QueryError, SlidingWindowClustering, Solution, SolutionExtras};
use crate::config::{ConfigError, FairSWConfig};
use crate::guess::{Budgets, GuessState};
use crate::guess_set::{arena_stats, reclaim_dead};
use crate::memo::QueryMemo;
use crate::parallel::{Exec, ParallelismSpec};
use fairsw_metric::{Colored, Metric, PointFootprint, PointStore};
use fairsw_sequential::{FairCenterSolver, Jones};
use fairsw_stream::{DiameterEstimator, Lattice, WindowedMinLattice};
use std::collections::BTreeMap;

/// A materialized guess plus its birth time (for maturity tracking).
#[derive(Clone, Debug)]
struct BornGuess {
    state: GuessState,
    born: u64,
}

/// The oblivious sliding-window algorithm: no prior scale knowledge.
#[derive(Clone, Debug)]
pub struct ObliviousFairSlidingWindow<M: Metric> {
    metric: M,
    cfg: FairSWConfig,
    k: usize,
    lattice: Lattice,
    /// Materialized guesses keyed by lattice level (ascending).
    guesses: BTreeMap<i32, BornGuess>,
    /// The shared interned arena the guesses' handles point into.
    store: PointStore<M::Point>,
    diam: DiameterEstimator<M>,
    /// Windowed minimum of consecutive-arrival distances: the descent
    /// floor for the lower cutoff.
    consec_min: WindowedMinLattice,
    /// Last arrival (fallback for degenerate all-coincident windows).
    last: Option<Colored<M::Point>>,
    prev_point: Option<M::Point>,
    t: u64,
    exec: Exec,
    scratch: QueryScratch<M::Point>,
    /// Same-`t` result memo only: the guess set is dynamic (levels are
    /// materialized and retired between arrivals), so no cross-arrival
    /// prefix skipping is attempted for this variant.
    memo: QueryMemo<M::Point>,
}

/// How many levels to keep below the invalidity frontier.
const LOWER_BUFFER: i32 = 1;
/// How many levels to keep above the diameter cutoff (hysteresis so a
/// flickering estimate does not churn guesses).
const UPPER_BUFFER: i32 = 2;
/// Extra levels allowed below the consecutive-distance floor.
const FLOOR_MARGIN: i32 = 3;

impl<M: Metric> ObliviousFairSlidingWindow<M> {
    /// Creates the oblivious algorithm (same configuration as the main
    /// one; no `dmin`/`dmax` needed).
    pub fn new(cfg: FairSWConfig, metric: M) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let lattice = Lattice::new(cfg.beta);
        let k = cfg.k();
        let n = cfg.window_size as u64;
        Ok(ObliviousFairSlidingWindow {
            diam: DiameterEstimator::new(metric.clone(), lattice, n),
            consec_min: WindowedMinLattice::new(lattice, n.max(2) - 1),
            metric,
            cfg,
            k,
            lattice,
            guesses: BTreeMap::new(),
            store: PointStore::new(),
            last: None,
            prev_point: None,
            t: 0,
            exec: Exec::default(),
            scratch: QueryScratch::default(),
            memo: QueryMemo::default(),
        })
    }

    /// Spreads per-guess work over `spec` worker threads. Guess
    /// materialization and retirement (the range adjustment) stay on the
    /// calling thread — they mutate the guess *set* — so the pool only
    /// ever sees a frozen set of independent per-guess states, which is
    /// what keeps parallel runs bit-identical to sequential ones.
    pub fn with_parallelism(mut self, spec: ParallelismSpec) -> Self {
        self.exec = Exec::new(spec);
        self
    }

    /// The effective worker-thread count (1 when sequential).
    pub fn threads(&self) -> usize {
        self.exec.threads()
    }

    /// Drops every streamed point, all materialized guesses and both
    /// scale estimators, rebuilding the empty adaptive state from the
    /// retained configuration (worker pool kept) — the delete-and-
    /// recreate reuse path of serving layers.
    pub fn reset(&mut self) {
        let n = self.cfg.window_size as u64;
        self.guesses.clear();
        self.store = PointStore::new();
        self.diam = DiameterEstimator::new(self.metric.clone(), self.lattice, n);
        self.consec_min = WindowedMinLattice::new(self.lattice, n.max(2) - 1);
        self.last = None;
        self.prev_point = None;
        self.t = 0;
        self.memo.clear();
    }

    /// Materializes / drops levels according to the current estimates.
    fn adjust_range(&mut self) {
        let upper = self.diam.upper().filter(|&u| u > 0.0);
        let Some(upper) = upper else {
            return; // no scale information yet (≤ 1 distinct point)
        };
        let hi = self.lattice.level_above(upper);

        // Materialize upward to hi (and keep UPPER_BUFFER hysteresis
        // before dropping anything above).
        let cur_hi = self.guesses.keys().next_back().copied();
        let start = match cur_hi {
            // Also bootstrap a few levels below the first estimate so the
            // query has a fine guess available quickly.
            None => hi - 6,
            Some(h) => h + 1,
        };
        for lvl in start..=hi {
            self.materialize(lvl);
        }
        // Drop far-above levels (returning their arena references).
        let too_high: Vec<i32> = self
            .guesses
            .keys()
            .copied()
            .filter(|&l| l > hi + UPPER_BUFFER)
            .collect();
        for l in too_high {
            self.retire(l);
        }

        // Lower cutoff: invalidity frontier among mature guesses.
        let n = self.cfg.window_size as u64;
        let mature = |g: &BornGuess| g.born == 1 || g.born + n - 1 <= self.t;
        let frontier = self
            .guesses
            .iter()
            .filter(|(_, g)| mature(g) && g.state.av_len() > self.k)
            .map(|(&l, _)| l)
            .next_back();
        match frontier {
            Some(f) => {
                // Guesses below an invalid level are invalid too: drop
                // everything below the buffer.
                let too_low: Vec<i32> = self
                    .guesses
                    .keys()
                    .copied()
                    .filter(|&l| l < f - LOWER_BUFFER)
                    .collect();
                for l in too_low {
                    self.retire(l);
                }
            }
            None => {
                // Everything valid: extend downward (one level per
                // arrival) until the floor.
                let floor = self
                    .consec_min
                    .min()
                    .map(|m| self.lattice.level_below(m) - FLOOR_MARGIN);
                if let (Some(&lo), Some(floor)) = (self.guesses.keys().next(), floor) {
                    if lo > floor {
                        self.materialize(lo - 1);
                    }
                }
            }
        }
    }

    fn materialize(&mut self, lvl: i32) {
        let gamma = self.lattice.value(lvl);
        let born = self.t;
        self.guesses.entry(lvl).or_insert_with(|| BornGuess {
            state: GuessState::new(gamma),
            born,
        });
    }

    /// Drops a materialized level, returning every arena reference its
    /// families held (owner-side; payloads referenced by no other guess
    /// are reclaimed immediately).
    fn retire(&mut self, lvl: i32) {
        if let Some(g) = self.guesses.remove(&lvl) {
            g.state.release_all(&mut self.store);
        }
    }

    /// Queries the current window with an explicit coreset solver.
    /// Prefers mature guesses; falls back to immature ones, then to the
    /// newest point (degenerate windows where no scale information
    /// exists). The returned solution's `extras` records which path won.
    pub fn query_with<S>(&self, solver: &S) -> Result<Solution<M::Point>, QueryError>
    where
        S: FairCenterSolver<M> + Sync,
        M: Sync,
        M::Point: Send + Sync,
    {
        if self.t == 0 {
            return Err(QueryError::EmptyWindow);
        }
        let n = self.cfg.window_size as u64;
        let mature = |g: &BornGuess| g.born == 1 || g.born + n - 1 <= self.t;
        let all: Vec<(&GuessState, bool)> = self
            .guesses
            .values()
            .map(|g| (&g.state, mature(g)))
            .collect();
        let res = self.store.resolver();

        let attempt = |only_mature: bool| {
            let scan: Vec<(&GuessState, bool)> = all
                .iter()
                .copied()
                .filter(|&(_, m)| m || !only_mature)
                .collect();
            query_over_guesses(
                &self.exec,
                &self.scratch,
                &self.metric,
                res,
                &scan,
                self.k,
                &self.cfg.capacities,
                solver,
            )
        };

        let annotated = |mut sol: Solution<M::Point>, mature: bool, fallback: bool| {
            sol.extras = SolutionExtras::Oblivious {
                mature,
                fallback,
                guess_range: self.guess_range(),
            };
            sol
        };

        match attempt(true) {
            Ok((sol, mature)) => Ok(annotated(sol, mature, false)),
            Err(QueryError::NoValidGuess) => match attempt(false) {
                Ok((sol, mature)) => Ok(annotated(sol, mature, false)),
                Err(QueryError::NoValidGuess) => {
                    // No guesses at all (e.g. all window points coincide):
                    // the newest point is an optimal center.
                    let last = self.last.clone().ok_or(QueryError::EmptyWindow)?;
                    Ok(annotated(
                        Solution {
                            centers: vec![last],
                            guess: 0.0,
                            coreset_size: 1,
                            coreset_radius: 0.0,
                            extras: SolutionExtras::None,
                        },
                        false,
                        true,
                    ))
                }
                Err(e) => Err(e),
            },
            Err(e) => Err(e),
        }
    }

    /// The materialized guess range `(γ_min, γ_max)`, if any — shows how
    /// the range tracks the current window's scale.
    pub fn guess_range(&self) -> Option<(f64, f64)> {
        let lo = self.guesses.keys().next()?;
        let hi = self.guesses.keys().next_back()?;
        Some((self.lattice.value(*lo), self.lattice.value(*hi)))
    }
}

impl<M> SlidingWindowClustering<M> for ObliviousFairSlidingWindow<M>
where
    M: Metric + Sync,
    M::Point: Send + Sync,
{
    /// Handles one arrival: scale estimation, guess-range maintenance
    /// (pool-oblivious: it mutates the guess *set* on the calling
    /// thread), then Update fanned out over every materialized guess.
    fn insert(&mut self, p: Colored<M::Point>) {
        self.t += 1;
        let t = self.t;
        let n = self.cfg.window_size as u64;
        let te = t.checked_sub(n);

        // Scale estimators.
        self.diam.push(t, &p.point);
        if let Some(prev) = &self.prev_point {
            let d = self.metric.dist(prev, &p.point);
            self.consec_min.push(t, d);
        } else {
            self.consec_min.expire(t);
        }
        self.prev_point = Some(p.point.clone());
        self.last = Some(p.clone());

        self.adjust_range();

        let color = p.color;
        let id = self.store.insert(t, p.point);
        let metric = &self.metric;
        let budgets = Budgets {
            caps: &self.cfg.capacities,
            k: self.k,
            delta: self.cfg.delta,
        };
        let res = self.store.resolver();
        let update = |g: &mut BornGuess| {
            if let Some(te) = te {
                g.state.expire(res, te);
            }
            g.state.update(metric, res, t, id, color, budgets);
        };
        if self.exec.is_sequential() {
            // Hot path: iterate the map directly, no per-arrival Vec.
            self.guesses.values_mut().for_each(update);
        } else {
            let mut live: Vec<&mut BornGuess> = self.guesses.values_mut().collect();
            self.exec.for_each_mut(&mut live, |g| update(g));
        }
        // Arrival epilogue: reclaim payloads released during the
        // dispatch, then run the window-expiry epoch sweep.
        reclaim_dead(
            &mut self.store,
            self.guesses.values_mut().map(|g| &mut g.state),
        );
        if let Some(te) = te {
            self.store.expire(te);
        }
    }

    /// Query with the default solver, memoized on the engine time
    /// (repeat queries at unchanged `t` return the recorded result).
    fn query(&self) -> Result<Solution<M::Point>, QueryError> {
        if let Some(hit) = self.memo.cached(self.t) {
            return hit;
        }
        let result = self.query_with(&Jones);
        self.memo.record_result(self.t, &result);
        result
    }

    fn time(&self) -> u64 {
        self.t
    }

    fn window_size(&self) -> usize {
        self.cfg.window_size
    }

    /// Per-guess counts plus the estimator anchors and the newest-point
    /// fallback as auxiliary storage. The payload-byte accounting folds
    /// in the auxiliary owned points (they live outside the arena).
    fn memory_stats(&self) -> MemoryStats {
        let aux_bytes = self.diam.payload_bytes()
            + self
                .last
                .as_ref()
                .map(|c| c.point.payload_bytes())
                .unwrap_or(0);
        arena_stats(
            self.guesses
                .values()
                .map(|g| (g.state.gamma(), g.state.stored_points())),
            &self.store,
        )
        .with_auxiliary(self.diam.stored_points() + self.last.is_some() as usize)
        .with_extra_payload_bytes(aux_bytes)
    }

    fn stored_points(&self) -> usize {
        self.guesses
            .values()
            .map(|g| g.state.stored_points())
            .sum::<usize>()
            + self.diam.stored_points()
            + self.last.is_some() as usize
    }

    fn num_guesses(&self) -> usize {
        self.guesses.len()
    }

    /// Verifies per-guess invariants (test helper).
    fn check_invariants(&self) -> Result<(), String> {
        let res = self.store.resolver();
        for g in self.guesses.values() {
            g.state.check_invariants(
                &self.metric,
                res,
                self.t,
                self.cfg.window_size as u64,
                Budgets {
                    caps: &self.cfg.capacities,
                    k: self.k,
                    delta: self.cfg.delta,
                },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsw_metric::{EuclidPoint, Euclidean};

    fn cfg(n: usize, caps: Vec<usize>, delta: f64) -> FairSWConfig {
        FairSWConfig::builder()
            .window_size(n)
            .capacities(caps)
            .beta(2.0)
            .delta(delta)
            .build()
            .unwrap()
    }

    fn cp(x: f64, c: u32) -> Colored<EuclidPoint> {
        Colored::new(EuclidPoint::new(vec![x]), c)
    }

    #[test]
    fn empty_query_errors() {
        let sw = ObliviousFairSlidingWindow::new(cfg(10, vec![1], 1.0), Euclidean).unwrap();
        assert!(matches!(sw.query(), Err(QueryError::EmptyWindow)));
    }

    #[test]
    fn single_point_fallback() {
        let mut sw = ObliviousFairSlidingWindow::new(cfg(10, vec![1], 1.0), Euclidean).unwrap();
        sw.insert(cp(3.0, 0));
        let sol = sw.query().unwrap();
        assert_eq!(sol.centers.len(), 1);
        assert_eq!(sol.coreset_radius, 0.0);
        assert!(matches!(
            sol.extras,
            SolutionExtras::Oblivious { fallback: true, .. }
        ));
    }

    #[test]
    fn coincident_points_fallback() {
        let mut sw = ObliviousFairSlidingWindow::new(cfg(10, vec![1], 1.0), Euclidean).unwrap();
        for _ in 0..30 {
            sw.insert(cp(7.0, 0));
        }
        let sol = sw.query().unwrap();
        assert_eq!(sol.centers.len(), 1);
        assert_eq!(sol.centers[0].point.coords(), &[7.0]);
    }

    #[test]
    fn tracks_two_clusters() {
        let mut sw = ObliviousFairSlidingWindow::new(cfg(60, vec![1, 1], 0.5), Euclidean).unwrap();
        for i in 0..240u64 {
            let base = if i % 2 == 0 { 0.0 } else { 100.0 };
            let x = base + ((i as f64) * 0.618_033_988_7).fract();
            sw.insert(cp(x, (i % 2) as u32));
            if i % 25 == 0 {
                sw.check_invariants().unwrap();
            }
        }
        let sol = sw.query().unwrap();
        assert!(sol.centers.len() <= 2);
        assert!(sol.coreset_radius < 50.0);
        // Past warm-up the winning guess must be mature, not a fallback.
        assert!(matches!(
            sol.extras,
            SolutionExtras::Oblivious {
                mature: true,
                fallback: false,
                ..
            }
        ));
    }

    #[test]
    fn guess_range_follows_window_scale() {
        // Phase 1: wide scatter. Phase 2: tight cluster. After phase 2
        // fills the window, high guesses must be dropped.
        let mut sw = ObliviousFairSlidingWindow::new(cfg(50, vec![1, 1], 1.0), Euclidean).unwrap();
        for i in 0..100u64 {
            let x = (i as f64 * 0.324_717_957_2).fract() * 1000.0;
            sw.insert(cp(x, (i % 2) as u32));
        }
        let (_, wide_hi) = sw.guess_range().unwrap();
        for i in 0..300u64 {
            let x = 500.0 + (i as f64 * 0.618_033_988_7).fract();
            sw.insert(cp(x, (i % 2) as u32));
        }
        sw.check_invariants().unwrap();
        let (tight_lo, tight_hi) = sw.guess_range().unwrap();
        assert!(
            tight_hi < wide_hi,
            "guess ceiling failed to shrink: {tight_hi} vs {wide_hi}"
        );
        assert!(
            tight_lo < 1.0,
            "guess floor {tight_lo} did not follow the fine scale"
        );
        let sol = sw.query().unwrap();
        // Window spread is < 1.0: the coreset radius must reflect that.
        assert!(sol.coreset_radius < 10.0);
    }

    #[test]
    fn memory_independent_of_stream_length() {
        let mut sw = ObliviousFairSlidingWindow::new(cfg(40, vec![1, 1], 1.0), Euclidean).unwrap();
        let mut peak_early = 0usize;
        for i in 0..800u64 {
            let x = (i as f64 * 0.445_041_867_9).fract() * 100.0;
            sw.insert(cp(x, (i % 2) as u32));
            if i < 80 {
                peak_early = peak_early.max(sw.stored_points());
            }
        }
        assert!(
            sw.stored_points() <= 2 * peak_early + 64,
            "memory grew with stream length"
        );
    }

    #[test]
    fn memory_stats_accounts_for_estimators() {
        let mut sw = ObliviousFairSlidingWindow::new(cfg(20, vec![1, 1], 1.0), Euclidean).unwrap();
        for i in 0..60u64 {
            sw.insert(cp((i as f64 * 0.618).fract() * 50.0, (i % 2) as u32));
        }
        let stats = sw.memory_stats();
        assert!(stats.auxiliary > 0, "estimator anchors not accounted");
        assert_eq!(stats.num_guesses(), sw.num_guesses());
        assert_eq!(stats.stored_points(), sw.stored_points());
    }
}

//! The unified streaming-clustering API.
//!
//! The paper defines one Update/Query contract that every variant shares:
//! points arrive one at a time, and at any moment the structure can be
//! asked for a constrained center set covering the current window. This
//! module states that contract once — the [`SlidingWindowClustering`]
//! trait — together with the common [`Solution`] answer type and the
//! uniform [`MemoryStats`] accounting, so that callers (the CLI, the
//! experiment harness, the examples, future sharding layers) can drive
//! any variant through one polymorphic surface. The five implementors:
//!
//! * [`FairSlidingWindow`](crate::FairSlidingWindow) — "Ours";
//! * [`ObliviousFairSlidingWindow`](crate::ObliviousFairSlidingWindow) —
//!   "OursOblivious";
//! * [`CompactFairSlidingWindow`](crate::CompactFairSlidingWindow) — the
//!   Corollary 2 variant;
//! * [`RobustFairSlidingWindow`](crate::RobustFairSlidingWindow) — the
//!   outlier-tolerant extension;
//! * [`MatroidSlidingWindow`](crate::MatroidSlidingWindow) — arbitrary
//!   matroid constraints over colors.
//!
//! [`WindowEngine`](crate::WindowEngine) packages the five behind one
//! enum-dispatched value for heterogeneous collections.

use fairsw_metric::{Colored, Metric};
use fairsw_sequential::SolveError;
use std::fmt;

/// Errors a query can report.
#[derive(Clone, Debug)]
pub enum QueryError {
    /// No point has been inserted yet.
    EmptyWindow,
    /// No guess passed the validation test — with a properly spanned
    /// lattice this cannot happen; with an oblivious/truncated lattice it
    /// signals the structures are still warming up.
    NoValidGuess,
    /// The sequential solver failed on the coreset.
    Solver(SolveError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyWindow => write!(f, "no points inserted yet"),
            QueryError::NoValidGuess => write!(f, "no guess passed validation"),
            QueryError::Solver(e) => write!(f, "coreset solver failed: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<SolveError> for QueryError {
    fn from(e: SolveError) -> Self {
        QueryError::Solver(e)
    }
}

/// Variant-specific annotations riding on a [`Solution`].
#[derive(Clone, Debug, Default)]
pub enum SolutionExtras<P> {
    /// Nothing beyond the common fields (fixed-lattice variants).
    #[default]
    None,
    /// The robust variant's outlier report.
    Robust {
        /// Coreset points the solver priced out (≤ `z`).
        outliers: Vec<Colored<P>>,
    },
    /// Provenance from the oblivious variant's adaptive guess range.
    Oblivious {
        /// Whether the winning guess had processed the whole window
        /// (immature guesses answer best-effort during warm-up).
        mature: bool,
        /// Whether the answer fell back to the newest point because no
        /// materialized guess existed (degenerate all-coincident window).
        fallback: bool,
        /// The materialized guess range `(γ_min, γ_max)` at query time.
        guess_range: Option<(f64, f64)>,
    },
}

/// A solution extracted from any sliding-window variant.
///
/// Subsumes the per-variant answer types: the common fields cover the
/// fixed, oblivious, compact and matroid variants; [`SolutionExtras`]
/// carries the robust variant's outliers and the oblivious variant's
/// provenance.
#[derive(Clone, Debug)]
pub struct Solution<P> {
    /// The selected centers (they satisfy the variant's constraint: at
    /// most `k_i` of color `i`, or an independent color set).
    pub centers: Vec<Colored<P>>,
    /// The guess `γ̂` whose structures produced the solution.
    pub guess: f64,
    /// Size of the point set handed to the sequential solver.
    pub coreset_size: usize,
    /// The solver-reported radius *over the coreset* (the radius over the
    /// full window is at most `coreset radius + δγ̂` by Lemma 2 P2; the
    /// harness measures the true window radius externally). For the
    /// robust variant this is the radius over the coreset *inliers*.
    pub coreset_radius: f64,
    /// Variant-specific annotations.
    pub extras: SolutionExtras<P>,
}

impl<P> Solution<P> {
    /// The outliers discarded by the robust variant (empty for others).
    pub fn outliers(&self) -> &[Colored<P>] {
        match &self.extras {
            SolutionExtras::Robust { outliers } => outliers,
            _ => &[],
        }
    }

    /// `outliers().len()` without borrowing gymnastics at call sites.
    pub fn num_outliers(&self) -> usize {
        self.outliers().len()
    }
}

/// Memory accounting of one radius guess.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuessMemory {
    /// The guess value `γ`.
    pub gamma: f64,
    /// Entries stored by this guess's families (the paper counts stored
    /// points across `AV ∪ RV ∪ A ∪ R`). With the interned arena each
    /// entry is an 8-byte handle, not a point copy.
    pub points: usize,
}

/// Bytes of one guess-family entry: a 4-byte `PointId` handle plus a
/// 4-byte color tag. (Map keys and per-family overhead are excluded —
/// this is the paper's "stored points" metric priced in handle units.)
pub const HANDLE_ENTRY_BYTES: usize = 8;

/// Uniform memory breakdown reported by every variant.
///
/// Two axes are reported since the interned-arena refactor:
///
/// * **entries** ([`stored_points`](Self::stored_points), per-guess in
///   [`per_guess`]) — the paper's memory metric: how many family slots
///   the guesses occupy. Each is an 8-byte handle.
/// * **payloads** ([`unique_points`](Self::unique_points),
///   [`payload_bytes`](Self::payload_bytes)) — the deduplicated arena
///   side: how many distinct points are resident and what their
///   coordinate buffers weigh. Before the arena, every entry *was* a
///   payload copy; the ratio `stored_points / unique_points` is the
///   copy-reduction the arena delivers.
///
/// [`per_guess`]: Self::per_guess
#[derive(Clone, Debug, Default)]
pub struct MemoryStats {
    /// Per-guess handle-entry counts, in ascending-γ order.
    pub per_guess: Vec<GuessMemory>,
    /// Points stored outside the guess structures (the oblivious
    /// variant's diameter-estimator anchors and newest-point fallback;
    /// zero for the fixed-lattice variants). These are owned payloads,
    /// not arena handles.
    pub auxiliary: usize,
    /// Distinct live payloads in the interned arena.
    pub unique_points: usize,
    /// Heap bytes of those payloads (plus any auxiliary owned points a
    /// variant folds in).
    pub payload_bytes: usize,
}

impl MemoryStats {
    /// Builds the stats from per-guess `(γ, points)` pairs in
    /// ascending-γ order (the shape every variant reports).
    pub fn from_guesses<I>(guesses: I) -> Self
    where
        I: IntoIterator<Item = (f64, usize)>,
    {
        MemoryStats {
            per_guess: guesses
                .into_iter()
                .map(|(gamma, points)| GuessMemory { gamma, points })
                .collect(),
            auxiliary: 0,
            unique_points: 0,
            payload_bytes: 0,
        }
    }

    /// Adds points stored outside the guess structures.
    pub fn with_auxiliary(mut self, auxiliary: usize) -> Self {
        self.auxiliary = auxiliary;
        self
    }

    /// Records the interned arena's deduplicated payload accounting.
    pub fn with_arena(mut self, unique_points: usize, payload_bytes: usize) -> Self {
        self.unique_points = unique_points;
        self.payload_bytes = payload_bytes;
        self
    }

    /// Adds payload bytes held outside the arena (auxiliary owned
    /// points).
    pub fn with_extra_payload_bytes(mut self, bytes: usize) -> Self {
        self.payload_bytes += bytes;
        self
    }

    /// Total stored points — the paper's memory metric.
    pub fn stored_points(&self) -> usize {
        self.per_guess.iter().map(|g| g.points).sum::<usize>() + self.auxiliary
    }

    /// Bytes spent on guess-family handle entries
    /// (`stored_points × 8`, auxiliary owned points excluded).
    pub fn handle_bytes(&self) -> usize {
        self.per_guess.iter().map(|g| g.points).sum::<usize>() * HANDLE_ENTRY_BYTES
    }

    /// Total resident bytes: handles plus deduplicated payloads.
    pub fn resident_bytes(&self) -> usize {
        self.handle_bytes() + self.payload_bytes
    }

    /// Number of (materialized) guesses `|Γ|`.
    pub fn num_guesses(&self) -> usize {
        self.per_guess.len()
    }
}

/// The Update/Query contract shared by all five sliding-window variants.
///
/// Generic code written against this trait (plus the enum-dispatched
/// [`WindowEngine`](crate::WindowEngine) facade) drives any variant:
///
/// ```
/// use fairsw_core::{Solution, SlidingWindowClustering, QueryError};
/// use fairsw_metric::{Colored, Metric};
///
/// fn drain<M: Metric, A: SlidingWindowClustering<M>>(
///     algo: &mut A,
///     stream: impl IntoIterator<Item = Colored<M::Point>>,
/// ) -> Result<Solution<M::Point>, QueryError> {
///     algo.insert_batch(stream);
///     algo.query()
/// }
/// ```
pub trait SlidingWindowClustering<M: Metric> {
    /// Handles one arrival (expiry of the outgoing point plus `Update`
    /// on every guess — Algorithm 1).
    fn insert(&mut self, p: Colored<M::Point>);

    /// Answers for the current window (`Query` — Algorithm 3): selects
    /// the best certified guess and runs the variant's sequential solver
    /// on its stored point set.
    fn query(&self) -> Result<Solution<M::Point>, QueryError>;

    /// The arrival counter (number of points inserted so far).
    fn time(&self) -> u64;

    /// The window length `n`.
    fn window_size(&self) -> usize;

    /// Uniform memory accounting: per-guess breakdown plus auxiliary
    /// storage.
    fn memory_stats(&self) -> MemoryStats;

    /// Verifies the variant's structural invariants (test/diagnostic
    /// helper); returns a description of the first violation found.
    fn check_invariants(&self) -> Result<(), String>;

    /// Handles a batch of arrivals, observationally equal to repeated
    /// [`insert`](Self::insert) in stream order.
    fn insert_batch<I>(&mut self, batch: I)
    where
        I: IntoIterator<Item = Colored<M::Point>>,
        Self: Sized,
    {
        for p in batch {
            self.insert(p);
        }
    }

    /// Total stored points (the paper's memory metric). The default
    /// derives it from [`memory_stats`](Self::memory_stats); implementors
    /// override it with an allocation-free sum.
    fn stored_points(&self) -> usize {
        self.memory_stats().stored_points()
    }

    /// Number of (materialized) guesses.
    fn num_guesses(&self) -> usize {
        self.memory_stats().num_guesses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsw_metric::EuclidPoint;

    #[test]
    fn memory_stats_totals() {
        let stats = MemoryStats::from_guesses([(1.0, 4), (2.0, 6)])
            .with_auxiliary(3)
            .with_arena(5, 400);
        assert_eq!(stats.stored_points(), 13);
        assert_eq!(stats.num_guesses(), 2);
        assert_eq!(stats.unique_points, 5);
        assert_eq!(stats.handle_bytes(), 10 * HANDLE_ENTRY_BYTES);
        assert_eq!(stats.resident_bytes(), 10 * HANDLE_ENTRY_BYTES + 400);
        assert_eq!(MemoryStats::default().stored_points(), 0);
        assert_eq!(MemoryStats::default().resident_bytes(), 0);
    }

    #[test]
    fn solution_outlier_accessors() {
        let plain: Solution<EuclidPoint> = Solution {
            centers: vec![],
            guess: 1.0,
            coreset_size: 0,
            coreset_radius: 0.0,
            extras: SolutionExtras::None,
        };
        assert!(plain.outliers().is_empty());
        let robust: Solution<EuclidPoint> = Solution {
            extras: SolutionExtras::Robust {
                outliers: vec![Colored::new(EuclidPoint::new(vec![1.0]), 0)],
            },
            ..plain
        };
        assert_eq!(robust.num_outliers(), 1);
    }
}

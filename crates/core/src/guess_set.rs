//! The shared guess-collection scaffolding: one arena, many guesses.
//!
//! Every sliding-window variant maintains a set of per-guess states over
//! one interned [`PointStore`]. The memory accounting, the handle-reclaim
//! pass and the epoch sweep are identical across variants — they drifted
//! apart as copy-paste in earlier revisions; this module states them
//! once:
//!
//! * [`GuessSlot`] — what a per-guess state must expose (its `γ`, its
//!   entry count, its dead-id scratch) for the shared helpers to work;
//! * [`GuessSet`] — the `Vec`-of-guesses + arena pair used by the fixed,
//!   compact, robust and matroid variants, with the uniform
//!   `memory_stats` / `stored_points` / arrival-epilogue implementations;
//! * [`reclaim_dead`] / [`arena_stats`] — the same helpers over an
//!   arbitrary guess iterator, for the oblivious variant whose guesses
//!   live in a level-keyed map.
//!
//! ## The arrival protocol
//!
//! Each arrival follows one owner-side sequence, shared by the single
//! and batched insert paths of every variant:
//!
//! 1. intern the arriving point(s) ([`PointStore::insert`]);
//! 2. dispatch per-guess `expire` + `update` (possibly on worker
//!    threads) — guesses acquire/release arena references and record
//!    zero-crossings in their scratch lists;
//! 3. [`GuessSet::finish_arrival`]: drain the scratch lists and free
//!    dead payloads, then run the window-expiry epoch sweep.
//!
//! Step 3 is what keeps resident payloads at `O(Σ coreset sizes)`: a
//! point evicted from every guess is reclaimed on the arrival that
//! evicted it, long before it would leave the window.

use crate::api::MemoryStats;
use fairsw_metric::{PointFootprint, PointId, PointStore, Resolver};

/// The record-on-zero-crossing scratch every per-guess state carries:
/// releasing an arena reference through it records ids whose count
/// crossed zero, for the owner's [`reclaim_dead`] pass after the
/// dispatch. A plain field (not a `&mut self` method on the guess) so
/// call sites holding another family borrowed mutably can still release
/// — field borrows stay disjoint.
#[derive(Clone, Debug, Default)]
pub(crate) struct DeadList(Vec<PointId>);

impl DeadList {
    /// Releases one reference to `id`, recording the zero-crossing.
    #[inline]
    pub fn release<P>(&mut self, res: Resolver<'_, P>, id: PointId) {
        if res.release(id) {
            self.0.push(id);
        }
    }

    /// Moves the recorded ids into `into` (owner-side reclaim).
    pub fn drain_into(&mut self, into: &mut Vec<PointId>) {
        into.append(&mut self.0);
    }
}

/// The surface a per-guess state exposes to the shared collection
/// helpers. Implemented by every variant's guess type.
pub(crate) trait GuessSlot {
    /// The guess value `γ`.
    fn gamma(&self) -> f64;
    /// Stored handle entries across all families (the paper's per-guess
    /// memory metric).
    fn entries(&self) -> usize;
    /// Drains the ids whose refcount this guess observed crossing zero.
    fn drain_dead(&mut self, into: &mut Vec<PointId>);
    /// Revision counter for the query memo: bumps whenever a family
    /// mutates. The reclaim pass ([`reclaim_dead`]) frees *payloads*
    /// only — family contents are untouched — so it never bumps this.
    fn rev(&self) -> u64;
}

impl GuessSlot for crate::guess::GuessState {
    fn gamma(&self) -> f64 {
        self.gamma
    }
    fn entries(&self) -> usize {
        self.stored_points()
    }
    fn drain_dead(&mut self, into: &mut Vec<PointId>) {
        self.dead.drain_into(into);
    }
    fn rev(&self) -> u64 {
        self.rev
    }
}

/// A variant's guesses plus the arena they intern into. The fixed,
/// compact, robust and matroid variants embed one of these; the shared
/// trait-impl plumbing (`memory_stats`, `stored_points`, the arrival
/// epilogue) lives here instead of being repeated per variant.
#[derive(Clone, Debug)]
pub(crate) struct GuessSet<G, P> {
    /// Per-guess states in ascending-γ order.
    pub guesses: Vec<G>,
    /// The shared interned point arena.
    pub store: PointStore<P>,
}

impl<G: GuessSlot, P> GuessSet<G, P> {
    /// Wraps freshly constructed guesses around an empty arena.
    pub fn new(guesses: Vec<G>) -> Self {
        GuessSet {
            guesses,
            store: PointStore::new(),
        }
    }

    /// The uniform memory breakdown: per-guess handle-entry counts plus
    /// the arena's deduplicated payload accounting.
    pub fn memory_stats(&self) -> MemoryStats
    where
        P: PointFootprint,
    {
        arena_stats(
            self.guesses.iter().map(|g| (g.gamma(), g.entries())),
            &self.store,
        )
    }

    /// Total stored entries (the paper's memory metric), allocation-free.
    pub fn stored_points(&self) -> usize {
        self.guesses.iter().map(G::entries).sum()
    }

    /// The owner-side arrival epilogue: reclaim payloads the guesses
    /// released during the dispatch, then sweep the expired epoch.
    pub fn finish_arrival(&mut self, te: Option<u64>) {
        reclaim_dead(&mut self.store, self.guesses.iter_mut());
        if let Some(te) = te {
            self.store.expire(te);
        }
    }
}

/// Drains every guess's dead-id scratch and frees the payloads whose
/// refcount is (still) zero. Owner-side: must run after any parallel
/// dispatch has quiesced.
pub(crate) fn reclaim_dead<'a, G, P>(
    store: &mut PointStore<P>,
    guesses: impl Iterator<Item = &'a mut G>,
) where
    G: GuessSlot + 'a,
{
    let mut dead = Vec::new();
    for g in guesses {
        g.drain_dead(&mut dead);
    }
    for id in dead {
        store.free_if_dead(id);
    }
}

/// Builds the uniform [`MemoryStats`] from per-guess `(γ, entries)`
/// pairs plus the arena's deduplicated payload accounting.
pub(crate) fn arena_stats<P: PointFootprint>(
    per_guess: impl IntoIterator<Item = (f64, usize)>,
    store: &PointStore<P>,
) -> MemoryStats {
    MemoryStats::from_guesses(per_guess).with_arena(store.live_points(), store.payload_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guess::GuessState;
    use fairsw_metric::EuclidPoint;

    #[test]
    fn set_aggregates_entries_and_arena() {
        let mut set: GuessSet<GuessState, EuclidPoint> =
            GuessSet::new(vec![GuessState::new(1.0), GuessState::new(2.0)]);
        let id = set.store.insert(1, EuclidPoint::new(vec![1.0, 2.0]));
        // Simulate one guess storing the point in two families.
        set.store.resolver().acquire(id);
        set.store.resolver().acquire(id);
        set.guesses[0].av.insert(1, id);
        set.guesses[0].rv.insert(1, id);
        set.guesses[0].rep_of.insert(1, 1);
        assert_eq!(set.stored_points(), 2);
        let stats = set.memory_stats();
        assert_eq!(stats.num_guesses(), 2);
        assert_eq!(stats.unique_points, 1, "two handles, one payload");
        assert!(stats.payload_bytes > 0);
        // Epoch sweep after the refs are gone reclaims the payload.
        set.store.release_owned(id);
        set.guesses[0].av.clear();
        set.store.release_owned(id);
        set.guesses[0].rv.clear();
        set.finish_arrival(Some(1));
        assert_eq!(set.memory_stats().unique_points, 0);
    }
}

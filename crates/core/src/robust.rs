//! Robust fair center in sliding windows — the extension the paper's
//! conclusions sketch ("good approximations for robust fair center in
//! sliding windows may be attained by building on previous work for
//! robust unconstrained k-center, matroid and fair center"), built
//! exactly that way:
//!
//! * **Validation side** (from the robust unconstrained treatment of
//!   Pellizzoni et al. \[9\]): with `z` tolerated outliers, `k+z+1` window
//!   points pairwise `> 2γ` certify that the *robust* optimum exceeds
//!   `γ` (discarding any `z` of them still leaves two separated points
//!   sharing a center). So the v-attractor cap becomes `k+z+1` and the
//!   Query packing test accepts up to `k+z` points.
//! * **Coreset side** (from the robust matroid-center coresets of
//!   Ceccarello et al. \[4\]): each c-attractor keeps up to `k_i + z`
//!   representatives per color, so that after adversarially deleting any
//!   `z` points a maximal independent set w.r.t. the surviving cluster is
//!   still present.
//! * **Query** runs the greedy-disk robust fair solver
//!   ([`fairsw_sequential::RobustFair`]) on the coreset with the original
//!   budgets.
//!
//! Caveat, stated plainly: outliers are handled *unweighted* — a coreset
//! point declared an outlier may represent several window points when the
//! outliers are clustered together. For isolated outliers (the regime the
//! robust k-center literature targets, and what the tests plant) each
//! outlier is its own c-attractor and representative, and the accounting
//! is exact. A weighted-coreset refinement is the natural next step and
//! is listed in DESIGN.md.

use crate::algorithm::QueryScratch;
use crate::api::{MemoryStats, QueryError, SlidingWindowClustering, Solution, SolutionExtras};
use crate::config::{validate_scale, ConfigError, FairSWConfig};
use crate::guess::{Budgets, GuessState};
use crate::guess_set::GuessSet;
use crate::memo::{prefix_for, QueryMemo};
use crate::parallel::{Exec, ParallelismSpec};
use fairsw_metric::{packing_scan, Colored, ColoredId, Metric};
use fairsw_sequential::RobustFair;
use fairsw_stream::Lattice;

/// Sliding-window fair center tolerating up to `z` outliers per window.
#[derive(Clone, Debug)]
pub struct RobustFairSlidingWindow<M: Metric> {
    metric: M,
    cfg: FairSWConfig,
    /// Original budgets (the solution constraint).
    k: usize,
    /// Tolerated outliers.
    z: usize,
    /// Inflated per-color caps `k_i + z` maintained in the coreset.
    inflated_caps: Vec<usize>,
    set: GuessSet<GuessState, M::Point>,
    t: u64,
    exec: Exec,
    scratch: QueryScratch<M::Point>,
    memo: QueryMemo<M::Point>,
}

impl<M: Metric> RobustFairSlidingWindow<M> {
    /// Creates the robust algorithm for a stream with distances in
    /// `[dmin, dmax]`, tolerating `z` outliers per window.
    pub fn new(
        cfg: FairSWConfig,
        z: usize,
        metric: M,
        dmin: f64,
        dmax: f64,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        validate_scale(dmin, dmax)?;
        let lattice = Lattice::new(cfg.beta);
        let guesses = lattice
            .span(dmin, dmax)
            .map(|lvl| GuessState::new(lattice.value(lvl)))
            .collect();
        let k = cfg.k();
        let inflated_caps = cfg.capacities.iter().map(|&c| c + z).collect();
        Ok(RobustFairSlidingWindow {
            metric,
            cfg,
            k,
            z,
            inflated_caps,
            set: GuessSet::new(guesses),
            t: 0,
            exec: Exec::default(),
            scratch: QueryScratch::default(),
            memo: QueryMemo::default(),
        })
    }

    /// The tolerated outlier count `z`.
    pub fn outlier_budget(&self) -> usize {
        self.z
    }

    /// Spreads per-guess work over `spec` worker threads (bit-identical
    /// to sequential execution; see [`crate::parallel`]).
    pub fn with_parallelism(mut self, spec: ParallelismSpec) -> Self {
        self.exec = Exec::new(spec);
        self
    }

    /// The effective worker-thread count (1 when sequential).
    pub fn threads(&self) -> usize {
        self.exec.threads()
    }

    /// Drops every streamed point and rebuilds empty structures from the
    /// retained configuration (same guess lattice, same inflated budgets,
    /// same worker pool) — the delete-and-recreate reuse path of serving
    /// layers.
    pub fn reset(&mut self) {
        let gammas: Vec<f64> = self.set.guesses.iter().map(|g| g.gamma).collect();
        self.set = GuessSet::new(gammas.into_iter().map(GuessState::new).collect());
        self.t = 0;
        self.memo.clear();
    }
}

impl<M> SlidingWindowClustering<M> for RobustFairSlidingWindow<M>
where
    M: Metric + Sync,
    M::Point: Send + Sync,
{
    /// Handles one arrival (interned once, then Update with the
    /// robustified budgets, fanned out per guess when a pool is set).
    fn insert(&mut self, p: Colored<M::Point>) {
        self.t += 1;
        let t = self.t;
        let te = t.checked_sub(self.cfg.window_size as u64);
        let id = self.set.store.insert(t, p.point);
        // Validation structures certify the *robust* optimum: cap k+z.
        let metric = &self.metric;
        let budgets = Budgets {
            caps: &self.inflated_caps,
            k: self.k + self.z,
            delta: self.cfg.delta,
        };
        let res = self.set.store.resolver();
        self.exec.for_each_mut(&mut self.set.guesses, |g| {
            if let Some(te) = te {
                g.expire(res, te);
            }
            g.update(metric, res, t, id, p.color, budgets);
        });
        self.set.finish_arrival(te);
    }

    /// Batch arrivals: the batch is interned up front and each guess
    /// replays it locally (one pool dispatch per batch; identical
    /// evolution to repeated insert).
    fn insert_batch<I>(&mut self, batch: I)
    where
        I: IntoIterator<Item = Colored<M::Point>>,
    {
        let n = self.cfg.window_size as u64;
        let ids: Vec<ColoredId> = batch
            .into_iter()
            .enumerate()
            .map(|(j, p)| {
                let t = self.t + 1 + j as u64;
                Colored::new(self.set.store.insert(t, p.point), p.color)
            })
            .collect();
        let metric = &self.metric;
        let budgets = Budgets {
            caps: &self.inflated_caps,
            k: self.k + self.z,
            delta: self.cfg.delta,
        };
        let res = self.set.store.resolver();
        self.t = self
            .exec
            .replay_batch(&mut self.set.guesses, &ids, self.t, n, |g, t, te, cid| {
                if let Some(te) = te {
                    g.expire(res, te);
                }
                g.update(metric, res, t, cid.point, cid.color, budgets);
            });
        self.set.finish_arrival(self.t.checked_sub(n));
    }

    /// Queries: guess selection with the `k+z` packing threshold, then
    /// the robust fair solver on the coreset with the *original* budgets.
    /// The discarded outliers ride in [`SolutionExtras::Robust`].
    fn query(&self) -> Result<Solution<M::Point>, QueryError> {
        if self.t == 0 {
            return Err(QueryError::EmptyWindow);
        }
        // Memoized on the engine time (inserts are the only mutation),
        // with the solver-independent non-qualifying prefix skipped.
        if let Some(hit) = self.memo.cached(self.t) {
            return hit;
        }
        let pairs: Vec<(f64, u64)> = self
            .set
            .guesses
            .iter()
            .map(|g| (g.gamma(), g.rev()))
            .collect();
        let skip = self.memo.skip_count(pairs.iter().copied());
        let k_eff = self.k + self.z;
        let solver = RobustFair::new(self.z);
        let res = self.set.store.resolver();
        let result = self
            .exec
            .find_map_first_pooled(&self.scratch, &self.set.guesses[skip..], |g, s| {
                if g.av_len() > k_eff {
                    return None;
                }
                // Batched 2γ-packing with the robust `k+z` threshold.
                s.view.gather_ids(&self.metric, res, g.rv_ids());
                packing_scan(
                    &self.metric,
                    &s.view,
                    2.0 * g.gamma(),
                    k_eff,
                    &mut s.dist,
                    &mut s.min_dist,
                    &mut s.packed,
                )?;
                let ids = g.coreset_ids();
                Some(
                    solver
                        .solve_robust_ids(&self.metric, res, &ids, &self.cfg.capacities)
                        .map_err(QueryError::Solver)
                        .map(|sol| {
                            let outliers = sol
                                .outliers
                                .iter()
                                .map(|&i| res.colored(ids[i]).map(Clone::clone))
                                .collect();
                            Solution {
                                centers: sol.centers,
                                guess: g.gamma(),
                                coreset_size: ids.len(),
                                coreset_radius: sol.radius,
                                extras: SolutionExtras::Robust { outliers },
                            }
                        }),
                )
            })
            .unwrap_or(Err(QueryError::NoValidGuess));
        self.memo
            .record_prefix(self.t, prefix_for(pairs.iter().copied(), &result));
        self.memo.record_result(self.t, &result);
        result
    }

    fn time(&self) -> u64 {
        self.t
    }

    fn window_size(&self) -> usize {
        self.cfg.window_size
    }

    fn memory_stats(&self) -> MemoryStats {
        self.set.memory_stats()
    }

    fn stored_points(&self) -> usize {
        self.set.stored_points()
    }

    fn num_guesses(&self) -> usize {
        self.set.guesses.len()
    }

    /// Verifies per-guess invariants (test helper).
    fn check_invariants(&self) -> Result<(), String> {
        let res = self.set.store.resolver();
        for g in &self.set.guesses {
            g.check_invariants(
                &self.metric,
                res,
                self.t,
                self.cfg.window_size as u64,
                Budgets {
                    caps: &self.inflated_caps,
                    k: self.k + self.z,
                    delta: self.cfg.delta,
                },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsw_metric::{EuclidPoint, Euclidean};

    fn cfg(n: usize, caps: Vec<usize>, delta: f64) -> FairSWConfig {
        FairSWConfig::builder()
            .window_size(n)
            .capacities(caps)
            .beta(2.0)
            .delta(delta)
            .build()
            .unwrap()
    }

    fn cp(x: f64, c: u32) -> Colored<EuclidPoint> {
        Colored::new(EuclidPoint::new(vec![x]), c)
    }

    #[test]
    fn ignores_planted_outliers() {
        // Two tight clusters plus occasional far-away glitch readings.
        let mut sw =
            RobustFairSlidingWindow::new(cfg(200, vec![1, 1], 1.0), 2, Euclidean, 0.001, 1e7)
                .unwrap();
        for i in 0..400u64 {
            let p = if i % 97 == 0 {
                cp(1e6 + i as f64, (i % 2) as u32) // glitch
            } else {
                let base = if i % 2 == 0 { 0.0 } else { 100.0 };
                cp(base + (i as f64 * 0.618).fract(), (i % 2) as u32)
            };
            sw.insert(p);
        }
        sw.check_invariants().unwrap();
        let sol = sw.query().unwrap();
        assert!(sol.outliers().len() <= 2);
        // Inlier radius reflects the clusters, not the glitches.
        assert!(
            sol.coreset_radius < 200.0,
            "radius {} polluted by outliers",
            sol.coreset_radius
        );
        // The glitch points should be the declared outliers.
        for o in sol.outliers() {
            assert!(o.point.coords()[0] > 1e5, "non-glitch declared outlier");
        }
    }

    #[test]
    fn zero_outliers_matches_plain_variant_quality() {
        let mut robust =
            RobustFairSlidingWindow::new(cfg(100, vec![1, 1], 1.0), 0, Euclidean, 0.01, 1e4)
                .unwrap();
        let mut plain =
            crate::FairSlidingWindow::new(cfg(100, vec![1, 1], 1.0), Euclidean, 0.01, 1e4).unwrap();
        for i in 0..250u64 {
            let base = if i % 2 == 0 { 0.0 } else { 500.0 };
            let p = cp(base + (i as f64 * 0.33).fract() * 5.0, (i % 2) as u32);
            robust.insert(p.clone());
            plain.insert(p);
        }
        let rs = robust.query().unwrap();
        let ps = plain.query().unwrap();
        assert!(rs.outliers().is_empty());
        // Same ballpark quality (both constant-factor on the same window).
        assert!(rs.coreset_radius <= 3.0 * ps.coreset_radius + 1e-6);
    }

    #[test]
    fn fairness_respected_with_outliers() {
        let mut sw =
            RobustFairSlidingWindow::new(cfg(150, vec![2, 1], 1.0), 3, Euclidean, 0.001, 1e7)
                .unwrap();
        for i in 0..300u64 {
            let x = (i as f64 * 0.445).fract() * 400.0 + if i % 83 == 0 { 1e6 } else { 0.0 };
            sw.insert(cp(x, (i % 3 == 0) as u32));
        }
        let sol = sw.query().unwrap();
        let c0 = sol.centers.iter().filter(|c| c.color == 0).count();
        let c1 = sol.centers.iter().filter(|c| c.color == 1).count();
        assert!(c0 <= 2 && c1 <= 1, "budgets violated");
    }

    #[test]
    fn memory_scales_with_z() {
        // The robustified coreset keeps k_i + z reps per color: memory
        // must grow with z but stay bounded.
        let build = |z: usize| {
            let mut sw =
                RobustFairSlidingWindow::new(cfg(300, vec![1, 1], 1.0), z, Euclidean, 0.01, 1e4)
                    .unwrap();
            for i in 0..600u64 {
                let x = (i as f64 * 0.618_033_988_7).fract() * 100.0;
                sw.insert(cp(x, (i % 2) as u32));
            }
            sw.stored_points()
        };
        let m0 = build(0);
        let m5 = build(5);
        assert!(m5 > m0, "z=5 should store more than z=0 ({m5} vs {m0})");
        assert!(m5 < 40 * m0.max(1), "memory exploded with z");
    }

    #[test]
    fn empty_query_errors() {
        let sw =
            RobustFairSlidingWindow::new(cfg(10, vec![1], 1.0), 1, Euclidean, 0.1, 10.0).unwrap();
        assert!(matches!(sw.query(), Err(QueryError::EmptyWindow)));
    }
}

//! # fairsw-core — fair center clustering in sliding windows
//!
//! Implementation of the sliding-window fair-center algorithm of
//! Ceccarello, Pietracaprina, Pucci and Visonà (*Fair Center Clustering
//! in Sliding Windows*, EDBT 2026): the first streaming algorithm that,
//! at any time `t`, returns an `(α+ε)`-approximate fair k-center solution
//! for the window `W_t` of the last `n` points using space and time
//! **independent of `n`**.
//!
//! ## One API, five variants
//!
//! Every variant implements the [`SlidingWindowClustering`] trait — the
//! paper's Update/Query contract — and returns the same [`Solution`]
//! type; the [`WindowEngine`] facade constructs any of them from one
//! [`FairSWConfig`]-derived builder and dispatches without generics:
//!
//! * [`FairSlidingWindow`] — the main algorithm ("Ours"): one set of
//!   validation/coreset structures per radius guess
//!   `γ ∈ Γ = {(1+β)^i}` spanning the stream's `[dmin, dmax]`;
//! * [`ObliviousFairSlidingWindow`] — "OursOblivious": no prior knowledge
//!   of `dmin`/`dmax`; the guess range adapts to the *current window*
//!   using a sliding-window diameter estimator plus the invalidity
//!   frontier of the validation structures;
//! * [`CompactFairSlidingWindow`] — the Corollary 2 variant: coreset
//!   structures are dropped and the per-attractor representative becomes a
//!   maximal independent set, trading the approximation factor for space
//!   `O(k² log Δ / ε)` with **no** dependence on the doubling dimension;
//! * [`RobustFairSlidingWindow`] — the outlier-tolerant extension the
//!   paper's conclusions sketch: up to `z` outliers per window;
//! * [`MatroidSlidingWindow`] — the fairness constraint generalized to
//!   arbitrary matroids over colors (laminar hierarchies, …).
//!
//! ## Quick start
//!
//! ```
//! use fairsw_core::{EngineBuilder, SlidingWindowClustering};
//! use fairsw_metric::{Colored, Euclidean, EuclidPoint};
//!
//! // Window of the last 100 points, at most 2 centers per color; the
//! // oblivious variant needs no distance bounds up front.
//! let mut engine = EngineBuilder::new()
//!     .window_size(100)
//!     .capacities(vec![2, 2])
//!     .build(Euclidean)
//!     .unwrap();
//! engine.insert_batch((0..500u32).map(|i| {
//!     let x = (i % 97) as f64;
//!     Colored::new(EuclidPoint::new(vec![x]), i % 2)
//! }));
//! let sol = engine.query().unwrap();
//! assert!(!sol.centers.is_empty());
//! assert!(engine.stored_points() < 500); // far below the stream length
//! ```
//!
//! When the stream's distance scales are known, pick the main algorithm
//! (`.fixed(dmin, dmax)`); add `.robust(z, ..)` for outlier tolerance or
//! `.matroid(..)` for hierarchical constraints — construction is
//! fallible ([`ConfigError`]), never panicking on bad parameters.
//!
//! Per-guess state is independent across guesses, so
//! `EngineBuilder::threads(n)` spreads inserts and queries over `n`
//! worker threads with **bit-identical** answers — a pure throughput
//! knob. Prefer `insert_batch` when parallel (one pool dispatch per
//! batch), keep `n` at or below the materialized guess count, and see
//! the [`parallel`] module (and the README's "Choosing a thread count")
//! for the full guidance; [`run_fleet`] drives heterogeneous engine
//! fleets concurrently for multi-tenant serving.
//!
//! ## Memory model
//!
//! Arriving points are interned once per algorithm in a shared
//! [`PointStore`](fairsw_metric::PointStore) arena; every per-guess
//! family entry is an 8-byte handle (id + color), acquired and released
//! against the arena's reference counts, with window expiry as the
//! epoch-GC backstop. Resident payloads therefore track the
//! *deduplicated union* of the coresets — `O(Σ coreset sizes)` instead
//! of `guesses × window` copies. [`MemoryStats`] reports both the entry
//! counts (the paper's metric) and the arena's `unique_points` /
//! `payload_bytes`; the query path resolves payloads only at
//! solution-assembly time, so a [`Solution`] still owns its points. See
//! the README's "Memory model" section for the full story.

pub mod algorithm;
pub mod api;
pub mod compact;
pub mod config;
pub mod engine;
pub mod guess;
mod guess_set;
pub mod matroid_window;
mod memo;
pub mod oblivious;
pub mod parallel;
pub mod robust;
pub mod snapshot;

pub use algorithm::FairSlidingWindow;
pub use api::{
    GuessMemory, MemoryStats, QueryError, SlidingWindowClustering, Solution, SolutionExtras,
    HANDLE_ENTRY_BYTES,
};
pub use compact::CompactFairSlidingWindow;
pub use config::{validate_scale, ConfigError, FairSWConfig, FairSWConfigBuilder};
pub use engine::{
    run_fleet, EngineBuilder, EngineKind, EngineProjection, VariantSpec, WindowEngine,
};
pub use matroid_window::MatroidSlidingWindow;
pub use oblivious::ObliviousFairSlidingWindow;
pub use parallel::{ParallelismSpec, WorkerPool};
pub use robust::RobustFairSlidingWindow;
pub use snapshot::{PointCodec, SnapshotError};

//! # fairsw-core — fair center clustering in sliding windows
//!
//! Implementation of the sliding-window fair-center algorithm of
//! Ceccarello, Pietracaprina, Pucci and Visonà (*Fair Center Clustering
//! in Sliding Windows*, EDBT 2026): the first streaming algorithm that,
//! at any time `t`, returns an `(α+ε)`-approximate fair k-center solution
//! for the window `W_t` of the last `n` points using space and time
//! **independent of `n`**.
//!
//! Three variants are provided, matching the paper:
//!
//! * [`FairSlidingWindow`] — the main algorithm ("Ours"): one set of
//!   validation/coreset structures per radius guess
//!   `γ ∈ Γ = {(1+β)^i}` spanning the stream's `[dmin, dmax]`;
//! * [`ObliviousFairSlidingWindow`] — "OursOblivious": no prior knowledge
//!   of `dmin`/`dmax`; the guess range adapts to the *current window*
//!   using a sliding-window diameter estimator plus the invalidity
//!   frontier of the validation structures;
//! * [`CompactFairSlidingWindow`] — the Corollary 2 variant: coreset
//!   structures are dropped and the per-attractor representative becomes a
//!   maximal independent set, trading the approximation factor for space
//!   `O(k² log Δ / ε)` with **no** dependence on the doubling dimension.
//!
//! ## Quick start
//!
//! ```
//! use fairsw_core::{FairSWConfig, FairSlidingWindow};
//! use fairsw_metric::{Colored, Euclidean, EuclidPoint};
//! use fairsw_sequential::Jones;
//!
//! let cfg = FairSWConfig::builder()
//!     .window_size(100)
//!     .capacities(vec![2, 2])     // at most 2 centers per color
//!     .build()
//!     .unwrap();
//! // Stream scale bounds (dmin, dmax) are known here; otherwise use
//! // ObliviousFairSlidingWindow.
//! let mut sw = FairSlidingWindow::new(cfg, Euclidean, 0.1, 100.0).unwrap();
//! for i in 0..500u32 {
//!     let x = (i % 97) as f64;
//!     sw.insert(Colored::new(EuclidPoint::new(vec![x]), i % 2));
//! }
//! let sol = sw.query(&Jones).unwrap();
//! assert!(!sol.centers.is_empty());
//! ```

pub mod algorithm;
pub mod compact;
pub mod config;
pub mod guess;
pub mod matroid_window;
pub mod oblivious;
pub mod robust;
pub mod snapshot;

pub use algorithm::{FairSlidingWindow, QueryError, WindowSolution};
pub use compact::CompactFairSlidingWindow;
pub use config::{ConfigError, FairSWConfig, FairSWConfigBuilder};
pub use matroid_window::{MatroidSlidingWindow, MatroidWindowSolution};
pub use oblivious::ObliviousFairSlidingWindow;
pub use robust::{RobustFairSlidingWindow, RobustWindowSolution};
pub use snapshot::{PointCodec, SnapshotError};

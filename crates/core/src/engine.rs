//! `WindowEngine` — one enum-dispatched facade over all five
//! sliding-window variants.
//!
//! The trait [`SlidingWindowClustering`] unifies the variants
//! *generically*; this module unifies them as a
//! *value*: a [`VariantSpec`] names a variant plus its extra parameters
//! (scale bounds, outlier budget, matroid constraint), and
//! [`WindowEngine::build`] constructs the corresponding algorithm from a
//! shared [`FairSWConfig`]. Because `WindowEngine` itself implements the
//! trait, heterogeneous fleets — e.g. `Vec<WindowEngine<M>>` feeding a
//! future sharding or multi-tenant serving layer — drive every variant
//! through identical code:
//!
//! ```
//! use fairsw_core::{EngineBuilder, SlidingWindowClustering, VariantSpec, WindowEngine};
//! use fairsw_metric::{Colored, Euclidean, EuclidPoint};
//!
//! let mut fleet: Vec<WindowEngine<Euclidean>> = vec![
//!     EngineBuilder::new()
//!         .window_size(100)
//!         .capacities(vec![2, 2])
//!         .variant(VariantSpec::Fixed { dmin: 0.1, dmax: 100.0 })
//!         .build(Euclidean)
//!         .unwrap(),
//!     EngineBuilder::new()
//!         .window_size(100)
//!         .capacities(vec![2, 2])
//!         .build(Euclidean) // defaults to the oblivious variant
//!         .unwrap(),
//! ];
//! for i in 0..300u32 {
//!     let p = Colored::new(EuclidPoint::new(vec![(i % 97) as f64]), i % 2);
//!     for engine in &mut fleet {
//!         engine.insert(p.clone());
//!     }
//! }
//! for engine in &fleet {
//!     let sol = engine.query().unwrap();
//!     assert!(!sol.centers.is_empty());
//! }
//! ```
//!
//! ## Parallel engines and fleets
//!
//! Each engine can spread its per-guess work over a worker pool with
//! [`EngineBuilder::threads`], and a whole fleet can be driven
//! concurrently over one shared batch with [`run_fleet`] — the
//! multi-tenant serving shape. Both axes compose, and every answer is
//! bit-identical to a sequential run (see [`crate::parallel`] for how to
//! choose a thread count):
//!
//! ```
//! use fairsw_core::{run_fleet, EngineBuilder, SlidingWindowClustering};
//! use fairsw_metric::{Colored, Euclidean, EuclidPoint};
//!
//! // Two tenants: one knows its distance scales, one is oblivious;
//! // each spreads its guesses over 2 worker threads.
//! let mut fleet = vec![
//!     EngineBuilder::new()
//!         .window_size(100)
//!         .capacities(vec![2, 2])
//!         .fixed(0.1, 1e3)
//!         .threads(2)
//!         .build(Euclidean)
//!         .unwrap(),
//!     EngineBuilder::new()
//!         .window_size(100)
//!         .capacities(vec![2, 2])
//!         .threads(2)
//!         .build(Euclidean)
//!         .unwrap(),
//! ];
//! let batch: Vec<_> = (0..300u32)
//!     .map(|i| Colored::new(EuclidPoint::new(vec![(i % 97) as f64]), i % 2))
//!     .collect();
//! for sol in run_fleet(&mut fleet, &batch) {
//!     assert!(!sol.unwrap().centers.is_empty());
//! }
//! ```

use crate::algorithm::FairSlidingWindow;
use crate::api::{MemoryStats, QueryError, SlidingWindowClustering, Solution};
use crate::compact::CompactFairSlidingWindow;
use crate::config::{ConfigError, FairSWConfig, FairSWConfigBuilder};
use crate::matroid_window::MatroidSlidingWindow;
use crate::oblivious::ObliviousFairSlidingWindow;
use crate::parallel::ParallelismSpec;
use crate::robust::RobustFairSlidingWindow;
use fairsw_matroid::AnyMatroid;
use fairsw_metric::{Colored, Exactness, Metric, Projectable, Projector, ProjectorKind, Relaxed};

/// Which sliding-window variant to construct, plus its extra parameters.
///
/// The shared parameters (window length, budgets, `β`, `δ`) live in
/// [`FairSWConfig`]; a spec carries only what distinguishes the variant.
#[derive(Clone, Debug)]
pub enum VariantSpec {
    /// The main algorithm ("Ours"): fixed guess lattice spanning
    /// `[dmin, dmax]`.
    Fixed {
        /// Lower bound on the stream's pairwise distances.
        dmin: f64,
        /// Upper bound on the stream's pairwise distances.
        dmax: f64,
    },
    /// The scale-oblivious variant ("OursOblivious"): no prior bounds.
    Oblivious,
    /// The Corollary 2 variant: validation-only structures,
    /// dimension-free space.
    Compact {
        /// Lower bound on the stream's pairwise distances.
        dmin: f64,
        /// Upper bound on the stream's pairwise distances.
        dmax: f64,
    },
    /// The outlier-tolerant extension: up to `z` outliers per window.
    Robust {
        /// Tolerated outliers per window.
        z: usize,
        /// Lower bound on the stream's pairwise distances.
        dmin: f64,
        /// Upper bound on the stream's pairwise distances.
        dmax: f64,
    },
    /// Arbitrary matroid constraint over colors (the config's
    /// per-color capacities are ignored; the constraint is the matroid).
    Matroid {
        /// The color constraint.
        matroid: AnyMatroid,
        /// Lower bound on the stream's pairwise distances.
        dmin: f64,
        /// Upper bound on the stream's pairwise distances.
        dmax: f64,
    },
}

/// Any sliding-window variant behind one enum-dispatched value.
///
/// Variants are boxed so the enum itself stays pointer-sized — a
/// heterogeneous `Vec<WindowEngine<M>>` moves cheaply regardless of how
/// much per-guess state each algorithm carries.
#[derive(Clone, Debug)]
pub enum EngineKind<M: Metric> {
    /// [`FairSlidingWindow`] — "Ours".
    Fixed(Box<FairSlidingWindow<M>>),
    /// [`ObliviousFairSlidingWindow`] — "OursOblivious".
    Oblivious(Box<ObliviousFairSlidingWindow<M>>),
    /// [`CompactFairSlidingWindow`] — Corollary 2.
    Compact(Box<CompactFairSlidingWindow<M>>),
    /// [`RobustFairSlidingWindow`] — outlier tolerant.
    Robust(Box<RobustFairSlidingWindow<M>>),
    /// [`MatroidSlidingWindow`] under a type-erased [`AnyMatroid`].
    Matroid(Box<MatroidSlidingWindow<M, AnyMatroid>>),
}

/// A seeded Johnson–Lindenstrauss ingest transform attached ahead of an
/// engine: every inserted point is projected to `out_dim` dimensions
/// before it reaches the window, so the interned [`fairsw_metric::PointStore`]
/// — and with it every coreset byte, kernel mirror, and snapshot — only
/// ever holds projected payloads.
///
/// The matrix is materialized lazily from the first inserted point's
/// dimension (see the seed contract in [`fairsw_metric::project`]), so
/// the spec itself is a few words and clones freely.
#[derive(Clone, Debug)]
pub struct EngineProjection {
    out_dim: usize,
    seed: u64,
    sparse: bool,
    projector: Option<Projector>,
}

impl EngineProjection {
    fn new(out_dim: usize, seed: u64, sparse: bool) -> Self {
        EngineProjection {
            out_dim,
            seed,
            sparse,
            projector: None,
        }
    }

    /// Target dimension of the projection.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The seed the matrix is rematerialized from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the sparse (Achlioptas ±1/0) construction is used.
    pub fn sparse(&self) -> bool {
        self.sparse
    }

    /// Input dimension, once the first point materialized the matrix.
    pub fn in_dim(&self) -> Option<usize> {
        self.projector.as_ref().map(Projector::in_dim)
    }

    fn materialize(&mut self, in_dim: usize) -> &Projector {
        if self.projector.is_none() {
            let kind = if self.sparse {
                ProjectorKind::Sparse
            } else {
                ProjectorKind::Dense
            };
            self.projector = Some(Projector::build(in_dim, self.out_dim, self.seed, kind));
        }
        self.projector
            .as_ref()
            .expect("projector just materialized")
    }

    /// Projects one colored point, materializing the matrix from the
    /// first point's dimension. Later points of a different dimension
    /// panic (the projection matrix is fixed once data arrived).
    fn apply<P: Projectable>(&mut self, p: Colored<P>) -> Colored<P> {
        let projector = self.materialize(p.point.width());
        Colored::new(p.point.project_with(projector), p.color)
    }
}

/// One sliding-window variant plus an optional JL ingest projection.
///
/// The variant dispatch lives in [`EngineKind`]; this wrapper threads
/// every insert through [`EngineProjection`] when one is configured
/// (see [`EngineBuilder::project`]) and otherwise forwards untouched.
#[derive(Clone, Debug)]
pub struct WindowEngine<M: Metric> {
    kind: EngineKind<M>,
    proj: Option<EngineProjection>,
}

/// Dispatches a method call to whichever variant the engine holds.
macro_rules! dispatch {
    ($kind:expr, $inner:ident => $body:expr) => {
        match $kind {
            EngineKind::Fixed($inner) => $body,
            EngineKind::Oblivious($inner) => $body,
            EngineKind::Compact($inner) => $body,
            EngineKind::Robust($inner) => $body,
            EngineKind::Matroid($inner) => $body,
        }
    };
}

impl<M: Metric> WindowEngine<M> {
    /// Constructs the variant described by `spec` from a shared
    /// configuration. All parameter validation is fallible — no variant
    /// panics on bad input.
    pub fn build(cfg: FairSWConfig, spec: VariantSpec, metric: M) -> Result<Self, ConfigError> {
        let kind = match spec {
            VariantSpec::Fixed { dmin, dmax } => {
                EngineKind::Fixed(Box::new(FairSlidingWindow::new(cfg, metric, dmin, dmax)?))
            }
            VariantSpec::Oblivious => {
                EngineKind::Oblivious(Box::new(ObliviousFairSlidingWindow::new(cfg, metric)?))
            }
            VariantSpec::Compact { dmin, dmax } => EngineKind::Compact(Box::new(
                CompactFairSlidingWindow::new(cfg, metric, dmin, dmax)?,
            )),
            VariantSpec::Robust { z, dmin, dmax } => EngineKind::Robust(Box::new(
                RobustFairSlidingWindow::new(cfg, z, metric, dmin, dmax)?,
            )),
            VariantSpec::Matroid {
                matroid,
                dmin,
                dmax,
            } => {
                // The matroid is the constraint: the config's capacities
                // are documented as ignored here, so only the parameters
                // the variant consumes are validated (by its constructor).
                EngineKind::Matroid(Box::new(MatroidSlidingWindow::new(
                    metric,
                    matroid,
                    cfg.window_size,
                    cfg.beta,
                    cfg.delta,
                    dmin,
                    dmax,
                )?))
            }
        };
        Ok(WindowEngine { kind, proj: None })
    }

    /// Attaches a seeded JL ingest projection: every subsequent insert
    /// is mapped to `out_dim` dimensions (dense Gaussian, or sparse
    /// Achlioptas when `sparse`) before it reaches the window. The
    /// matrix materializes from the first inserted point's dimension;
    /// see [`fairsw_metric::project`] for the seed/recovery contract.
    pub fn with_projection(mut self, out_dim: usize, seed: u64, sparse: bool) -> Self {
        self.proj = Some(EngineProjection::new(out_dim, seed, sparse));
        self
    }

    /// The configured ingest projection, if any.
    pub fn projection(&self) -> Option<&EngineProjection> {
        self.proj.as_ref()
    }

    /// Short stable identifier of the variant this engine runs.
    pub fn variant_name(&self) -> &'static str {
        match &self.kind {
            EngineKind::Fixed(_) => "fixed",
            EngineKind::Oblivious(_) => "oblivious",
            EngineKind::Compact(_) => "compact",
            EngineKind::Robust(_) => "robust",
            EngineKind::Matroid(_) => "matroid",
        }
    }

    /// The number of fairness colors of the fixed-lattice variant's
    /// configuration (`None` for the other variants; serving layers use
    /// this for spool-restored tenants, which are always fixed).
    pub fn num_colors(&self) -> Option<usize> {
        match &self.kind {
            EngineKind::Fixed(e) => Some(e.config().num_colors()),
            _ => None,
        }
    }

    /// Spreads the engine's per-guess work over `spec` worker threads.
    /// Parallel and sequential runs are bit-identical — guesses never
    /// interact — so this is purely a throughput knob (see
    /// [`crate::parallel`]).
    pub fn with_parallelism(self, spec: ParallelismSpec) -> Self {
        let kind = match self.kind {
            EngineKind::Fixed(e) => EngineKind::Fixed(Box::new(e.with_parallelism(spec))),
            EngineKind::Oblivious(e) => EngineKind::Oblivious(Box::new(e.with_parallelism(spec))),
            EngineKind::Compact(e) => EngineKind::Compact(Box::new(e.with_parallelism(spec))),
            EngineKind::Robust(e) => EngineKind::Robust(Box::new(e.with_parallelism(spec))),
            EngineKind::Matroid(e) => EngineKind::Matroid(Box::new(e.with_parallelism(spec))),
        };
        WindowEngine { kind, ..self }
    }

    /// The effective worker-thread count (1 when sequential).
    pub fn threads(&self) -> usize {
        dispatch!(&self.kind, e => e.threads())
    }

    /// Drops all streamed state and rebuilds the empty structures from
    /// the retained configuration — same variant, same guess lattice,
    /// same worker pool. Much cheaper than reconstructing through
    /// [`EngineBuilder`]; this is the tenant delete-and-recreate reuse
    /// path of serving layers. A configured projection keeps its spec
    /// but drops the materialized matrix — the next stream's first
    /// point redetermines the input dimension.
    pub fn reset(&mut self) {
        if let Some(proj) = &mut self.proj {
            proj.projector = None;
        }
        dispatch!(&mut self.kind, e => e.reset())
    }
}

/// Magic tag prefixed to FSW2 bytes when the engine carries an ingest
/// projection: the trailer-free FSW2 payload follows a 21-byte header
/// (`"FSWP"`, `out_dim: u32`, `seed: u64`, `sparse: u8`, `in_dim: u32`,
/// little-endian; `in_dim = 0` when the matrix never materialized).
/// Stored window payloads are already projected, so restore reprojects
/// nothing — it only rebuilds the matrix for *future* inserts.
const PROJ_SNAPSHOT_MAGIC: &[u8; 4] = b"FSWP";

impl<M: Metric> WindowEngine<M>
where
    M::Point: crate::snapshot::PointCodec,
{
    /// Serializes the engine's complete state as a self-contained FSW2
    /// snapshot (see [`crate::snapshot`]). Only the fixed-lattice main
    /// algorithm supports checkpointing today; the other variants return
    /// `None` (callers such as the serving layer report the tenant as
    /// unsupported instead of failing). An ingest projection rides as a
    /// tiny parameter header — per the seed contract the matrix itself
    /// is never serialized.
    pub fn snapshot(&self) -> Option<Vec<u8>> {
        let inner = match &self.kind {
            EngineKind::Fixed(e) => e.snapshot(),
            _ => return None,
        };
        Some(match &self.proj {
            None => inner,
            Some(p) => {
                let mut out = Vec::with_capacity(21 + inner.len());
                out.extend_from_slice(PROJ_SNAPSHOT_MAGIC);
                out.extend_from_slice(&(p.out_dim as u32).to_le_bytes());
                out.extend_from_slice(&p.seed.to_le_bytes());
                out.push(p.sparse as u8);
                let in_dim = p.in_dim().unwrap_or(0) as u32;
                out.extend_from_slice(&in_dim.to_le_bytes());
                out.extend_from_slice(&inner);
                out
            }
        })
    }

    /// Reconstructs a fixed-variant engine from a snapshot produced by
    /// [`snapshot`](Self::snapshot), including a carried projection
    /// (rematerialized from its seed, bit-identical to the original).
    /// The restored engine starts sequential; re-apply
    /// [`with_parallelism`](Self::with_parallelism) to restore a pool.
    pub fn restore(metric: M, bytes: &[u8]) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        if bytes.len() >= 4 && &bytes[..4] == PROJ_SNAPSHOT_MAGIC {
            if bytes.len() < 21 {
                return Err(SnapshotError::Truncated);
            }
            let out_dim = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
            let seed = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
            let sparse = match bytes[16] {
                0 => false,
                1 => true,
                other => {
                    return Err(SnapshotError::Invalid(format!(
                        "projection sparse flag {other} (expected 0 or 1)"
                    )))
                }
            };
            let in_dim = u32::from_le_bytes(bytes[17..21].try_into().expect("4 bytes")) as usize;
            if out_dim == 0 {
                return Err(SnapshotError::Invalid(
                    "projection out_dim must be positive".into(),
                ));
            }
            let inner = FairSlidingWindow::restore(metric, &bytes[21..])?;
            let mut proj = EngineProjection::new(out_dim, seed, sparse);
            if in_dim > 0 {
                proj.materialize(in_dim);
            }
            Ok(WindowEngine {
                kind: EngineKind::Fixed(Box::new(inner)),
                proj: Some(proj),
            })
        } else {
            Ok(WindowEngine {
                kind: EngineKind::Fixed(Box::new(FairSlidingWindow::restore(metric, bytes)?)),
                proj: None,
            })
        }
    }
}

/// Drives a heterogeneous fleet of engines over one shared batch,
/// concurrently (one scoped thread per engine), then queries each —
/// the multi-tenant serving shape: many windows, one arrival stream.
///
/// Engines may themselves be parallel ([`EngineBuilder::threads`]); the
/// fleet axis and the per-engine guess axis compose because pool jobs
/// are leaf closures that never block on other jobs. Results are
/// returned in engine order and are identical to driving each engine
/// alone.
pub fn run_fleet<M>(
    engines: &mut [WindowEngine<M>],
    batch: &[Colored<M::Point>],
) -> Vec<Result<Solution<M::Point>, QueryError>>
where
    M: Metric + Send + Sync,
    M::Point: Projectable + Send + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = engines
            .iter_mut()
            .map(|engine| {
                scope.spawn(move || {
                    engine.insert_batch(batch.iter().cloned());
                    engine.query()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect()
    })
}

impl<M> SlidingWindowClustering<M> for WindowEngine<M>
where
    M: Metric + Sync,
    M::Point: Projectable + Send + Sync,
{
    fn insert(&mut self, p: Colored<M::Point>) {
        let p = match &mut self.proj {
            Some(proj) => proj.apply(p),
            None => p,
        };
        dispatch!(&mut self.kind, e => e.insert(p))
    }

    fn insert_batch<I>(&mut self, batch: I)
    where
        I: IntoIterator<Item = Colored<M::Point>>,
    {
        // Forward to the variant's batched path (one pool dispatch per
        // batch) instead of the trait's insert-by-insert default.
        let WindowEngine { kind, proj } = self;
        match proj {
            Some(proj) => {
                dispatch!(kind, e => e.insert_batch(batch.into_iter().map(|p| proj.apply(p))))
            }
            None => dispatch!(kind, e => e.insert_batch(batch)),
        }
    }

    fn query(&self) -> Result<Solution<M::Point>, QueryError> {
        dispatch!(&self.kind, e => e.query())
    }

    fn time(&self) -> u64 {
        dispatch!(&self.kind, e => e.time())
    }

    fn window_size(&self) -> usize {
        dispatch!(&self.kind, e => e.window_size())
    }

    fn memory_stats(&self) -> MemoryStats {
        dispatch!(&self.kind, e => e.memory_stats())
    }

    fn check_invariants(&self) -> Result<(), String> {
        dispatch!(&self.kind, e => e.check_invariants())
    }

    fn stored_points(&self) -> usize {
        dispatch!(&self.kind, e => e.stored_points())
    }

    fn num_guesses(&self) -> usize {
        dispatch!(&self.kind, e => e.num_guesses())
    }
}

/// Fluent construction of a [`WindowEngine`]: the [`FairSWConfig`]
/// parameters plus a [`VariantSpec`], defaulting to the oblivious
/// variant (the only one needing no scale bounds).
#[derive(Clone, Debug, Default)]
pub struct EngineBuilder {
    cfg: FairSWConfigBuilder,
    spec: Option<VariantSpec>,
    par: ParallelismSpec,
    exactness: Exactness,
    compact_mirror: bool,
    project: Option<(usize, u64, bool)>,
}

impl EngineBuilder {
    /// Starts a builder with the paper's defaults (`β = 2`, `δ = 1`,
    /// oblivious variant).
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Sets the window length `n`.
    pub fn window_size(mut self, n: usize) -> Self {
        self.cfg = self.cfg.window_size(n);
        self
    }

    /// Sets the per-color budgets `k_i` (ignored by the matroid variant,
    /// whose constraint is its matroid).
    pub fn capacities(mut self, caps: Vec<usize>) -> Self {
        self.cfg = self.cfg.capacities(caps);
        self
    }

    /// Sets the guess parameter `β` (default 2, as in the paper).
    pub fn beta(mut self, beta: f64) -> Self {
        self.cfg = self.cfg.beta(beta);
        self
    }

    /// Sets the coreset precision `δ` (default 1). Overrides any earlier
    /// [`epsilon`](Self::epsilon).
    pub fn delta(mut self, delta: f64) -> Self {
        self.cfg = self.cfg.delta(delta);
        self
    }

    /// Sets `δ` from a target `ε` per Theorem 1 (`α = 3`, Jones),
    /// evaluated with the final `β` at [`build`](Self::build) time.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.cfg = self.cfg.epsilon(epsilon);
        self
    }

    /// Selects the variant to construct.
    pub fn variant(mut self, spec: VariantSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Spreads per-guess work over `n` worker threads (`0`/`1` =
    /// sequential). The default consults the `FAIRSW_THREADS`
    /// environment variable. Parallel and sequential engines produce
    /// bit-identical answers — this is purely a throughput knob; see the
    /// module docs for guidance on choosing a count.
    pub fn threads(self, n: usize) -> Self {
        self.parallelism(ParallelismSpec::Threads(n))
    }

    /// Sets the full [`ParallelismSpec`] (explicit, sequential, or
    /// environment-driven).
    pub fn parallelism(mut self, spec: ParallelismSpec) -> Self {
        self.par = spec;
        self
    }

    /// Shorthand for [`VariantSpec::Fixed`].
    pub fn fixed(self, dmin: f64, dmax: f64) -> Self {
        self.variant(VariantSpec::Fixed { dmin, dmax })
    }

    /// Shorthand for [`VariantSpec::Oblivious`] (the default).
    pub fn oblivious(self) -> Self {
        self.variant(VariantSpec::Oblivious)
    }

    /// Shorthand for [`VariantSpec::Compact`].
    pub fn compact(self, dmin: f64, dmax: f64) -> Self {
        self.variant(VariantSpec::Compact { dmin, dmax })
    }

    /// Shorthand for [`VariantSpec::Robust`].
    pub fn robust(self, z: usize, dmin: f64, dmax: f64) -> Self {
        self.variant(VariantSpec::Robust { z, dmin, dmax })
    }

    /// Shorthand for [`VariantSpec::Matroid`].
    pub fn matroid(self, matroid: impl Into<AnyMatroid>, dmin: f64, dmax: f64) -> Self {
        self.variant(VariantSpec::Matroid {
            matroid: matroid.into(),
            dmin,
            dmax,
        })
    }

    /// Sets the kernel exactness contract for
    /// [`build_relaxed`](Self::build_relaxed): [`Exactness::Exact`]
    /// (the default) keeps every distance bit-identical to the scalar
    /// reference kernels, [`Exactness::Approx`] lets staged views run the
    /// runtime-dispatched SIMD kernels (whose FMA contraction may differ
    /// from scalar by ulps — well inside the paper's `(1+ε)` radius
    /// envelope). Ignored by [`build`](Self::build), which constructs the
    /// engine over the bare metric.
    pub fn exactness(mut self, exactness: Exactness) -> Self {
        self.exactness = exactness;
        self
    }

    /// In [`Exactness::Approx`] mode, additionally stages coreset views
    /// as the compact `f32` mirror (about half the staged bytes; distance
    /// error bounded by `f32` rounding of the coordinates). Final radii
    /// are still re-ranked with the exact `f64` kernel. No effect in
    /// exact mode.
    pub fn compact_mirror(mut self, on: bool) -> Self {
        self.compact_mirror = on;
        self
    }

    /// Projects every ingested point to `out_dim` dimensions through a
    /// seeded dense JL transform before anything is interned — the
    /// window, its kernels, mirrors, and snapshots only ever see
    /// projected payloads. The matrix materializes from the first
    /// inserted point's dimension and is rematerialized from `seed`
    /// anywhere (see [`fairsw_metric::project`]); pick
    /// `out_dim = O(ε⁻² log n)` below the stream dimension.
    pub fn project(mut self, out_dim: usize, seed: u64) -> Self {
        self.project = Some((out_dim, seed, false));
        self
    }

    /// Like [`project`](Self::project) with the sparse (Achlioptas
    /// ±1/0) construction: same distortion guarantee, two thirds of
    /// the matrix entries are exact zeros.
    pub fn project_sparse(mut self, out_dim: usize, seed: u64) -> Self {
        self.project = Some((out_dim, seed, true));
        self
    }

    /// Like [`build`](Self::build), but wraps the metric in
    /// [`Relaxed`] carrying the configured
    /// [`exactness`](Self::exactness) /
    /// [`compact_mirror`](Self::compact_mirror) policy. With the default
    /// `Exactness::Exact` the engine is bit-identical to
    /// `build(metric)` — the serving layer always constructs through
    /// this path and lets per-tenant configuration pick the mode.
    pub fn build_relaxed<M: Metric>(
        self,
        metric: M,
    ) -> Result<WindowEngine<Relaxed<M>>, ConfigError> {
        let relaxed =
            Relaxed::new(metric, self.exactness).with_compact_staging(self.compact_mirror);
        self.build(relaxed)
    }

    /// Validates the configuration and constructs the engine.
    pub fn build<M: Metric>(self, metric: M) -> Result<WindowEngine<M>, ConfigError> {
        let spec = self.spec.unwrap_or(VariantSpec::Oblivious);
        // The matroid variant takes its constraint from the matroid, not
        // from per-color capacities, so it skips the capacity checks of
        // `FairSWConfig` (its constructor validates the rest); the other
        // variants get the fully validated configuration.
        let cfg = match spec {
            VariantSpec::Matroid { .. } => self.cfg.build_raw(),
            _ => self.cfg.build()?,
        };
        let mut engine = WindowEngine::build(cfg, spec, metric)?.with_parallelism(self.par);
        if let Some((out_dim, seed, sparse)) = self.project {
            engine = engine.with_projection(out_dim, seed, sparse);
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SolutionExtras;
    use fairsw_matroid::{Group, LaminarMatroid, PartitionMatroid};
    use fairsw_metric::{Colored, EuclidPoint, Euclidean};

    fn cp(x: f64, c: u32) -> Colored<EuclidPoint> {
        Colored::new(EuclidPoint::new(vec![x]), c)
    }

    fn base() -> EngineBuilder {
        EngineBuilder::new().window_size(40).capacities(vec![1, 1])
    }

    #[test]
    fn builds_every_variant_from_one_config() {
        let engines: Vec<WindowEngine<Euclidean>> = vec![
            base().fixed(0.01, 1e4).build(Euclidean).unwrap(),
            base().oblivious().build(Euclidean).unwrap(),
            base().compact(0.01, 1e4).build(Euclidean).unwrap(),
            base().robust(2, 0.01, 1e4).build(Euclidean).unwrap(),
            base()
                .matroid(PartitionMatroid::new(vec![1, 1]).unwrap(), 0.01, 1e4)
                .build(Euclidean)
                .unwrap(),
        ];
        let names: Vec<_> = engines.iter().map(WindowEngine::variant_name).collect();
        assert_eq!(
            names,
            ["fixed", "oblivious", "compact", "robust", "matroid"]
        );
    }

    #[test]
    fn heterogeneous_fleet_runs_through_the_trait() {
        let mut fleet: Vec<WindowEngine<Euclidean>> = vec![
            base().fixed(0.01, 1e4).build(Euclidean).unwrap(),
            base().oblivious().build(Euclidean).unwrap(),
            base().compact(0.01, 1e4).build(Euclidean).unwrap(),
            base().robust(1, 0.01, 1e4).build(Euclidean).unwrap(),
            base()
                .matroid(
                    LaminarMatroid::new(vec![Group::new(vec![0], 1), Group::new(vec![0, 1], 2)])
                        .unwrap(),
                    0.01,
                    1e4,
                )
                .build(Euclidean)
                .unwrap(),
        ];
        for i in 0..120u64 {
            let base_x = if i % 2 == 0 { 0.0 } else { 500.0 };
            let p = cp(base_x + (i as f64 * 0.618).fract() * 3.0, (i % 2) as u32);
            for e in &mut fleet {
                e.insert(p.clone());
            }
        }
        for e in &fleet {
            assert_eq!(e.time(), 120);
            assert_eq!(e.window_size(), 40);
            e.check_invariants().unwrap();
            let sol = e
                .query()
                .unwrap_or_else(|err| panic!("{} failed to answer: {err}", e.variant_name()));
            assert!(!sol.centers.is_empty());
            assert!(sol.centers.len() <= 2);
            assert!(
                sol.coreset_radius < 50.0,
                "{}: radius {}",
                e.variant_name(),
                sol.coreset_radius
            );
            assert!(e.stored_points() > 0);
            assert_eq!(e.memory_stats().stored_points(), e.stored_points());
            match (e.variant_name(), &sol.extras) {
                ("robust", SolutionExtras::Robust { .. }) => {}
                ("oblivious", SolutionExtras::Oblivious { .. }) => {}
                ("fixed" | "compact" | "matroid", SolutionExtras::None) => {}
                (name, extras) => panic!("{name}: unexpected extras {extras:?}"),
            }
        }
    }

    #[test]
    fn build_reports_config_errors_instead_of_panicking() {
        assert!(matches!(
            base().fixed(0.0, 1e4).build(Euclidean),
            Err(ConfigError::BadScaleBounds { .. })
        ));
        assert!(matches!(
            base().robust(1, 5.0, 1.0).build(Euclidean),
            Err(ConfigError::BadScaleBounds { .. })
        ));
        assert!(matches!(
            EngineBuilder::new()
                .capacities(vec![1])
                .fixed(0.1, 1.0)
                .build(Euclidean),
            Err(ConfigError::ZeroWindow)
        ));
        assert!(matches!(
            base()
                .matroid(PartitionMatroid::new(vec![1]).unwrap(), f64::NAN, 1.0)
                .build(Euclidean),
            Err(ConfigError::BadScaleBounds { .. })
        ));
    }

    #[test]
    fn matroid_path_ignores_capacities_on_both_construction_routes() {
        // The matroid carries the constraint; per-color capacities are
        // documented as ignored, so both construction paths must accept
        // a capacity-less configuration.
        let via_builder = EngineBuilder::new()
            .window_size(10)
            .matroid(PartitionMatroid::new(vec![1]).unwrap(), 0.1, 10.0)
            .build(Euclidean);
        assert!(via_builder.is_ok());
        let cfg = FairSWConfig {
            window_size: 10,
            capacities: Vec::new(),
            beta: 2.0,
            delta: 1.0,
        };
        let via_build = WindowEngine::build(
            cfg,
            VariantSpec::Matroid {
                matroid: PartitionMatroid::new(vec![1]).unwrap().into(),
                dmin: 0.1,
                dmax: 10.0,
            },
            Euclidean,
        );
        assert!(via_build.is_ok());
    }

    #[test]
    fn reset_engine_replays_like_a_fresh_one() {
        // Every variant: stream, reset, re-stream a different prefix —
        // answers and memory accounting must equal a fresh engine's.
        let mk_all = || -> Vec<WindowEngine<Euclidean>> {
            vec![
                base().fixed(0.01, 1e4).build(Euclidean).unwrap(),
                base().oblivious().build(Euclidean).unwrap(),
                base().compact(0.01, 1e4).build(Euclidean).unwrap(),
                base().robust(1, 0.01, 1e4).build(Euclidean).unwrap(),
                base()
                    .matroid(PartitionMatroid::new(vec![1, 1]).unwrap(), 0.01, 1e4)
                    .build(Euclidean)
                    .unwrap(),
            ]
        };
        let first: Vec<_> = (0..90u64)
            .map(|i| cp((i as f64 * 0.618_033_988_7).fract() * 300.0, (i % 2) as u32))
            .collect();
        let second: Vec<_> = (0..70u64)
            .map(|i| cp((i as f64 * 0.324_717_957_2).fract() * 40.0, (i % 2) as u32))
            .collect();
        let mut reused = mk_all();
        for e in &mut reused {
            e.insert_batch(first.iter().cloned());
            e.reset();
            assert_eq!(e.time(), 0, "{}: reset kept the clock", e.variant_name());
            assert_eq!(
                e.stored_points(),
                0,
                "{}: reset kept points",
                e.variant_name()
            );
            assert_eq!(
                e.memory_stats().unique_points,
                0,
                "{}: reset kept arena payloads",
                e.variant_name()
            );
            e.insert_batch(second.iter().cloned());
        }
        let mut fresh = mk_all();
        for e in &mut fresh {
            e.insert_batch(second.iter().cloned());
        }
        for (r, f) in reused.iter().zip(&fresh) {
            let name = r.variant_name();
            r.check_invariants().unwrap();
            assert_eq!(r.time(), f.time(), "{name}: time");
            assert_eq!(r.stored_points(), f.stored_points(), "{name}: memory");
            let (a, b) = (r.query().unwrap(), f.query().unwrap());
            assert_eq!(a.guess.to_bits(), b.guess.to_bits(), "{name}: guess");
            assert_eq!(
                a.coreset_radius.to_bits(),
                b.coreset_radius.to_bits(),
                "{name}: radius"
            );
            assert_eq!(a.centers.len(), b.centers.len(), "{name}: centers");
        }
    }

    #[test]
    fn reset_keeps_the_worker_pool() {
        let mut e = base().fixed(0.01, 1e4).threads(2).build(Euclidean).unwrap();
        e.insert(cp(1.0, 0));
        e.reset();
        assert_eq!(e.threads(), 2);
    }

    #[test]
    fn engine_snapshot_roundtrips_fixed_and_declines_others() {
        let mut fixed = base().fixed(0.01, 1e4).build(Euclidean).unwrap();
        let mut obl = base().oblivious().build(Euclidean).unwrap();
        for i in 0..60u64 {
            let p = cp((i as f64 * 0.618_033_988_7).fract() * 200.0, (i % 2) as u32);
            fixed.insert(p.clone());
            obl.insert(p);
        }
        assert!(obl.snapshot().is_none());
        let bytes = fixed.snapshot().expect("fixed variant snapshots");
        let restored = WindowEngine::restore(Euclidean, &bytes).unwrap();
        assert_eq!(restored.variant_name(), "fixed");
        assert_eq!(restored.time(), fixed.time());
        let (a, b) = (fixed.query().unwrap(), restored.query().unwrap());
        assert_eq!(a.guess.to_bits(), b.guess.to_bits());
        assert_eq!(a.coreset_radius.to_bits(), b.coreset_radius.to_bits());
    }

    fn wide(i: u64, dim: usize) -> Colored<EuclidPoint> {
        let coords: Vec<f64> = (0..dim)
            .map(|d| ((i * dim as u64 + d as u64) as f64 * 0.37).sin())
            .collect();
        Colored::new(EuclidPoint::new(coords), (i % 2) as u32)
    }

    #[test]
    fn projected_engine_stores_low_dim_payloads() {
        for sparse in [false, true] {
            let builder = base().fixed(1e-4, 1e3);
            let builder = if sparse {
                builder.project_sparse(8, 7)
            } else {
                builder.project(8, 7)
            };
            let mut eng = builder.build(Euclidean).unwrap();
            for i in 0..50 {
                eng.insert(wide(i, 64));
            }
            let sol = eng.query().unwrap();
            assert!(
                sol.centers.iter().all(|c| c.point.dim() == 8),
                "sparse={sparse}: centers kept the raw dimension"
            );
            let proj = eng.projection().expect("projection configured");
            assert_eq!(proj.in_dim(), Some(64));
            assert_eq!(proj.out_dim(), 8);
            assert_eq!(proj.sparse(), sparse);
        }
    }

    #[test]
    fn projected_snapshot_roundtrips_bit_identically() {
        let mut orig = base()
            .fixed(1e-4, 1e3)
            .project(8, 1234)
            .build(Euclidean)
            .unwrap();
        for i in 0..60 {
            orig.insert(wide(i, 96));
        }
        let bytes = orig.snapshot().expect("fixed variant snapshots");
        let mut restored = WindowEngine::restore(Euclidean, &bytes).unwrap();
        let rp = restored.projection().expect("projection restored");
        assert_eq!((rp.out_dim(), rp.seed(), rp.sparse()), (8, 1234, false));
        assert_eq!(rp.in_dim(), Some(96), "matrix not rematerialized");
        // Both engines continue the stream: the rematerialized matrix
        // must be bit-identical, so the answers must be too.
        for i in 60..100 {
            orig.insert(wide(i, 96));
            restored.insert(wide(i, 96));
        }
        let (a, b) = (orig.query().unwrap(), restored.query().unwrap());
        assert_eq!(a.guess.to_bits(), b.guess.to_bits());
        assert_eq!(a.coreset_radius.to_bits(), b.coreset_radius.to_bits());
        assert_eq!(a.centers.len(), b.centers.len());
    }

    #[test]
    fn reset_keeps_projection_spec_but_redetermines_in_dim() {
        let mut eng = base()
            .fixed(1e-4, 1e3)
            .project(4, 9)
            .build(Euclidean)
            .unwrap();
        eng.insert(wide(0, 32));
        assert_eq!(eng.projection().unwrap().in_dim(), Some(32));
        eng.reset();
        assert_eq!(eng.projection().unwrap().in_dim(), None);
        eng.insert(wide(0, 16));
        assert_eq!(eng.projection().unwrap().in_dim(), Some(16));
        assert_eq!(eng.projection().unwrap().out_dim(), 4);
    }

    #[test]
    fn insert_batch_default_matches_repeated_insert() {
        let stream: Vec<_> = (0..90u64)
            .map(|i| cp((i as f64 * 0.324_717_957_2).fract() * 200.0, (i % 2) as u32))
            .collect();
        let mut one = base().fixed(0.01, 1e4).build(Euclidean).unwrap();
        let mut batch = base().fixed(0.01, 1e4).build(Euclidean).unwrap();
        for p in &stream {
            one.insert(p.clone());
        }
        batch.insert_batch(stream);
        assert_eq!(one.time(), batch.time());
        assert_eq!(one.stored_points(), batch.stored_points());
        let (a, b) = (one.query().unwrap(), batch.query().unwrap());
        assert_eq!(a.guess, b.guess);
        assert_eq!(a.coreset_size, b.coreset_size);
        assert_eq!(a.centers.len(), b.centers.len());
    }
}

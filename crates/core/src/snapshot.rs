//! Checkpoint / restore for the sliding-window state.
//!
//! A streaming operator that cannot persist its state must replay up to a
//! full window of history after every restart. Since the whole point of
//! the algorithm is that its state is *small* (`O(k² log Δ (c/ε)^D)`
//! points), serializing it is cheap — this module provides a compact,
//! versioned, self-contained binary snapshot of a
//! [`FairSlidingWindow`]:
//!
//! ```
//! use fairsw_core::{FairSWConfig, FairSlidingWindow, SlidingWindowClustering};
//! use fairsw_metric::{Colored, Euclidean, EuclidPoint};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = FairSWConfig::builder()
//!     .window_size(50)
//!     .capacities(vec![1, 1])
//!     .build()?;
//! let mut sw = FairSlidingWindow::new(cfg, Euclidean, 0.1, 100.0)?;
//! sw.insert(Colored::new(EuclidPoint::new(vec![1.0]), 0));
//! let bytes = sw.snapshot();
//! let restored = FairSlidingWindow::restore(Euclidean, &bytes)?;
//! assert_eq!(restored.time(), sw.time());
//! # Ok(())
//! # }
//! ```
//!
//! The format is little-endian, length-prefixed throughout, and carries
//! the full configuration, so `restore` needs only the metric (the
//! distance function itself is code, not data). Hand-rolled rather than
//! serde-derived: the state contains `Arc<[f64]>` payloads and
//! `BTreeMap`/`VecDeque` families whose derived encodings would be both
//! larger and slower, and the workspace keeps its dependency surface
//! minimal (DESIGN.md §6).
//!
//! ## Format v2: snapshots go through the arena
//!
//! Since the interned-`PointStore` refactor, point payloads are written
//! **once**, in a store section of `(arrival time, point)` pairs; the
//! per-guess families serialize only arrival times plus metadata (a
//! point's identity *is* its arrival time). `restore` re-interns the
//! store section, rebuilds the time→handle mapping, and re-acquires one
//! arena reference per family entry — so a restored window carries
//! exactly the deduplicated payload footprint of the original.

use crate::algorithm::FairSlidingWindow;
use crate::config::FairSWConfig;
use crate::guess::{CoresetEntry, GuessState};
use crate::guess_set::GuessSet;
use fairsw_metric::{EuclidPoint, Metric, PointId, PointStore};
use fairsw_stream::Lattice;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// Magic + version tag of the snapshot format (v2 = interned arena).
const MAGIC: &[u8; 4] = b"FSW2";

/// Errors raised while decoding a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the expected magic/version tag.
    BadMagic,
    /// The buffer ended before the encoded structure did.
    Truncated,
    /// A decoded value is structurally invalid (message attached).
    Invalid(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a fairsw snapshot (bad magic)"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Invalid(m) => write!(f, "invalid snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Binary encoding of a point type. Implemented for [`EuclidPoint`];
/// implement it for custom point types to make their windows
/// snapshot-able.
pub trait PointCodec: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one point from the front of `input`, advancing it.
    fn decode(input: &mut &[u8]) -> Result<Self, SnapshotError>;
}

impl PointCodec for EuclidPoint {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.coords().len() as u64);
        for c in self.coords() {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, SnapshotError> {
        let n = take_count(input, 8)?;
        if n > 1 << 24 {
            return Err(SnapshotError::Invalid(format!("absurd dimension {n}")));
        }
        let mut coords = Vec::with_capacity(n);
        for _ in 0..n {
            coords.push(take_f64(input)?);
        }
        Ok(EuclidPoint::new(coords))
    }
}

// ---- primitive helpers -------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn take_bytes<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], SnapshotError> {
    if input.len() < n {
        return Err(SnapshotError::Truncated);
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

fn take_u64(input: &mut &[u8]) -> Result<u64, SnapshotError> {
    let b = take_bytes(input, 8)?;
    Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

fn take_u32(input: &mut &[u8]) -> Result<u32, SnapshotError> {
    let b = take_bytes(input, 4)?;
    Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
}

fn take_f64(input: &mut &[u8]) -> Result<f64, SnapshotError> {
    let b = take_bytes(input, 8)?;
    Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
}

/// Reads a length prefix and sanity-checks it against the bytes left:
/// every counted item occupies at least `min_item_bytes` further input,
/// so a count the buffer cannot possibly satisfy is rejected *before*
/// any allocation is sized by it (a corrupt 30-byte snapshot must not
/// trigger a multi-GiB `with_capacity`).
fn take_count(input: &mut &[u8], min_item_bytes: usize) -> Result<usize, SnapshotError> {
    let n = take_u64(input)?;
    if n as u128 * min_item_bytes as u128 > input.len() as u128 {
        return Err(SnapshotError::Truncated);
    }
    Ok(n as usize)
}

// ---- guess-state codec -------------------------------------------------
//
// Families reference points by arrival time only; payloads live in the
// snapshot's store section. The decoder resolves times through the
// re-interned arena and re-acquires one reference per entry.

fn encode_time_map(out: &mut Vec<u8>, map: &BTreeMap<u64, PointId>) {
    put_u64(out, map.len() as u64);
    for t in map.keys() {
        put_u64(out, *t);
    }
}

fn decode_time_map<P>(
    input: &mut &[u8],
    ids: &HashMap<u64, PointId>,
    store: &mut PointStore<P>,
) -> Result<BTreeMap<u64, PointId>, SnapshotError> {
    let n = take_count(input, 8)?;
    let mut map = BTreeMap::new();
    for _ in 0..n {
        let t = take_u64(input)?;
        let id = *ids
            .get(&t)
            .ok_or_else(|| SnapshotError::Invalid(format!("entry time {t} not in store")))?;
        store.acquire_owned(id);
        map.insert(t, id);
    }
    Ok(map)
}

fn encode_guess(out: &mut Vec<u8>, g: &GuessState) {
    put_f64(out, g.gamma);
    encode_time_map(out, &g.av);
    put_u64(out, g.rep_of.len() as u64);
    for (v, rep) in &g.rep_of {
        put_u64(out, *v);
        put_u64(out, *rep);
    }
    encode_time_map(out, &g.rv);
    encode_time_map(out, &g.a);
    put_u64(out, g.reps_c.len() as u64);
    for (a, per) in &g.reps_c {
        put_u64(out, *a);
        put_u64(out, per.len() as u64);
        for dq in per {
            put_u64(out, dq.len() as u64);
            for t in dq {
                put_u64(out, *t);
            }
        }
    }
    put_u64(out, g.r.len() as u64);
    for (t, e) in &g.r {
        put_u64(out, *t);
        put_u32(out, e.color);
        put_u64(out, e.attractor);
    }
}

fn decode_guess<P>(
    input: &mut &[u8],
    ids: &HashMap<u64, PointId>,
    store: &mut PointStore<P>,
    ncolors: usize,
) -> Result<GuessState, SnapshotError> {
    let gamma = take_f64(input)?;
    if !(gamma.is_finite() && gamma > 0.0) {
        return Err(SnapshotError::Invalid(format!("bad gamma {gamma}")));
    }
    let av = decode_time_map(input, ids, store)?;
    let n = take_count(input, 16)?;
    let mut rep_of = HashMap::with_capacity(n);
    for _ in 0..n {
        let v = take_u64(input)?;
        let rep = take_u64(input)?;
        rep_of.insert(v, rep);
    }
    let rv = decode_time_map(input, ids, store)?;
    let a = decode_time_map(input, ids, store)?;
    let n = take_count(input, 16)?;
    let mut reps_c = HashMap::with_capacity(n);
    for _ in 0..n {
        let at = take_u64(input)?;
        let nc = take_count(input, 8)?;
        // The insert path indexes these tables by color: a table that
        // does not span the configuration's colors would panic later.
        if nc != ncolors {
            return Err(SnapshotError::Invalid(format!(
                "repsC table spans {nc} colors, config has {ncolors}"
            )));
        }
        let mut per = Vec::with_capacity(nc);
        for _ in 0..nc {
            let len = take_count(input, 8)?;
            let mut dq = VecDeque::with_capacity(len);
            for _ in 0..len {
                dq.push_back(take_u64(input)?);
            }
            per.push(dq);
        }
        reps_c.insert(at, per);
    }
    let n = take_count(input, 20)?;
    let mut r = BTreeMap::new();
    for _ in 0..n {
        let t = take_u64(input)?;
        let color = take_u32(input)?;
        // Colors index the capacity table and the solvers' per-color
        // structures; an out-of-range color must die here, not there.
        if color as usize >= ncolors {
            return Err(SnapshotError::Invalid(format!(
                "color {color} out of range (config has {ncolors})"
            )));
        }
        let attractor = take_u64(input)?;
        let id = *ids
            .get(&t)
            .ok_or_else(|| SnapshotError::Invalid(format!("r entry time {t} not in store")))?;
        store.acquire_owned(id);
        r.insert(
            t,
            CoresetEntry {
                id,
                color,
                attractor,
            },
        );
    }
    // Cross-table invariants the insert path relies on: every live
    // v-attractor owns a representative slot and every live c-attractor
    // owns a repsC table. A flipped key byte can desynchronize two maps
    // while each stays individually well-formed — that must surface as a
    // decode error here, not as a panic on the next arrival.
    for v in av.keys() {
        if !rep_of.contains_key(v) {
            return Err(SnapshotError::Invalid(format!(
                "live v-attractor {v} lacks a representative slot"
            )));
        }
    }
    for t in a.keys() {
        if !reps_c.contains_key(t) {
            return Err(SnapshotError::Invalid(format!(
                "live c-attractor {t} lacks a repsC table"
            )));
        }
    }
    let mut g = GuessState::new(gamma);
    g.av = av;
    g.rep_of = rep_of;
    g.rv = rv;
    g.a = a;
    g.reps_c = reps_c;
    g.r = r;
    Ok(g)
}

// ---- public API --------------------------------------------------------

impl<M: Metric> FairSlidingWindow<M>
where
    M::Point: PointCodec,
{
    /// Serializes the complete algorithm state (configuration included)
    /// into a self-contained byte buffer. Each live point payload is
    /// written once — the arena's deduplication carries over to the wire.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1024);
        out.extend_from_slice(MAGIC);
        put_u64(&mut out, self.cfg.window_size as u64);
        put_u64(&mut out, self.cfg.capacities.len() as u64);
        for c in &self.cfg.capacities {
            put_u64(&mut out, *c as u64);
        }
        put_f64(&mut out, self.cfg.beta);
        put_f64(&mut out, self.cfg.delta);
        put_u64(&mut out, self.t);
        // Store section: (arrival time, payload) in arrival order.
        put_u64(&mut out, self.set.store.live_points() as u64);
        for (t, _, p) in self.set.store.iter() {
            put_u64(&mut out, t);
            p.encode(&mut out);
        }
        put_u64(&mut out, self.set.guesses.len() as u64);
        for g in &self.set.guesses {
            encode_guess(&mut out, g);
        }
        out
    }

    /// Reconstructs a window from a snapshot produced by
    /// [`snapshot`](Self::snapshot). Only the metric must be re-supplied
    /// (a distance function is code, not data); everything else —
    /// configuration, arrival counter, the interned arena, every
    /// per-guess family — comes from the buffer.
    pub fn restore(metric: M, bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut input = bytes;
        let magic = take_bytes(&mut input, 4)?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let window_size = take_u64(&mut input)? as usize;
        let ncaps = take_count(&mut input, 8)?;
        let mut capacities = Vec::with_capacity(ncaps);
        for _ in 0..ncaps {
            capacities.push(take_u64(&mut input)? as usize);
        }
        let beta = take_f64(&mut input)?;
        let delta = take_f64(&mut input)?;
        let cfg = FairSWConfig {
            window_size,
            capacities,
            beta,
            delta,
        };
        cfg.validate()
            .map_err(|e| SnapshotError::Invalid(e.to_string()))?;
        // `validate` bounds neither `n` nor `k`; a corrupt byte in a
        // capacity or the window must not size later allocations (the
        // query path reserves `k + 1` slots).
        let k = cfg.capacities.iter().map(|&c| c as u128).sum::<u128>();
        if k > 1 << 24 {
            return Err(SnapshotError::Invalid(format!("absurd total budget {k}")));
        }
        if window_size as u128 > 1 << 48 {
            return Err(SnapshotError::Invalid(format!(
                "absurd window size {window_size}"
            )));
        }
        let t = take_u64(&mut input)?;
        // Store section: re-intern in arrival order, building the
        // time → handle mapping the family decoders resolve through.
        // Each entry needs ≥ 16 bytes (time + point-length header), so a
        // count the buffer cannot hold is refused before allocating.
        let npoints = take_count(&mut input, 16)?;
        let mut store: PointStore<M::Point> = PointStore::new();
        let mut ids: HashMap<u64, PointId> = HashMap::with_capacity(npoints);
        let mut prev_time: Option<u64> = None;
        for _ in 0..npoints {
            let pt = take_u64(&mut input)?;
            if prev_time.is_some_and(|prev| pt <= prev) {
                return Err(SnapshotError::Invalid("store times not increasing".into()));
            }
            prev_time = Some(pt);
            let p = M::Point::decode(&mut input)?;
            ids.insert(pt, store.insert(pt, p));
        }
        // A guess encodes at minimum its γ plus six length prefixes.
        let nguesses = take_count(&mut input, 56)?;
        let mut guesses = Vec::with_capacity(nguesses);
        for _ in 0..nguesses {
            guesses.push(decode_guess(
                &mut input,
                &ids,
                &mut store,
                cfg.num_colors(),
            )?);
        }
        if !input.is_empty() {
            return Err(SnapshotError::Invalid(format!(
                "{} trailing bytes",
                input.len()
            )));
        }
        let k = cfg.k();
        let lattice = Lattice::new(cfg.beta);
        // Parallelism is an execution property, not state: a restored
        // window starts sequential; re-apply `with_parallelism` to
        // restore a pool.
        Ok(FairSlidingWindow {
            metric,
            cfg,
            k,
            lattice,
            set: GuessSet { guesses, store },
            t,
            exec: crate::parallel::Exec::default(),
            scratch: Default::default(),
            memo: Default::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SlidingWindowClustering;
    use fairsw_metric::{Colored, Euclidean};

    fn build(n_points: u64) -> FairSlidingWindow<Euclidean> {
        let cfg = FairSWConfig::builder()
            .window_size(60)
            .capacities(vec![2, 1])
            .beta(2.0)
            .delta(1.0)
            .build()
            .unwrap();
        let mut sw = FairSlidingWindow::new(cfg, Euclidean, 0.01, 1e4).unwrap();
        for i in 0..n_points {
            let x = (i as f64 * 0.618_033_988_7).fract() * 500.0;
            sw.insert(Colored::new(EuclidPoint::new(vec![x, -x]), (i % 2) as u32));
        }
        sw
    }

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let sw = build(150);
        let bytes = sw.snapshot();
        let restored = FairSlidingWindow::restore(Euclidean, &bytes).unwrap();
        assert_eq!(restored.time(), sw.time());
        assert_eq!(restored.stored_points(), sw.stored_points());
        assert_eq!(restored.num_guesses(), sw.num_guesses());
        // The arena's deduplicated footprint survives the roundtrip.
        let (a, b) = (sw.memory_stats(), restored.memory_stats());
        assert_eq!(a.unique_points, b.unique_points);
        assert_eq!(a.payload_bytes, b.payload_bytes);
        restored.check_invariants().unwrap();
        let a = sw.query().unwrap();
        let b = restored.query().unwrap();
        assert_eq!(a.guess, b.guess);
        assert_eq!(a.coreset_size, b.coreset_size);
        assert!((a.coreset_radius - b.coreset_radius).abs() < 1e-12);
    }

    #[test]
    fn restored_window_evolves_identically() {
        let mut original = build(100);
        let bytes = original.snapshot();
        let mut restored = FairSlidingWindow::restore(Euclidean, &bytes).unwrap();
        // Continue both with the same suffix; behavior must stay in
        // lockstep (expiry, cleanup, evictions, arena reclaim are all
        // deterministic).
        for i in 100u64..260 {
            let x = (i as f64 * 0.324_717_957_2).fract() * 500.0;
            let p = Colored::new(EuclidPoint::new(vec![x, x * 2.0]), (i % 2) as u32);
            original.insert(p.clone());
            restored.insert(p);
        }
        assert_eq!(original.stored_points(), restored.stored_points());
        assert_eq!(
            original.memory_stats().unique_points,
            restored.memory_stats().unique_points
        );
        let a = original.query().unwrap();
        let b = restored.query().unwrap();
        assert_eq!(a.guess, b.guess);
        assert!((a.coreset_radius - b.coreset_radius).abs() < 1e-12);
    }

    #[test]
    fn snapshot_is_compact() {
        let sw = build(3_000);
        let bytes = sw.snapshot();
        // Interned format: every payload once plus 8-byte times per
        // entry — far below one payload per entry, let alone the raw
        // window.
        let per_entry = bytes.len() as f64 / sw.stored_points().max(1) as f64;
        assert!(per_entry < 64.0, "snapshot too fat: {per_entry} B/entry");
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            FairSlidingWindow::<Euclidean>::restore(Euclidean, b"np"),
            Err(SnapshotError::Truncated)
        ));
        assert!(matches!(
            FairSlidingWindow::<Euclidean>::restore(Euclidean, b"nope"),
            Err(SnapshotError::BadMagic)
        ));
        assert!(matches!(
            FairSlidingWindow::<Euclidean>::restore(Euclidean, b"XXXXYYYYZZZZ"),
            Err(SnapshotError::BadMagic)
        ));
        // The v1 (pre-arena) tag is refused, not misparsed.
        assert!(matches!(
            FairSlidingWindow::<Euclidean>::restore(Euclidean, b"FSW1AAAABBBBCCCC"),
            Err(SnapshotError::BadMagic)
        ));
        let sw = build(50);
        let mut bytes = sw.snapshot();
        bytes.truncate(bytes.len() / 2);
        assert!(matches!(
            FairSlidingWindow::<Euclidean>::restore(Euclidean, &bytes),
            Err(SnapshotError::Truncated) | Err(SnapshotError::Invalid(_))
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let sw = build(50);
        let mut bytes = sw.snapshot();
        bytes.extend_from_slice(b"extra");
        assert!(matches!(
            FairSlidingWindow::<Euclidean>::restore(Euclidean, &bytes),
            Err(SnapshotError::Invalid(_))
        ));
    }

    mod decoder_robustness {
        //! Property battery over the decoder's failure surface: random
        //! truncations and random single-byte corruptions of a valid
        //! snapshot must always come back as `Err(SnapshotError::..)` —
        //! never a panic, and never an allocation sized by a corrupt
        //! length prefix (`take_count` rejects counts the buffer cannot
        //! hold *before* any `with_capacity`, so a malicious few-byte
        //! buffer cannot request gigabytes; a run that violated this
        //! would abort or time out loudly here).

        use super::*;
        use proptest::prelude::*;
        use std::sync::OnceLock;

        /// One moderately rich snapshot, built once: multiple guesses,
        /// robust families, a slid window.
        fn valid_snapshot() -> &'static [u8] {
            static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
            BYTES.get_or_init(|| build(150).snapshot())
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            #[test]
            fn any_truncation_is_an_error(frac in 0.0..1.0f64) {
                let bytes = valid_snapshot();
                // Every strict prefix, including the empty one.
                let cut = ((bytes.len() as f64) * frac) as usize % bytes.len();
                let result = FairSlidingWindow::<Euclidean>::restore(
                    Euclidean,
                    &bytes[..cut],
                );
                prop_assert!(
                    result.is_err(),
                    "truncation to {cut}/{} bytes decoded",
                    bytes.len()
                );
            }

            #[test]
            fn single_byte_corruption_never_panics_and_stays_structural(
                frac in 0.0..1.0f64,
                xor in 1u8..255,
            ) {
                let mut bytes = valid_snapshot().to_vec();
                let pos = ((bytes.len() as f64) * frac) as usize % bytes.len();
                bytes[pos] ^= xor;
                // The decode must return — corrupt magic, lengths, times,
                // gammas, colors all surface as Err; a flipped coordinate
                // bit may legitimately decode. When it does decode, the
                // restored window must be fully operational (queryable),
                // not a structure with dangling handles.
                match FairSlidingWindow::<Euclidean>::restore(Euclidean, &bytes) {
                    Err(_) => {}
                    Ok(mut sw) => {
                        prop_assert_eq!(sw.time(), 150);
                        prop_assert!(sw.query().is_ok());
                        // The window must also keep streaming: colors
                        // and per-color tables were validated against
                        // the decoded configuration.
                        for i in 0..8u64 {
                            sw.insert(Colored::new(
                                EuclidPoint::new(vec![i as f64, 1.0]),
                                (i % 2) as u32,
                            ));
                        }
                        prop_assert!(sw.query().is_ok());
                    }
                }
            }

            #[test]
            fn corrupt_store_count_is_refused_before_allocating(
                count in 0u64..u64::MAX,
            ) {
                // Surgical corruption of the store-section count (offset:
                // magic 4 + window 8 + ncaps 8 + 2 caps 16 + beta/delta 16
                // + t 8 = 60). Counts the buffer cannot hold must be
                // rejected by the pre-allocation guard.
                let bytes = valid_snapshot();
                let mut evil = bytes.to_vec();
                evil[60..68].copy_from_slice(&count.to_le_bytes());
                let result = FairSlidingWindow::<Euclidean>::restore(Euclidean, &evil);
                if count as u128 * 16 > (bytes.len() - 68) as u128 {
                    prop_assert!(result.is_err(), "absurd count {count} accepted");
                }
            }
        }
    }

    #[test]
    fn point_codec_roundtrip() {
        let p = EuclidPoint::new(vec![1.5, -2.25, 1e-300, f64::MAX]);
        let mut out = Vec::new();
        p.encode(&mut out);
        let mut input = out.as_slice();
        let q = EuclidPoint::decode(&mut input).unwrap();
        assert_eq!(p, q);
        assert!(input.is_empty());
    }
}

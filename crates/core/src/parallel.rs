//! Parallel execution of per-guess work.
//!
//! Every sliding-window variant maintains one independent state per
//! radius guess, and `Update`/`Query` touch each guess without ever
//! reading another — the guess axis is embarrassingly parallel. This
//! module supplies the machinery that exploits it:
//!
//! * [`ParallelismSpec`] — how many worker threads an algorithm should
//!   use (explicit, sequential, or taken from the `FAIRSW_THREADS`
//!   environment variable);
//! * [`WorkerPool`] — a persistent `std::thread` pool (the registry is
//!   offline, so no rayon/crossbeam; the pool is ~150 lines of std) with
//!   a scoped-dispatch primitive that lets jobs borrow the caller's
//!   stack;
//! * `Exec` (crate-internal) — the per-algorithm handle: either inline sequential
//!   execution or a shared pool, with the two access patterns the
//!   variants need (`for_each_mut` over mutable per-guess state,
//!   `find_map_first` for the ascending-γ query scan).
//!
//! ## Determinism
//!
//! Parallel execution is *bit-identical* to sequential execution, by
//! construction:
//!
//! * inserts shard the guess list; each guess's state evolves exactly as
//!   it would sequentially because no guess reads another's state;
//! * queries shard the ascending-γ scan into contiguous chunks; each
//!   shard reports the outcome of its first qualifying guess, and the
//!   merge takes the earliest shard's answer — the same guess the
//!   sequential scan would have selected (higher shards do some
//!   throwaway solver work, but the *answer* cannot differ).
//!
//! `tests/parallel_equivalence.rs` enforces this end to end for all five
//! variants: identical `Solution`s and identical `MemoryStats` at any
//! thread count.
//!
//! ## Thread-safety bounds
//!
//! Fanning work out requires the metric to be shareable (`M: Sync`) and
//! points to cross threads (`M::Point: Send + Sync`). Every metric in
//! the workspace is a plain value type satisfying both; the bounds
//! surface on the `SlidingWindowClustering` impls rather than the trait,
//! so exotic single-threaded metrics can still implement the trait for
//! their own types.

use fairsw_metric::ScratchPool;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// How many threads an algorithm should spread its per-guess work over.
///
/// `Threads(0)` and `Threads(1)` both mean sequential execution; the
/// default `Auto` consults the `FAIRSW_THREADS` environment variable
/// (sequential when unset or unparsable), which is how the CI matrix
/// drives the whole test suite through the parallel path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ParallelismSpec {
    /// Read `FAIRSW_THREADS` from the environment; sequential if unset.
    #[default]
    Auto,
    /// Plain single-threaded execution (no pool is created).
    Sequential,
    /// A fixed worker count (`0` and `1` degrade to sequential).
    Threads(usize),
}

impl ParallelismSpec {
    /// The effective worker count: `<= 1` means sequential.
    pub fn resolve(self) -> usize {
        match self {
            ParallelismSpec::Auto => std::env::var("FAIRSW_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(1),
            ParallelismSpec::Sequential => 1,
            ParallelismSpec::Threads(n) => n,
        }
    }
}

/// A job dispatched to the pool. Lifetime-erased: [`WorkerPool::scope`]
/// guarantees every job finishes before it returns, which is what makes
/// handing out `'env` borrows sound.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent worker pool over plain `std::thread`s.
///
/// Workers live as long as the pool; each [`scope`](WorkerPool::scope)
/// call distributes a batch of jobs round-robin and blocks until all of
/// them finish, so jobs may borrow from the caller's stack frame.
/// Cloning the owning `Exec` shares the pool (it is stateless between
/// scope calls); concurrent `scope` calls from different threads are
/// safe because each call tracks completions on its own channel.
pub struct WorkerPool {
    senders: Vec<Sender<(Job, Sender<std::thread::Result<()>>)>>,
    next: AtomicUsize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (`threads >= 2`; smaller counts should
    /// not construct a pool at all — see `Exec::new`).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 2, "a pool below 2 threads is pure overhead");
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = channel::<(Job, Sender<std::thread::Result<()>>)>();
            senders.push(tx);
            handles.push(std::thread::spawn(move || {
                while let Ok((job, done)) = rx.recv() {
                    let result = catch_unwind(AssertUnwindSafe(job));
                    // A receiver that hung up already observed a panic;
                    // nothing useful to do with the send error.
                    let _ = done.send(result);
                }
            }));
        }
        WorkerPool {
            senders,
            next: AtomicUsize::new(0),
            handles: Mutex::new(handles),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Runs `jobs` on the workers and blocks until every one of them has
    /// finished. Panics from jobs are re-raised here (after all jobs
    /// completed, so borrows stay valid during unwinding).
    pub fn scope<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let njobs = jobs.len();
        if njobs == 0 {
            return;
        }
        let (done_tx, done_rx) = channel::<std::thread::Result<()>>();
        for job in jobs {
            // SAFETY: the job only borrows data outliving this call; we
            // receive exactly `njobs` completions below before returning
            // (workers always answer — the job body runs under
            // catch_unwind), so no borrow escapes the scope.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            let i = self.next.fetch_add(1, Ordering::Relaxed) % self.senders.len();
            if let Err(failed) = self.senders[i].send((job, done_tx.clone())) {
                // Worker gone (only possible mid-teardown): run inline so
                // the completion count still balances.
                let (job, done) = failed.0;
                let _ = done.send(catch_unwind(AssertUnwindSafe(job)));
            }
        }
        drop(done_tx);
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for _ in 0..njobs {
            match done_rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(payload)) => {
                    first_panic.get_or_insert(payload);
                }
                // Losing a completion would mean a job may still be
                // running with borrows into our frame: returning (or
                // unwinding) would be unsound, and by construction the
                // workers cannot drop a completion sender without
                // answering. Abort rather than risk UB.
                Err(_) => std::process::abort(),
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // hang up: workers drain and exit
        if let Ok(mut handles) = self.handles.lock() {
            for h in handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

/// The execution strategy carried by each sliding-window algorithm:
/// inline sequential processing, or fan-out over a shared [`WorkerPool`].
///
/// Clones share the pool, so a cloned algorithm keeps its parallelism
/// without spawning new threads.
#[derive(Clone, Default)]
pub(crate) enum Exec {
    /// Inline execution on the calling thread.
    #[default]
    Seq,
    /// Fan out over the pool.
    Pool(Arc<WorkerPool>),
}

/// Hard ceiling on pool size: thread counts beyond this cannot help (a
/// lattice rarely materializes even dozens of guesses) and unchecked
/// values from `--threads`/`FAIRSW_THREADS` must not exhaust OS threads.
pub(crate) const MAX_POOL_THREADS: usize = 256;

impl Exec {
    /// Builds the strategy a spec describes (`<= 1` thread → no pool;
    /// counts are clamped to [`MAX_POOL_THREADS`]).
    pub(crate) fn new(spec: ParallelismSpec) -> Self {
        match spec.resolve().min(MAX_POOL_THREADS) {
            0 | 1 => Exec::Seq,
            n => Exec::Pool(Arc::new(WorkerPool::new(n))),
        }
    }

    /// The effective worker count (1 when sequential).
    pub(crate) fn threads(&self) -> usize {
        match self {
            Exec::Seq => 1,
            Exec::Pool(p) => p.threads(),
        }
    }

    /// Whether work runs inline on the calling thread.
    pub(crate) fn is_sequential(&self) -> bool {
        matches!(self, Exec::Seq)
    }

    /// Replays one batch over every item: item `g` sees arrival `j` of
    /// the batch at time `t0 + 1 + j` with the expiry threshold for a
    /// window of length `window`. Returns the post-batch clock. One pool
    /// dispatch per batch — the shared scaffolding behind every
    /// variant's `insert_batch` override.
    pub(crate) fn replay_batch<T, P, F>(
        &self,
        items: &mut [T],
        batch: &[P],
        t0: u64,
        window: u64,
        f: F,
    ) -> u64
    where
        T: Send,
        P: Sync,
        F: Fn(&mut T, u64, Option<u64>, &P) + Sync,
    {
        self.for_each_mut(items, |g| {
            for (j, p) in batch.iter().enumerate() {
                let t = t0 + 1 + j as u64;
                f(g, t, t.checked_sub(window), p);
            }
        });
        t0 + batch.len() as u64
    }

    /// Applies `f` to every item, sharding contiguously across the pool.
    ///
    /// Items are mutated independently (one worker per chunk), so the
    /// result is identical to the sequential loop for any thread count.
    pub(crate) fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        match self {
            Exec::Seq => items.iter_mut().for_each(f),
            Exec::Pool(pool) => {
                if items.len() <= 1 {
                    items.iter_mut().for_each(f);
                    return;
                }
                let chunk = items.len().div_ceil(pool.threads());
                let f = &f;
                let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = items
                    .chunks_mut(chunk)
                    .map(|c| Box::new(move || c.iter_mut().for_each(f)) as _)
                    .collect();
                pool.scope(jobs);
            }
        }
    }

    /// Returns `f`'s first `Some` over `items` *in item order* — the
    /// parallel equivalent of `items.iter().find_map(f)`. Every query
    /// path now scans through [`find_map_first_pooled`](Self::find_map_first_pooled);
    /// this scratch-free wrapper remains for the determinism unit tests.
    #[cfg(test)]
    pub(crate) fn find_map_first<T, R, F>(&self, items: &[T], f: F) -> Option<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> Option<R> + Sync,
    {
        let pool: ScratchPool<()> = ScratchPool::default();
        self.find_map_first_pooled(&pool, items, |item, ()| f(item))
    }

    /// [`find_map_first`](Self::find_map_first) with a reusable scratch
    /// checked out of `pool` per shard: each worker borrows one scratch
    /// for its whole contiguous chunk (the sequential scan borrows one
    /// for the whole list), so per-item buffers warm up once and — with
    /// a pool owned by the algorithm — stay warm across queries.
    ///
    /// Shards are contiguous chunks scanned independently; the merge
    /// takes the earliest shard's hit, so the selected item is exactly
    /// the one the sequential scan would pick. Later shards may evaluate
    /// `f` on items a sequential scan would never reach — wasted work,
    /// never a different answer: each shard stops at its first hit *or
    /// panic*, and the merge replays only the earliest outcome, so a
    /// panic past the sequential winner is swallowed exactly like the
    /// sequential scan never reaching that item, while a panic *before*
    /// it propagates just as it would sequentially.
    pub(crate) fn find_map_first_pooled<T, R, S, F>(
        &self,
        scratches: &ScratchPool<S>,
        items: &[T],
        f: F,
    ) -> Option<R>
    where
        T: Sync,
        R: Send,
        S: Default + Send,
        F: Fn(&T, &mut S) -> Option<R> + Sync,
    {
        enum Outcome<R> {
            Hit(R),
            Panicked(Box<dyn std::any::Any + Send>),
        }
        match self {
            Exec::Seq => scratches.with(|s| items.iter().find_map(|item| f(item, s))),
            Exec::Pool(pool) => {
                if items.len() <= 1 {
                    return scratches.with(|s| items.iter().find_map(|item| f(item, s)));
                }
                let chunk = items.len().div_ceil(pool.threads());
                let nshards = items.len().div_ceil(chunk);
                let mut outcomes: Vec<Option<Outcome<R>>> = (0..nshards).map(|_| None).collect();
                let f = &f;
                let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = items
                    .chunks(chunk)
                    .zip(outcomes.iter_mut())
                    .map(|(c, slot)| {
                        Box::new(move || {
                            scratches.with(|s| {
                                for item in c {
                                    match catch_unwind(AssertUnwindSafe(|| f(item, s))) {
                                        Ok(None) => continue,
                                        Ok(Some(r)) => *slot = Some(Outcome::Hit(r)),
                                        Err(payload) => *slot = Some(Outcome::Panicked(payload)),
                                    }
                                    break;
                                }
                            })
                        }) as _
                    })
                    .collect();
                pool.scope(jobs);
                match outcomes.into_iter().flatten().next() {
                    Some(Outcome::Hit(r)) => Some(r),
                    Some(Outcome::Panicked(payload)) => resume_unwind(payload),
                    None => None,
                }
            }
        }
    }
}

impl std::fmt::Debug for Exec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exec::Seq => write!(f, "Sequential"),
            Exec::Pool(p) => write!(f, "Pool({} threads)", p.threads()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_resolution() {
        assert_eq!(ParallelismSpec::Sequential.resolve(), 1);
        assert_eq!(ParallelismSpec::Threads(0).resolve(), 0);
        assert_eq!(ParallelismSpec::Threads(4).resolve(), 4);
    }

    #[test]
    fn auto_spec_reads_the_environment() {
        // Mutating FAIRSW_THREADS can race concurrently-running tests
        // that build Auto engines, but only their *thread count* — never
        // their answers (the equivalence guarantee) — so the brief
        // window is harmless; the prior value is restored either way.
        let saved = std::env::var("FAIRSW_THREADS").ok();
        std::env::set_var("FAIRSW_THREADS", "3");
        assert_eq!(ParallelismSpec::Auto.resolve(), 3);
        std::env::set_var("FAIRSW_THREADS", "not-a-number");
        assert_eq!(
            ParallelismSpec::Auto.resolve(),
            1,
            "unparsable → sequential"
        );
        match saved {
            Some(v) => std::env::set_var("FAIRSW_THREADS", v),
            None => std::env::remove_var("FAIRSW_THREADS"),
        }
    }

    #[test]
    fn exec_small_counts_stay_sequential_and_huge_counts_clamp() {
        assert!(matches!(Exec::new(ParallelismSpec::Threads(0)), Exec::Seq));
        assert!(matches!(Exec::new(ParallelismSpec::Threads(1)), Exec::Seq));
        assert!(matches!(
            Exec::new(ParallelismSpec::Threads(3)),
            Exec::Pool(_)
        ));
        // An absurd request must not try to spawn that many OS threads.
        let huge = Exec::new(ParallelismSpec::Threads(usize::MAX));
        assert_eq!(huge.threads(), MAX_POOL_THREADS);
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        for exec in [Exec::Seq, Exec::new(ParallelismSpec::Threads(4))] {
            let mut items: Vec<u64> = (0..101).collect();
            exec.for_each_mut(&mut items, |x| *x += 1000);
            assert!(
                items.iter().enumerate().all(|(i, &x)| x == i as u64 + 1000),
                "{exec:?} missed or repeated items"
            );
        }
    }

    #[test]
    fn find_map_first_matches_sequential_scan() {
        let items: Vec<u64> = (0..57).collect();
        let pool = Exec::new(ParallelismSpec::Threads(4));
        for needle in [0u64, 1, 13, 29, 41, 56] {
            let f = |&x: &u64| (x >= needle).then_some(x);
            assert_eq!(items.iter().find_map(f), pool.find_map_first(&items, f));
        }
        let miss = |&x: &u64| (x > 1_000).then_some(x);
        assert_eq!(pool.find_map_first(&items, miss), None);
    }

    #[test]
    fn find_map_first_panic_semantics_match_sequential_scan() {
        let items: Vec<u64> = (0..40).collect();
        let pool = Exec::new(ParallelismSpec::Threads(4));
        // Winner at index 3; index 30 would panic but lies beyond the
        // sequential scan's reach, so the parallel scan must swallow it.
        let f = |&x: &u64| -> Option<u64> {
            assert!(x != 30, "unreachable item evaluated to completion");
            (x == 3).then_some(x)
        };
        assert_eq!(pool.find_map_first(&items, f), Some(3));
        // A panic *before* the winner propagates, exactly as it would
        // from the sequential scan.
        let g = |&x: &u64| -> Option<u64> {
            assert!(x != 2, "boom before the winner");
            (x == 3).then_some(x)
        };
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| pool.find_map_first(&items, g)));
        assert!(caught.is_err(), "pre-winner panic must propagate");
    }

    #[test]
    fn borrowed_state_is_visible_to_jobs() {
        // The lifetime-erased scope must let jobs read stack data.
        let pool = WorkerPool::new(3);
        let input: Vec<u64> = (0..40).collect();
        let mut partials = [0u64; 4];
        {
            let chunks = input.chunks(10).zip(partials.iter_mut());
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
                .map(|(c, slot)| Box::new(move || *slot = c.iter().sum()) as _)
                .collect();
            pool.scope(jobs);
        }
        assert_eq!(partials.iter().sum::<u64>(), (0..40).sum());
    }

    #[test]
    fn panics_propagate_after_all_jobs_finish() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|i| {
                    Box::new(move || {
                        if i == 2 {
                            panic!("job {i} exploded");
                        }
                    }) as _
                })
                .collect();
            pool.scope(jobs);
        }));
        assert!(caught.is_err(), "panic swallowed");
        // The pool must still be usable afterwards.
        let mut items = [1u64, 2, 3];
        Exec::Pool(Arc::new(pool)).for_each_mut(&mut items, |x| *x *= 2);
        assert_eq!(items, [2, 4, 6]);
    }
}

//! Runtime-dispatched SIMD distance kernels.
//!
//! The scalar tiled kernels of [`crate::metric`] keep the per-point
//! accumulation order of scalar [`dist`](crate::Metric::dist) and are
//! therefore bit-identical to it — that contract is what every
//! differential suite in the workspace asserts, and it survives here as
//! the always-compiled fallback and oracle. This module adds explicitly
//! vectorized variants on top, selected **once per process** by a
//! dispatch ladder:
//!
//! 1. `FAIRSW_SIMD=off` → [`Isa::Scalar`] (the exact tiled kernels);
//! 2. `FAIRSW_SIMD=force` → the detected vector ISA, panicking if the
//!    host offers none (CI uses this to make a silent scalar fallback
//!    impossible);
//! 3. `FAIRSW_SIMD=auto` (or unset) → runtime feature detection:
//!    AVX2+FMA, else the SSE2 x86-64 baseline; NEON on aarch64; scalar
//!    elsewhere.
//!
//! The selection is cached in a [`OnceLock`], so a process never mixes
//! ISAs mid-run and results stay deterministic per process.
//!
//! ## What stays bit-identical, and what does not
//!
//! The AoSoA tiling gives every point its own accumulator lane, so
//! vertical SIMD performs *exactly* the scalar operation sequence — no
//! horizontal reductions, no reassociation. Concretely:
//!
//! * **L1 / L∞** (`f64`): add/abs/max are single-rounded IEEE ops in
//!   both scalar and vector form — bit-identical on every ISA.
//! * **L2 / angular on SSE2**: multiply-then-add, same as scalar —
//!   bit-identical.
//! * **L2 / angular on AVX2+FMA and NEON**: the fused multiply-add
//!   rounds once where the scalar kernel rounds twice, so results can
//!   differ by ~1 ulp per accumulation step (relative error around
//!   `dim · 2⁻⁵²`). This is why the vector kernels only run for views
//!   staged in a relaxed [`KernelMode`](crate::kernel::KernelMode) —
//!   the engine-level `Approx(ε)` contract absorbs the divergence.
//! * **`f32` kernels** (compact mirror): arithmetic is `f32` end to
//!   end (relative error around `dim · 2⁻²³`); callers re-rank
//!   surviving candidates through
//!   [`dist_one_to_many_exact`](crate::Metric::dist_one_to_many_exact).
//!
//! Padding lanes of a partial tile are computed and discarded, exactly
//! as in the scalar kernels; the angular kernels mask zero-norm
//! candidates to the scalar `0.0` convention.

use crate::kernel::{SoaBlock, SoaBlock32, LANES};
use std::sync::OnceLock;

/// The instruction-set path the process-wide kernel dispatch selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    /// x86-64 AVX2 with FMA: 4-wide `f64`, 8-wide `f32`, fused
    /// multiply-add (L2/angular differ from scalar by ulps).
    Avx2Fma,
    /// x86-64 SSE2 baseline: 2-wide `f64`, 4-wide `f32`, separate
    /// multiply and add (bit-identical to the scalar kernels).
    Sse2,
    /// aarch64 NEON: 2-wide `f64`, 4-wide `f32`, fused multiply-add.
    Neon,
    /// The scalar tiled kernels (no vector ISA, or `FAIRSW_SIMD=off`).
    Scalar,
}

impl Isa {
    /// Stable lowercase name, recorded by the bench harness (`isa`
    /// field of `BENCH_kernels.json`).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Avx2Fma => "avx2+fma",
            Isa::Sse2 => "sse2",
            Isa::Neon => "neon",
            Isa::Scalar => "scalar",
        }
    }
}

fn detect() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            Isa::Avx2Fma
        } else {
            // SSE2 is part of the x86-64 baseline: always present.
            Isa::Sse2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            Isa::Neon
        } else {
            Isa::Scalar
        }
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        Isa::Scalar
    }
}

fn select(var: Option<&str>) -> Isa {
    match var.map(str::trim) {
        None | Some("") | Some("auto") => detect(),
        Some("off") => Isa::Scalar,
        Some("force") => match detect() {
            Isa::Scalar => panic!(
                "FAIRSW_SIMD=force, but no vector ISA is available on this host \
                 (build target has neither x86-64 nor aarch64 vector support)"
            ),
            isa => isa,
        },
        Some(other) => panic!("invalid FAIRSW_SIMD value {other:?} (expected auto, force or off)"),
    }
}

/// The ISA the relaxed kernels run on, selected once per process from
/// runtime feature detection and the `FAIRSW_SIMD` override
/// (`auto`/`force`/`off`; invalid values panic rather than silently
/// degrading).
pub fn active_isa() -> Isa {
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(|| select(std::env::var("FAIRSW_SIMD").ok().as_deref()))
}

/// Borrows a thread-local `f32` scratch row for the query side of the
/// `f32` kernels (the candidates are already staged in `f32`; the query
/// is narrowed once per kernel call, not once per tile).
pub(crate) fn with_q32<R>(q: impl IntoIterator<Item = f32>, f: impl FnOnce(&[f32]) -> R) -> R {
    use std::cell::RefCell;
    thread_local! {
        static QBUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    }
    QBUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.clear();
        buf.extend(q);
        f(&buf)
    })
}

// ---------------------------------------------------------------------
// Scalar f32 fallbacks (FAIRSW_SIMD=off with compact staging): native
// f32 accumulation, mirroring the vector kernels' precision rather than
// the exact widened kernels'.
// ---------------------------------------------------------------------

#[inline(always)]
fn tiled_kernel_f32(
    q: &[f32],
    b: &SoaBlock32,
    out: &mut [f64],
    init: f32,
    step: impl Fn(f32, f32, f32) -> f32,
    finish: impl Fn(f32) -> f32,
) {
    debug_assert_eq!(q.len(), b.dim(), "dimension mismatch");
    let n = b.len();
    for t in 0..b.tiles() {
        let tile = b.tile(t);
        let mut acc = [init; LANES];
        for (d, &qd) in q.iter().enumerate() {
            let lanes = &tile[d * LANES..(d + 1) * LANES];
            for (a, &x) in acc.iter_mut().zip(lanes) {
                *a = step(*a, qd, x);
            }
        }
        let start = t * LANES;
        let w = LANES.min(n - start);
        for (o, &a) in out[start..start + w].iter_mut().zip(&acc) {
            *o = finish(a) as f64;
        }
    }
}

fn l2_f32_scalar(q: &[f32], b: &SoaBlock32, out: &mut [f64]) {
    tiled_kernel_f32(
        q,
        b,
        out,
        0.0,
        |acc, qd, x| {
            let diff = qd - x;
            acc + diff * diff
        },
        f32::sqrt,
    );
}

fn l1_f32_scalar(q: &[f32], b: &SoaBlock32, out: &mut [f64]) {
    tiled_kernel_f32(q, b, out, 0.0, |acc, qd, x| acc + (qd - x).abs(), |a| a);
}

fn linf_f32_scalar(q: &[f32], b: &SoaBlock32, out: &mut [f64]) {
    tiled_kernel_f32(
        q,
        b,
        out,
        0.0,
        |acc, qd, x| f32::max(acc, (qd - x).abs()),
        |a| a,
    );
}

fn angular_f32_scalar(q: &[f32], b: &SoaBlock32, out: &mut [f64]) {
    debug_assert_eq!(q.len(), b.dim(), "dimension mismatch");
    let mut na = 0.0f32;
    for &x in q {
        na += x * x;
    }
    if na == 0.0 {
        out.fill(0.0);
        return;
    }
    let na = na.sqrt();
    let n = b.len();
    for t in 0..b.tiles() {
        let tile = b.tile(t);
        let mut nb_sq = [0.0f32; LANES];
        for d in 0..b.dim() {
            let lanes = &tile[d * LANES..(d + 1) * LANES];
            for (acc, &y) in nb_sq.iter_mut().zip(lanes) {
                *acc += y * y;
            }
        }
        let mut nb = [0.0f32; LANES];
        for (v, &sq) in nb.iter_mut().zip(&nb_sq) {
            *v = sq.sqrt();
        }
        let mut diff = [0.0f32; LANES];
        let mut sum = [0.0f32; LANES];
        for (d, &qd) in q.iter().enumerate() {
            let u = qd / na;
            let lanes = &tile[d * LANES..(d + 1) * LANES];
            for j in 0..LANES {
                let v = lanes[j] / nb[j];
                let dv = u - v;
                let sv = u + v;
                diff[j] += dv * dv;
                sum[j] += sv * sv;
            }
        }
        let start = t * LANES;
        let w = LANES.min(n - start);
        for j in 0..w {
            out[start + j] = if nb_sq[j] == 0.0 {
                0.0
            } else {
                (2.0 * diff[j].sqrt().atan2(sum[j].sqrt()) / std::f32::consts::PI) as f64
            };
        }
    }
}

// ---------------------------------------------------------------------
// x86-64 kernels.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{SoaBlock, SoaBlock32, LANES};
    use core::arch::x86_64::*;

    /// Stores one 8-lane f64 tile result (`r0` = lanes 0–3, `r1` =
    /// lanes 4–7), truncating the padded tail of the last tile.
    ///
    /// # Safety
    /// Caller must run with AVX2 available.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store_f64(out: &mut [f64], start: usize, n: usize, r0: __m256d, r1: __m256d) {
        let w = LANES.min(n - start);
        if w == LANES {
            unsafe {
                _mm256_storeu_pd(out.as_mut_ptr().add(start), r0);
                _mm256_storeu_pd(out.as_mut_ptr().add(start + 4), r1);
            }
        } else {
            let mut buf = [0.0f64; LANES];
            unsafe {
                _mm256_storeu_pd(buf.as_mut_ptr(), r0);
                _mm256_storeu_pd(buf.as_mut_ptr().add(4), r1);
            }
            out[start..start + w].copy_from_slice(&buf[..w]);
        }
    }

    macro_rules! avx2_fold_kernel {
        ($name:ident, $init:expr, $fold:expr, $finish:expr) => {
            /// # Safety
            /// Caller must run with AVX2 and FMA available.
            #[target_feature(enable = "avx2", enable = "fma")]
            pub(super) unsafe fn $name(q: &[f64], soa: &SoaBlock, out: &mut [f64]) {
                debug_assert_eq!(q.len(), soa.dim(), "dimension mismatch");
                let n = soa.len();
                for t in 0..soa.tiles() {
                    let tile = soa.tile(t);
                    let p = tile.as_ptr();
                    let mut a0 = $init();
                    let mut a1 = $init();
                    for (d, &qd) in q.iter().enumerate() {
                        let qv = _mm256_set1_pd(qd);
                        let (x0, x1) = unsafe {
                            (
                                _mm256_load_pd(p.add(d * LANES)),
                                _mm256_load_pd(p.add(d * LANES + 4)),
                            )
                        };
                        a0 = $fold(a0, qv, x0);
                        a1 = $fold(a1, qv, x1);
                    }
                    unsafe { store_f64(out, t * LANES, n, $finish(a0), $finish(a1)) };
                }
            }
        };
    }

    avx2_fold_kernel!(
        l2_f64,
        || _mm256_setzero_pd(),
        |acc, qv, x| {
            let d = _mm256_sub_pd(qv, x);
            _mm256_fmadd_pd(d, d, acc)
        },
        |acc| _mm256_sqrt_pd(acc)
    );

    // Projection matvec: separate multiply and add even though FMA is
    // available — the projection contract is bit-identity across every
    // ISA (see `crate::project`), so no contraction is allowed here.
    avx2_fold_kernel!(
        matvec_f64,
        || _mm256_setzero_pd(),
        |acc, qv, x| _mm256_add_pd(acc, _mm256_mul_pd(qv, x)),
        |acc| acc
    );

    avx2_fold_kernel!(
        l1_f64,
        || _mm256_setzero_pd(),
        |acc, qv, x| {
            let sign = _mm256_set1_pd(-0.0);
            _mm256_add_pd(acc, _mm256_andnot_pd(sign, _mm256_sub_pd(qv, x)))
        },
        |acc| acc
    );

    avx2_fold_kernel!(
        linf_f64,
        || _mm256_setzero_pd(),
        |acc, qv, x| {
            let sign = _mm256_set1_pd(-0.0);
            _mm256_max_pd(acc, _mm256_andnot_pd(sign, _mm256_sub_pd(qv, x)))
        },
        |acc| acc
    );

    /// # Safety
    /// Caller must run with AVX2 and FMA available.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn angular_f64(q: &[f64], soa: &SoaBlock, out: &mut [f64]) {
        debug_assert_eq!(q.len(), soa.dim(), "dimension mismatch");
        let mut na = 0.0;
        for &x in q {
            na += x * x;
        }
        if na == 0.0 {
            out.fill(0.0);
            return;
        }
        let na = na.sqrt();
        let n = soa.len();
        for t in 0..soa.tiles() {
            let tile = soa.tile(t);
            let p = tile.as_ptr();
            // Pass 1: candidate squared norms.
            let mut s0 = _mm256_setzero_pd();
            let mut s1 = _mm256_setzero_pd();
            for d in 0..soa.dim() {
                let (y0, y1) = unsafe {
                    (
                        _mm256_load_pd(p.add(d * LANES)),
                        _mm256_load_pd(p.add(d * LANES + 4)),
                    )
                };
                s0 = _mm256_fmadd_pd(y0, y0, s0);
                s1 = _mm256_fmadd_pd(y1, y1, s1);
            }
            let nb0 = _mm256_sqrt_pd(s0);
            let nb1 = _mm256_sqrt_pd(s1);
            // Pass 2: Kahan angle sums over the unit-normalized vectors.
            // Zero-norm candidates and padding lanes divide 0/0 and are
            // masked in the scalar finish below.
            let mut diff0 = _mm256_setzero_pd();
            let mut diff1 = _mm256_setzero_pd();
            let mut sum0 = _mm256_setzero_pd();
            let mut sum1 = _mm256_setzero_pd();
            for (d, &qd) in q.iter().enumerate() {
                let u = _mm256_set1_pd(qd / na);
                let (y0, y1) = unsafe {
                    (
                        _mm256_load_pd(p.add(d * LANES)),
                        _mm256_load_pd(p.add(d * LANES + 4)),
                    )
                };
                let v0 = _mm256_div_pd(y0, nb0);
                let v1 = _mm256_div_pd(y1, nb1);
                let dv0 = _mm256_sub_pd(u, v0);
                let dv1 = _mm256_sub_pd(u, v1);
                diff0 = _mm256_fmadd_pd(dv0, dv0, diff0);
                diff1 = _mm256_fmadd_pd(dv1, dv1, diff1);
                let sv0 = _mm256_add_pd(u, v0);
                let sv1 = _mm256_add_pd(u, v1);
                sum0 = _mm256_fmadd_pd(sv0, sv0, sum0);
                sum1 = _mm256_fmadd_pd(sv1, sv1, sum1);
            }
            let mut nbsq = [0.0f64; LANES];
            let mut df = [0.0f64; LANES];
            let mut sm = [0.0f64; LANES];
            unsafe {
                _mm256_storeu_pd(nbsq.as_mut_ptr(), s0);
                _mm256_storeu_pd(nbsq.as_mut_ptr().add(4), s1);
                _mm256_storeu_pd(df.as_mut_ptr(), _mm256_sqrt_pd(diff0));
                _mm256_storeu_pd(df.as_mut_ptr().add(4), _mm256_sqrt_pd(diff1));
                _mm256_storeu_pd(sm.as_mut_ptr(), _mm256_sqrt_pd(sum0));
                _mm256_storeu_pd(sm.as_mut_ptr().add(4), _mm256_sqrt_pd(sum1));
            }
            let start = t * LANES;
            let w = LANES.min(n - start);
            for j in 0..w {
                out[start + j] = if nbsq[j] == 0.0 {
                    0.0
                } else {
                    2.0 * df[j].atan2(sm[j]) / std::f64::consts::PI
                };
            }
        }
    }

    /// Stores one 8-lane f32 tile result, widening to the `f64` output.
    ///
    /// # Safety
    /// Caller must run with AVX2 available.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store_f32(out: &mut [f64], start: usize, n: usize, r: __m256) {
        let w = LANES.min(n - start);
        let mut buf = [0.0f32; LANES];
        unsafe { _mm256_storeu_ps(buf.as_mut_ptr(), r) };
        for (o, &x) in out[start..start + w].iter_mut().zip(&buf) {
            *o = x as f64;
        }
    }

    macro_rules! avx2_fold_kernel_f32 {
        ($name:ident, $fold:expr, $finish:expr) => {
            /// # Safety
            /// Caller must run with AVX2 and FMA available.
            #[target_feature(enable = "avx2", enable = "fma")]
            pub(super) unsafe fn $name(q: &[f32], b: &SoaBlock32, out: &mut [f64]) {
                debug_assert_eq!(q.len(), b.dim(), "dimension mismatch");
                let n = b.len();
                for t in 0..b.tiles() {
                    let tile = b.tile(t);
                    let p = tile.as_ptr();
                    let mut acc = _mm256_setzero_ps();
                    for (d, &qd) in q.iter().enumerate() {
                        let qv = _mm256_set1_ps(qd);
                        let x = unsafe { _mm256_load_ps(p.add(d * LANES)) };
                        acc = $fold(acc, qv, x);
                    }
                    unsafe { store_f32(out, t * LANES, n, $finish(acc)) };
                }
            }
        };
    }

    avx2_fold_kernel_f32!(
        l2_f32,
        |acc, qv, x| {
            let d = _mm256_sub_ps(qv, x);
            _mm256_fmadd_ps(d, d, acc)
        },
        |acc| _mm256_sqrt_ps(acc)
    );

    avx2_fold_kernel_f32!(
        l1_f32,
        |acc, qv, x| {
            let sign = _mm256_set1_ps(-0.0);
            _mm256_add_ps(acc, _mm256_andnot_ps(sign, _mm256_sub_ps(qv, x)))
        },
        |acc| acc
    );

    avx2_fold_kernel_f32!(
        linf_f32,
        |acc, qv, x| {
            let sign = _mm256_set1_ps(-0.0);
            _mm256_max_ps(acc, _mm256_andnot_ps(sign, _mm256_sub_ps(qv, x)))
        },
        |acc| acc
    );

    /// # Safety
    /// Caller must run with AVX2 and FMA available.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn angular_f32(q: &[f32], b: &SoaBlock32, out: &mut [f64]) {
        debug_assert_eq!(q.len(), b.dim(), "dimension mismatch");
        let mut na = 0.0f32;
        for &x in q {
            na += x * x;
        }
        if na == 0.0 {
            out.fill(0.0);
            return;
        }
        let na = na.sqrt();
        let n = b.len();
        for t in 0..b.tiles() {
            let tile = b.tile(t);
            let p = tile.as_ptr();
            let mut sq = _mm256_setzero_ps();
            for d in 0..b.dim() {
                let y = unsafe { _mm256_load_ps(p.add(d * LANES)) };
                sq = _mm256_fmadd_ps(y, y, sq);
            }
            let nb = _mm256_sqrt_ps(sq);
            let mut diff = _mm256_setzero_ps();
            let mut sum = _mm256_setzero_ps();
            for (d, &qd) in q.iter().enumerate() {
                let u = _mm256_set1_ps(qd / na);
                let y = unsafe { _mm256_load_ps(p.add(d * LANES)) };
                let v = _mm256_div_ps(y, nb);
                let dv = _mm256_sub_ps(u, v);
                diff = _mm256_fmadd_ps(dv, dv, diff);
                let sv = _mm256_add_ps(u, v);
                sum = _mm256_fmadd_ps(sv, sv, sum);
            }
            let mut nbsq = [0.0f32; LANES];
            let mut df = [0.0f32; LANES];
            let mut sm = [0.0f32; LANES];
            unsafe {
                _mm256_storeu_ps(nbsq.as_mut_ptr(), sq);
                _mm256_storeu_ps(df.as_mut_ptr(), _mm256_sqrt_ps(diff));
                _mm256_storeu_ps(sm.as_mut_ptr(), _mm256_sqrt_ps(sum));
            }
            let start = t * LANES;
            let w = LANES.min(n - start);
            for j in 0..w {
                out[start + j] = if nbsq[j] == 0.0 {
                    0.0
                } else {
                    (2.0 * df[j].atan2(sm[j]) / std::f32::consts::PI) as f64
                };
            }
        }
    }

    // SSE2: part of the x86-64 baseline, no detection or target_feature
    // gate needed. Multiply-then-add keeps these kernels bit-identical
    // to the scalar tiled kernels (no FMA contraction: Rust never
    // contracts float expressions, and the intrinsics are explicit).

    macro_rules! sse2_fold_kernel {
        ($name:ident, $fold:expr, $finish:expr) => {
            pub(super) fn $name(q: &[f64], soa: &SoaBlock, out: &mut [f64]) {
                debug_assert_eq!(q.len(), soa.dim(), "dimension mismatch");
                let n = soa.len();
                for t in 0..soa.tiles() {
                    let tile = soa.tile(t);
                    let p = tile.as_ptr();
                    let mut acc = [unsafe { _mm_setzero_pd() }; LANES / 2];
                    for (d, &qd) in q.iter().enumerate() {
                        let qv = unsafe { _mm_set1_pd(qd) };
                        for (j, a) in acc.iter_mut().enumerate() {
                            let x = unsafe { _mm_loadu_pd(p.add(d * LANES + 2 * j)) };
                            *a = $fold(*a, qv, x);
                        }
                    }
                    let mut buf = [0.0f64; LANES];
                    for (j, &a) in acc.iter().enumerate() {
                        let r = $finish(a);
                        unsafe { _mm_storeu_pd(buf.as_mut_ptr().add(2 * j), r) };
                    }
                    let start = t * LANES;
                    let w = LANES.min(n - start);
                    out[start..start + w].copy_from_slice(&buf[..w]);
                }
            }
        };
    }

    sse2_fold_kernel!(
        l2_f64_sse2,
        |acc, qv, x| unsafe {
            let d = _mm_sub_pd(qv, x);
            _mm_add_pd(acc, _mm_mul_pd(d, d))
        },
        |acc| unsafe { _mm_sqrt_pd(acc) }
    );

    sse2_fold_kernel!(
        matvec_f64_sse2,
        |acc, qv, x| unsafe { _mm_add_pd(acc, _mm_mul_pd(qv, x)) },
        |acc| acc
    );

    sse2_fold_kernel!(
        l1_f64_sse2,
        |acc, qv, x| unsafe {
            let sign = _mm_set1_pd(-0.0);
            _mm_add_pd(acc, _mm_andnot_pd(sign, _mm_sub_pd(qv, x)))
        },
        |acc| acc
    );

    sse2_fold_kernel!(
        linf_f64_sse2,
        |acc, qv, x| unsafe {
            let sign = _mm_set1_pd(-0.0);
            _mm_max_pd(acc, _mm_andnot_pd(sign, _mm_sub_pd(qv, x)))
        },
        |acc| acc
    );

    macro_rules! sse2_fold_kernel_f32 {
        ($name:ident, $fold:expr, $finish:expr) => {
            pub(super) fn $name(q: &[f32], b: &SoaBlock32, out: &mut [f64]) {
                debug_assert_eq!(q.len(), b.dim(), "dimension mismatch");
                let n = b.len();
                for t in 0..b.tiles() {
                    let tile = b.tile(t);
                    let p = tile.as_ptr();
                    let mut acc = [unsafe { _mm_setzero_ps() }; LANES / 4];
                    for (d, &qd) in q.iter().enumerate() {
                        let qv = unsafe { _mm_set1_ps(qd) };
                        for (j, a) in acc.iter_mut().enumerate() {
                            let x = unsafe { _mm_loadu_ps(p.add(d * LANES + 4 * j)) };
                            *a = $fold(*a, qv, x);
                        }
                    }
                    let mut buf = [0.0f32; LANES];
                    for (j, &a) in acc.iter().enumerate() {
                        let r = $finish(a);
                        unsafe { _mm_storeu_ps(buf.as_mut_ptr().add(4 * j), r) };
                    }
                    let start = t * LANES;
                    let w = LANES.min(n - start);
                    for (o, &x) in out[start..start + w].iter_mut().zip(&buf) {
                        *o = x as f64;
                    }
                }
            }
        };
    }

    sse2_fold_kernel_f32!(
        l2_f32_sse2,
        |acc, qv, x| unsafe {
            let d = _mm_sub_ps(qv, x);
            _mm_add_ps(acc, _mm_mul_ps(d, d))
        },
        |acc| unsafe { _mm_sqrt_ps(acc) }
    );

    sse2_fold_kernel_f32!(
        l1_f32_sse2,
        |acc, qv, x| unsafe {
            let sign = _mm_set1_ps(-0.0);
            _mm_add_ps(acc, _mm_andnot_ps(sign, _mm_sub_ps(qv, x)))
        },
        |acc| acc
    );

    sse2_fold_kernel_f32!(
        linf_f32_sse2,
        |acc, qv, x| unsafe {
            let sign = _mm_set1_ps(-0.0);
            _mm_max_ps(acc, _mm_andnot_ps(sign, _mm_sub_ps(qv, x)))
        },
        |acc| acc
    );
}

// ---------------------------------------------------------------------
// aarch64 NEON kernels (2-wide f64 / 4-wide f32, fused multiply-add).
// NEON is baseline on aarch64, so no per-call feature gate is needed —
// the detection in `detect()` is belt and braces.
// ---------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{SoaBlock, SoaBlock32, LANES};
    use core::arch::aarch64::*;

    macro_rules! neon_fold_kernel {
        ($name:ident, $fold:expr, $finish:expr) => {
            pub(super) fn $name(q: &[f64], soa: &SoaBlock, out: &mut [f64]) {
                debug_assert_eq!(q.len(), soa.dim(), "dimension mismatch");
                let n = soa.len();
                for t in 0..soa.tiles() {
                    let tile = soa.tile(t);
                    let p = tile.as_ptr();
                    let mut acc = [unsafe { vdupq_n_f64(0.0) }; LANES / 2];
                    for (d, &qd) in q.iter().enumerate() {
                        let qv = unsafe { vdupq_n_f64(qd) };
                        for (j, a) in acc.iter_mut().enumerate() {
                            let x = unsafe { vld1q_f64(p.add(d * LANES + 2 * j)) };
                            *a = $fold(*a, qv, x);
                        }
                    }
                    let mut buf = [0.0f64; LANES];
                    for (j, &a) in acc.iter().enumerate() {
                        let r = $finish(a);
                        unsafe { vst1q_f64(buf.as_mut_ptr().add(2 * j), r) };
                    }
                    let start = t * LANES;
                    let w = LANES.min(n - start);
                    out[start..start + w].copy_from_slice(&buf[..w]);
                }
            }
        };
    }

    neon_fold_kernel!(
        l2_f64_neon,
        |acc, qv, x| unsafe {
            let d = vsubq_f64(qv, x);
            vfmaq_f64(acc, d, d)
        },
        |acc| unsafe { vsqrtq_f64(acc) }
    );

    // Multiply-then-add (no `vfmaq`): the projection matvec must stay
    // bit-identical to the scalar oracle on every ISA.
    neon_fold_kernel!(
        matvec_f64_neon,
        |acc, qv, x| unsafe { vaddq_f64(acc, vmulq_f64(qv, x)) },
        |acc| acc
    );

    neon_fold_kernel!(
        l1_f64_neon,
        |acc, qv, x| unsafe { vaddq_f64(acc, vabsq_f64(vsubq_f64(qv, x))) },
        |acc| acc
    );

    neon_fold_kernel!(
        linf_f64_neon,
        |acc, qv, x| unsafe { vmaxq_f64(acc, vabsq_f64(vsubq_f64(qv, x))) },
        |acc| acc
    );

    macro_rules! neon_fold_kernel_f32 {
        ($name:ident, $fold:expr, $finish:expr) => {
            pub(super) fn $name(q: &[f32], b: &SoaBlock32, out: &mut [f64]) {
                debug_assert_eq!(q.len(), b.dim(), "dimension mismatch");
                let n = b.len();
                for t in 0..b.tiles() {
                    let tile = b.tile(t);
                    let p = tile.as_ptr();
                    let mut acc = [unsafe { vdupq_n_f32(0.0) }; LANES / 4];
                    for (d, &qd) in q.iter().enumerate() {
                        let qv = unsafe { vdupq_n_f32(qd) };
                        for (j, a) in acc.iter_mut().enumerate() {
                            let x = unsafe { vld1q_f32(p.add(d * LANES + 4 * j)) };
                            *a = $fold(*a, qv, x);
                        }
                    }
                    let mut buf = [0.0f32; LANES];
                    for (j, &a) in acc.iter().enumerate() {
                        let r = $finish(a);
                        unsafe { vst1q_f32(buf.as_mut_ptr().add(4 * j), r) };
                    }
                    let start = t * LANES;
                    let w = LANES.min(n - start);
                    for (o, &x) in out[start..start + w].iter_mut().zip(&buf) {
                        *o = x as f64;
                    }
                }
            }
        };
    }

    neon_fold_kernel_f32!(
        l2_f32_neon,
        |acc, qv, x| unsafe {
            let d = vsubq_f32(qv, x);
            vfmaq_f32(acc, d, d)
        },
        |acc| unsafe { vsqrtq_f32(acc) }
    );

    neon_fold_kernel_f32!(
        l1_f32_neon,
        |acc, qv, x| unsafe { vaddq_f32(acc, vabsq_f32(vsubq_f32(qv, x))) },
        |acc| acc
    );

    neon_fold_kernel_f32!(
        linf_f32_neon,
        |acc, qv, x| unsafe { vmaxq_f32(acc, vabsq_f32(vsubq_f32(qv, x))) },
        |acc| acc
    );
}

// ---------------------------------------------------------------------
// Dispatchers: one per (metric, element width), selecting the active
// ISA once per call (the OnceLock read is a relaxed atomic load).
// ---------------------------------------------------------------------

macro_rules! dispatch_f64 {
    ($name:ident, $avx:ident, $sse:ident, $neon:ident, $exact:path) => {
        /// Runtime-dispatched relaxed kernel; falls back to the exact
        /// scalar tiled kernel on [`Isa::Scalar`].
        pub(crate) fn $name(q: &[f64], soa: &SoaBlock, out: &mut [f64]) {
            match active_isa() {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: `active_isa` only returns `Avx2Fma` when
                // runtime detection confirmed AVX2 and FMA.
                Isa::Avx2Fma => unsafe { x86::$avx(q, soa, out) },
                #[cfg(target_arch = "x86_64")]
                Isa::Sse2 => x86::$sse(q, soa, out),
                #[cfg(target_arch = "aarch64")]
                Isa::Neon => neon::$neon(q, soa, out),
                _ => $exact(q, soa, out),
            }
        }
    };
}

dispatch_f64!(
    l2_f64,
    l2_f64,
    l2_f64_sse2,
    l2_f64_neon,
    crate::metric::l2_kernel
);
dispatch_f64!(
    l1_f64,
    l1_f64,
    l1_f64_sse2,
    l1_f64_neon,
    crate::metric::l1_kernel
);
dispatch_f64!(
    linf_f64,
    linf_f64,
    linf_f64_sse2,
    linf_f64_neon,
    crate::metric::linf_kernel
);
// The JL projection matvec (`y[r] = Σ_d M[r][d]·x[d]`, rows staged as
// AoSoA "points"). Every leg — AVX2 included — uses separate multiply
// and add, so all four paths are bit-identical and projected payloads
// reproduce exactly across hosts and `FAIRSW_SIMD` settings.
dispatch_f64!(
    matvec_f64,
    matvec_f64,
    matvec_f64_sse2,
    matvec_f64_neon,
    crate::project::matvec_kernel
);

/// Runtime-dispatched relaxed angular kernel. NEON and SSE2 hosts use
/// the exact scalar kernel (the angular distance is dominated by the
/// divides and `atan2`, so the narrow-vector win does not justify a
/// third variant).
pub(crate) fn angular_f64(q: &[f64], soa: &SoaBlock, out: &mut [f64]) {
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active_isa` only returns `Avx2Fma` when runtime
        // detection confirmed AVX2 and FMA.
        Isa::Avx2Fma => unsafe { x86::angular_f64(q, soa, out) },
        _ => crate::metric::angular_kernel(q, soa, out),
    }
}

macro_rules! dispatch_f32 {
    ($name:ident, $avx:ident, $sse:ident, $neon:ident, $scalar:ident) => {
        /// Runtime-dispatched compact (`f32`) kernel; the scalar
        /// fallback accumulates in `f32` like the vector paths.
        pub(crate) fn $name(q: &[f32], b: &SoaBlock32, out: &mut [f64]) {
            match active_isa() {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: `active_isa` only returns `Avx2Fma` when
                // runtime detection confirmed AVX2 and FMA.
                Isa::Avx2Fma => unsafe { x86::$avx(q, b, out) },
                #[cfg(target_arch = "x86_64")]
                Isa::Sse2 => x86::$sse(q, b, out),
                #[cfg(target_arch = "aarch64")]
                Isa::Neon => neon::$neon(q, b, out),
                _ => $scalar(q, b, out),
            }
        }
    };
}

dispatch_f32!(l2_f32, l2_f32, l2_f32_sse2, l2_f32_neon, l2_f32_scalar);
dispatch_f32!(l1_f32, l1_f32, l1_f32_sse2, l1_f32_neon, l1_f32_scalar);
dispatch_f32!(
    linf_f32,
    linf_f32,
    linf_f32_sse2,
    linf_f32_neon,
    linf_f32_scalar
);

/// Runtime-dispatched compact angular kernel (AVX2+FMA or the `f32`
/// scalar fallback; see [`angular_f64`] for why there is no narrow
/// vector variant).
pub(crate) fn angular_f32(q: &[f32], b: &SoaBlock32, out: &mut [f64]) {
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active_isa` only returns `Avx2Fma` when runtime
        // detection confirmed AVX2 and FMA.
        Isa::Avx2Fma => unsafe { x86::angular_f32(q, b, out) },
        _ => angular_f32_scalar(q, b, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_honors_overrides() {
        assert_eq!(select(Some("off")), Isa::Scalar);
        assert_eq!(select(Some(" off ")), Isa::Scalar);
        assert_eq!(select(None), detect());
        assert_eq!(select(Some("auto")), detect());
        assert_eq!(select(Some("")), detect());
    }

    #[test]
    fn select_rejects_garbage() {
        assert!(std::panic::catch_unwind(|| select(Some("fast"))).is_err());
    }

    #[test]
    fn force_matches_detection_when_vector_isa_present() {
        // On hosts with a vector ISA, force == auto; on scalar-only
        // hosts it must panic rather than silently fall back.
        match detect() {
            Isa::Scalar => assert!(std::panic::catch_unwind(|| select(Some("force"))).is_err()),
            isa => assert_eq!(select(Some("force")), isa),
        }
    }

    #[test]
    fn isa_names_are_stable() {
        assert_eq!(Isa::Avx2Fma.name(), "avx2+fma");
        assert_eq!(Isa::Sse2.name(), "sse2");
        assert_eq!(Isa::Neon.name(), "neon");
        assert_eq!(Isa::Scalar.name(), "scalar");
    }
}

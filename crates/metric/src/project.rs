//! Johnson–Lindenstrauss random projection for wide-dimension streams.
//!
//! Every solver hot loop in the workspace pays O(dim) per distance, so
//! a stream of dim-1024 embedding vectors costs 16x what a dim-64
//! stream does — in query time, coreset bytes, WAL records, and
//! snapshot payloads alike. The JL lemma says a random linear map to
//! `out_dim = O(ε⁻² log n)` dimensions preserves all pairwise
//! distances within `(1 ± ε)`, so projecting *once at ingest* shrinks
//! every downstream cost at a bounded, provable quality price.
//!
//! [`Projector`] implements two classic constructions:
//!
//! * **dense** — entries i.i.d. `N(0, 1/out_dim)`;
//! * **sparse** (Achlioptas) — entries `±1` with probability 1/6 each
//!   and `0` with probability 2/3, scaled by `√(3/out_dim)`; two
//!   thirds of the multiplies vanish with the same distortion bound.
//!
//! ## Seed contract
//!
//! The matrix is **rematerialized from `(in_dim, out_dim, seed,
//! kind)` and never serialized**: a SplitMix64 stream seeded with
//! `seed` fills the matrix row-major, so any process that knows the
//! four parameters reconstructs the projection bit-exactly. Snapshots,
//! WAL records, and tenant configs therefore carry only the parameters
//! (a few bytes), and recovery — restart, follower replay, checkpoint
//! restore — reprojects nothing: stored payloads are already
//! projected, and *future* ingest projects through the identical
//! matrix.
//!
//! ## Bit-identity across ISAs
//!
//! The matrix–vector kernel routes through the [`crate::simd`]
//! dispatch ladder, but unlike the relaxed L2 kernels it uses separate
//! multiply-then-add on **every** ISA (no FMA contraction), over the
//! same AoSoA tiling ([`SoaBlock`]) in which each output row owns one
//! accumulator lane. AVX2, SSE2, NEON and the scalar oracle therefore
//! perform the exact same IEEE operation sequence per row and agree
//! bit-for-bit — projected payloads are reproducible across hosts, so
//! the differential suites stay exact under any `FAIRSW_SIMD` setting.

use crate::kernel::{SoaBlock, LANES};
use crate::point::{Colored, EuclidPoint};
use crate::simd;
use std::sync::Arc;

/// SplitMix64 stream, matching the recipe used by the dataset
/// generators (the metric crate sits below `fairsw-datasets`, so the
/// few lines are reproduced rather than imported).
struct Split64 {
    state: u64,
}

impl Split64 {
    fn new(seed: u64) -> Self {
        Split64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal via Box–Muller (cosine branch).
    fn gaussian(&mut self) -> f64 {
        loop {
            let u1 = self.unit();
            let u2 = self.unit();
            if u1 > 1e-300 {
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }
}

/// Which JL construction a [`Projector`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProjectorKind {
    /// Dense Gaussian entries `N(0, 1/out_dim)`.
    Dense,
    /// Sparse Achlioptas entries: `±1` w.p. 1/6 each, `0` w.p. 2/3,
    /// scaled by `√(3/out_dim)`.
    Sparse,
}

/// A seeded Johnson–Lindenstrauss projection `ℝ^in_dim → ℝ^out_dim`.
///
/// Construction is deterministic in `(in_dim, out_dim, seed, kind)` —
/// see the [module docs](self) for the seed/recovery contract and the
/// cross-ISA bit-identity guarantee. Cloning is cheap (the matrix is
/// behind an [`Arc`]).
#[derive(Clone, Debug)]
pub struct Projector {
    in_dim: usize,
    out_dim: usize,
    seed: u64,
    kind: ProjectorKind,
    /// `out_dim` rows of length `in_dim`, staged AoSoA so each output
    /// row owns one accumulator lane in the matvec kernels. Dense
    /// entries carry the `1/√out_dim` scale; sparse entries are the
    /// raw `±1/0` and [`Self::scale`] is applied once per output.
    matrix: Arc<SoaBlock>,
    scale: f64,
}

impl Projector {
    /// Builds the dense Gaussian projector.
    ///
    /// # Panics
    /// If `in_dim` or `out_dim` is zero.
    pub fn dense(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Self::build(in_dim, out_dim, seed, ProjectorKind::Dense)
    }

    /// Builds the sparse (Achlioptas ±1/0) projector.
    ///
    /// # Panics
    /// If `in_dim` or `out_dim` is zero.
    pub fn sparse(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Self::build(in_dim, out_dim, seed, ProjectorKind::Sparse)
    }

    /// Builds a projector of the given kind; `dense`/`sparse` are the
    /// ergonomic entry points.
    pub fn build(in_dim: usize, out_dim: usize, seed: u64, kind: ProjectorKind) -> Self {
        assert!(in_dim > 0, "projector in_dim must be positive");
        assert!(out_dim > 0, "projector out_dim must be positive");
        let mut rng = Split64::new(seed);
        let mut rows = vec![0.0f64; out_dim * in_dim];
        let scale = match kind {
            ProjectorKind::Dense => {
                let s = 1.0 / (out_dim as f64).sqrt();
                for e in rows.iter_mut() {
                    *e = rng.gaussian() * s;
                }
                1.0
            }
            ProjectorKind::Sparse => {
                for e in rows.iter_mut() {
                    let u = rng.unit();
                    *e = if u < 1.0 / 6.0 {
                        1.0
                    } else if u < 2.0 / 6.0 {
                        -1.0
                    } else {
                        0.0
                    };
                }
                (3.0 / out_dim as f64).sqrt()
            }
        };
        let mut matrix = SoaBlock::default();
        matrix.stage_rows(in_dim, rows.chunks_exact(in_dim));
        Projector {
            in_dim,
            out_dim,
            seed,
            kind,
            matrix: Arc::new(matrix),
            scale,
        }
    }

    /// Input dimension the projector accepts.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension the projector produces.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The seed the matrix is rematerialized from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Which construction this projector uses.
    pub fn kind(&self) -> ProjectorKind {
        self.kind
    }

    /// One (unscaled for sparse, pre-scaled for dense) matrix row —
    /// exposed so tests can assert seed determinism bit-for-bit.
    pub fn row(&self, r: usize) -> Vec<f64> {
        (0..self.in_dim).map(|d| self.matrix.coord(d, r)).collect()
    }

    /// Projects one coordinate vector through the SIMD-dispatched
    /// matvec kernel.
    ///
    /// # Panics
    /// If `x.len() != in_dim`.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "projector input dimension mismatch");
        let mut out = vec![0.0f64; self.out_dim];
        simd::matvec_f64(x, &self.matrix, &mut out);
        if self.scale != 1.0 {
            for o in out.iter_mut() {
                *o *= self.scale;
            }
        }
        out
    }

    /// Reference projection: the naive dense row-major loop, no SIMD,
    /// no tiling. Bit-identical to [`Self::project`] on every ISA by
    /// the mul-then-add contract — the differential oracle the
    /// proptests pin.
    pub fn project_ref(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "projector input dimension mismatch");
        (0..self.out_dim)
            .map(|r| {
                let mut acc = 0.0f64;
                for (d, &xd) in x.iter().enumerate() {
                    acc += xd * self.matrix.coord(d, r);
                }
                if self.scale != 1.0 {
                    acc * self.scale
                } else {
                    acc
                }
            })
            .collect()
    }

    /// Projects a point, preserving nothing but coordinates (the
    /// projected point is a fresh allocation).
    pub fn project_point(&self, p: &EuclidPoint) -> EuclidPoint {
        EuclidPoint::new(self.project(p.coords()))
    }

    /// Projects the payload of a colored point, keeping its color.
    pub fn project_colored(&self, p: &Colored<EuclidPoint>) -> Colored<EuclidPoint> {
        Colored::new(self.project_point(&p.point), p.color)
    }
}

/// Point payloads that a [`Projector`] can map to a lower dimension.
///
/// Implemented for [`EuclidPoint`]; custom point types opt in by
/// projecting their own coordinate representation.
pub trait Projectable: Sized {
    /// The coordinate dimension of `self` — what a lazily-materialized
    /// projector adopts as its `in_dim`.
    fn width(&self) -> usize;

    /// Returns the projected copy of `self`.
    fn project_with(&self, projector: &Projector) -> Self;
}

impl Projectable for EuclidPoint {
    fn width(&self) -> usize {
        self.dim()
    }

    fn project_with(&self, projector: &Projector) -> Self {
        projector.project_point(self)
    }
}

// The compact payload mirrors project through their widened `f64`
// coordinates and re-narrow: the projection happens once at ingest, so
// the round-trip cost is bounded by the mirror's own quantization
// contract (callers re-rank through the exact kernels regardless).
impl Projectable for crate::compact::CompactPoint {
    fn width(&self) -> usize {
        self.dim()
    }

    fn project_with(&self, projector: &Projector) -> Self {
        crate::compact::CompactPoint::from_f64(&projector.project(self.widen().coords()))
    }
}

impl Projectable for crate::compact::Q8Point {
    fn width(&self) -> usize {
        self.dim()
    }

    fn project_with(&self, projector: &Projector) -> Self {
        crate::compact::Q8Point::quantize(&projector.project(self.widen().coords()))
    }
}

/// Exact scalar tiled matvec over the AoSoA matrix: per output row the
/// accumulation visits input dimensions in ascending order, exactly
/// like the naive loop in [`Projector::project_ref`] and like every
/// vector ISA (mul-then-add, one row per lane). This is the
/// `FAIRSW_SIMD=off` leg of the dispatch in [`crate::simd`].
pub(crate) fn matvec_kernel(x: &[f64], m: &SoaBlock, out: &mut [f64]) {
    debug_assert_eq!(x.len(), m.dim(), "dimension mismatch");
    let n = m.len();
    for t in 0..m.tiles() {
        let tile = m.tile(t);
        let mut acc = [0.0f64; LANES];
        for (d, &xd) in x.iter().enumerate() {
            let lanes = &tile[d * LANES..(d + 1) * LANES];
            for (a, &w) in acc.iter_mut().zip(lanes) {
                *a += xd * w;
            }
        }
        let start = t * LANES;
        let w = LANES.min(n - start);
        out[start..start + w].copy_from_slice(&acc[..w]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn l2(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn same_seed_same_matrix_across_calls() {
        for kind in [ProjectorKind::Dense, ProjectorKind::Sparse] {
            let a = Projector::build(17, 5, 0xfeed, kind);
            let b = Projector::build(17, 5, 0xfeed, kind);
            for r in 0..5 {
                assert_eq!(bits(&a.row(r)), bits(&b.row(r)), "{kind:?} row {r}");
            }
            let c = Projector::build(17, 5, 0xfeee, kind);
            assert_ne!(bits(&a.row(0)), bits(&c.row(0)), "{kind:?} seed ignored");
        }
    }

    #[test]
    fn same_seed_same_matrix_across_threads() {
        let rows: Vec<Vec<u64>> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let p = Projector::dense(33, 7, 42);
                        let mut all = Vec::new();
                        for r in 0..7 {
                            all.extend(bits(&p.row(r)));
                        }
                        all.extend(bits(&p.project(&vec![0.25; 33])));
                        all
                    })
                })
                .map(|h| h.join().unwrap())
                .collect()
        });
        for w in rows.windows(2) {
            assert_eq!(w[0], w[1], "projector differs across threads");
        }
    }

    #[test]
    fn sparse_density_is_about_one_third() {
        let p = Projector::sparse(256, 64, 9);
        let mut nonzero = 0usize;
        for r in 0..64 {
            nonzero += p.row(r).iter().filter(|&&e| e != 0.0).count();
        }
        let frac = nonzero as f64 / (256.0 * 64.0);
        assert!((0.25..0.42).contains(&frac), "sparse density {frac}");
    }

    #[test]
    fn zero_dims_panic() {
        assert!(std::panic::catch_unwind(|| Projector::dense(0, 4, 1)).is_err());
        assert!(std::panic::catch_unwind(|| Projector::dense(4, 0, 1)).is_err());
    }

    #[test]
    fn projected_point_keeps_color() {
        let p = Projector::dense(8, 2, 3);
        let c = Colored::new(EuclidPoint::new(vec![1.0; 8]), 5);
        let q = p.project_colored(&c);
        assert_eq!(q.color, 5);
        assert_eq!(q.point.dim(), 2);
    }

    // The dispatched kernel (whatever ISA `FAIRSW_SIMD` selects) is
    // bit-identical to the naive scalar reference. CI runs this under
    // `off` and `force`, which together pin every ISA the host offers
    // to the same bits.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn dispatched_matches_reference_dense(
            seed in 0u64..u64::MAX,
            in_dim in 1usize..40,
            out_dim in 1usize..24,
            scale in -8.0f64..8.0,
        ) {
            let p = Projector::dense(in_dim, out_dim, seed);
            let x: Vec<f64> = (0..in_dim).map(|d| scale * (d as f64 + 0.5).sin()).collect();
            prop_assert_eq!(bits(&p.project(&x)), bits(&p.project_ref(&x)));
        }
    }

    // Sparse shipping path == its scalar oracle, bit-for-bit: the
    // oracle accumulates the `±1` nonzeros in index order and scales
    // once at the end, exactly like the dense-staged kernel
    // (zero-entry adds are bit-neutral from a `+0.0` accumulator and
    // `±1` multiplies are exact).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn sparse_matches_scalar_oracle(
            seed in 0u64..u64::MAX,
            in_dim in 1usize..48,
            out_dim in 1usize..24,
        ) {
            let p = Projector::sparse(in_dim, out_dim, seed);
            let x: Vec<f64> = (0..in_dim).map(|d| ((d * 37 + 11) as f64).cos() * 3.0).collect();
            let oracle: Vec<f64> = (0..out_dim).map(|r| {
                let row = p.row(r);
                let mut acc = 0.0f64;
                for (d, &sign) in row.iter().enumerate() {
                    if sign != 0.0 {
                        acc += sign * x[d];
                    }
                }
                acc * (3.0 / out_dim as f64).sqrt()
            }).collect();
            prop_assert_eq!(bits(&p.project(&x)), bits(&oracle));
            prop_assert_eq!(bits(&p.project_ref(&x)), bits(&oracle));
        }
    }

    // JL distance-preservation envelope: at out_dim = 128 the
    // pairwise distance of random unit vectors survives within a
    // generous (1 ± ε) band (the concentration failure mass at this
    // out_dim is far below one in a billion per pair).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn pairwise_distance_envelope(
            seed in 0u64..u64::MAX,
            pair_seed in 0u64..u64::MAX,
            sparse_sel in 0u32..2,
        ) {
            let (in_dim, out_dim) = (256, 128);
            let p = if sparse_sel == 1 {
                Projector::sparse(in_dim, out_dim, seed)
            } else {
                Projector::dense(in_dim, out_dim, seed)
            };
            let mut rng = Split64::new(pair_seed);
            let unit = |rng: &mut Split64| {
                let v: Vec<f64> = (0..in_dim).map(|_| rng.gaussian()).collect();
                let n = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
                v.into_iter().map(|x| x / n).collect::<Vec<f64>>()
            };
            let (u, v) = (unit(&mut rng), unit(&mut rng));
            let before = l2(&u, &v);
            let after = l2(&p.project(&u), &p.project(&v));
            let ratio = after / before;
            prop_assert!((0.5..=1.6).contains(&ratio), "distortion {ratio} out of envelope");
        }
    }
}

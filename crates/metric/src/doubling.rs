//! Empirical doubling-dimension estimation.
//!
//! The doubling dimension `D` of a set `W` is the smallest value such that
//! every ball `B(x, r)` in `W` is covered by at most `2^D` balls of radius
//! `r/2`. The paper's space bound for the coreset is
//! `O(k² log Δ (c/ε)^D)`; the algorithm never *needs* `D`, but the
//! dimensionality experiments (Figures 4 and 5) are about how memory and
//! query time track the *intrinsic* dimension of the data rather than the
//! ambient number of coordinates. This module provides the estimator used
//! by the harness to report that intrinsic dimension.

use crate::metric::Metric;

/// Greedy `r`-net: a maximal subset of `points` with pairwise distances
/// `> r`, built by a single scan. Every input point is within `r` of some
/// net point (maximality), and net points are an `r`-packing.
pub fn greedy_net<M: Metric>(metric: &M, points: &[M::Point], r: f64) -> Vec<usize> {
    let mut net: Vec<usize> = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for &j in &net {
            if metric.dist(p, &points[j]) <= r {
                continue 'outer;
            }
        }
        net.push(i);
    }
    net
}

/// Estimates the doubling dimension of `points` by measuring the growth
/// rate of greedy-net sizes across a geometric ladder of scales.
///
/// For an `r`-net of size `N_r`, a space of doubling dimension `D`
/// satisfies `N_{r/2} ≤ c · 2^D · N_r` within the data diameter, so the
/// base-2 logarithm of successive net-size ratios estimates `D`. We return
/// the *median* ratio over the ladder, which is robust to boundary effects
/// at the largest and smallest scales.
///
/// Returns `None` for degenerate inputs (fewer than two distinct points).
pub fn estimate_doubling_dimension<M: Metric>(
    metric: &M,
    points: &[M::Point],
    levels: usize,
) -> Option<f64> {
    if points.len() < 2 {
        return None;
    }
    // Diameter lower bound via double sweep.
    let far = |from: &M::Point| -> f64 {
        points
            .iter()
            .map(|p| metric.dist(from, p))
            .fold(0.0, f64::max)
    };
    let diam = far(&points[0]);
    if diam <= 0.0 {
        return None;
    }

    let mut sizes = Vec::with_capacity(levels + 1);
    let mut r = diam / 2.0;
    for _ in 0..=levels {
        let net = greedy_net(metric, points, r);
        sizes.push(net.len());
        r /= 2.0;
        // Stop once the net saturates: below the minimum distance every
        // point is its own net point and ratios degenerate to 1.
        if *sizes.last().expect("just pushed") == points.len() {
            break;
        }
    }

    let mut ratios: Vec<f64> = sizes
        .windows(2)
        .filter(|w| w[0] > 0 && w[1] > w[0])
        .map(|w| (w[1] as f64 / w[0] as f64).log2())
        .collect();
    if ratios.is_empty() {
        return Some(0.0);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    Some(ratios[ratios.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;
    use crate::point::EuclidPoint;

    /// Deterministic low-discrepancy points in the unit cube of dim `d`.
    fn cube_points(n: usize, d: usize) -> Vec<EuclidPoint> {
        // Additive quasi-random (Kronecker) sequence with per-dimension
        // irrational steps (fractional parts of square roots of primes):
        // fills the cube uniformly without rand and without cross-
        // dimension correlation.
        let primes = [2.0f64, 3.0, 5.0, 7.0, 11.0, 13.0, 17.0, 19.0];
        (0..n)
            .map(|i| {
                let coords: Vec<f64> = (0..d)
                    .map(|j| ((i + 1) as f64 * primes[j % primes.len()].sqrt()).fract())
                    .collect();
                EuclidPoint::new(coords)
            })
            .collect()
    }

    #[test]
    fn greedy_net_is_packing_and_covering() {
        let pts = cube_points(300, 2);
        let r = 0.2;
        let net = greedy_net(&Euclidean, &pts, r);
        // Packing: pairwise > r.
        for i in 0..net.len() {
            for j in (i + 1)..net.len() {
                assert!(Euclidean.dist(&pts[net[i]], &pts[net[j]]) > r);
            }
        }
        // Covering: every point within r of the net.
        for p in &pts {
            let d = Euclidean.dist_to_set(p, net.iter().map(|&i| &pts[i]));
            assert!(d <= r);
        }
    }

    #[test]
    fn doubling_dim_tracks_intrinsic_dimension() {
        let d1 = estimate_doubling_dimension(&Euclidean, &cube_points(600, 1), 6).unwrap();
        let d2 = estimate_doubling_dimension(&Euclidean, &cube_points(600, 2), 6).unwrap();
        let d3 = estimate_doubling_dimension(&Euclidean, &cube_points(600, 3), 6).unwrap();
        // The estimator must be monotone across 1D/2D/3D samples and in
        // the right ballpark (±1 of the true dimension).
        assert!(d1 < d2 && d2 < d3, "got {d1} {d2} {d3}");
        assert!(d1 > 0.3 && d1 < 2.0, "1D estimate {d1}");
        assert!(d3 > 1.5, "3D estimate {d3}");
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        let p = EuclidPoint::new(vec![0.0]);
        assert!(estimate_doubling_dimension(&Euclidean, &[], 4).is_none());
        assert!(estimate_doubling_dimension(&Euclidean, std::slice::from_ref(&p), 4).is_none());
        assert!(estimate_doubling_dimension(&Euclidean, &[p.clone(), p], 4).is_none());
    }

    #[test]
    fn rotated_data_keeps_low_intrinsic_dimension() {
        // 1-D data embedded on a diagonal of 5-D space: the estimator must
        // report ~1, not 5 — the exact phenomenon Figure 5 tests.
        let pts: Vec<EuclidPoint> = (0..500)
            .map(|i| {
                let t = (i as f64 * 0.618_033_988_7).fract();
                EuclidPoint::new(vec![t, 2.0 * t, -t, 0.5 * t, t])
            })
            .collect();
        let d = estimate_doubling_dimension(&Euclidean, &pts, 6).unwrap();
        assert!(d < 2.0, "embedded 1D line estimated at {d}");
    }
}

//! Pairwise-distance statistics: `dmin`, `dmax` and the aspect ratio
//! `Δ = dmax / dmin` that determines the number of radius guesses
//! `|Γ| = O(log Δ / log(1+β))` maintained by the sliding-window algorithm.

use crate::metric::Metric;

/// Minimum and maximum pairwise distance of a point set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairwiseExtremes {
    /// The minimum distance over distinct-index pairs (ignoring exact
    /// duplicates, which would force `dmin = 0` and an infinite guess
    /// lattice; the paper implicitly assumes distinct points).
    pub dmin: f64,
    /// The maximum pairwise distance (the diameter).
    pub dmax: f64,
}

impl PairwiseExtremes {
    /// The aspect ratio `Δ = dmax / dmin`.
    pub fn aspect_ratio(&self) -> f64 {
        self.dmax / self.dmin
    }
}

/// Exact `dmin`/`dmax` over all `O(n²)` pairs.
///
/// Returns `None` when fewer than two points are given or when all points
/// coincide. Duplicate points (distance 0) are skipped when computing
/// `dmin`, matching the convention used to define the guess set.
pub fn pairwise_extremes<M: Metric>(metric: &M, points: &[M::Point]) -> Option<PairwiseExtremes> {
    let mut dmin = f64::INFINITY;
    let mut dmax: f64 = 0.0;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let d = metric.dist(&points[i], &points[j]);
            if d > 0.0 && d < dmin {
                dmin = d;
            }
            if d > dmax {
                dmax = d;
            }
        }
    }
    if dmin.is_finite() && dmax > 0.0 {
        Some(PairwiseExtremes { dmin, dmax })
    } else {
        None
    }
}

/// Sampled `dmin`/`dmax` estimate for large datasets.
///
/// Evaluates distances between `sample_size` evenly strided points plus a
/// deterministic sweep of consecutive pairs (consecutive stream points are
/// the most likely close pairs in trajectory-like data, tightening the
/// `dmin` estimate). `dmax` is refined by a Gonzalez-style double sweep:
/// from an arbitrary point, find the farthest point `a`, then the farthest
/// from `a` — a classical 2-approximation of the diameter that in practice
/// is nearly exact. The result brackets the true extremes well enough for
/// guess-lattice construction (an underestimate of `dmin` or overestimate
/// of `dmax` merely adds a few guesses).
pub fn sampled_extremes<M: Metric>(
    metric: &M,
    points: &[M::Point],
    sample_size: usize,
) -> Option<PairwiseExtremes> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len();
    let stride = (n / sample_size.max(1)).max(1);
    let sample: Vec<&M::Point> = points.iter().step_by(stride).collect();

    let mut dmin = f64::INFINITY;
    let mut dmax: f64 = 0.0;
    for i in 0..sample.len() {
        for j in (i + 1)..sample.len() {
            let d = metric.dist(sample[i], sample[j]);
            if d > 0.0 && d < dmin {
                dmin = d;
            }
            if d > dmax {
                dmax = d;
            }
        }
    }
    // Consecutive pairs: cheap O(n) refinement of dmin.
    for w in points.windows(2) {
        let d = metric.dist(&w[0], &w[1]);
        if d > 0.0 && d < dmin {
            dmin = d;
        }
    }
    // Double farthest-point sweep: refinement of dmax.
    let far = |from: &M::Point| -> (usize, f64) {
        let mut best = (0usize, 0.0f64);
        for (i, p) in points.iter().enumerate() {
            let d = metric.dist(from, p);
            if d > best.1 {
                best = (i, d);
            }
        }
        best
    };
    let (a, _) = far(&points[0]);
    let (_, d2) = far(&points[a]);
    if d2 > dmax {
        dmax = d2;
    }

    if dmin.is_finite() && dmax > 0.0 {
        Some(PairwiseExtremes { dmin, dmax })
    } else {
        None
    }
}

/// The aspect ratio `Δ = dmax/dmin` of a point set (exact; `None` for
/// degenerate inputs).
pub fn aspect_ratio<M: Metric>(metric: &M, points: &[M::Point]) -> Option<f64> {
    pairwise_extremes(metric, points).map(|e| e.aspect_ratio())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;
    use crate::point::EuclidPoint;

    fn pts(vals: &[f64]) -> Vec<EuclidPoint> {
        vals.iter().map(|&v| EuclidPoint::new(vec![v])).collect()
    }

    #[test]
    fn exact_extremes_line() {
        let e = pairwise_extremes(&Euclidean, &pts(&[0.0, 1.0, 10.0])).unwrap();
        assert!((e.dmin - 1.0).abs() < 1e-12);
        assert!((e.dmax - 10.0).abs() < 1e-12);
        assert!((e.aspect_ratio() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(pairwise_extremes(&Euclidean, &pts(&[])).is_none());
        assert!(pairwise_extremes(&Euclidean, &pts(&[1.0])).is_none());
        assert!(pairwise_extremes(&Euclidean, &pts(&[2.0, 2.0])).is_none());
    }

    #[test]
    fn duplicates_skipped_in_dmin() {
        let e = pairwise_extremes(&Euclidean, &pts(&[0.0, 0.0, 3.0])).unwrap();
        assert!((e.dmin - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_brackets_exact() {
        // Deterministic quasi-random scatter in 2D.
        let mut points = Vec::new();
        let mut x = 0.5f64;
        for i in 0..400 {
            x = (x * 997.0 + 31.17).fract();
            let y = ((i as f64) * 0.618_033_9).fract();
            points.push(EuclidPoint::new(vec![x * 100.0, y * 100.0]));
        }
        let exact = pairwise_extremes(&Euclidean, &points).unwrap();
        let approx = sampled_extremes(&Euclidean, &points, 64).unwrap();
        // Sampled dmin can only overestimate, dmax can only underestimate,
        // but the double sweep keeps dmax within factor 2.
        assert!(approx.dmin >= exact.dmin - 1e-9);
        assert!(approx.dmax <= exact.dmax + 1e-9);
        assert!(approx.dmax >= exact.dmax / 2.0);
    }

    #[test]
    fn sampled_small_input() {
        let e = sampled_extremes(&Euclidean, &pts(&[0.0, 4.0]), 10).unwrap();
        assert!((e.dmin - 4.0).abs() < 1e-12);
        assert!((e.dmax - 4.0).abs() < 1e-12);
    }

    #[test]
    fn aspect_ratio_helper() {
        assert!((aspect_ratio(&Euclidean, &pts(&[0.0, 1.0, 8.0])).unwrap() - 8.0).abs() < 1e-12);
        assert!(aspect_ratio(&Euclidean, &pts(&[1.0])).is_none());
    }
}

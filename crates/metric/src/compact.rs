//! Compact payload mirrors: `f32` and 8-bit scalar-quantized point
//! types with Euclidean metrics over them.
//!
//! `BENCH_memory.json` shows payload bytes dominating residency on wide
//! datasets (covtype: ~896 KB of `f64` payloads vs ~34 KB of handles),
//! so halving or eighth-ing coordinate width shrinks the resident
//! coreset where it actually lives — and doubles the lanes each vector
//! register holds. Two point types implement the trade:
//!
//! * [`CompactPoint`] — coordinates stored once as `f32`
//!   (`4 bytes/coord`, ~2× smaller than [`EuclidPoint`]);
//! * [`Q8Point`] — 8-bit scalar quantization per point
//!   (`1 byte/coord` + a 8-byte `(lo, step)` header, ~8× smaller):
//!   coordinate `d` decodes as `lo + step · code[d]` in `f32`.
//!
//! ### Memory math
//!
//! For a `dim`-dimensional point (ignoring the constant struct header
//! and allocator rounding): [`EuclidPoint`] keeps `8·dim` payload
//! bytes, [`CompactPoint`] `4·dim`, [`Q8Point`] `dim + 8`. On covtype
//! (`dim = 54`) that is 432 → 216 → 62 bytes per stored point; the
//! `memory_footprint` bench records the realized ratios per dataset.
//!
//! ### Exactness contract
//!
//! Quantization error lives entirely in the *stored values*: both
//! metrics' scalar [`dist`](crate::Metric::dist) runs full `f64`
//! arithmetic over the decoded coordinates, deterministically, so
//! exact-mode engines over compact points remain bit-reproducible (and
//! the exact-mode batched kernels widen each stored `f32` to `f64` in
//! the scalar accumulation order — bit-identical to `dist`). Relative
//! to the original `f64` stream the answers are approximate — rounding
//! each coordinate to `f32` perturbs any distance by at most a
//! `≈ 2⁻²⁴` relative factor plus cancellation effects, and `q8` by at
//! most `√dim · step/2` absolutely — which is why the compact mirror
//! belongs to the `Approx(ε)` side of the
//! [`Exactness`](crate::Exactness) contract: run the candidate scans
//! compactly, then re-rank the surviving centers on the original
//! stream (the bench harness does exactly this comparison).

use crate::kernel::{CoresetView, KernelMode, SoaBlock32};
use crate::metric::{scalar_one_to_many, Metric};
use crate::point::EuclidPoint;
use crate::simd;
use crate::store::PointFootprint;
use std::fmt;
use std::sync::Arc;

/// A point with coordinates stored once as `f32` — the 2× compact
/// payload mirror. Cloning shares the buffer, like [`EuclidPoint`].
#[derive(Clone)]
pub struct CompactPoint {
    coords: Arc<[f32]>,
}

impl CompactPoint {
    /// Builds a point from an `f32` coordinate vector.
    pub fn new(coords: impl Into<Vec<f32>>) -> Self {
        let v: Vec<f32> = coords.into();
        CompactPoint {
            coords: Arc::from(v.into_boxed_slice()),
        }
    }

    /// Narrows an `f64` coordinate slice (round-to-nearest per
    /// coordinate).
    pub fn from_f64(xs: &[f64]) -> Self {
        CompactPoint::new(xs.iter().map(|&x| x as f32).collect::<Vec<f32>>())
    }

    /// The stored coordinates.
    #[inline]
    pub fn coords(&self) -> &[f32] {
        &self.coords
    }

    /// Dimensionality of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Widens back to an [`EuclidPoint`] (each stored `f32` converts
    /// exactly).
    pub fn widen(&self) -> EuclidPoint {
        EuclidPoint::new(self.coords.iter().map(|&x| x as f64).collect::<Vec<f64>>())
    }
}

impl From<&EuclidPoint> for CompactPoint {
    fn from(p: &EuclidPoint) -> Self {
        CompactPoint::from_f64(p.coords())
    }
}

impl PointFootprint for CompactPoint {
    /// Struct plus the shared `f32` buffer — half the coordinate bytes
    /// of [`EuclidPoint`].
    fn payload_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.coords.len() * std::mem::size_of::<f32>()
    }
}

impl fmt::Debug for CompactPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompactPoint(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.4}")?;
        }
        write!(f, ")")
    }
}

impl PartialEq for CompactPoint {
    fn eq(&self, other: &Self) -> bool {
        self.coords[..] == other.coords[..]
    }
}

/// A point with 8-bit scalar-quantized coordinates — the ~8× compact
/// payload mirror. Coordinate `d` decodes as `lo + step · code[d]`,
/// computed in `f32`; `lo`/`step` are chosen per point so the codes
/// span the point's own coordinate range.
#[derive(Clone)]
pub struct Q8Point {
    lo: f32,
    step: f32,
    codes: Arc<[u8]>,
}

impl Q8Point {
    /// Quantizes an `f64` coordinate slice: `lo` = the minimum
    /// coordinate, `step` = range/255, codes rounded to nearest.
    /// Degenerate (constant or empty) points get `step = 0`.
    pub fn quantize(xs: &[f64]) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in xs {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if xs.is_empty() || hi <= lo {
            return Q8Point {
                lo: if xs.is_empty() { 0.0 } else { lo as f32 },
                step: 0.0,
                codes: Arc::from(vec![0u8; xs.len()].into_boxed_slice()),
            };
        }
        let lo32 = lo as f32;
        let step = ((hi - lo) / 255.0) as f32;
        let codes: Vec<u8> = xs
            .iter()
            .map(|&x| {
                let c = ((x as f32 - lo32) / step).round();
                c.clamp(0.0, 255.0) as u8
            })
            .collect();
        Q8Point {
            lo: lo32,
            step,
            codes: Arc::from(codes.into_boxed_slice()),
        }
    }

    /// Decoded coordinate `d` (`lo + step · code`, in `f32`).
    #[inline]
    pub fn decode(&self, d: usize) -> f32 {
        self.lo + self.step * self.codes[d] as f32
    }

    /// All decoded coordinates, in order.
    #[inline]
    pub fn decoded(&self) -> impl ExactSizeIterator<Item = f32> + '_ {
        self.codes.iter().map(|&c| self.lo + self.step * c as f32)
    }

    /// Dimensionality of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.codes.len()
    }

    /// Widens the decoded coordinates to an [`EuclidPoint`].
    pub fn widen(&self) -> EuclidPoint {
        EuclidPoint::new(self.decoded().map(|x| x as f64).collect::<Vec<f64>>())
    }
}

impl From<&EuclidPoint> for Q8Point {
    fn from(p: &EuclidPoint) -> Self {
        Q8Point::quantize(p.coords())
    }
}

impl PointFootprint for Q8Point {
    /// Struct (header carries `lo`/`step` inline) plus one byte per
    /// coordinate.
    fn payload_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.codes.len()
    }
}

impl fmt::Debug for Q8Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q8Point(")?;
        for (i, c) in self.decoded().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.4}")?;
        }
        write!(f, ")")
    }
}

impl PartialEq for Q8Point {
    fn eq(&self, other: &Self) -> bool {
        self.lo == other.lo && self.step == other.step && self.codes[..] == other.codes[..]
    }
}

/// The exact widened L2 kernel over a compact block: each stored `f32`
/// widens to `f64` and accumulates in the scalar order, reproducing the
/// compact metrics' `dist` bit for bit.
fn l2_kernel32_exact(q: &[f32], b: &SoaBlock32, out: &mut [f64]) {
    use crate::kernel::LANES;
    debug_assert_eq!(q.len(), b.dim(), "dimension mismatch");
    let n = b.len();
    for t in 0..b.tiles() {
        let tile = b.tile(t);
        let mut acc = [0.0f64; LANES];
        for (d, &qd) in q.iter().enumerate() {
            let qd = qd as f64;
            let lanes = &tile[d * LANES..(d + 1) * LANES];
            for (a, &x) in acc.iter_mut().zip(lanes) {
                let diff = qd - x as f64;
                *a += diff * diff;
            }
        }
        let start = t * LANES;
        let w = LANES.min(n - start);
        for (o, &a) in out[start..start + w].iter_mut().zip(&acc) {
            *o = a.sqrt();
        }
    }
}

/// Shared staging/dispatch over compact blocks: stages the `f32` mirror
/// (the only columnar form compact points have) and dispatches
/// exact-mode views to the widened kernel, relaxed views to the `f32`
/// SIMD kernels.
macro_rules! compact_metric {
    ($(#[$doc:meta])* $name:ident, $point:ty, $p:ident => $row:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default)]
        pub struct $name;

        impl Metric for $name {
            type Point = $point;

            /// Full `f64` arithmetic over the decoded stored values —
            /// deterministic, and what "exact" means for compact
            /// payloads.
            #[inline]
            fn dist(&self, a: &$point, b: &$point) -> f64 {
                debug_assert_eq!(a.dim(), b.dim(), "dimension mismatch");
                let mut acc = 0.0f64;
                let rows = {
                    let $p: &$point = a;
                    $row
                };
                let cols = {
                    let $p: &$point = b;
                    $row
                };
                for (x, y) in rows.zip(cols) {
                    let d = x as f64 - y as f64;
                    acc += d * d;
                }
                acc.sqrt()
            }

            /// Stages the compact `f32` mirror (points of ragged
            /// dimension fall back to per-row scalar `dist`).
            fn stage(&self, view: &mut CoresetView<$point>) {
                let Some(first) = view.points().first() else {
                    return;
                };
                let dim = first.dim();
                if view.points().iter().any(|p| p.dim() != dim) {
                    return;
                }
                let mut soa32 = std::mem::take(view.soa32_mut());
                soa32.stage_rows(dim, view.points().iter().map(|$p: &$point| $row));
                *view.soa32_mut() = soa32;
            }

            /// Exact-mode views run the widened (`f64`-accumulating)
            /// kernel, bit-identical to [`dist`](Metric::dist); relaxed
            /// views run the runtime-dispatched `f32` SIMD kernels.
            fn dist_one_to_many(
                &self,
                q: &$point,
                view: &CoresetView<$point>,
                out: &mut [f64],
            ) {
                debug_assert_eq!(out.len(), view.len(), "output block size mismatch");
                let qrow = {
                    let $p: &$point = q;
                    $row
                };
                match view.soa32() {
                    Some(b) => simd::with_q32(qrow, |q32| match view.mode() {
                        KernelMode::Exact => l2_kernel32_exact(q32, b, out),
                        _ => simd::l2_f32(q32, b, out),
                    }),
                    None => scalar_one_to_many(self, q, view, out),
                }
            }

            fn dist_one_to_many_exact(
                &self,
                q: &$point,
                view: &CoresetView<$point>,
                out: &mut [f64],
            ) {
                debug_assert_eq!(out.len(), view.len(), "output block size mismatch");
                let qrow = {
                    let $p: &$point = q;
                    $row
                };
                match view.soa32() {
                    Some(b) => simd::with_q32(qrow, |q32| l2_kernel32_exact(q32, b, out)),
                    None => scalar_one_to_many(self, q, view, out),
                }
            }
        }
    };
}

compact_metric!(
    /// The Euclidean metric over [`CompactPoint`]s (`f64` arithmetic on
    /// the stored `f32` coordinates).
    CompactEuclidean,
    CompactPoint,
    p => p.coords().iter().copied()
);

compact_metric!(
    /// The Euclidean metric over [`Q8Point`]s (`f64` arithmetic on the
    /// decoded coordinates).
    Q8Euclidean,
    Q8Point,
    p => p.decoded()
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;

    fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn compact_point_roundtrip_and_footprint() {
        let p = CompactPoint::from_f64(&[1.0, -2.5, 3.25]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.coords(), &[1.0f32, -2.5, 3.25]);
        assert_eq!(p.widen().coords(), &[1.0, -2.5, 3.25]);
        let wide = EuclidPoint::new(vec![0.0; 64]).payload_bytes();
        let narrow = CompactPoint::from_f64(&[0.0; 64]).payload_bytes();
        assert!(
            (narrow as f64) < 0.6 * wide as f64,
            "f32 mirror not ~2x smaller: {narrow} vs {wide}"
        );
    }

    #[test]
    fn q8_quantizes_within_half_step() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 42.0).collect();
        let q = Q8Point::quantize(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let step = (hi - lo) / 255.0;
        for (d, &x) in xs.iter().enumerate() {
            let err = (q.decode(d) as f64 - x).abs();
            assert!(err <= step * 0.51 + 1e-6, "coord {d}: err {err} > {step}");
        }
        let wide = EuclidPoint::new(xs.clone()).payload_bytes();
        assert!(
            (q.payload_bytes() as f64) < 0.2 * wide as f64,
            "q8 mirror not ~8x smaller"
        );
    }

    #[test]
    fn q8_degenerate_points() {
        let q = Q8Point::quantize(&[]);
        assert_eq!(q.dim(), 0);
        let q = Q8Point::quantize(&[7.5, 7.5, 7.5]);
        assert_eq!(q.decode(0), 7.5);
        assert_eq!(q.decode(2), 7.5);
    }

    #[test]
    fn compact_dist_tracks_f64_dist() {
        let a64: Vec<f64> = (0..20).map(|i| (i as f64).cos() * 10.0).collect();
        let b64: Vec<f64> = (0..20).map(|i| (i as f64).sin() * 10.0).collect();
        let exact = Euclidean.dist(
            &EuclidPoint::new(a64.clone()),
            &EuclidPoint::new(b64.clone()),
        );
        let c = CompactEuclidean.dist(&CompactPoint::from_f64(&a64), &CompactPoint::from_f64(&b64));
        assert!(
            approx_eq(exact, c, 1e-6),
            "f32 mirror drifted: {exact} vs {c}"
        );
        let q = Q8Euclidean.dist(&Q8Point::quantize(&a64), &Q8Point::quantize(&b64));
        assert!(
            approx_eq(exact, q, 0.02),
            "q8 mirror drifted: {exact} vs {q}"
        );
    }

    #[test]
    fn exact_kernel_is_bit_identical_to_dist() {
        let pts: Vec<CompactPoint> = (0..37)
            .map(|i| {
                CompactPoint::from_f64(&[
                    (i as f64) * 0.7 - 10.0,
                    (i as f64).sin(),
                    1e-3 * i as f64,
                ])
            })
            .collect();
        let q = CompactPoint::from_f64(&[0.25, -1.5, 3.0]);
        let mut view = CoresetView::new();
        view.gather(&CompactEuclidean, pts.iter());
        assert!(
            view.soa32().is_some(),
            "compact metric stages the f32 mirror"
        );
        assert!(view.soa().is_none(), "no f64 mirror for compact points");
        let mut out = vec![f64::NAN; pts.len()];
        CompactEuclidean.dist_one_to_many(&q, &view, &mut out);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(
                out[i].to_bits(),
                CompactEuclidean.dist(&q, p).to_bits(),
                "exact compact kernel diverged at {i}"
            );
        }
        let mut out2 = vec![f64::NAN; pts.len()];
        CompactEuclidean.dist_one_to_many_exact(&q, &view, &mut out2);
        assert_eq!(out, out2);
    }

    #[test]
    fn q8_kernel_is_bit_identical_to_dist() {
        let pts: Vec<Q8Point> = (0..19)
            .map(|i| {
                Q8Point::quantize(&[(i as f64) * 1.3 - 7.0, (i as f64 * 0.11).cos() * 4.0, 0.5])
            })
            .collect();
        let q = Q8Point::quantize(&[0.0, 1.0, 2.0]);
        let mut view = CoresetView::new();
        view.gather(&Q8Euclidean, pts.iter());
        let mut out = vec![f64::NAN; pts.len()];
        Q8Euclidean.dist_one_to_many(&q, &view, &mut out);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(
                out[i].to_bits(),
                Q8Euclidean.dist(&q, p).to_bits(),
                "exact q8 kernel diverged at {i}"
            );
        }
    }
}

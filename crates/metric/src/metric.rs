//! The distance-oracle trait and the concrete metrics used in the
//! experiments.

use crate::point::EuclidPoint;

/// A metric space: a point type plus a distance oracle.
///
/// All algorithms in the workspace — the sequential baselines of
/// `fairsw-sequential` and the sliding-window algorithm of `fairsw-core` —
/// are generic over this trait, mirroring the paper's generality ("general
/// metric spaces"). Implementations must satisfy the metric axioms
/// (non-negativity, identity, symmetry, triangle inequality); the property
/// tests in this crate spot-check them for the bundled metrics.
pub trait Metric: Clone {
    /// The point type of the space. The [`PointFootprint`] bound feeds
    /// the byte-level memory accounting; its default implementation
    /// (inline size only) makes custom point types a one-line impl.
    ///
    /// [`PointFootprint`]: crate::store::PointFootprint
    type Point: Clone + std::fmt::Debug + crate::store::PointFootprint;

    /// The distance between two points. Must be finite and `>= 0`.
    fn dist(&self, a: &Self::Point, b: &Self::Point) -> f64;

    /// Distance from `p` to the closest of `set`, or `f64::INFINITY` when
    /// `set` is empty. Convenience used by every clustering routine.
    fn dist_to_set<'a, I>(&self, p: &Self::Point, set: I) -> f64
    where
        I: IntoIterator<Item = &'a Self::Point>,
        Self::Point: 'a,
    {
        let mut best = f64::INFINITY;
        for q in set {
            let d = self.dist(p, q);
            if d < best {
                best = d;
            }
        }
        best
    }
}

/// The Euclidean (L2) metric on [`EuclidPoint`]s. Used by every experiment
/// in the paper.
#[derive(Clone, Copy, Debug, Default)]
pub struct Euclidean;

impl Metric for Euclidean {
    type Point = EuclidPoint;

    #[inline]
    fn dist(&self, a: &EuclidPoint, b: &EuclidPoint) -> f64 {
        let (xs, ys) = (a.coords(), b.coords());
        debug_assert_eq!(xs.len(), ys.len(), "dimension mismatch");
        let mut acc = 0.0;
        for (x, y) in xs.iter().zip(ys) {
            let d = x - y;
            acc += d * d;
        }
        acc.sqrt()
    }
}

/// The Manhattan (L1) metric on [`EuclidPoint`]s.
#[derive(Clone, Copy, Debug, Default)]
pub struct Manhattan;

impl Metric for Manhattan {
    type Point = EuclidPoint;

    #[inline]
    fn dist(&self, a: &EuclidPoint, b: &EuclidPoint) -> f64 {
        let (xs, ys) = (a.coords(), b.coords());
        debug_assert_eq!(xs.len(), ys.len(), "dimension mismatch");
        xs.iter().zip(ys).map(|(x, y)| (x - y).abs()).sum()
    }
}

/// The Chebyshev (L∞) metric on [`EuclidPoint`]s.
#[derive(Clone, Copy, Debug, Default)]
pub struct Chebyshev;

impl Metric for Chebyshev {
    type Point = EuclidPoint;

    #[inline]
    fn dist(&self, a: &EuclidPoint, b: &EuclidPoint) -> f64 {
        let (xs, ys) = (a.coords(), b.coords());
        debug_assert_eq!(xs.len(), ys.len(), "dimension mismatch");
        xs.iter()
            .zip(ys)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
}

/// The angular (normalized cosine) metric on [`EuclidPoint`]s:
/// `d(a, b) = arccos(⟨a,b⟩ / (‖a‖‖b‖)) / π ∈ [0, 1]`.
///
/// Unlike raw "cosine distance" (`1 - cos`), the angle itself satisfies
/// the triangle inequality on the unit sphere, so this is a genuine
/// metric and safe for every algorithm in the workspace. Zero vectors are
/// treated as at angle 0 from everything (a documented convention; feed
/// non-degenerate data for meaningful results).
#[derive(Clone, Copy, Debug, Default)]
pub struct Angular;

impl Metric for Angular {
    type Point = EuclidPoint;

    #[inline]
    fn dist(&self, a: &EuclidPoint, b: &EuclidPoint) -> f64 {
        let (xs, ys) = (a.coords(), b.coords());
        debug_assert_eq!(xs.len(), ys.len(), "dimension mismatch");
        let mut na = 0.0;
        let mut nb = 0.0;
        for (x, y) in xs.iter().zip(ys) {
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        // Kahan's stable angle: 2·atan2(‖â−b̂‖, ‖â+b̂‖) over the unit-
        // normalized vectors. Exactly 0 for identical inputs and accurate
        // for tiny angles, unlike acos of a clamped cosine.
        let (na, nb) = (na.sqrt(), nb.sqrt());
        let mut diff = 0.0;
        let mut sum = 0.0;
        for (x, y) in xs.iter().zip(ys) {
            let (u, v) = (x / na, y / nb);
            diff += (u - v) * (u - v);
            sum += (u + v) * (u + v);
        }
        2.0 * diff.sqrt().atan2(sum.sqrt()) / std::f64::consts::PI
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(v: &[f64]) -> EuclidPoint {
        EuclidPoint::new(v.to_vec())
    }

    #[test]
    fn euclidean_345() {
        let m = Euclidean;
        assert!((m.dist(&p(&[0.0, 0.0]), &p(&[3.0, 4.0])) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        let a = p(&[0.0, 0.0]);
        let b = p(&[3.0, -4.0]);
        assert!((Manhattan.dist(&a, &b) - 7.0).abs() < 1e-12);
        assert!((Chebyshev.dist(&a, &b) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn angular_basics() {
        let m = Angular;
        let e1 = p(&[1.0, 0.0]);
        let e2 = p(&[0.0, 1.0]);
        let neg = p(&[-1.0, 0.0]);
        let scaled = p(&[5.0, 0.0]);
        assert!((m.dist(&e1, &e2) - 0.5).abs() < 1e-12, "orthogonal = 1/2");
        assert!((m.dist(&e1, &neg) - 1.0).abs() < 1e-12, "opposite = 1");
        assert_eq!(m.dist(&e1, &scaled), 0.0, "scale invariant");
        let zero = p(&[0.0, 0.0]);
        assert_eq!(m.dist(&zero, &e1), 0.0, "zero-vector convention");
    }

    #[test]
    fn dist_to_set_empty_is_infinite() {
        let m = Euclidean;
        let a = p(&[0.0]);
        assert_eq!(m.dist_to_set(&a, std::iter::empty()), f64::INFINITY);
    }

    #[test]
    fn dist_to_set_picks_minimum() {
        let m = Euclidean;
        let a = p(&[0.0]);
        let set = [p(&[5.0]), p(&[2.0]), p(&[-1.0])];
        assert!((m.dist_to_set(&a, set.iter()) - 1.0).abs() < 1e-12);
    }

    fn arb_point(dim: usize) -> impl Strategy<Value = EuclidPoint> {
        proptest::collection::vec(-1e3..1e3f64, dim).prop_map(EuclidPoint::new)
    }

    macro_rules! metric_axiom_tests {
        ($name:ident, $metric:expr) => {
            mod $name {
                use super::*;

                proptest! {
                    #[test]
                    fn symmetry(a in arb_point(4), b in arb_point(4)) {
                        let m = $metric;
                        prop_assert!((m.dist(&a, &b) - m.dist(&b, &a)).abs() < 1e-9);
                    }

                    #[test]
                    fn identity(a in arb_point(4)) {
                        // ≤ 1e-9 rather than == 0: Angular goes through
                        // acos, which can leave a few ulps of residue.
                        let m = $metric;
                        prop_assert!(m.dist(&a, &a) <= 1e-9);
                    }

                    #[test]
                    fn non_negative(a in arb_point(4), b in arb_point(4)) {
                        let m = $metric;
                        prop_assert!(m.dist(&a, &b) >= 0.0);
                    }

                    #[test]
                    fn triangle(a in arb_point(4), b in arb_point(4), c in arb_point(4)) {
                        let m = $metric;
                        prop_assert!(m.dist(&a, &c) <= m.dist(&a, &b) + m.dist(&b, &c) + 1e-7);
                    }
                }
            }
        };
    }

    metric_axiom_tests!(euclidean_axioms, Euclidean);
    metric_axiom_tests!(angular_axioms, Angular);
    metric_axiom_tests!(manhattan_axioms, Manhattan);
    metric_axiom_tests!(chebyshev_axioms, Chebyshev);

    proptest! {
        #[test]
        fn norm_ordering(a in arb_point(6), b in arb_point(6)) {
            // L∞ ≤ L2 ≤ L1 for any pair of points.
            let linf = Chebyshev.dist(&a, &b);
            let l2 = Euclidean.dist(&a, &b);
            let l1 = Manhattan.dist(&a, &b);
            prop_assert!(linf <= l2 + 1e-9);
            prop_assert!(l2 <= l1 + 1e-9);
        }
    }
}

//! The distance-oracle trait and the concrete metrics used in the
//! experiments.

use crate::kernel::{CoresetView, KernelMode, SoaBlock32};
use crate::point::EuclidPoint;

/// A metric space: a point type plus a distance oracle.
///
/// All algorithms in the workspace — the sequential baselines of
/// `fairsw-sequential` and the sliding-window algorithm of `fairsw-core` —
/// are generic over this trait, mirroring the paper's generality ("general
/// metric spaces"). Implementations must satisfy the metric axioms
/// (non-negativity, identity, symmetry, triangle inequality); the property
/// tests in this crate spot-check them for the bundled metrics.
pub trait Metric: Clone {
    /// The point type of the space. The [`PointFootprint`] bound feeds
    /// the byte-level memory accounting; its default implementation
    /// (inline size only) makes custom point types a one-line impl.
    ///
    /// [`PointFootprint`]: crate::store::PointFootprint
    type Point: Clone + std::fmt::Debug + crate::store::PointFootprint;

    /// The distance between two points. Must be finite and `>= 0`.
    fn dist(&self, a: &Self::Point, b: &Self::Point) -> f64;

    /// Distance from `p` to the closest of `set`, or `f64::INFINITY` when
    /// `set` is empty. Convenience used by every clustering routine.
    fn dist_to_set<'a, I>(&self, p: &Self::Point, set: I) -> f64
    where
        I: IntoIterator<Item = &'a Self::Point>,
        Self::Point: 'a,
    {
        let mut best = f64::INFINITY;
        for q in set {
            let d = self.dist(p, q);
            if d < best {
                best = d;
            }
        }
        best
    }

    /// Stages a freshly gathered [`CoresetView`] into whatever block
    /// layout this metric's batched kernels consume.
    ///
    /// The default stages nothing: the kernels then fall back to per-row
    /// scalar [`dist`](Self::dist) calls over the view's point clones.
    /// The bundled coordinate metrics override this to fill the view's
    /// columnar [`SoaBlock`](crate::SoaBlock) mirror, which their
    /// hand-tuned kernels stream with unit stride.
    #[inline]
    fn stage(&self, view: &mut CoresetView<Self::Point>) {
        let _ = view;
    }

    /// Batched one-to-many distances: writes
    /// `out[i] = dist(q, view[i])` for every staged point, **bit
    /// identical** to the scalar [`dist`](Self::dist) — same accumulation
    /// order per point, no squared-distance shortcuts. `out` is caller
    /// owned and must hold exactly `view.len()` slots.
    ///
    /// The default is the scalar fallback (one `dist` call per row);
    /// the bundled metrics override it with columnar kernels when the
    /// view carries a staged [`SoaBlock`](crate::SoaBlock).
    #[inline]
    fn dist_one_to_many(&self, q: &Self::Point, view: &CoresetView<Self::Point>, out: &mut [f64]) {
        debug_assert_eq!(out.len(), view.len(), "output block size mismatch");
        for (o, p) in out.iter_mut().zip(view.points()) {
            *o = self.dist(q, p);
        }
    }

    /// Batched many-to-many distances: writes the row-major matrix
    /// `out[i * cols.len() + j] = dist(rows[i], cols[j])`, bit-identical
    /// to scalar [`dist`](Self::dist) per pair. `out` is caller owned
    /// and must hold exactly `rows.len() * cols.len()` slots.
    ///
    /// The default forwards each row through
    /// [`dist_one_to_many`](Self::dist_one_to_many), which is already the
    /// cache-friendly shape when that kernel is columnar.
    #[inline]
    fn dist_many_to_many(
        &self,
        rows: &CoresetView<Self::Point>,
        cols: &CoresetView<Self::Point>,
        out: &mut [f64],
    ) {
        debug_assert_eq!(
            out.len(),
            rows.len() * cols.len(),
            "output block size mismatch"
        );
        let width = cols.len();
        for (i, q) in rows.points().iter().enumerate() {
            self.dist_one_to_many(q, cols, &mut out[i * width..(i + 1) * width]);
        }
    }

    /// Like [`dist_one_to_many`](Self::dist_one_to_many) but **always**
    /// bit-identical to scalar [`dist`](Self::dist), regardless of the
    /// view's staged [`KernelMode`]. This is the exact re-rank hook:
    /// when a query ran its candidate scans in a relaxed mode (SIMD or
    /// the compact `f32` mirror), the final radius over the surviving
    /// candidate set is recomputed through this method, so reported
    /// radii always carry full `f64` semantics.
    ///
    /// The default is the scalar per-row fallback; the bundled metrics
    /// override it to use their exact tiled kernels whenever the `f64`
    /// columnar mirror is staged.
    #[inline]
    fn dist_one_to_many_exact(
        &self,
        q: &Self::Point,
        view: &CoresetView<Self::Point>,
        out: &mut [f64],
    ) {
        debug_assert_eq!(out.len(), view.len(), "output block size mismatch");
        for (o, p) in out.iter_mut().zip(view.points()) {
            *o = self.dist(q, p);
        }
    }
}

/// Per-engine answer-precision contract, plumbed from
/// [`EngineBuilder`](https://docs.rs/fairsw-core) / the serve tenant
/// config down to the kernels via the [`Relaxed`] metric wrapper.
///
/// * [`Exact`](Exactness::Exact) (the default): only the scalar tiled
///   kernels run; every answer is bit-identical to the pre-SIMD seed
///   semantics. All differential suites assert under this mode.
/// * [`Approx`](Exactness::Approx): the runtime-dispatched SIMD kernels
///   (and optionally the compact `f32` staging mirror) may run. The
///   engine's answers must stay within the paper's `(1+ε)` radius
///   envelope — candidate *selection* may tie-break differently, but
///   the final radius is re-ranked exactly
///   ([`Metric::dist_one_to_many_exact`]) and the reported guess/radius
///   stay within `(1+ε)` of the exact-mode answer. The `epsilon` field
///   records the envelope the caller promises to tolerate; it is a
///   contract parameter (checked by the quality-delta suites), not a
///   kernel input.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Exactness {
    /// Bit-identical scalar kernels (the default everywhere).
    #[default]
    Exact,
    /// SIMD kernels allowed; answers within the `(1+ε)` envelope.
    Approx {
        /// The tolerated relative radius slack.
        epsilon: f64,
    },
}

impl Exactness {
    /// Whether this is the bit-identical mode.
    #[inline]
    pub fn is_exact(self) -> bool {
        matches!(self, Exactness::Exact)
    }

    /// The tolerated relative slack (`0.0` in exact mode).
    #[inline]
    pub fn epsilon(self) -> f64 {
        match self {
            Exactness::Exact => 0.0,
            Exactness::Approx { epsilon } => epsilon,
        }
    }
}

/// A metric wrapper carrying the engine's [`Exactness`] mode down to
/// the kernels.
///
/// Every staging site in the workspace funnels through
/// [`Metric::stage`] (the `CoresetView::gather*` family calls it after
/// collecting rows), so stamping the mode there propagates it to every
/// solver and query path with no per-call-site plumbing: `stage` sets
/// the view's [`KernelMode`] and then delegates to the inner metric,
/// whose kernels dispatch on the stamped mode. A plain (unwrapped)
/// metric never stamps anything, so existing code stays on the exact
/// path untouched.
///
/// With [`compact staging`](Self::with_compact_staging) enabled (and an
/// `Approx` mode), the bundled coordinate metrics stage the `f32`
/// mirror [`SoaBlock32`] *instead of* the `f64` block — halving staged
/// coreset bytes and doubling lanes per vector register — and the
/// `f32` kernels run; exact `f64` re-rank still flows through
/// [`Metric::dist_one_to_many_exact`] over the row clones.
#[derive(Clone, Copy, Debug, Default)]
pub struct Relaxed<M> {
    inner: M,
    mode: Exactness,
    compact: bool,
}

impl<M> Relaxed<M> {
    /// Wraps `inner` with the given exactness mode (no compact
    /// staging).
    pub fn new(inner: M, mode: Exactness) -> Self {
        Relaxed {
            inner,
            mode,
            compact: false,
        }
    }

    /// Wraps `inner` in exact mode — behaviorally identical to the bare
    /// metric; useful where an engine type is fixed to `Relaxed<M>`.
    pub fn exact(inner: M) -> Self {
        Self::new(inner, Exactness::Exact)
    }

    /// Enables (or disables) the compact `f32` staging mirror. Only
    /// takes effect in `Approx` mode; exact mode always stages `f64`.
    pub fn with_compact_staging(mut self, compact: bool) -> Self {
        self.compact = compact;
        self
    }

    /// The wrapped metric.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The exactness mode this wrapper stamps at staging time.
    pub fn exactness(&self) -> Exactness {
        self.mode
    }

    /// Whether compact `f32` staging is enabled.
    pub fn compact_staging(&self) -> bool {
        self.compact
    }
}

impl<M: Metric> Metric for Relaxed<M> {
    type Point = M::Point;

    #[inline]
    fn dist(&self, a: &M::Point, b: &M::Point) -> f64 {
        self.inner.dist(a, b)
    }

    #[inline]
    fn dist_to_set<'a, I>(&self, p: &M::Point, set: I) -> f64
    where
        I: IntoIterator<Item = &'a M::Point>,
        M::Point: 'a,
    {
        self.inner.dist_to_set(p, set)
    }

    #[inline]
    fn stage(&self, view: &mut CoresetView<M::Point>) {
        view.set_mode(match (self.mode, self.compact) {
            (Exactness::Exact, _) => KernelMode::Exact,
            (Exactness::Approx { .. }, false) => KernelMode::Simd,
            (Exactness::Approx { .. }, true) => KernelMode::SimdF32,
        });
        self.inner.stage(view);
    }

    #[inline]
    fn dist_one_to_many(&self, q: &M::Point, view: &CoresetView<M::Point>, out: &mut [f64]) {
        // The view carries the stamped mode; the inner metric's kernels
        // dispatch on it.
        self.inner.dist_one_to_many(q, view, out);
    }

    #[inline]
    fn dist_many_to_many(
        &self,
        rows: &CoresetView<M::Point>,
        cols: &CoresetView<M::Point>,
        out: &mut [f64],
    ) {
        self.inner.dist_many_to_many(rows, cols, out);
    }

    #[inline]
    fn dist_one_to_many_exact(&self, q: &M::Point, view: &CoresetView<M::Point>, out: &mut [f64]) {
        self.inner.dist_one_to_many_exact(q, view, out);
    }
}

/// Stages the coordinate columns of a view of [`EuclidPoint`]s — the
/// shared [`Metric::stage`] body of the four bundled metrics. Views with
/// ragged dimensions are left unstaged (the kernels then use the scalar
/// fallback, whose per-pair `debug_assert` reports the mismatch).
///
/// In the compact [`KernelMode::SimdF32`] mode the `f32` mirror is
/// staged *instead of* the `f64` block — half the staged bytes; the
/// exact re-rank path then falls back to the row clones.
fn stage_euclid(view: &mut CoresetView<EuclidPoint>) {
    let Some(first) = view.points().first() else {
        return;
    };
    let dim = first.dim();
    if view.points().iter().any(|p| p.dim() != dim) {
        return;
    }
    // Move the block out to appease the borrow checker: `stage_rows`
    // reads the rows while writing the columns.
    if view.mode() == KernelMode::SimdF32 {
        let mut soa32 = std::mem::take(view.soa32_mut());
        soa32.stage_rows(
            dim,
            view.points()
                .iter()
                .map(|p| p.coords().iter().map(|&x| x as f32)),
        );
        *view.soa32_mut() = soa32;
    } else {
        let mut soa = std::mem::take(view.soa_mut());
        soa.stage_rows(dim, view.points().iter().map(EuclidPoint::coords));
        *view.soa_mut() = soa;
    }
}

use crate::kernel::LANES;

/// The scalar fallback body shared by the hand-tuned kernels for views
/// the metric did not stage (ragged dimensions).
pub(crate) fn scalar_one_to_many<M: Metric>(
    metric: &M,
    q: &M::Point,
    view: &CoresetView<M::Point>,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), view.len(), "output block size mismatch");
    for (o, p) in out.iter_mut().zip(view.points()) {
        *o = metric.dist(q, p);
    }
}

/// Register-tiled columnar reduction shared by the L1/L2/L∞ kernels:
/// for each [`LANES`]-wide tile, `step` folds coordinate `d` of every
/// lane into its accumulator (ascending-dimension order per point —
/// exactly the scalar loop, so no floating-point reassociation), then
/// `finish` post-processes the accumulator. The tile walk is one linear
/// pass over the staged buffer; padding lanes are computed and
/// discarded.
#[inline(always)]
fn tiled_kernel(
    q: &[f64],
    soa: &crate::kernel::SoaBlock,
    out: &mut [f64],
    init: f64,
    step: impl Fn(f64, f64, f64) -> f64,
    finish: impl Fn(f64) -> f64,
) {
    debug_assert_eq!(q.len(), soa.dim(), "dimension mismatch");
    let n = soa.len();
    for t in 0..soa.tiles() {
        let tile = soa.tile(t);
        let mut acc = [init; LANES];
        for (d, &qd) in q.iter().enumerate() {
            let lanes = &tile[d * LANES..(d + 1) * LANES];
            for (a, &x) in acc.iter_mut().zip(lanes) {
                *a = step(*a, qd, x);
            }
        }
        let start = t * LANES;
        let w = LANES.min(n - start);
        for (o, &a) in out[start..start + w].iter_mut().zip(&acc) {
            *o = finish(a);
        }
    }
}

/// Columnar L2 kernel: squared differences accumulate per point in
/// ascending-dimension order, then one square root — bit-identical to
/// the scalar loop.
pub(crate) fn l2_kernel(q: &[f64], soa: &crate::kernel::SoaBlock, out: &mut [f64]) {
    tiled_kernel(
        q,
        soa,
        out,
        0.0,
        |acc, qd, x| {
            let diff = qd - x;
            acc + diff * diff
        },
        f64::sqrt,
    );
}

/// Columnar L1 kernel (absolute differences summed in
/// ascending-dimension order).
pub(crate) fn l1_kernel(q: &[f64], soa: &crate::kernel::SoaBlock, out: &mut [f64]) {
    tiled_kernel(q, soa, out, 0.0, |acc, qd, x| acc + (qd - x).abs(), |a| a);
}

/// Columnar L∞ kernel (running maximum per point, ascending-dimension
/// order with the same `max(acc, |diff|)` argument order as the scalar
/// fold).
pub(crate) fn linf_kernel(q: &[f64], soa: &crate::kernel::SoaBlock, out: &mut [f64]) {
    tiled_kernel(
        q,
        soa,
        out,
        0.0,
        |acc, qd, x| f64::max(acc, (qd - x).abs()),
        |a| a,
    );
}

/// Tiled columnar angular kernel. Per tile, one pass accumulates the
/// candidate norms, a second accumulates the Kahan angle's `‖â−b̂‖²` /
/// `‖â+b̂‖²` sums (the tile stays resident in L1 between the passes).
/// All per-point accumulation runs in ascending-dimension order with
/// the exact scalar operations (including the `x / ‖a‖` normalizing
/// divisions), so results are bit-identical; zero-norm candidates are
/// masked to the scalar path's `0.0` convention.
pub(crate) fn angular_kernel(q: &[f64], soa: &crate::kernel::SoaBlock, out: &mut [f64]) {
    debug_assert_eq!(q.len(), soa.dim(), "dimension mismatch");
    let mut na = 0.0;
    for &x in q {
        na += x * x;
    }
    if na == 0.0 {
        out.fill(0.0);
        return;
    }
    let na = na.sqrt();
    let n = soa.len();
    for t in 0..soa.tiles() {
        let tile = soa.tile(t);
        let mut nb_sq = [0.0f64; LANES];
        for d in 0..soa.dim() {
            let lanes = &tile[d * LANES..(d + 1) * LANES];
            for (acc, &y) in nb_sq.iter_mut().zip(lanes) {
                *acc += y * y;
            }
        }
        let mut nb = [0.0f64; LANES];
        for (b, &sq) in nb.iter_mut().zip(&nb_sq) {
            *b = sq.sqrt();
        }
        let mut diff = [0.0f64; LANES];
        let mut sum = [0.0f64; LANES];
        for (d, &qd) in q.iter().enumerate() {
            let u = qd / na;
            let lanes = &tile[d * LANES..(d + 1) * LANES];
            for j in 0..LANES {
                // Zero-norm candidates (and padding lanes) divide 0/0
                // here; the NaNs are masked below, matching the scalar
                // convention.
                let v = lanes[j] / nb[j];
                let dv = u - v;
                let sv = u + v;
                diff[j] += dv * dv;
                sum[j] += sv * sv;
            }
        }
        let start = t * LANES;
        let w = LANES.min(n - start);
        for j in 0..w {
            out[start + j] = if nb_sq[j] == 0.0 {
                0.0
            } else {
                2.0 * diff[j].sqrt().atan2(sum[j].sqrt()) / std::f64::consts::PI
            };
        }
    }
}

/// The shared `dist_one_to_many` dispatch of the four bundled metrics:
/// the view's stamped [`KernelMode`] picks the kernel family — exact
/// tiled, runtime-dispatched `f64` SIMD, or compact `f32` — and views
/// without the matching staged mirror fall back to the scalar per-row
/// loop.
#[inline(always)]
fn euclid_dispatch<M: Metric<Point = EuclidPoint>>(
    metric: &M,
    q: &EuclidPoint,
    view: &CoresetView<EuclidPoint>,
    out: &mut [f64],
    exact: fn(&[f64], &crate::kernel::SoaBlock, &mut [f64]),
    simd: fn(&[f64], &crate::kernel::SoaBlock, &mut [f64]),
    simd32: fn(&[f32], &SoaBlock32, &mut [f64]),
) {
    debug_assert_eq!(out.len(), view.len(), "output block size mismatch");
    match view.mode() {
        KernelMode::Exact => match view.soa() {
            Some(soa) => exact(q.coords(), soa, out),
            None => scalar_one_to_many(metric, q, view, out),
        },
        KernelMode::Simd => match view.soa() {
            Some(soa) => simd(q.coords(), soa, out),
            None => scalar_one_to_many(metric, q, view, out),
        },
        KernelMode::SimdF32 => match view.soa32() {
            Some(b) => {
                crate::simd::with_q32(q.coords().iter().map(|&x| x as f32), |q32| {
                    simd32(q32, b, out)
                });
            }
            None => scalar_one_to_many(metric, q, view, out),
        },
    }
}

/// The shared `dist_one_to_many_exact` body of the four bundled
/// metrics: the exact tiled kernel when the `f64` mirror is staged, the
/// scalar per-row loop otherwise (compact-staged or unstaged views).
#[inline(always)]
fn euclid_exact<M: Metric<Point = EuclidPoint>>(
    metric: &M,
    q: &EuclidPoint,
    view: &CoresetView<EuclidPoint>,
    out: &mut [f64],
    exact: fn(&[f64], &crate::kernel::SoaBlock, &mut [f64]),
) {
    debug_assert_eq!(out.len(), view.len(), "output block size mismatch");
    match view.soa() {
        Some(soa) => exact(q.coords(), soa, out),
        None => scalar_one_to_many(metric, q, view, out),
    }
}

/// The Euclidean (L2) metric on [`EuclidPoint`]s. Used by every experiment
/// in the paper.
#[derive(Clone, Copy, Debug, Default)]
pub struct Euclidean;

impl Metric for Euclidean {
    type Point = EuclidPoint;

    #[inline]
    fn dist(&self, a: &EuclidPoint, b: &EuclidPoint) -> f64 {
        let (xs, ys) = (a.coords(), b.coords());
        debug_assert_eq!(xs.len(), ys.len(), "dimension mismatch");
        let mut acc = 0.0;
        for (x, y) in xs.iter().zip(ys) {
            let d = x - y;
            acc += d * d;
        }
        acc.sqrt()
    }

    #[inline]
    fn stage(&self, view: &mut CoresetView<EuclidPoint>) {
        stage_euclid(view);
    }

    /// Columnar L2 kernel over the staged mirror: bit-identical to
    /// per-pair [`dist`](Metric::dist) on exact-mode views, the
    /// runtime-dispatched SIMD / compact kernels on relaxed views.
    fn dist_one_to_many(&self, q: &EuclidPoint, view: &CoresetView<EuclidPoint>, out: &mut [f64]) {
        euclid_dispatch(
            self,
            q,
            view,
            out,
            l2_kernel,
            crate::simd::l2_f64,
            crate::simd::l2_f32,
        );
    }

    fn dist_one_to_many_exact(
        &self,
        q: &EuclidPoint,
        view: &CoresetView<EuclidPoint>,
        out: &mut [f64],
    ) {
        euclid_exact(self, q, view, out, l2_kernel);
    }
}

/// The Manhattan (L1) metric on [`EuclidPoint`]s.
#[derive(Clone, Copy, Debug, Default)]
pub struct Manhattan;

impl Metric for Manhattan {
    type Point = EuclidPoint;

    #[inline]
    fn dist(&self, a: &EuclidPoint, b: &EuclidPoint) -> f64 {
        let (xs, ys) = (a.coords(), b.coords());
        debug_assert_eq!(xs.len(), ys.len(), "dimension mismatch");
        xs.iter().zip(ys).map(|(x, y)| (x - y).abs()).sum()
    }

    #[inline]
    fn stage(&self, view: &mut CoresetView<EuclidPoint>) {
        stage_euclid(view);
    }

    /// Columnar L1 kernel over the staged mirror (the `f64` SIMD
    /// variant stays bit-identical even in relaxed mode — add/abs have
    /// no fused rounding).
    fn dist_one_to_many(&self, q: &EuclidPoint, view: &CoresetView<EuclidPoint>, out: &mut [f64]) {
        euclid_dispatch(
            self,
            q,
            view,
            out,
            l1_kernel,
            crate::simd::l1_f64,
            crate::simd::l1_f32,
        );
    }

    fn dist_one_to_many_exact(
        &self,
        q: &EuclidPoint,
        view: &CoresetView<EuclidPoint>,
        out: &mut [f64],
    ) {
        euclid_exact(self, q, view, out, l1_kernel);
    }
}

/// The Chebyshev (L∞) metric on [`EuclidPoint`]s.
#[derive(Clone, Copy, Debug, Default)]
pub struct Chebyshev;

impl Metric for Chebyshev {
    type Point = EuclidPoint;

    #[inline]
    fn dist(&self, a: &EuclidPoint, b: &EuclidPoint) -> f64 {
        let (xs, ys) = (a.coords(), b.coords());
        debug_assert_eq!(xs.len(), ys.len(), "dimension mismatch");
        xs.iter()
            .zip(ys)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[inline]
    fn stage(&self, view: &mut CoresetView<EuclidPoint>) {
        stage_euclid(view);
    }

    /// Columnar L∞ kernel over the staged mirror (the `f64` SIMD
    /// variant stays bit-identical even in relaxed mode — abs/max have
    /// no fused rounding).
    fn dist_one_to_many(&self, q: &EuclidPoint, view: &CoresetView<EuclidPoint>, out: &mut [f64]) {
        euclid_dispatch(
            self,
            q,
            view,
            out,
            linf_kernel,
            crate::simd::linf_f64,
            crate::simd::linf_f32,
        );
    }

    fn dist_one_to_many_exact(
        &self,
        q: &EuclidPoint,
        view: &CoresetView<EuclidPoint>,
        out: &mut [f64],
    ) {
        euclid_exact(self, q, view, out, linf_kernel);
    }
}

/// The angular (normalized cosine) metric on [`EuclidPoint`]s:
/// `d(a, b) = arccos(⟨a,b⟩ / (‖a‖‖b‖)) / π ∈ [0, 1]`.
///
/// Unlike raw "cosine distance" (`1 - cos`), the angle itself satisfies
/// the triangle inequality on the unit sphere, so this is a genuine
/// metric and safe for every algorithm in the workspace. Zero vectors are
/// treated as at angle 0 from everything (a documented convention; feed
/// non-degenerate data for meaningful results).
#[derive(Clone, Copy, Debug, Default)]
pub struct Angular;

impl Metric for Angular {
    type Point = EuclidPoint;

    #[inline]
    fn dist(&self, a: &EuclidPoint, b: &EuclidPoint) -> f64 {
        let (xs, ys) = (a.coords(), b.coords());
        debug_assert_eq!(xs.len(), ys.len(), "dimension mismatch");
        let mut na = 0.0;
        let mut nb = 0.0;
        for (x, y) in xs.iter().zip(ys) {
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        // Kahan's stable angle: 2·atan2(‖â−b̂‖, ‖â+b̂‖) over the unit-
        // normalized vectors. Exactly 0 for identical inputs and accurate
        // for tiny angles, unlike acos of a clamped cosine.
        let (na, nb) = (na.sqrt(), nb.sqrt());
        let mut diff = 0.0;
        let mut sum = 0.0;
        for (x, y) in xs.iter().zip(ys) {
            let (u, v) = (x / na, y / nb);
            diff += (u - v) * (u - v);
            sum += (u + v) * (u + v);
        }
        2.0 * diff.sqrt().atan2(sum.sqrt()) / std::f64::consts::PI
    }

    #[inline]
    fn stage(&self, view: &mut CoresetView<EuclidPoint>) {
        stage_euclid(view);
    }

    /// Tiled columnar angle kernel over the staged mirror; exact-mode
    /// views reproduce per-pair [`dist`](Metric::dist) bit for bit,
    /// including the zero-vector convention (which the relaxed kernels
    /// preserve too).
    fn dist_one_to_many(&self, q: &EuclidPoint, view: &CoresetView<EuclidPoint>, out: &mut [f64]) {
        euclid_dispatch(
            self,
            q,
            view,
            out,
            angular_kernel,
            crate::simd::angular_f64,
            crate::simd::angular_f32,
        );
    }

    fn dist_one_to_many_exact(
        &self,
        q: &EuclidPoint,
        view: &CoresetView<EuclidPoint>,
        out: &mut [f64],
    ) {
        euclid_exact(self, q, view, out, angular_kernel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(v: &[f64]) -> EuclidPoint {
        EuclidPoint::new(v.to_vec())
    }

    #[test]
    fn euclidean_345() {
        let m = Euclidean;
        assert!((m.dist(&p(&[0.0, 0.0]), &p(&[3.0, 4.0])) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        let a = p(&[0.0, 0.0]);
        let b = p(&[3.0, -4.0]);
        assert!((Manhattan.dist(&a, &b) - 7.0).abs() < 1e-12);
        assert!((Chebyshev.dist(&a, &b) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn angular_basics() {
        let m = Angular;
        let e1 = p(&[1.0, 0.0]);
        let e2 = p(&[0.0, 1.0]);
        let neg = p(&[-1.0, 0.0]);
        let scaled = p(&[5.0, 0.0]);
        assert!((m.dist(&e1, &e2) - 0.5).abs() < 1e-12, "orthogonal = 1/2");
        assert!((m.dist(&e1, &neg) - 1.0).abs() < 1e-12, "opposite = 1");
        assert_eq!(m.dist(&e1, &scaled), 0.0, "scale invariant");
        let zero = p(&[0.0, 0.0]);
        assert_eq!(m.dist(&zero, &e1), 0.0, "zero-vector convention");
    }

    #[test]
    fn dist_to_set_empty_is_infinite() {
        let m = Euclidean;
        let a = p(&[0.0]);
        assert_eq!(m.dist_to_set(&a, std::iter::empty()), f64::INFINITY);
    }

    #[test]
    fn dist_to_set_picks_minimum() {
        let m = Euclidean;
        let a = p(&[0.0]);
        let set = [p(&[5.0]), p(&[2.0]), p(&[-1.0])];
        assert!((m.dist_to_set(&a, set.iter()) - 1.0).abs() < 1e-12);
    }

    fn arb_point(dim: usize) -> impl Strategy<Value = EuclidPoint> {
        proptest::collection::vec(-1e3..1e3f64, dim).prop_map(EuclidPoint::new)
    }

    /// `n` random points sharing one random dimension in 1..16 — the
    /// axiom tests run across dimensionalities, not just a fixed one.
    fn arb_points_same_dim(n: usize) -> impl Strategy<Value = Vec<EuclidPoint>> {
        (1usize..16).prop_flat_map(move |dim| proptest::collection::vec(arb_point(dim), n))
    }

    macro_rules! metric_axiom_tests {
        ($name:ident, $metric:expr) => {
            mod $name {
                use super::*;

                proptest! {
                    #[test]
                    fn symmetry(pts in arb_points_same_dim(2)) {
                        let m = $metric;
                        let (a, b) = (&pts[0], &pts[1]);
                        prop_assert!((m.dist(a, b) - m.dist(b, a)).abs() < 1e-9);
                    }

                    #[test]
                    fn identity(pts in arb_points_same_dim(1)) {
                        // ≤ 1e-9 rather than == 0: Angular goes through
                        // acos, which can leave a few ulps of residue.
                        let m = $metric;
                        prop_assert!(m.dist(&pts[0], &pts[0]) <= 1e-9);
                    }

                    #[test]
                    fn non_negative(pts in arb_points_same_dim(2)) {
                        let m = $metric;
                        prop_assert!(m.dist(&pts[0], &pts[1]) >= 0.0);
                    }

                    #[test]
                    fn triangle(pts in arb_points_same_dim(3)) {
                        let m = $metric;
                        let (a, b, c) = (&pts[0], &pts[1], &pts[2]);
                        prop_assert!(m.dist(a, c) <= m.dist(a, b) + m.dist(b, c) + 1e-7);
                    }
                }
            }
        };
    }

    metric_axiom_tests!(euclidean_axioms, Euclidean);
    metric_axiom_tests!(angular_axioms, Angular);
    metric_axiom_tests!(manhattan_axioms, Manhattan);
    metric_axiom_tests!(chebyshev_axioms, Chebyshev);

    proptest! {
        #[test]
        fn norm_ordering(a in arb_point(6), b in arb_point(6)) {
            // L∞ ≤ L2 ≤ L1 for any pair of points.
            let linf = Chebyshev.dist(&a, &b);
            let l2 = Euclidean.dist(&a, &b);
            let l1 = Manhattan.dist(&a, &b);
            prop_assert!(linf <= l2 + 1e-9);
            prop_assert!(l2 <= l1 + 1e-9);
        }
    }
}

//! Metric-space substrate for the `fairsw` workspace.
//!
//! The paper ("Fair Center Clustering in Sliding Windows") is stated for
//! *general* metric spaces: the algorithms only ever interact with the
//! input through a pairwise distance function, a color label per point and
//! the arrival order. This crate provides:
//!
//! * [`Metric`] — the distance-oracle trait every algorithm in the
//!   workspace is generic over;
//! * [`EuclidPoint`] plus the concrete [`Euclidean`], [`Manhattan`] and
//!   [`Chebyshev`] metrics used by the experiments;
//! * [`Colored`] — a point tagged with its fairness category;
//! * [`stats`] — exact and sampled estimates of the minimum/maximum
//!   pairwise distance and the aspect ratio `Δ = dmax/dmin` that define
//!   the guess set `Γ`;
//! * [`doubling`] — an empirical doubling-dimension estimator used by the
//!   experiment harness to relate coreset sizes to intrinsic
//!   dimensionality (the algorithm itself never needs it, per the paper);
//! * [`store`] — the interned [`PointStore`] arena: each live window
//!   point stored once, addressed by copyable 4-byte [`PointId`] handles
//!   with refcounted early reclaim plus window-expiry epoch GC;
//! * [`project`] — seeded Johnson–Lindenstrauss random projection
//!   ([`Projector`], dense Gaussian or sparse Achlioptas) that maps
//!   wide embedding streams to a compact dimension at ingest,
//!   bit-identically across SIMD ISAs;
//! * [`kernel`] — the batched distance layer: [`CoresetView`] gathers a
//!   candidate set once into a columnar (structure-of-arrays) block,
//!   [`DistScratch`]/[`ScratchPool`] make steady-state queries
//!   allocation-free, and the [`Metric`] block kernels
//!   ([`Metric::dist_one_to_many`], [`Metric::dist_many_to_many`])
//!   evaluate distances over the staged block bit-identically to scalar
//!   [`Metric::dist`].

pub mod compact;
pub mod doubling;
pub mod kernel;
pub mod metric;
pub mod point;
pub mod project;
pub mod simd;
pub mod stats;
pub mod store;

pub use compact::{CompactEuclidean, CompactPoint, Q8Euclidean, Q8Point};
pub use kernel::{
    packing_scan, CoresetView, DistScratch, KernelMode, ScratchPool, SoaBlock, SoaBlock32, LANES,
};
pub use metric::{Angular, Chebyshev, Euclidean, Exactness, Manhattan, Metric, Relaxed};
pub use point::{Colored, Coords, EuclidPoint};
pub use project::{Projectable, Projector, ProjectorKind};
pub use simd::{active_isa, Isa};
pub use stats::{aspect_ratio, pairwise_extremes, sampled_extremes, PairwiseExtremes};
pub use store::{ColoredId, PointFootprint, PointId, PointStore, Resolver};

//! Batched, cache-friendly distance staging: the columnar coreset view
//! and the reusable scratch behind the [`Metric`] block kernels.
//!
//! The query path of every sliding-window variant is distance-dominated:
//! the `2γ`-packing test and the coreset solvers evaluate `O(n·k)`
//! pairwise distances per guess, and before this layer each evaluation
//! chased an `Arc<[f64]>` pointer per point (the classic
//! array-of-structures bottleneck). This module turns those scattered
//! evaluations into block operations:
//!
//! * [`CoresetView`] gathers a candidate set **once** — from a point
//!   slice, a colored slice, or straight out of a
//!   [`PointStore`](crate::PointStore) [`Resolver`] — and asks the metric
//!   to *stage* it ([`Metric::stage`]). The bundled coordinate metrics
//!   stage a contiguous structure-of-arrays mirror ([`SoaBlock`]) so
//!   their hand-tuned kernels stream columns instead of chasing
//!   pointers; metrics without a columnar form keep the row clones and
//!   fall back to per-pair scalar [`Metric::dist`].
//! * [`DistScratch`] bundles the view with the reusable `f64` buffers
//!   (kernel output, running minima) a query needs, so steady-state
//!   queries stage distances without allocating.
//! * [`ScratchPool`] checks scratches out to worker shards and back in,
//!   which is how the parallel query scan of `fairsw-core` gives every
//!   shard its own reusable buffers.
//!
//! ## Bit-identity contract
//!
//! Every kernel must produce **exactly** the scalar result:
//! `dist_one_to_many(q, view, out)` writes `out[i] == dist(q, view[i])`
//! bit for bit. The hand-tuned implementations keep the scalar
//! accumulation order per point (coordinates ascending, same operations)
//! and only interleave independent points, so no floating-point
//! reassociation occurs. Property tests in this crate compare every
//! kernel against scalar `dist` across dimensions 1–64, including empty
//! and singleton blocks.
//!
//! One caveat for custom metrics: the batched call sites fix which
//! operand plays the `q` role (e.g. a packing scan evaluates
//! member→candidates where the scalar loop evaluated
//! candidate→members), so exact replay of a pre-batching scalar scan
//! additionally assumes `dist(a, b)` and `dist(b, a)` agree **to the
//! bit**. All four bundled metrics do (their per-coordinate terms are
//! exactly symmetric); a custom metric that is symmetric only up to
//! rounding keeps the mathematical guarantees but may break ties
//! differently than a pointwise scan would.

use crate::metric::Metric;
use crate::point::Colored;
use crate::store::{ColoredId, PointId, Resolver};
use std::sync::Mutex;

/// Points per register tile of the columnar layout and kernels: one
/// cache line of `f64`s, small enough for per-lane accumulators to live
/// in SIMD registers.
pub const LANES: usize = 8;

/// One `f64` lane group: the [`LANES`] values a kernel folds per
/// (tile, dimension) step. `align(64)` pins every group — and therefore
/// every tile — to a cache-line boundary, so vector loads are aligned
/// and a group never straddles two lines.
#[derive(Clone, Copy, Debug, Default)]
#[repr(C, align(64))]
struct Lane64([f64; LANES]);

/// One `f32` lane group ([`LANES`] values, 32 bytes — exactly one
/// 256-bit vector register), aligned to its own size.
#[derive(Clone, Copy, Debug, Default)]
#[repr(C, align(32))]
struct Lane32([f32; LANES]);

/// A tiled columnar (structure-of-arrays) coordinate block: points are
/// grouped into tiles of [`LANES`], and within a tile the layout is
/// dimension-major (`tile[d * LANES + lane]`). A kernel therefore
/// streams the whole block **linearly** — one contiguous lane group per
/// (tile, dimension) — while keeping per-lane accumulators in
/// registers; a flat dimension-major layout would instead stride by the
/// block length and collide in the cache. (This "array of structures of
/// arrays" tiling is the layout under the hand-tuned kernels of the
/// bundled metrics.) The trailing partial tile is zero-padded; kernels
/// compute the padding lanes and discard them.
///
/// The backing storage is a vector of 64-byte-aligned lane groups, so
/// every (tile, dimension) group starts on a cache-line boundary and
/// the SIMD kernels of [`crate::simd`] always hit aligned loads.
#[derive(Clone, Debug, Default)]
pub struct SoaBlock {
    /// `ceil(len / LANES) * dim` lane groups, tile-major.
    cols: Vec<Lane64>,
    dim: usize,
    len: usize,
}

impl SoaBlock {
    /// Number of staged points (padding excluded).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the staged points.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of [`LANES`]-wide tiles (the last may be padded).
    #[inline]
    pub fn tiles(&self) -> usize {
        self.len.div_ceil(LANES)
    }

    /// The staged values as one flat slice (tile-major, dimension-major
    /// within a tile).
    #[inline]
    fn flat(&self) -> &[f64] {
        // SAFETY: `Lane64` is `repr(C)` over `[f64; LANES]` with size 64
        // and no padding, so a `Lane64` slice reinterprets soundly as a
        // `f64` slice of `LANES ×` the length.
        unsafe { std::slice::from_raw_parts(self.cols.as_ptr().cast(), self.cols.len() * LANES) }
    }

    #[inline]
    fn flat_mut(&mut self) -> &mut [f64] {
        // SAFETY: as in `flat`.
        unsafe {
            std::slice::from_raw_parts_mut(self.cols.as_mut_ptr().cast(), self.cols.len() * LANES)
        }
    }

    /// The `t`-th tile: `dim * LANES` values, dimension-major
    /// (`tile[d * LANES + lane]`), 64-byte aligned.
    #[inline]
    pub fn tile(&self, t: usize) -> &[f64] {
        let w = self.dim * LANES;
        &self.flat()[t * w..(t + 1) * w]
    }

    /// Coordinate `d` of point `i` (tests, diagnostics — kernels walk
    /// tiles directly).
    #[inline]
    pub fn coord(&self, d: usize, i: usize) -> f64 {
        self.flat()[(i / LANES) * self.dim * LANES + d * LANES + (i % LANES)]
    }

    /// Drops the staged columns, keeping the allocation.
    pub fn clear(&mut self) {
        self.cols.clear();
        self.dim = 0;
        self.len = 0;
    }

    /// Stages `rows` (one coordinate slice per point, all of equal
    /// dimension) into the tiled layout. Reuses the existing allocation.
    pub fn stage_rows<'a, I>(&mut self, dim: usize, rows: I)
    where
        I: IntoIterator<Item = &'a [f64]>,
        I::IntoIter: ExactSizeIterator,
    {
        let rows = rows.into_iter();
        let len = rows.len();
        self.dim = dim;
        self.len = len;
        self.cols.clear();
        self.cols
            .resize(len.div_ceil(LANES) * dim, Lane64::default());
        let flat = self.flat_mut();
        for (i, row) in rows.enumerate() {
            debug_assert_eq!(row.len(), dim, "ragged rows staged into SoaBlock");
            let base = (i / LANES) * dim * LANES + (i % LANES);
            for (d, &x) in row.iter().enumerate() {
                flat[base + d * LANES] = x;
            }
        }
    }
}

/// The `f32` twin of [`SoaBlock`]: same [`LANES`]-wide AoSoA tiling,
/// half the bytes per coordinate, so one 256-bit register holds a whole
/// lane group. Staged by the compact payload mirror (the
/// [`Approx`](crate::Exactness::Approx) compact-staging mode of
/// [`Relaxed`](crate::Relaxed) and the
/// [`CompactEuclidean`](crate::CompactEuclidean) /
/// [`Q8Euclidean`](crate::Q8Euclidean) metrics) and consumed by the
/// `f32` kernels of [`crate::simd`]. Exact-mode kernels widen each
/// stored `f32` to `f64` and accumulate in `f64`, which reproduces the
/// compact metrics' scalar `dist` bit for bit; approximate-mode kernels
/// accumulate natively in `f32`.
#[derive(Clone, Debug, Default)]
pub struct SoaBlock32 {
    /// `ceil(len / LANES) * dim` lane groups, tile-major.
    cols: Vec<Lane32>,
    dim: usize,
    len: usize,
}

impl SoaBlock32 {
    /// Number of staged points (padding excluded).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the staged points.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of [`LANES`]-wide tiles (the last may be padded).
    #[inline]
    pub fn tiles(&self) -> usize {
        self.len.div_ceil(LANES)
    }

    #[inline]
    fn flat(&self) -> &[f32] {
        // SAFETY: `Lane32` is `repr(C)` over `[f32; LANES]` with size 32
        // and no padding.
        unsafe { std::slice::from_raw_parts(self.cols.as_ptr().cast(), self.cols.len() * LANES) }
    }

    #[inline]
    fn flat_mut(&mut self) -> &mut [f32] {
        // SAFETY: as in `flat`.
        unsafe {
            std::slice::from_raw_parts_mut(self.cols.as_mut_ptr().cast(), self.cols.len() * LANES)
        }
    }

    /// The `t`-th tile: `dim * LANES` values, dimension-major
    /// (`tile[d * LANES + lane]`), 32-byte aligned.
    #[inline]
    pub fn tile(&self, t: usize) -> &[f32] {
        let w = self.dim * LANES;
        &self.flat()[t * w..(t + 1) * w]
    }

    /// Coordinate `d` of point `i` (tests, diagnostics).
    #[inline]
    pub fn coord(&self, d: usize, i: usize) -> f32 {
        self.flat()[(i / LANES) * self.dim * LANES + d * LANES + (i % LANES)]
    }

    /// Drops the staged columns, keeping the allocation.
    pub fn clear(&mut self) {
        self.cols.clear();
        self.dim = 0;
        self.len = 0;
    }

    /// Stages `rows` (one `f32` value iterator per point, all of equal
    /// dimension) into the tiled layout. Reuses the existing allocation.
    /// The per-row iterator shape lets callers stage narrowed `f64`
    /// coordinates, native `f32` coordinates, or decoded quantized codes
    /// without materializing intermediate rows.
    pub fn stage_rows<I, R>(&mut self, dim: usize, rows: I)
    where
        I: IntoIterator<Item = R>,
        I::IntoIter: ExactSizeIterator,
        R: IntoIterator<Item = f32>,
    {
        let rows = rows.into_iter();
        let len = rows.len();
        self.dim = dim;
        self.len = len;
        self.cols.clear();
        self.cols
            .resize(len.div_ceil(LANES) * dim, Lane32::default());
        let flat = self.flat_mut();
        for (i, row) in rows.enumerate() {
            let base = (i / LANES) * dim * LANES + (i % LANES);
            let mut staged = 0usize;
            for (d, x) in row.into_iter().enumerate() {
                flat[base + d * LANES] = x;
                staged += 1;
            }
            debug_assert_eq!(staged, dim, "ragged rows staged into SoaBlock32");
        }
    }
}

/// How a [`CoresetView`]'s batched kernels are allowed to compute —
/// stamped onto the view at [`Metric::stage`] time (the
/// [`Relaxed`](crate::Relaxed) wrapper sets it from its
/// [`Exactness`](crate::Exactness); plain metrics leave the default).
///
/// * [`Exact`](KernelMode::Exact) — scalar tiled kernels only,
///   bit-identical to per-pair [`Metric::dist`]. The default; every
///   differential suite that asserts byte equality runs here.
/// * [`Simd`](KernelMode::Simd) — the runtime-dispatched `f64` SIMD
///   kernels of [`crate::simd`] may run. FMA contraction changes L2 /
///   angular rounding by an ulp-scale amount.
/// * [`SimdF32`](KernelMode::SimdF32) — staging uses the compact `f32`
///   mirror ([`SoaBlock32`]) and kernels accumulate in `f32`; final
///   answers are expected to be re-ranked through
///   [`Metric::dist_one_to_many_exact`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelMode {
    /// Scalar tiled kernels, bit-identical to scalar `dist`.
    #[default]
    Exact,
    /// `f64` SIMD kernels allowed (ulp-scale FMA divergence).
    Simd,
    /// Compact `f32` staging and arithmetic (re-rank exact).
    SimdF32,
}

/// A staged set of candidate points for batched distance evaluation.
///
/// The view always owns row clones of the gathered points (cheap for the
/// `Arc`-backed [`EuclidPoint`](crate::EuclidPoint)) plus their colors
/// when gathered from colored sources; [`Metric::stage`] may additionally
/// fill the columnar [`SoaBlock`] mirror its kernels read. Gathering
/// through a [`Resolver`] touches the [`PointStore`](crate::PointStore)
/// exactly once per point — downstream kernel calls never go back to the
/// arena.
///
/// All buffers are retained across [`clear`](Self::clear)/regather
/// cycles, so a view embedded in a [`DistScratch`] reaches a steady
/// state where gathering allocates nothing.
#[derive(Clone, Debug)]
pub struct CoresetView<P> {
    points: Vec<P>,
    colors: Vec<u32>,
    soa: SoaBlock,
    soa32: SoaBlock32,
    mode: KernelMode,
}

impl<P> Default for CoresetView<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> CoresetView<P> {
    /// An empty view.
    pub fn new() -> Self {
        CoresetView {
            points: Vec::new(),
            colors: Vec::new(),
            soa: SoaBlock::default(),
            soa32: SoaBlock32::default(),
            mode: KernelMode::Exact,
        }
    }

    /// Number of staged points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the view holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The staged points (row order = gather order).
    #[inline]
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// The `i`-th staged point.
    #[inline]
    pub fn point(&self, i: usize) -> &P {
        &self.points[i]
    }

    /// The colors gathered alongside the points (empty when the view was
    /// gathered from an uncolored source).
    #[inline]
    pub fn colors(&self) -> &[u32] {
        &self.colors
    }

    /// The columnar mirror, when the metric staged one (`None` for
    /// metrics relying on the scalar fallback, and for empty views).
    #[inline]
    pub fn soa(&self) -> Option<&SoaBlock> {
        (self.soa.len() == self.points.len() && !self.points.is_empty()).then_some(&self.soa)
    }

    /// Mutable access to the columnar mirror — what [`Metric::stage`]
    /// implementations fill.
    #[inline]
    pub fn soa_mut(&mut self) -> &mut SoaBlock {
        &mut self.soa
    }

    /// The compact `f32` columnar mirror, when the metric staged one
    /// (`None` unless staging ran in a compact mode, and for empty
    /// views).
    #[inline]
    pub fn soa32(&self) -> Option<&SoaBlock32> {
        (self.soa32.len() == self.points.len() && !self.points.is_empty()).then_some(&self.soa32)
    }

    /// Mutable access to the compact `f32` mirror — what compact-mode
    /// [`Metric::stage`] implementations fill.
    #[inline]
    pub fn soa32_mut(&mut self) -> &mut SoaBlock32 {
        &mut self.soa32
    }

    /// The kernel mode stamped onto this view at staging time
    /// ([`KernelMode::Exact`] unless a relaxed metric staged it).
    #[inline]
    pub fn mode(&self) -> KernelMode {
        self.mode
    }

    /// Stamps the kernel mode — called by [`Metric::stage`]
    /// implementations (the [`Relaxed`](crate::Relaxed) wrapper) before
    /// filling the columnar mirrors.
    #[inline]
    pub fn set_mode(&mut self, mode: KernelMode) {
        self.mode = mode;
    }

    /// Drops the staged points, keeping every allocation. Resets the
    /// kernel mode to [`KernelMode::Exact`]; the next staging metric
    /// re-stamps it.
    pub fn clear(&mut self) {
        self.points.clear();
        self.colors.clear();
        self.soa.clear();
        self.soa32.clear();
        self.mode = KernelMode::Exact;
    }

    /// Gathers clones of `points` (no colors) and stages them for
    /// `metric`'s kernels.
    pub fn gather<'a, M>(&mut self, metric: &M, points: impl IntoIterator<Item = &'a P>)
    where
        M: Metric<Point = P>,
        P: Clone + 'a,
    {
        self.clear();
        self.points.extend(points.into_iter().cloned());
        metric.stage(self);
    }

    /// Gathers clones of `points` with their colors and stages them.
    pub fn gather_colored<'a, M>(
        &mut self,
        metric: &M,
        points: impl IntoIterator<Item = &'a Colored<P>>,
    ) where
        M: Metric<Point = P>,
        P: Clone + 'a,
    {
        self.clear();
        for c in points {
            self.points.push(c.point.clone());
            self.colors.push(c.color);
        }
        metric.stage(self);
    }

    /// Gathers the payloads behind `ids` out of the arena — one resolver
    /// pass — and stages them.
    pub fn gather_ids<M>(
        &mut self,
        metric: &M,
        res: Resolver<'_, P>,
        ids: impl IntoIterator<Item = PointId>,
    ) where
        M: Metric<Point = P>,
        P: Clone,
    {
        self.clear();
        self.points
            .extend(ids.into_iter().map(|id| res.get(id).clone()));
        metric.stage(self);
    }

    /// Gathers the payloads behind colored `ids` — one resolver pass —
    /// recording their colors, and stages them.
    pub fn gather_colored_ids<M>(
        &mut self,
        metric: &M,
        res: Resolver<'_, P>,
        ids: impl IntoIterator<Item = ColoredId>,
    ) where
        M: Metric<Point = P>,
        P: Clone,
    {
        self.clear();
        for c in ids {
            self.points.push(res.get(c.point).clone());
            self.colors.push(c.color);
        }
        metric.stage(self);
    }
}

/// The reusable per-worker buffers a batched query needs: a staged
/// [`CoresetView`] plus the `f64` working arrays the kernel call sites
/// share. Clearing retains capacity, so a scratch that has seen one
/// query stages the next without allocating.
#[derive(Clone, Debug)]
pub struct DistScratch<P> {
    /// The staged candidate set (regathered per query).
    pub view: CoresetView<P>,
    /// Kernel output buffer (one distance per staged point).
    pub dist: Vec<f64>,
    /// Running minima (distance-to-set scans).
    pub min_dist: Vec<f64>,
    /// Packed row indices ([`packing_scan`]).
    pub packed: Vec<usize>,
}

impl<P> Default for DistScratch<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> DistScratch<P> {
    /// An empty scratch.
    pub fn new() -> Self {
        DistScratch {
            view: CoresetView::new(),
            dist: Vec::new(),
            min_dist: Vec::new(),
            packed: Vec::new(),
        }
    }
}

/// A check-out/check-in pool of scratches shared by the (possibly
/// parallel) query scan: each worker shard borrows one scratch for the
/// duration of its chunk and returns it, so buffers warm up once and are
/// reused across guesses *and* across queries. Cloning an owner produces
/// a fresh empty pool — scratch contents are never semantic state.
pub struct ScratchPool<S> {
    pool: Mutex<Vec<S>>,
}

impl<S> Default for ScratchPool<S> {
    fn default() -> Self {
        ScratchPool {
            pool: Mutex::new(Vec::new()),
        }
    }
}

impl<S> Clone for ScratchPool<S> {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl<S> std::fmt::Debug for ScratchPool<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchPool")
            .field("idle", &self.pool.lock().map(|p| p.len()).unwrap_or(0))
            .finish()
    }
}

impl<S: Default> ScratchPool<S> {
    /// Borrows a scratch (a warmed-up idle one when available, a fresh
    /// one otherwise), runs `f`, and returns the scratch to the pool.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        let mut scratch = self
            .pool
            .lock()
            .ok()
            .and_then(|mut p| p.pop())
            .unwrap_or_default();
        let out = f(&mut scratch);
        if let Ok(mut p) = self.pool.lock() {
            p.push(scratch);
        }
        out
    }
}

/// Shared greedy-packing scan over a staged view: visits points in row
/// order, adding every point farther than `threshold` from all
/// previously added ones (the `2γ`-packing of Algorithm 3 and the head
/// selection of the Chen-style solvers). Returns `None` as soon as more
/// than `cap` points are packed; otherwise the number packed, with the
/// packed row indices left in the caller-owned `packed` buffer (part of
/// [`DistScratch`], so steady-state scans allocate nothing).
///
/// Decision-identical to the scalar loop
/// `if dist_to_set(p, packing) > threshold { push }`: the running
/// minimum in `scratch_min` equals `dist_to_set` at every visit
/// because each packed point batch-updates the minima of all later rows.
pub fn packing_scan<M: Metric>(
    metric: &M,
    view: &CoresetView<M::Point>,
    threshold: f64,
    cap: usize,
    scratch_dist: &mut Vec<f64>,
    scratch_min: &mut Vec<f64>,
    packed: &mut Vec<usize>,
) -> Option<usize> {
    let n = view.len();
    scratch_min.clear();
    scratch_min.resize(n, f64::INFINITY);
    scratch_dist.clear();
    scratch_dist.resize(n, 0.0);
    packed.clear();
    for i in 0..n {
        if scratch_min[i] > threshold {
            packed.push(i);
            if packed.len() > cap {
                return None;
            }
            metric.dist_one_to_many(view.point(i), view, scratch_dist);
            for j in (i + 1)..n {
                if scratch_dist[j] < scratch_min[j] {
                    scratch_min[j] = scratch_dist[j];
                }
            }
        }
    }
    Some(packed.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;
    use crate::point::EuclidPoint;
    use crate::store::PointStore;

    fn pts(vals: &[f64]) -> Vec<EuclidPoint> {
        vals.iter().map(|&v| EuclidPoint::new(vec![v])).collect()
    }

    #[test]
    fn soa_block_stages_tiled_columns() {
        let mut soa = SoaBlock::default();
        // Cross a tile boundary so the padded trailing tile is covered.
        let rows: Vec<Vec<f64>> = (0..LANES + 3)
            .map(|i| vec![i as f64, -(i as f64)])
            .collect();
        soa.stage_rows(2, rows.iter().map(Vec::as_slice));
        assert_eq!(soa.len(), LANES + 3);
        assert_eq!(soa.dim(), 2);
        assert_eq!(soa.tiles(), 2);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(soa.coord(0, i), row[0]);
            assert_eq!(soa.coord(1, i), row[1]);
        }
        // Lane groups are contiguous per (tile, dimension).
        assert_eq!(&soa.tile(0)[..4], &[0.0, 1.0, 2.0, 3.0]);
        soa.clear();
        assert!(soa.is_empty());
    }

    #[test]
    fn view_gathers_and_stages_for_euclidean() {
        let points = pts(&[1.0, 2.0, 3.0]);
        let mut view = CoresetView::new();
        view.gather(&Euclidean, points.iter());
        assert_eq!(view.len(), 3);
        let soa = view.soa().expect("Euclidean stages columns");
        assert_eq!(
            [soa.coord(0, 0), soa.coord(0, 1), soa.coord(0, 2)],
            [1.0, 2.0, 3.0]
        );
        // Regathering reuses buffers and replaces contents.
        view.gather(&Euclidean, points[..1].iter());
        assert_eq!(view.len(), 1);
        assert_eq!(view.soa().unwrap().coord(0, 0), 1.0);
    }

    #[test]
    fn view_gathers_from_the_arena_once() {
        let mut store = PointStore::new();
        let a = store.insert(1, EuclidPoint::new(vec![1.0, 0.0]));
        let b = store.insert(2, EuclidPoint::new(vec![0.0, 1.0]));
        let mut view = CoresetView::new();
        view.gather_colored_ids(
            &Euclidean,
            store.resolver(),
            [Colored::new(a, 0), Colored::new(b, 1)],
        );
        assert_eq!(view.len(), 2);
        assert_eq!(view.colors(), &[0, 1]);
        let soa = view.soa().unwrap();
        assert_eq!([soa.coord(1, 0), soa.coord(1, 1)], [0.0, 1.0]);
    }

    #[test]
    fn empty_view_has_no_soa() {
        let mut view: CoresetView<EuclidPoint> = CoresetView::new();
        view.gather(&Euclidean, std::iter::empty());
        assert!(view.is_empty());
        assert!(view.soa().is_none());
    }

    #[test]
    fn scratch_pool_recycles() {
        let pool: ScratchPool<DistScratch<EuclidPoint>> = ScratchPool::default();
        pool.with(|s| {
            s.dist.resize(16, 0.0);
        });
        // The returned scratch is reused: its buffer capacity survives.
        pool.with(|s| {
            assert!(s.dist.capacity() >= 16, "scratch not recycled");
        });
    }

    mod bit_identity {
        use super::super::*;
        use crate::metric::{Angular, Chebyshev, Euclidean, Manhattan};
        use crate::point::EuclidPoint;
        use proptest::prelude::*;

        /// A block of same-dimension points: dims 1–64, 0–40 points,
        /// coordinates spanning signs, magnitudes and exact zeros (the
        /// angular kernel's zero-norm mask).
        fn arb_block() -> impl Strategy<Value = (Vec<EuclidPoint>, EuclidPoint)> {
            (1usize..65).prop_flat_map(|dim| {
                let coord = prop_oneof![Just(0.0f64), -1e3..1e3f64, -1e-3..1e-3f64];
                let point = proptest::collection::vec(coord, dim).prop_map(EuclidPoint::new);
                proptest::collection::vec(point, 1..41).prop_map(|mut pts| {
                    let q = pts.pop().expect("at least one point generated");
                    (pts, q)
                })
            })
        }

        /// Asserts both kernels equal scalar `dist`, bit for bit, on the
        /// staged view — and that the unstaged (scalar-fallback) view
        /// agrees too.
        fn check_kernels<M: Metric<Point = EuclidPoint>>(
            metric: &M,
            block: &[EuclidPoint],
            q: &EuclidPoint,
        ) -> Result<(), TestCaseError> {
            let mut view = CoresetView::new();
            view.gather(metric, block.iter());
            let mut out = vec![f64::NAN; block.len()];
            metric.dist_one_to_many(q, &view, &mut out);
            for (i, p) in block.iter().enumerate() {
                let scalar = metric.dist(q, p);
                prop_assert_eq!(
                    out[i].to_bits(),
                    scalar.to_bits(),
                    "one_to_many[{}] = {} != scalar {}",
                    i,
                    out[i],
                    scalar
                );
            }
            // Unstaged view: same answers through the scalar fallback.
            let mut raw: CoresetView<EuclidPoint> = CoresetView::new();
            raw.clear();
            for p in block {
                raw.points.push(p.clone());
            }
            let mut out_raw = vec![f64::NAN; block.len()];
            metric.dist_one_to_many(q, &raw, &mut out_raw);
            for i in 0..block.len() {
                prop_assert_eq!(out_raw[i].to_bits(), out[i].to_bits());
            }
            // Many-to-many: the full matrix against per-pair scalar.
            let mut mat = vec![f64::NAN; block.len() * block.len()];
            metric.dist_many_to_many(&view, &view, &mut mat);
            for (i, a) in block.iter().enumerate() {
                for (j, b) in block.iter().enumerate() {
                    let scalar = metric.dist(a, b);
                    prop_assert_eq!(
                        mat[i * block.len() + j].to_bits(),
                        scalar.to_bits(),
                        "many_to_many[{},{}] diverged",
                        i,
                        j
                    );
                }
            }
            Ok(())
        }

        macro_rules! kernel_identity_tests {
            ($name:ident, $metric:expr) => {
                mod $name {
                    use super::*;

                    proptest! {
                        #![proptest_config(ProptestConfig::with_cases(48))]

                        #[test]
                        fn kernels_match_scalar(case in arb_block()) {
                            let (block, q) = case;
                            check_kernels(&$metric, &block, &q)?;
                        }
                    }

                    #[test]
                    fn empty_and_singleton_blocks() {
                        let m = $metric;
                        let q = EuclidPoint::new(vec![1.0, -2.0, 3.0]);
                        check_kernels::<_>(&m, &[], &q).unwrap();
                        let single = [EuclidPoint::new(vec![0.5, 0.0, -4.0])];
                        check_kernels::<_>(&m, &single, &q).unwrap();
                        // Zero vectors exercise the angular convention.
                        let zeros = [
                            EuclidPoint::new(vec![0.0, 0.0, 0.0]),
                            EuclidPoint::new(vec![1.0, 1.0, 1.0]),
                        ];
                        check_kernels::<_>(&m, &zeros, &q).unwrap();
                        check_kernels::<_>(&m, &zeros, &EuclidPoint::new(vec![0.0, 0.0, 0.0]))
                            .unwrap();
                    }

                    #[test]
                    fn chunk_boundaries() {
                        // Cross the kernel chunk width so the chunked
                        // angular path sees full and partial chunks.
                        let m = $metric;
                        let block: Vec<EuclidPoint> = (0..300)
                            .map(|i| {
                                let x = (i as f64 * 0.618_033_988_7).fract() * 10.0 - 5.0;
                                EuclidPoint::new(vec![x, -x, x * 0.5])
                            })
                            .collect();
                        let q = EuclidPoint::new(vec![0.3, 4.0, -1.0]);
                        check_kernels::<_>(&m, &block, &q).unwrap();
                    }
                }
            };
        }

        kernel_identity_tests!(euclidean, Euclidean);
        kernel_identity_tests!(manhattan, Manhattan);
        kernel_identity_tests!(chebyshev, Chebyshev);
        kernel_identity_tests!(angular, Angular);
    }

    #[test]
    fn packing_scan_matches_scalar_greedy() {
        let points = pts(&[0.0, 0.5, 3.0, 3.4, 10.0, 10.1, 20.0]);
        let mut view = CoresetView::new();
        view.gather(&Euclidean, points.iter());
        let (mut d, mut m, mut packed) = (Vec::new(), Vec::new(), Vec::new());
        let count = packing_scan(&Euclidean, &view, 2.0, 10, &mut d, &mut m, &mut packed).unwrap();
        // Scalar reference.
        let mut reference: Vec<usize> = Vec::new();
        for (i, p) in points.iter().enumerate() {
            let dmin = Euclidean.dist_to_set(p, reference.iter().map(|&j| &points[j]));
            if dmin > 2.0 {
                reference.push(i);
            }
        }
        assert_eq!(count, reference.len());
        assert_eq!(packed, reference);
        // Cap overflow bails.
        assert!(packing_scan(&Euclidean, &view, 2.0, 2, &mut d, &mut m, &mut packed).is_none());
    }
}

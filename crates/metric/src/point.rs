//! Point representations shared across the workspace.

use std::fmt;
use std::sync::Arc;

/// Shared, immutable coordinate storage.
///
/// Points are cloned into several per-guess data structures by the sliding
/// window algorithm (one copy per radius guess in the worst case), so the
/// coordinate payload is reference counted: cloning a point is a pointer
/// copy plus an atomic increment rather than an `O(d)` buffer copy.
pub type Coords = Arc<[f64]>;

/// A point of a Euclidean-style vector space (also served by the L1 / L∞
/// metrics in [`crate::metric`]).
#[derive(Clone)]
pub struct EuclidPoint {
    coords: Coords,
}

impl EuclidPoint {
    /// Builds a point from a coordinate vector.
    pub fn new(coords: impl Into<Vec<f64>>) -> Self {
        let v: Vec<f64> = coords.into();
        EuclidPoint {
            coords: Arc::from(v.into_boxed_slice()),
        }
    }

    /// Builds a point that shares an existing coordinate buffer.
    pub fn from_shared(coords: Coords) -> Self {
        EuclidPoint { coords }
    }

    /// The coordinates of the point.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Dimensionality (number of coordinates) of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }
}

impl crate::store::PointFootprint for EuclidPoint {
    /// Struct plus the shared coordinate buffer. The buffer is counted in
    /// full even though `clone`s share it — the interned arena stores each
    /// point once, so resident copies and counted copies coincide there.
    fn payload_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.coords.len() * std::mem::size_of::<f64>()
    }
}

impl fmt::Debug for EuclidPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EuclidPoint(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.4}")?;
        }
        write!(f, ")")
    }
}

impl PartialEq for EuclidPoint {
    fn eq(&self, other: &Self) -> bool {
        self.coords[..] == other.coords[..]
    }
}

impl From<Vec<f64>> for EuclidPoint {
    fn from(v: Vec<f64>) -> Self {
        EuclidPoint::new(v)
    }
}

impl From<&[f64]> for EuclidPoint {
    fn from(v: &[f64]) -> Self {
        EuclidPoint::new(v.to_vec())
    }
}

/// A point tagged with its fairness category ("color").
///
/// Colors are small dense integers `0..ℓ`; the partition-matroid budgets
/// `k_i` in [`fairsw_matroid`](https://docs.rs/fairsw-matroid) are indexed
/// by them. The sliding-window algorithm, the sequential baselines and the
/// dataset generators all exchange `Colored<P>` values; with a `Copy`
/// payload (e.g. a [`crate::PointId`] handle) the tagged value is `Copy`
/// too.
#[derive(Clone, Copy, Debug)]
pub struct Colored<P> {
    /// The payload point.
    pub point: P,
    /// The fairness category of the point, in `0..ℓ`.
    pub color: u32,
}

impl<P: PartialEq> PartialEq for Colored<P> {
    fn eq(&self, other: &Self) -> bool {
        self.color == other.color && self.point == other.point
    }
}

impl<P> Colored<P> {
    /// Tags `point` with `color`.
    pub fn new(point: P, color: u32) -> Self {
        Colored { point, color }
    }

    /// Maps the payload while keeping the color.
    pub fn map<Q>(self, f: impl FnOnce(P) -> Q) -> Colored<Q> {
        Colored {
            point: f(self.point),
            color: self.color,
        }
    }

    /// Borrowing view of the payload with the same color.
    pub fn as_ref(&self) -> Colored<&P> {
        Colored {
            point: &self.point,
            color: self.color,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclid_point_roundtrip() {
        let p = EuclidPoint::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
    }

    #[test]
    fn euclid_point_clone_shares_buffer() {
        let p = EuclidPoint::new(vec![1.0; 64]);
        let q = p.clone();
        assert!(std::ptr::eq(p.coords().as_ptr(), q.coords().as_ptr()));
    }

    #[test]
    fn euclid_point_eq_by_value() {
        let p = EuclidPoint::new(vec![1.0, 2.0]);
        let q = EuclidPoint::new(vec![1.0, 2.0]);
        let r = EuclidPoint::new(vec![1.0, 2.5]);
        assert_eq!(p, q);
        assert_ne!(p, r);
    }

    #[test]
    fn colored_map_preserves_color() {
        let c = Colored::new(EuclidPoint::new(vec![0.0]), 5);
        let d = c.map(|p| p.dim());
        assert_eq!(d.color, 5);
        assert_eq!(d.point, 1);
    }

    #[test]
    fn debug_format_is_compact() {
        let p = EuclidPoint::new(vec![1.0, 2.0]);
        let s = format!("{p:?}");
        assert!(s.starts_with("EuclidPoint("));
        assert!(s.contains("1.0000"));
    }

    #[test]
    fn from_slice_and_vec() {
        let v = [3.0, 4.0];
        let p: EuclidPoint = v.as_slice().into();
        let q: EuclidPoint = vec![3.0, 4.0].into();
        assert_eq!(p, q);
    }
}

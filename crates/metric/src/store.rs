//! The interned point arena shared by every sliding-window guess.
//!
//! The sliding-window algorithms run `Θ(log Δ / log(1+β))` parallel
//! radius guesses, and each guess keeps the arriving point in up to four
//! families (`AV`, `RV`, `A`, `R`). Storing an owned point per family per
//! guess makes resident memory scale as `guesses × point size` even
//! though the *set* of distinct live points is bounded by the coreset
//! sizes. [`PointStore`] breaks that multiplication: each window point is
//! stored **once**, and the guesses traffic in copyable 4-byte
//! [`PointId`] handles.
//!
//! ## Lifecycle and garbage collection
//!
//! A point enters the store at its arrival time ([`PointStore::insert`])
//! and leaves through one of two doors:
//!
//! * **Reference counting (early free).** Every guess-family entry holds
//!   one reference, acquired/released through the [`Resolver`] view. The
//!   counters are atomic so the per-guess work can run on worker threads;
//!   a release that drops a count to zero *records* the id (in the
//!   releasing guess's scratch list) rather than freeing — freeing is
//!   owner-side, after the parallel dispatch has quiesced, via
//!   [`PointStore::free_if_dead`]. A point evicted from every guess is
//!   therefore reclaimed on the very arrival that evicted it, keeping
//!   total payloads at `O(Σ coreset sizes)` rather than `O(window)`.
//! * **Epoch expiry (backstop).** The structural invariants of the
//!   algorithms guarantee no guess references a point older than the
//!   window, so [`PointStore::expire`] sweeps everything at or below the
//!   expiry time unconditionally. This catches points that never acquired
//!   a reference (e.g. arrivals while the oblivious variant has no
//!   materialized guess).
//!
//! Slots are reused through a free list; a *stamp* (the occupant's
//! arrival time) disambiguates stale timeline entries from reused slots,
//! so early-freed slots never get double-freed by the epoch sweep.
//!
//! ## Threading contract
//!
//! `&PointStore` (and its [`Resolver`]) is `Sync`: resolution and
//! acquire/release are safe from worker threads. All *structural*
//! mutation — insert, free, expire — takes `&mut self` and therefore
//! happens on the owner thread between dispatches, which is exactly what
//! makes handing `Resolver`s to a worker pool sound.

use crate::point::Colored;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// A 4-byte handle to a point interned in a [`PointStore`].
///
/// Ids are plain slot indices: copyable, orderable, hashable. They are
/// only meaningful against the store that issued them, and only while the
/// point is live (the sliding-window invariants guarantee the algorithms
/// never hold an id past its window).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PointId(pub(crate) u32);

impl PointId {
    /// The raw slot index (diagnostics / serialization).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A colored handle — what the guess structures store per entry (8
/// bytes) and what the id-slice solver entry points consume.
pub type ColoredId = Colored<PointId>;

/// Heap footprint of a point payload, used by the byte-level memory
/// accounting (`MemoryStats` in `fairsw-core`).
///
/// The default counts only the inline size of the value; point types
/// owning heap buffers should override it. [`crate::EuclidPoint`] reports
/// its coordinate buffer.
pub trait PointFootprint {
    /// Total bytes attributable to one resident copy of this point
    /// (inline struct plus owned heap payload).
    fn payload_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

struct Slot<P> {
    /// The payload; `None` while the slot sits on the free list.
    payload: Option<P>,
    /// Arrival time of the current occupant (stale-timeline guard).
    stamp: u64,
    /// Live references held by guess-family entries.
    rc: AtomicU32,
}

impl<P: Clone> Clone for Slot<P> {
    fn clone(&self) -> Self {
        Slot {
            payload: self.payload.clone(),
            stamp: self.stamp,
            rc: AtomicU32::new(self.rc.load(Ordering::Relaxed)),
        }
    }
}

/// The interned point arena: each live window point stored exactly once.
///
/// See the [module docs](self) for the GC story. Constructed per
/// algorithm instance; every radius guess of that instance shares it.
pub struct PointStore<P> {
    slots: Vec<Slot<P>>,
    free: Vec<u32>,
    /// `(arrival time, slot)` in arrival order — the epoch-expiry queue.
    /// Entries may be stale (slot freed early and possibly reused); the
    /// stamp check in [`expire`](Self::expire) skips those.
    timeline: std::collections::VecDeque<(u64, u32)>,
    live: usize,
}

impl<P> Default for PointStore<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> PointStore<P> {
    /// An empty store.
    pub fn new() -> Self {
        PointStore {
            slots: Vec::new(),
            free: Vec::new(),
            timeline: std::collections::VecDeque::new(),
            live: 0,
        }
    }

    /// Interns the point arriving at time `t` (strictly increasing across
    /// calls) with a zero reference count, returning its handle.
    pub fn insert(&mut self, t: u64, p: P) -> PointId {
        debug_assert!(
            self.timeline.back().is_none_or(|&(last, _)| last < t),
            "arrival times must be strictly increasing"
        );
        let idx = match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                slot.payload = Some(p);
                slot.stamp = t;
                *slot.rc.get_mut() = 0;
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("more than u32::MAX live points");
                self.slots.push(Slot {
                    payload: Some(p),
                    stamp: t,
                    rc: AtomicU32::new(0),
                });
                idx
            }
        };
        self.timeline.push_back((t, idx));
        self.live += 1;
        PointId(idx)
    }

    /// Epoch sweep: frees every point that arrived at or before `te`
    /// (the window-expiry backstop). By the algorithms' invariants no
    /// guess still references such a point; a debug assertion checks it.
    pub fn expire(&mut self, te: u64) {
        while let Some(&(t, idx)) = self.timeline.front() {
            if t > te {
                break;
            }
            self.timeline.pop_front();
            let slot = &mut self.slots[idx as usize];
            // Stale entry: the slot was reclaimed early (and possibly
            // reused by a younger point) — nothing to do.
            if slot.stamp != t || slot.payload.is_none() {
                continue;
            }
            debug_assert_eq!(
                *slot.rc.get_mut(),
                0,
                "point {t} expired from the window while still referenced"
            );
            *slot.rc.get_mut() = 0;
            slot.payload = None;
            self.free.push(idx);
            self.live -= 1;
        }
    }

    /// Owner-side reclaim of an id recorded as dead by a release: frees
    /// the slot iff its reference count is (still) zero. Idempotent —
    /// transient zero-crossings during a parallel dispatch may record an
    /// id that was re-acquired before the dispatch finished, and the same
    /// id may be recorded more than once.
    pub fn free_if_dead(&mut self, id: PointId) {
        let slot = &mut self.slots[id.0 as usize];
        if slot.payload.is_some() && *slot.rc.get_mut() == 0 {
            slot.payload = None;
            self.free.push(id.0);
            self.live -= 1;
        }
    }

    /// Owner-side release (guess retirement, restore-error unwinding):
    /// drops one reference and frees immediately on zero.
    pub fn release_owned(&mut self, id: PointId) {
        let slot = &mut self.slots[id.0 as usize];
        debug_assert!(slot.payload.is_some(), "releasing a dead id");
        let rc = slot.rc.get_mut();
        debug_assert!(*rc > 0, "release without matching acquire");
        *rc -= 1;
        if *rc == 0 {
            self.free_if_dead(id);
        }
    }

    /// Owner-side acquire (snapshot restore rebuilds counts this way).
    pub fn acquire_owned(&mut self, id: PointId) {
        let slot = &mut self.slots[id.0 as usize];
        debug_assert!(slot.payload.is_some(), "acquiring a dead id");
        *slot.rc.get_mut() += 1;
    }

    /// The payload behind a live handle. Panics on a dead id — that is a
    /// GC accounting bug, never a recoverable condition.
    pub fn get(&self, id: PointId) -> &P {
        self.resolver().get(id)
    }

    /// A shareable, `Copy` view for resolution and reference counting
    /// from worker threads.
    pub fn resolver(&self) -> Resolver<'_, P> {
        Resolver { slots: &self.slots }
    }

    /// Number of live (distinct) points.
    pub fn live_points(&self) -> usize {
        self.live
    }

    /// Whether the store holds no live points.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates live points as `(arrival time, id, &point)` in arrival
    /// order (snapshot encoding, diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (u64, PointId, &P)> {
        self.timeline.iter().filter_map(move |&(t, idx)| {
            let slot = &self.slots[idx as usize];
            match &slot.payload {
                Some(p) if slot.stamp == t => Some((t, PointId(idx), p)),
                _ => None,
            }
        })
    }

    /// Total heap bytes of the live payloads — the arena side of the
    /// byte-level memory accounting.
    pub fn payload_bytes(&self) -> usize
    where
        P: PointFootprint,
    {
        self.iter().map(|(_, _, p)| p.payload_bytes()).sum()
    }
}

impl<P: Clone> Clone for PointStore<P> {
    fn clone(&self) -> Self {
        PointStore {
            slots: self.slots.clone(),
            free: self.free.clone(),
            timeline: self.timeline.clone(),
            live: self.live,
        }
    }
}

impl<P> fmt::Debug for PointStore<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PointStore")
            .field("live", &self.live)
            .field("slots", &self.slots.len())
            .field("free", &self.free.len())
            .finish()
    }
}

/// A borrowed, `Copy`, `Sync` view of a [`PointStore`]: resolves handles
/// and adjusts reference counts from any thread. Structural mutation
/// (insert/free/expire) stays with the owning store.
pub struct Resolver<'a, P> {
    slots: &'a [Slot<P>],
}

impl<'a, P> Clone for Resolver<'a, P> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'a, P> Copy for Resolver<'a, P> {}

impl<'a, P> Resolver<'a, P> {
    /// The payload behind a live handle; panics on a dead id (GC bug).
    #[inline]
    pub fn get(&self, id: PointId) -> &'a P {
        self.slots[id.0 as usize]
            .payload
            .as_ref()
            .unwrap_or_else(|| panic!("resolved dead point id {}", id.0))
    }

    /// The payload behind a handle, or `None` if the slot is free
    /// (invariant checkers use this to report rather than panic).
    #[inline]
    pub fn try_get(&self, id: PointId) -> Option<&'a P> {
        self.slots.get(id.0 as usize)?.payload.as_ref()
    }

    /// Adds one reference to `id` (a guess-family entry now holds it).
    #[inline]
    pub fn acquire(&self, id: PointId) {
        self.slots[id.0 as usize].rc.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops one reference; returns `true` when this release observed the
    /// count reaching zero — the caller must then *record* the id for the
    /// owner's [`PointStore::free_if_dead`] pass (freeing here would race
    /// other workers still resolving).
    #[inline]
    #[must_use = "a zero-crossing must be recorded for owner-side reclaim"]
    pub fn release(&self, id: PointId) -> bool {
        let prev = self.slots[id.0 as usize].rc.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "release without matching acquire");
        prev == 1
    }

    /// Resolves a colored handle to a borrowed colored point.
    #[inline]
    pub fn colored(&self, c: ColoredId) -> Colored<&'a P> {
        Colored {
            point: self.get(c.point),
            color: c.color,
        }
    }
}

impl<'a, P> fmt::Debug for Resolver<'a, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Resolver")
            .field("slots", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn insert_resolve_roundtrip() {
        let mut store = PointStore::new();
        let a = store.insert(1, "alpha");
        let b = store.insert(2, "beta");
        assert_eq!(*store.get(a), "alpha");
        assert_eq!(*store.get(b), "beta");
        assert_eq!(store.live_points(), 2);
    }

    #[test]
    fn refcount_reclaim_frees_exactly_on_zero() {
        let mut store = PointStore::new();
        let id = store.insert(1, 42u64);
        let res = store.resolver();
        res.acquire(id);
        res.acquire(id);
        assert!(!res.release(id));
        assert!(res.release(id), "second release crosses zero");
        store.free_if_dead(id);
        assert_eq!(store.live_points(), 0);
        assert!(store.resolver().try_get(id).is_none());
    }

    #[test]
    fn free_if_dead_skips_reacquired_ids() {
        // A transient zero recorded during a dispatch must not free an id
        // that was re-acquired before the owner's reclaim pass.
        let mut store = PointStore::new();
        let id = store.insert(1, 7u8);
        let res = store.resolver();
        res.acquire(id);
        assert!(res.release(id)); // recorded...
        res.acquire(id); // ...but re-acquired before reclaim
        store.free_if_dead(id);
        assert_eq!(store.live_points(), 1, "re-acquired id freed");
    }

    #[test]
    fn expire_sweeps_prefix_and_skips_stale_timeline_entries() {
        let mut store = PointStore::new();
        let a = store.insert(1, 'a');
        let _b = store.insert(2, 'b');
        // Early-free a, reuse its slot at t=3.
        store.free_if_dead(a);
        let c = store.insert(3, 'c');
        assert_eq!(c.index(), a.index(), "slot reused");
        // Expiring t<=2 must drop 'b' but leave the reused slot alone.
        store.expire(2);
        assert_eq!(store.live_points(), 1);
        assert_eq!(*store.get(c), 'c');
    }

    #[test]
    fn clone_snapshots_payloads_and_counts() {
        let mut store = PointStore::new();
        let id = store.insert(1, String::from("x"));
        store.resolver().acquire(id);
        let copy = store.clone();
        assert_eq!(copy.live_points(), 1);
        assert_eq!(*copy.get(id), "x");
        assert!(!copy.resolver().release(id) || copy.resolver().try_get(id).is_some());
    }

    /// One step of the model-based GC test.
    #[derive(Clone, Debug)]
    enum Op {
        Insert,
        Acquire(usize),
        Release(usize),
        ExpireThrough(usize),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // The vendored proptest shim's prop_oneof is unweighted; skew
        // toward the frequent ops by repeating them.
        prop_oneof![
            Just(Op::Insert),
            Just(Op::Insert),
            (0usize..64).prop_map(Op::Acquire),
            (0usize..64).prop_map(Op::Acquire),
            (0usize..64).prop_map(Op::Release),
            (0usize..64).prop_map(Op::Release),
            (0usize..8).prop_map(Op::ExpireThrough),
        ]
    }

    // Model-based GC: no live id is ever collected, every dead id is
    // eventually collected, payloads never get crossed by slot reuse.
    proptest! {
        #[test]
        fn gc_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let mut store: PointStore<u64> = PointStore::new();
            // Model: time -> (id, payload, rc) for undead entries.
            let mut model: HashMap<u64, (PointId, u64, u32)> = HashMap::new();
            let mut t = 0u64;
            let mut pending_dead: Vec<PointId> = Vec::new();
            for op in ops {
                match op {
                    Op::Insert => {
                        t += 1;
                        let payload = t * 1000 + 7;
                        let id = store.insert(t, payload);
                        model.insert(t, (id, payload, 0));
                    }
                    Op::Acquire(pick) => {
                        let mut keys: Vec<u64> = model.keys().copied().collect();
                        keys.sort_unstable();
                        if keys.is_empty() { continue; }
                        let key = keys[pick % keys.len()];
                        let entry = model.get_mut(&key).unwrap();
                        store.resolver().acquire(entry.0);
                        entry.2 += 1;
                    }
                    Op::Release(pick) => {
                        let mut keys: Vec<u64> = model
                            .iter()
                            .filter(|(_, v)| v.2 > 0)
                            .map(|(&k, _)| k)
                            .collect();
                        keys.sort_unstable();
                        if keys.is_empty() { continue; }
                        let key = keys[pick % keys.len()];
                        let entry = model.get_mut(&key).unwrap();
                        entry.2 -= 1;
                        if store.resolver().release(entry.0) {
                            pending_dead.push(entry.0);
                        }
                        if entry.2 == 0 {
                            let id = entry.0;
                            model.remove(&key);
                            // Owner reclaim pass.
                            for d in pending_dead.drain(..) {
                                store.free_if_dead(d);
                            }
                            prop_assert!(store.resolver().try_get(id).is_none(),
                                "dead id survived reclaim");
                        }
                    }
                    Op::ExpireThrough(back) => {
                        // Expire everything whose refs the model says are
                        // gone, up to `back` steps behind the clock; first
                        // force-release in the model (mirrors the window
                        // invariant: nothing old is referenced).
                        let te = t.saturating_sub(back as u64);
                        let expired: Vec<u64> =
                            model.keys().copied().filter(|&k| k <= te).collect();
                        for k in expired {
                            let (id, _, rc) = model.remove(&k).unwrap();
                            for _ in 0..rc {
                                let _ = store.resolver().release(id);
                            }
                        }
                        store.expire(te);
                        pending_dead.clear();
                    }
                }
                // Invariants after every step: every model entry resolves
                // to its own payload; the live count never undershoots.
                for (id, payload, _) in model.values() {
                    prop_assert_eq!(store.resolver().try_get(*id), Some(payload),
                        "live id lost or crossed");
                }
                prop_assert!(store.live_points() >= model.len());
            }
            // Drain: expire everything; the store must end empty.
            for (_, (id, _, rc)) in model.drain() {
                for _ in 0..rc {
                    let _ = store.resolver().release(id);
                }
            }
            store.expire(t);
            prop_assert_eq!(store.live_points(), 0, "expired ids never collected");
        }
    }
}

//! Property tests for the runtime-dispatched SIMD kernels and the
//! compact payload mirrors, against the scalar reference kernels.
//!
//! ### What must hold, per ISA
//!
//! The vertical SIMD kernels keep one accumulator *per point lane*, so
//! they replay the scalar per-point accumulation order exactly:
//!
//! * **L1 / L∞** are bit-identical to scalar on every ISA — `|x|` via
//!   sign-mask `andnot`, `add`/`max` lane-wise, no reassociation and no
//!   contraction.
//! * **L2** is bit-identical wherever the ISA multiplies and adds in
//!   two rounded steps (the scalar fallback, SSE2); with FMA (AVX2,
//!   NEON) each `d·d + acc` rounds once instead of twice, so the
//!   squared sum may drift by one ulp per dimension. The documented
//!   bound checked here: relative error `≤ dim · 2⁻⁵⁰` on the distance.
//! * **Angular** adds a division and `atan2`; the AVX2 path also
//!   Kahan-compensates the cross terms, so only a small absolute/
//!   relative envelope is asserted — except *zero-norm masking*, which
//!   must be exact: any row whose staged block norm is zero reports
//!   distance exactly `0.0` on every path.
//!
//! All assertions hold under every `FAIRSW_SIMD` setting — with the
//! SIMD kernels disabled both sides are the same scalar code and every
//! check degenerates to bit-identity.
//!
//! The quantized mirror's contract is different: `Q8Euclidean` answers
//! are *exactly* reproducible (its batched exact kernel re-ranks
//! bit-identically to its scalar `dist`), and they stay within the
//! `(1+ε)` envelope of the original `f64` distances for
//! `ε = √dim · (step_a + step_b) / (2·d)` (the per-point quantization
//! steps), which is what lets an `Approx` engine scan compactly and
//! re-rank survivors exactly.

use fairsw_metric::{
    Angular, Chebyshev, CompactEuclidean, CompactPoint, CoresetView, EuclidPoint, Euclidean,
    Exactness, Manhattan, Metric, Q8Euclidean, Q8Point, Relaxed,
};
use proptest::prelude::*;

/// Dimensions covering every tile shape: sub-lane, exact-lane, lane+1,
/// and wide blocks with and without a padded tail (LANES = 8).
const DIMS: [usize; 12] = [1, 2, 7, 8, 9, 16, 17, 63, 64, 129, 256, 1024];

/// Coordinate strategy: mostly well-scaled values, with a ~25% sprinkle
/// of subnormal and extreme-magnitude outliers (squares that underflow
/// to 0 or overflow to ∞ must do so identically on both paths).
fn coord() -> impl Strategy<Value = f64> {
    (0u32..20, -1e3..1e3f64).prop_map(|(sel, x)| match sel {
        0 => 1e-310,
        1 => -2.5e-308,
        2 => 0.0,
        3 => 1e160,
        4 => -3e160,
        _ => x,
    })
}

fn points(dim: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(coord(), dim), 1..n + 1)
}

/// Stages `rows` twice — exact mode and SIMD (`Approx`) mode — and
/// returns both `dist_one_to_many` outputs for `metric`.
fn both_modes<M>(metric: M, rows: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>)
where
    M: Metric<Point = EuclidPoint> + Copy,
{
    let pts: Vec<EuclidPoint> = rows.iter().map(|r| EuclidPoint::new(r.clone())).collect();
    let q = pts[0].clone();
    let mut exact_view = CoresetView::new();
    exact_view.gather(&metric, pts.iter());
    let mut exact = vec![0.0; pts.len()];
    metric.dist_one_to_many(&q, &exact_view, &mut exact);

    let relaxed = Relaxed::new(metric, Exactness::Approx { epsilon: 0.0 });
    let mut simd_view = CoresetView::new();
    simd_view.gather(&relaxed, pts.iter());
    let mut simd = vec![0.0; pts.len()];
    relaxed.dist_one_to_many(&q, &simd_view, &mut simd);
    (exact, simd)
}

fn dims() -> impl Strategy<Value = usize> {
    (0usize..DIMS.len()).prop_map(|i| DIMS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // L1 and L∞ SIMD kernels are bit-identical to scalar on every ISA.
    #[test]
    fn l1_linf_simd_bit_identical(rows in dims().prop_flat_map(|d| points(d, 20))) {
        for metric_out in [both_modes(Manhattan, &rows), both_modes(Chebyshev, &rows)] {
            let (exact, simd) = metric_out;
            for (i, (a, b)) in exact.iter().zip(&simd).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "row {}: {} vs {}", i, a, b);
            }
        }
    }

    // L2 under SIMD stays within the documented FMA ulp bound of the
    // scalar kernel (and handles ±∞ results identically).
    #[test]
    fn l2_simd_within_ulp_bound(rows in dims().prop_flat_map(|d| points(d, 20))) {
        let dim = rows[0].len();
        let (exact, simd) = both_modes(Euclidean, &rows);
        for (i, (&a, &b)) in exact.iter().zip(&simd).enumerate() {
            if !a.is_finite() || !b.is_finite() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "row {}: nonfinite mismatch", i);
                continue;
            }
            let tol = a.abs() * (dim as f64) * f64::powi(2.0, -50);
            prop_assert!((a - b).abs() <= tol, "row {}: {} vs {} (tol {})", i, a, b, tol);
        }
    }

    // Angular under SIMD: zero-norm rows mask to exactly 0.0; all other
    // rows stay within a small envelope of the scalar kernel.
    #[test]
    fn angular_simd_masks_and_bounds(rows in dims().prop_flat_map(|d| points(d, 16)), zero_at in 0usize..16) {
        let mut rows = rows;
        let dim = rows[0].len();
        let n = rows.len();
        rows[zero_at % n] = vec![0.0; dim];
        let (exact, simd) = both_modes(Angular, &rows);
        for (i, (&a, &b)) in exact.iter().zip(&simd).enumerate() {
            if i == zero_at % n {
                prop_assert_eq!(b.to_bits(), 0.0f64.to_bits(), "zero-norm row must mask to 0.0");
                prop_assert_eq!(a.to_bits(), 0.0f64.to_bits());
                continue;
            }
            if !a.is_finite() || !b.is_finite() {
                continue; // overflowed norms: angle undefined either way
            }
            prop_assert!((a - b).abs() <= 1e-9 + a.abs() * 1e-9, "row {}: {} vs {}", i, a, b);
        }
    }

    // The compact f32 mirror's exact batched kernel re-ranks
    // bit-identically to its scalar `dist` (and the same for q8).
    #[test]
    fn compact_exact_kernels_bit_identical(rows in dims().prop_flat_map(|d| points(d, 16))) {
        let f32_pts: Vec<CompactPoint> = rows.iter().map(|r| CompactPoint::from_f64(r)).collect();
        let q8_pts: Vec<Q8Point> = rows.iter().map(|r| Q8Point::quantize(r)).collect();

        let mut view = CoresetView::new();
        view.gather(&CompactEuclidean, f32_pts.iter());
        prop_assert!(view.soa32().is_some(), "compact metric must stage the f32 block");
        let mut out = vec![0.0; f32_pts.len()];
        CompactEuclidean.dist_one_to_many_exact(&f32_pts[0], &view, &mut out);
        for (i, (p, &d)) in f32_pts.iter().zip(&out).enumerate() {
            prop_assert_eq!(d.to_bits(), CompactEuclidean.dist(&f32_pts[0], p).to_bits(), "f32 row {}", i);
        }

        let mut view = CoresetView::new();
        view.gather(&Q8Euclidean, q8_pts.iter());
        let mut out = vec![0.0; q8_pts.len()];
        Q8Euclidean.dist_one_to_many_exact(&q8_pts[0], &view, &mut out);
        for (i, (p, &d)) in q8_pts.iter().zip(&out).enumerate() {
            prop_assert_eq!(d.to_bits(), Q8Euclidean.dist(&q8_pts[0], p).to_bits(), "q8 row {}", i);
        }
    }

    // Quantized-mirror distances stay within the analytic (1+ε)
    // envelope of the original f64 distances: each coordinate is off
    // by at most step/2, so each distance moves by at most
    // √dim · (step_a + step_b)/2.
    #[test]
    fn q8_within_envelope_of_f64(rows in dims().prop_flat_map(|d| points(d, 12))) {
        // Quantization degrades gracefully only on finite, same-scale
        // data; clamp the extreme outliers the other tests exercise.
        let rows: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| r.iter().map(|x| x.clamp(-1e3, 1e3)).collect())
            .collect();
        let dim = rows[0].len();
        let f64_pts: Vec<EuclidPoint> = rows.iter().map(|r| EuclidPoint::new(r.clone())).collect();
        let q8_pts: Vec<Q8Point> = f64_pts.iter().map(Q8Point::from).collect();
        let q = &q8_pts[0];
        for (i, (p64, p8)) in f64_pts.iter().zip(&q8_pts).enumerate() {
            let d_true = Euclidean.dist(&f64_pts[0], p64);
            let d_q8 = Q8Euclidean.dist(q, p8);
            let step = |r: &[f64]| {
                let (lo, hi) = r.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| (lo.min(x), hi.max(x)));
                ((hi - lo) / 255.0).max(0.0)
            };
            let eps = (dim as f64).sqrt() * (step(&rows[0]) + step(&rows[i])) / 2.0;
            // Slack covers the f32 decode rounding on top of the step
            // bound.
            prop_assert!(
                (d_true - d_q8).abs() <= eps + 1e-3 + d_true * 1e-6,
                "row {}: |{} - {}| > {}",
                i, d_true, d_q8, eps
            );
        }
    }
}
